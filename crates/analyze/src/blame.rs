//! Blame decomposition: attribute every virtual nanosecond of a rank's
//! elapsed time to exactly one [`Category`].
//!
//! The sweep walks the rank's spans (sorted by start, outermost first on
//! ties) with an explicit nesting stack and charges each instant to the
//! *innermost* covering span — so a lock wait nested in a steal attempt
//! counts as lock time, not steal time, and the parent's category only
//! gets the remainder. Time covered by no span is idle. By construction
//! the six category totals sum **exactly** to the rank's elapsed time
//! (the invariant pinned by `tests/cross_crate.rs`).

use crate::timeline::{Category, Span, CATEGORIES};

/// Per-category virtual-ns totals for one rank (or aggregated).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Blame {
    ns: [u64; CATEGORIES.len()],
}

impl Blame {
    /// Nanoseconds attributed to `cat`.
    pub fn get(&self, cat: Category) -> u64 {
        self.ns[cat.index()]
    }

    /// Sum over all categories — equals the elapsed time passed to
    /// [`decompose`].
    pub fn total(&self) -> u64 {
        self.ns.iter().sum()
    }

    /// Directly charge `ns` to `cat` (used by the critical-path walk).
    pub(crate) fn charge(&mut self, cat: Category, ns: u64) {
        self.ns[cat.index()] += ns;
    }

    /// Fold another rank's blame into this one.
    pub fn merge(&mut self, other: &Blame) {
        for (a, b) in self.ns.iter_mut().zip(&other.ns) {
            *a += b;
        }
    }
}

/// Decompose `elapsed` virtual ns of one rank into category totals given
/// its spans. Spans are clipped to `[0, elapsed]`; overlapping
/// non-nested spans (which well-formed traces do not produce) are
/// resolved by clamping the later span to the earlier one's end, keeping
/// the sum exact.
pub fn decompose(spans: &[Span], elapsed: u64) -> Blame {
    let mut sp: Vec<Span> = spans
        .iter()
        .map(|s| Span {
            cat: s.cat,
            start: s.start.min(elapsed),
            end: s.end.min(elapsed),
        })
        .filter(|s| !s.is_empty())
        .collect();
    sp.sort_by(|a, b| a.start.cmp(&b.start).then(b.end.cmp(&a.end)));

    let mut blame = Blame::default();
    let mut stack: Vec<Span> = Vec::new();
    let mut t = 0u64;
    let mut i = 0usize;
    loop {
        let next_start = sp.get(i).map(|s| s.start);
        let top = stack.last().copied();
        match (next_start, top) {
            (Some(start), top) if top.is_none_or(|p| start < p.end) => {
                attribute(&mut blame, top, t, start, t);
                t = t.max(start);
                let mut s = sp[i];
                if let Some(p) = top {
                    // Defensive clamp for improper overlap.
                    s.end = s.end.min(p.end);
                }
                if s.start < s.end {
                    stack.push(s);
                }
                i += 1;
            }
            (_, Some(p)) => {
                attribute(&mut blame, Some(p), t, p.end, t);
                t = t.max(p.end);
                stack.pop();
            }
            // `(Some(_), None)` always takes the first arm (its guard is
            // vacuously true with no parent), so only `(None, None)` lands
            // here.
            _ => break,
        }
    }
    if elapsed > t {
        blame.ns[Category::Idle.index()] += elapsed - t;
    }
    blame
}

/// Charge `[from, to)` to `covering` (idle when `None`), ignoring empty
/// or inverted intervals. `t` is the sweep's current time; only the part
/// at or after it counts.
fn attribute(blame: &mut Blame, covering: Option<Span>, from: u64, to: u64, t: u64) {
    let from = from.max(t);
    if to <= from {
        return;
    }
    let cat = covering.map_or(Category::Idle, |s| s.cat);
    blame.ns[cat.index()] += to - from;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(cat: Category, start: u64, end: u64) -> Span {
        Span { cat, start, end }
    }

    #[test]
    fn empty_spans_are_all_idle() {
        let b = decompose(&[], 100);
        assert_eq!(b.get(Category::Idle), 100);
        assert_eq!(b.total(), 100);
    }

    #[test]
    fn nested_spans_charge_innermost() {
        // Steal [10,50] with a lock wait [20,40] inside: steal self-time is
        // 20, lock 20, idle 60.
        let spans = [
            span(Category::Steal, 10, 50),
            span(Category::Lock, 20, 40),
        ];
        let b = decompose(&spans, 100);
        assert_eq!(b.get(Category::Steal), 20);
        assert_eq!(b.get(Category::Lock), 20);
        assert_eq!(b.get(Category::Idle), 60);
        assert_eq!(b.total(), 100);
    }

    #[test]
    fn triple_nesting_and_adjacency() {
        // Exec [0,100] containing td [10,30] containing lock [15,25], then
        // an adjacent barrier [100,120].
        let spans = [
            span(Category::Exec, 0, 100),
            span(Category::Td, 10, 30),
            span(Category::Lock, 15, 25),
            span(Category::Barrier, 100, 120),
        ];
        let b = decompose(&spans, 120);
        assert_eq!(b.get(Category::Exec), 80);
        assert_eq!(b.get(Category::Td), 10);
        assert_eq!(b.get(Category::Lock), 10);
        assert_eq!(b.get(Category::Barrier), 20);
        assert_eq!(b.get(Category::Idle), 0);
        assert_eq!(b.total(), 120);
    }

    #[test]
    fn spans_beyond_elapsed_are_clipped() {
        let spans = [span(Category::Exec, 50, 200)];
        let b = decompose(&spans, 100);
        assert_eq!(b.get(Category::Exec), 50);
        assert_eq!(b.get(Category::Idle), 50);
        assert_eq!(b.total(), 100);
    }

    #[test]
    fn improper_overlap_keeps_sum_exact() {
        // [0,10] and [5,15] do not nest; the sweep clamps but never double
        // counts or loses the invariant.
        let spans = [
            span(Category::Exec, 0, 10),
            span(Category::Steal, 5, 15),
        ];
        let b = decompose(&spans, 20);
        assert_eq!(b.total(), 20);
        assert_eq!(b.get(Category::Exec), 5);
        assert_eq!(b.get(Category::Steal), 5);
        assert_eq!(b.get(Category::Idle), 10);
    }

    #[test]
    fn identical_spans_nest_without_loss() {
        let spans = [
            span(Category::Exec, 10, 30),
            span(Category::Exec, 10, 30),
        ];
        let b = decompose(&spans, 40);
        assert_eq!(b.get(Category::Exec), 20);
        assert_eq!(b.total(), 40);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = decompose(&[span(Category::Exec, 0, 10)], 10);
        let b = decompose(&[span(Category::Steal, 0, 4)], 10);
        a.merge(&b);
        assert_eq!(a.get(Category::Exec), 10);
        assert_eq!(a.get(Category::Steal), 4);
        assert_eq!(a.get(Category::Idle), 6);
        assert_eq!(a.total(), 20);
    }
}
