//! Critical-path extraction: walk the makespan backward through causal
//! edges and decompose it into categorized segments.
//!
//! The walk starts at the highest final clock (the rank that defines the
//! makespan) and moves backward in virtual time. At every instant it
//! charges the innermost covering span of the current rank and follows
//! **causality edges** at span starts:
//!
//! * a successful steal jumps to the *victim* (the victim's earlier
//!   timeline produced the stolen work);
//! * a lock wait jumps to the lock's home rank (whose critical section
//!   delayed us);
//! * a barrier wait jumps to the episode's last arriver (the rank the
//!   whole machine waited on) at its arrival time;
//! * exec, TD polls, failed steals and idle gaps stay on the same rank.
//!
//! The walk is time-continuous — the segment durations sum exactly to
//! the makespan — so `critical_path_ns == makespan`, and the interesting
//! output is the path's *composition*: how much of the end-to-end time
//! is task execution (inherently serial work), steal/lock/barrier/TD
//! overhead, or idle (parallelism shortage), plus the top-k longest
//! segments. `total_work_ns` is the T1 analogue (all ranks' exec
//! self-time); `parallelism` is their ratio.

use scioto_sim::{Trace, TraceEvent};

use crate::blame::Blame;
use crate::timeline::{Category, Span};

/// One maximal same-rank, same-category stretch of the critical path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PathSegment {
    /// Rank the path ran on.
    pub rank: u32,
    /// Blame category of this stretch.
    pub cat: Category,
    /// Segment start, virtual ns.
    pub start: u64,
    /// Segment end, virtual ns.
    pub end: u64,
}

impl PathSegment {
    /// Segment length in virtual ns.
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// True when the segment covers no time.
    pub fn is_empty(&self) -> bool {
        self.end == self.start
    }
}

/// Result of the critical-path walk.
#[derive(Clone, Debug, Default)]
pub struct CritPath {
    /// Walk length — equals the makespan by construction.
    pub length_ns: u64,
    /// Sum of exec self-time across all ranks (the T1 analogue).
    pub total_work_ns: u64,
    /// Longest single task execution span anywhere in the trace.
    pub max_task_ns: u64,
    /// Per-category time along the path.
    pub blame: Blame,
    /// Path segments in chronological order (merged).
    pub segments: Vec<PathSegment>,
    /// Set when the walk hit its iteration backstop (malformed trace).
    pub truncated: bool,
}

impl CritPath {
    /// `total_work_ns / length_ns` (0.0 for an empty path): how much
    /// parallelism the workload could sustain if the path were all exec.
    pub fn parallelism(&self) -> f64 {
        if self.length_ns == 0 {
            0.0
        } else {
            self.total_work_ns as f64 / self.length_ns as f64
        }
    }

    /// The `k` longest segments, longest first (ties: earliest first).
    pub fn top_segments(&self, k: usize) -> Vec<PathSegment> {
        let mut v = self.segments.clone();
        v.sort_by(|a, b| b.len().cmp(&a.len()).then(a.start.cmp(&b.start)));
        v.truncate(k);
        v
    }
}

/// What the walk does when it reaches a span's start.
#[derive(Clone, Copy, Debug)]
enum Jump {
    Stay,
    StealFrom(u32),
    Lock(u32),
    /// Barrier episode index counted from the *end* of the rank's
    /// BarrierWait list (drops truncate rings from the front, and every
    /// rank completes the same trailing episodes).
    Barrier(usize),
}

#[derive(Clone, Copy, Debug)]
struct WalkSpan {
    span: Span,
    jump: Jump,
}

/// Extract the critical path of `trace`.
pub fn analyze(trace: &Trace) -> CritPath {
    let n = trace.nranks();
    let mut spans: Vec<Vec<WalkSpan>> = Vec::with_capacity(n);
    let mut barriers: Vec<Vec<(u64, u64)>> = Vec::with_capacity(n);
    let mut total_work_ns = 0u64;
    let mut max_task_ns = 0u64;
    for events in &trace.events {
        let (s, b, work, max_task) = rank_walk_spans(events);
        total_work_ns += work;
        max_task_ns = max_task_ns.max(max_task);
        spans.push(s);
        barriers.push(b);
    }

    let elapsed: Vec<u64> = (0..n).map(|r| trace.elapsed_ns(r)).collect();
    let start_rank = (0..n)
        .max_by_key(|&r| (elapsed[r], std::cmp::Reverse(r)))
        .unwrap_or(0);
    let makespan = elapsed.get(start_rank).copied().unwrap_or(0);

    let mut out = CritPath {
        length_ns: makespan,
        total_work_ns,
        max_task_ns,
        ..CritPath::default()
    };

    let mut rank = start_rank;
    let mut t = makespan;
    let budget = 10 * trace.total_events() + 1_000;
    let mut steps = 0usize;
    let mut raw: Vec<PathSegment> = Vec::new();
    while t > 0 {
        steps += 1;
        if steps > budget {
            out.truncated = true;
            // Account the unexplained remainder as idle so the length
            // invariant survives even on malformed traces.
            raw.push(PathSegment { rank: rank as u32, cat: Category::Idle, start: 0, end: t });
            break;
        }
        // Innermost span covering the instant just before `t`: maximal
        // start among spans with start < t <= end (nesting ⇒ inner spans
        // start later).
        let covering = spans[rank]
            .iter()
            .filter(|w| w.span.start < t && w.span.end >= t)
            .max_by_key(|w| w.span.start)
            .copied();
        match covering {
            None => {
                // Idle back to the latest span end strictly before `t`.
                let prev_end = spans[rank]
                    .iter()
                    .map(|w| w.span.end.min(t))
                    .filter(|&e| e < t)
                    .max()
                    .unwrap_or(0);
                raw.push(PathSegment { rank: rank as u32, cat: Category::Idle, start: prev_end, end: t });
                t = prev_end;
            }
            Some(w) => {
                let (next_rank, next_t) = match w.jump {
                    Jump::Stay => (rank, w.span.start),
                    Jump::StealFrom(victim) => (victim as usize % n, w.span.start),
                    Jump::Lock(target) => (target as usize % n, w.span.start),
                    Jump::Barrier(from_end) => {
                        blocker_of_episode(&barriers, from_end, rank, w.span.start)
                    }
                };
                let seg_start = next_t.clamp(w.span.start, t);
                raw.push(PathSegment { rank: rank as u32, cat: w.span.cat, start: seg_start, end: t });
                if seg_start < t || next_rank != rank {
                    t = seg_start;
                } else {
                    // Same-rank jump with no time progress: fall back to the
                    // span's own start (strictly < t because the span covers
                    // the instant before t).
                    t = w.span.start;
                }
                rank = next_rank;
            }
        }
    }

    raw.reverse();
    out.segments = merge_segments(raw);
    // The walk is time-continuous, so these sum to the makespan.
    for s in &out.segments {
        out.blame.charge(s.cat, s.len());
    }
    out
}

/// Per-rank walk spans (with jump targets), barrier episodes, exec
/// self-time and the longest task span.
fn rank_walk_spans(events: &[scioto_sim::StampedEvent]) -> (Vec<WalkSpan>, Vec<(u64, u64)>, u64, u64) {
    let last_t = events.last().map_or(0, |e| e.t_ns);
    let mut spans = Vec::new();
    let mut barriers = Vec::new();
    let mut open_execs: Vec<u64> = Vec::new();
    let mut exec_spans: Vec<Span> = Vec::new();
    let mut max_task = 0u64;
    let mut n_barriers = 0usize;
    for e in events {
        match e.event {
            TraceEvent::TaskExecBegin { .. } => open_execs.push(e.t_ns),
            TraceEvent::TaskExecEnd { .. } => {
                if let Some(start) = open_execs.pop() {
                    let span = Span { cat: Category::Exec, start, end: e.t_ns.max(start) };
                    max_task = max_task.max(span.len());
                    exec_spans.push(span);
                    spans.push(WalkSpan { span, jump: Jump::Stay });
                }
            }
            TraceEvent::StealAttempt { victim, got, dur_ns } => {
                let span = Span {
                    cat: Category::Steal,
                    start: e.t_ns.saturating_sub(dur_ns),
                    end: e.t_ns,
                };
                let jump = if got > 0 { Jump::StealFrom(victim) } else { Jump::Stay };
                spans.push(WalkSpan { span, jump });
            }
            TraceEvent::LockWait { target, dur_ns } => {
                let span = Span {
                    cat: Category::Lock,
                    start: e.t_ns.saturating_sub(dur_ns),
                    end: e.t_ns,
                };
                spans.push(WalkSpan { span, jump: Jump::Lock(target) });
            }
            TraceEvent::BarrierWait { dur_ns, .. } => {
                let span = Span {
                    cat: Category::Barrier,
                    start: e.t_ns.saturating_sub(dur_ns),
                    end: e.t_ns,
                };
                barriers.push((span.start, span.end));
                spans.push(WalkSpan { span, jump: Jump::Barrier(n_barriers) });
                n_barriers += 1;
            }
            TraceEvent::TdProgress { dur_ns } => {
                let span = Span {
                    cat: Category::Td,
                    start: e.t_ns.saturating_sub(dur_ns),
                    end: e.t_ns,
                };
                spans.push(WalkSpan { span, jump: Jump::Stay });
            }
            _ => {}
        }
    }
    for start in open_execs {
        let span = Span { cat: Category::Exec, start, end: last_t.max(start) };
        max_task = max_task.max(span.len());
        exec_spans.push(span);
        spans.push(WalkSpan { span, jump: Jump::Stay });
    }
    // Exec self-time: total exec coverage minus nothing nests *between*
    // exec spans in practice (tasks do not run tasks), but be safe and use
    // the blame sweep over exec spans only.
    let work = crate::blame::decompose(&exec_spans, u64::MAX)
        .get(Category::Exec);
    // Barrier jump indices count from the end of the rank's episode list.
    let total = n_barriers;
    for w in &mut spans {
        if let Jump::Barrier(i) = w.jump {
            w.jump = Jump::Barrier(total - 1 - i);
        }
    }
    (spans, barriers, work, max_task)
}

/// The rank the machine waited on in barrier episode `from_end` (counted
/// from the back of each rank's episode list) and its arrival time.
/// Falls back to staying put when the episode is unresolvable.
fn blocker_of_episode(
    barriers: &[Vec<(u64, u64)>],
    from_end: usize,
    cur_rank: usize,
    fallback_t: u64,
) -> (usize, u64) {
    let mut best: Option<(u64, usize)> = None;
    for (r, eps) in barriers.iter().enumerate() {
        if eps.len() > from_end {
            let (arrival, _) = eps[eps.len() - 1 - from_end];
            if best.is_none_or(|(ba, br)| arrival > ba || (arrival == ba && r < br)) {
                best = Some((arrival, r));
            }
        }
    }
    match best {
        Some((arrival, r)) => (r, arrival),
        None => (cur_rank, fallback_t),
    }
}

fn merge_segments(raw: Vec<PathSegment>) -> Vec<PathSegment> {
    let mut out: Vec<PathSegment> = Vec::with_capacity(raw.len());
    for s in raw.into_iter().filter(|s| !s.is_empty()) {
        if let Some(last) = out.last_mut() {
            if last.rank == s.rank && last.cat == s.cat && last.end == s.start {
                last.end = s.end;
                continue;
            }
        }
        out.push(s);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use scioto_sim::{StampedEvent, TraceConfig, TraceSink};

    fn trace_of(per_rank: Vec<Vec<StampedEvent>>, clocks: Vec<u64>) -> Trace {
        let sink = TraceSink::new(&TraceConfig::enabled(), per_rank.len());
        for (rank, events) in per_rank.iter().enumerate() {
            for e in events {
                sink.emit(rank, e.t_ns, || e.event);
            }
        }
        let mut t = sink.finish().unwrap();
        t.final_clock_ns = clocks;
        t
    }

    fn ev(t_ns: u64, event: TraceEvent) -> StampedEvent {
        StampedEvent { t_ns, event }
    }

    #[test]
    fn single_rank_path_is_its_own_timeline() {
        let t = trace_of(
            vec![vec![
                ev(10, TraceEvent::TaskExecBegin { callback: 0, creator: 0 }),
                ev(90, TraceEvent::TaskExecEnd { callback: 0 }),
            ]],
            vec![100],
        );
        let cp = analyze(&t);
        assert_eq!(cp.length_ns, 100);
        assert_eq!(cp.total_work_ns, 80);
        assert_eq!(cp.max_task_ns, 80);
        assert!(!cp.truncated);
        assert_eq!(
            cp.segments,
            vec![
                PathSegment { rank: 0, cat: Category::Idle, start: 0, end: 10 },
                PathSegment { rank: 0, cat: Category::Exec, start: 10, end: 90 },
                PathSegment { rank: 0, cat: Category::Idle, start: 90, end: 100 },
            ]
        );
        assert_eq!(cp.blame.get(Category::Exec), 80);
        assert_eq!(cp.blame.get(Category::Idle), 20);
        assert_eq!(cp.blame.total(), cp.length_ns);
    }

    #[test]
    fn successful_steal_jumps_to_victim() {
        // Rank 0 executes [0,50]; rank 1 steals from 0 over [50,60] and
        // executes [60,100]. Path: r0 exec → r1 steal → r1 exec.
        let t = trace_of(
            vec![
                vec![
                    ev(0, TraceEvent::TaskExecBegin { callback: 0, creator: 0 }),
                    ev(50, TraceEvent::TaskExecEnd { callback: 0 }),
                ],
                vec![
                    ev(60, TraceEvent::StealAttempt { victim: 0, got: 1, dur_ns: 10 }),
                    ev(60, TraceEvent::TaskExecBegin { callback: 0, creator: 0 }),
                    ev(100, TraceEvent::TaskExecEnd { callback: 0 }),
                ],
            ],
            vec![50, 100],
        );
        let cp = analyze(&t);
        assert_eq!(cp.length_ns, 100);
        assert_eq!(
            cp.segments,
            vec![
                PathSegment { rank: 0, cat: Category::Exec, start: 0, end: 50 },
                PathSegment { rank: 1, cat: Category::Steal, start: 50, end: 60 },
                PathSegment { rank: 1, cat: Category::Exec, start: 60, end: 100 },
            ]
        );
        assert_eq!(cp.blame.get(Category::Steal), 10);
        assert_eq!(cp.total_work_ns, 90);
        assert!((cp.parallelism() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn barrier_jumps_to_last_arriver() {
        // Rank 1 arrives at 20 and waits to 100; rank 0 arrives at 100
        // (the blocker) after computing. Path must blame rank 0's exec.
        let t = trace_of(
            vec![
                vec![
                    ev(0, TraceEvent::TaskExecBegin { callback: 0, creator: 0 }),
                    ev(100, TraceEvent::TaskExecEnd { callback: 0 }),
                    ev(100, TraceEvent::BarrierWait { dur_ns: 0, epoch: 0 }),
                ],
                vec![ev(100, TraceEvent::BarrierWait { dur_ns: 80, epoch: 0 })],
            ],
            vec![100, 100],
        );
        let cp = analyze(&t);
        // Ties in final clock resolve to the lowest rank (rank 0), whose
        // own timeline is pure exec; walk from rank 1 is exercised via the
        // barrier jump when rank 1 finishes later.
        assert_eq!(cp.length_ns, 100);
        assert_eq!(cp.blame.total(), 100);

        let t2 = trace_of(
            vec![
                vec![
                    ev(0, TraceEvent::TaskExecBegin { callback: 0, creator: 0 }),
                    ev(100, TraceEvent::TaskExecEnd { callback: 0 }),
                    ev(100, TraceEvent::BarrierWait { dur_ns: 0, epoch: 0 }),
                ],
                vec![ev(100, TraceEvent::BarrierWait { dur_ns: 80, epoch: 0 })],
            ],
            vec![100, 110],
        );
        let cp2 = analyze(&t2);
        assert_eq!(cp2.length_ns, 110);
        // The walk starts on rank 1, crosses its barrier wait to rank 0's
        // arrival (t=100), then follows rank 0's exec back to 0.
        assert!(cp2
            .segments
            .iter()
            .any(|s| s.rank == 0 && s.cat == Category::Exec));
        assert_eq!(cp2.blame.total(), 110);
    }

    #[test]
    fn walk_terminates_on_empty_trace() {
        let cp = analyze(&trace_of(vec![vec![], vec![]], vec![0, 0]));
        assert_eq!(cp.length_ns, 0);
        assert!(cp.segments.is_empty());
        assert!(!cp.truncated);
    }

    #[test]
    fn top_segments_sort_by_length() {
        let t = trace_of(
            vec![vec![
                ev(10, TraceEvent::TaskExecBegin { callback: 0, creator: 0 }),
                ev(90, TraceEvent::TaskExecEnd { callback: 0 }),
            ]],
            vec![100],
        );
        let top = analyze(&t).top_segments(2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].cat, Category::Exec);
        assert_eq!(top[0].len(), 80);
    }
}
