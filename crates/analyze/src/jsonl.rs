//! Re-parse a JSONL trace export (`Trace::to_jsonl`) back into a
//! [`Trace`], so analysis can run on files as well as in-memory traces.
//!
//! The reader is a purpose-built flat-JSON scanner (the build is
//! hermetic — no serde): each line is one object whose values are
//! unsigned integers, strings, booleans or arrays of unsigned integers,
//! which covers everything the exporter emits. Events, metric registries
//! (histograms and gauges), drop counts and final clocks all round-trip
//! exactly: re-exporting a parsed trace is byte-identical.

use std::collections::BTreeMap;

use scioto_sim::{Gauge, RemoteOpKind, StampedEvent, Trace, TraceEvent, VtHistogram, WaveDir};

/// One parsed flat-JSON value.
#[derive(Clone, Debug, PartialEq)]
enum Val {
    Num(u64),
    Str(String),
    Bool(bool),
    Arr(Vec<u64>),
}

/// Parse `body` (the full JSONL text) into a [`Trace`].
pub fn parse(body: &str) -> Result<Trace, String> {
    let mut lines = body.lines().enumerate().filter(|(_, l)| !l.trim().is_empty());
    let (_, first) = lines
        .next()
        .ok_or_else(|| "empty trace file".to_string())?;
    let meta = parse_flat(first).map_err(|e| format!("line 1: {e}"))?;
    if get_str(&meta, "meta") != Some("scioto-trace") {
        return Err("line 1: missing scioto-trace meta header".into());
    }
    let ranks = get_num(&meta, "ranks").ok_or("line 1: meta lacks \"ranks\"")? as usize;
    if ranks == 0 {
        return Err("line 1: meta declares 0 ranks".into());
    }
    let dropped = get_arr(&meta, "dropped").unwrap_or_else(|| vec![0; ranks]);
    let final_clock_ns = get_arr(&meta, "final_clock_ns").unwrap_or_default();
    // Wall-clock (concurrent-mode) traces are marked `"clock":"wall"`;
    // any other value (or absence) means virtual time.
    let wall_clock = match get_str(&meta, "clock") {
        None => false,
        Some("wall") => true,
        Some(other) => {
            return Err(format!(
                "line 1: unknown clock kind {other:?} (expected \"wall\" or no clock key)"
            ))
        }
    };
    if dropped.len() != ranks {
        return Err(format!(
            "line 1: dropped has {} entries for {ranks} ranks",
            dropped.len()
        ));
    }

    let mut events: Vec<Vec<StampedEvent>> = vec![Vec::new(); ranks];
    let mut hists: Vec<BTreeMap<String, VtHistogram>> =
        (0..ranks).map(|_| BTreeMap::new()).collect();
    let mut gauges: Vec<BTreeMap<String, Gauge>> = (0..ranks).map(|_| BTreeMap::new()).collect();
    for (i, line) in lines {
        let lineno = i + 1;
        let fields = parse_flat(line).map_err(|e| format!("line {lineno}: {e}"))?;
        let rank = get_num(&fields, "rank")
            .ok_or_else(|| format!("line {lineno}: missing \"rank\""))? as usize;
        if rank >= ranks {
            return Err(format!("line {lineno}: rank {rank} out of range ({ranks} ranks)"));
        }
        if let Some(name) = get_str(&fields, "hist") {
            let h = hist_from(&fields)
                .ok_or_else(|| format!("line {lineno}: malformed histogram {name}"))?;
            hists[rank].insert(name.to_string(), h);
            continue;
        }
        if let Some(name) = get_str(&fields, "gauge") {
            let g = gauge_from(&fields)
                .ok_or_else(|| format!("line {lineno}: malformed gauge {name}"))?;
            gauges[rank].insert(name.to_string(), g);
            continue;
        }
        let t_ns = get_num(&fields, "t")
            .ok_or_else(|| format!("line {lineno}: missing \"t\""))?;
        let name = get_str(&fields, "ev")
            .ok_or_else(|| format!("line {lineno}: missing \"ev\""))?;
        let event = event_from(name, &fields)
            .ok_or_else(|| format!("line {lineno}: malformed {name} event"))?;
        events[rank].push(StampedEvent { t_ns, event });
    }

    Ok(Trace {
        events,
        dropped,
        final_clock_ns,
        wall_clock,
        hists,
        gauges,
    })
}

fn hist_from(f: &[(String, Val)]) -> Option<VtHistogram> {
    VtHistogram::from_parts(
        &get_arr(f, "buckets")?,
        get_num(f, "count")?,
        get_num(f, "sum")?,
        get_num(f, "min")?,
        get_num(f, "max")?,
    )
}

fn gauge_from(f: &[(String, Val)]) -> Option<Gauge> {
    Some(Gauge {
        samples: get_num(f, "samples")?,
        sum: get_num(f, "sum")?,
        max: get_num(f, "max")?,
        last: get_num(f, "last")?,
    })
}

fn event_from(name: &str, f: &[(String, Val)]) -> Option<TraceEvent> {
    let num = |k: &str| get_num(f, k);
    let n32 = |k: &str| num(k).map(|v| v as u32);
    Some(match name {
        "TaskExecBegin" => TraceEvent::TaskExecBegin {
            callback: n32("callback")?,
            creator: n32("creator")?,
        },
        "TaskExecEnd" => TraceEvent::TaskExecEnd { callback: n32("callback")? },
        "StealAttempt" => TraceEvent::StealAttempt {
            victim: n32("victim")?,
            got: n32("got")?,
            dur_ns: num("dur")?,
        },
        "LockWait" => TraceEvent::LockWait { target: n32("target")?, dur_ns: num("dur")? },
        "BarrierWait" => TraceEvent::BarrierWait { dur_ns: num("dur")?, epoch: num("epoch")? },
        "TdProgress" => TraceEvent::TdProgress { dur_ns: num("dur")? },
        "SplitRelease" => TraceEvent::SplitRelease { moved: n32("moved")? },
        "SplitReclaim" => TraceEvent::SplitReclaim { moved: n32("moved")? },
        "TdWave" => TraceEvent::TdWave {
            wave: n32("wave")?,
            dir: match get_str(f, "dir")? {
                "down" => WaveDir::Down,
                "up" => WaveDir::Up,
                "term" => WaveDir::Term,
                _ => return None,
            },
            black: get_bool(f, "black")?,
        },
        "QueueDepth" => TraceEvent::QueueDepth { local: n32("local")?, shared: n32("shared")? },
        "Block" => TraceEvent::Block,
        "Unblock" => TraceEvent::Unblock { target: n32("target")? },
        "MsgSend" => TraceEvent::MsgSend {
            dst: n32("dst")?,
            bytes: n32("bytes")?,
            seq: num("seq")?,
        },
        "MsgRecv" => TraceEvent::MsgRecv { src: n32("src")?, seq: num("seq")? },
        "RemoteOp" => TraceEvent::RemoteOp {
            kind: match get_str(f, "kind")? {
                "put" => RemoteOpKind::Put,
                "get" => RemoteOpKind::Get,
                "acc" => RemoteOpKind::Acc,
                "rmw" => RemoteOpKind::Rmw,
                _ => return None,
            },
            target: n32("target")?,
            seg: n32("seg")?,
            offset: num("off")?,
            bytes: n32("bytes")?,
            atomic: get_bool(f, "atomic")?,
        },
        "LocalAccess" => TraceEvent::LocalAccess {
            seg: n32("seg")?,
            offset: num("off")?,
            bytes: n32("bytes")?,
            write: get_bool(f, "write")?,
            atomic: get_bool(f, "atomic")?,
        },
        "LockAcq" => TraceEvent::LockAcq {
            target: n32("target")?,
            set: n32("set")?,
            idx: n32("idx")?,
            seq: num("seq")?,
        },
        "LockRel" => TraceEvent::LockRel {
            target: n32("target")?,
            set: n32("set")?,
            idx: n32("idx")?,
            seq: num("seq")?,
        },
        _ => return None,
    })
}

fn get_num(f: &[(String, Val)], k: &str) -> Option<u64> {
    f.iter().find(|(key, _)| key == k).and_then(|(_, v)| match v {
        Val::Num(n) => Some(*n),
        _ => None,
    })
}

fn get_str<'a>(f: &'a [(String, Val)], k: &str) -> Option<&'a str> {
    f.iter().find(|(key, _)| key == k).and_then(|(_, v)| match v {
        Val::Str(s) => Some(s.as_str()),
        _ => None,
    })
}

fn get_bool(f: &[(String, Val)], k: &str) -> Option<bool> {
    f.iter().find(|(key, _)| key == k).and_then(|(_, v)| match v {
        Val::Bool(b) => Some(*b),
        _ => None,
    })
}

fn get_arr(f: &[(String, Val)], k: &str) -> Option<Vec<u64>> {
    f.iter().find(|(key, _)| key == k).and_then(|(_, v)| match v {
        Val::Arr(a) => Some(a.clone()),
        _ => None,
    })
}

/// Parse one flat JSON object (`{"k":v,...}` with u64/string/bool/
/// u64-array values). Returns keys in document order.
fn parse_flat(line: &str) -> Result<Vec<(String, Val)>, String> {
    let mut p = Scanner { b: line.trim().as_bytes(), i: 0 };
    p.expect(b'{')?;
    let mut out = Vec::new();
    if p.peek() == Some(b'}') {
        p.i += 1;
        return p.finish(out);
    }
    loop {
        let key = p.string()?;
        p.expect(b':')?;
        let val = p.value()?;
        out.push((key, val));
        match p.next_byte()? {
            b',' => continue,
            b'}' => return p.finish(out),
            c => return Err(format!("unexpected byte {:?} at {}", c as char, p.i)),
        }
    }
}

struct Scanner<'a> {
    b: &'a [u8],
    i: usize,
}

impl Scanner<'_> {
    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn next_byte(&mut self) -> Result<u8, String> {
        let c = self.peek().ok_or("unexpected end of line")?;
        self.i += 1;
        Ok(c)
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        match self.next_byte()? {
            got if got == c => Ok(()),
            got => Err(format!("expected {:?}, got {:?} at {}", c as char, got as char, self.i)),
        }
    }

    fn finish(&self, out: Vec<(String, Val)>) -> Result<Vec<(String, Val)>, String> {
        if self.i == self.b.len() {
            Ok(out)
        } else {
            Err(format!("trailing bytes at {}", self.i))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let start = self.i;
        while let Some(c) = self.peek() {
            if c == b'"' {
                let s = std::str::from_utf8(&self.b[start..self.i])
                    .map_err(|_| "invalid utf-8 in string".to_string())?
                    .to_string();
                self.i += 1;
                return Ok(s);
            }
            if c == b'\\' {
                return Err("escapes are not used by the exporter".into());
            }
            self.i += 1;
        }
        Err("unterminated string".into())
    }

    fn number(&mut self) -> Result<u64, String> {
        let start = self.i;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.i += 1;
        }
        if self.i == start {
            return Err(format!("expected digits at {}", self.i));
        }
        std::str::from_utf8(&self.b[start..self.i])
            .unwrap()
            .parse()
            .map_err(|e| format!("bad number: {e}"))
    }

    fn value(&mut self) -> Result<Val, String> {
        match self.peek().ok_or("unexpected end of line")? {
            b'"' => Ok(Val::Str(self.string()?)),
            b't' => self.literal("true").map(|_| Val::Bool(true)),
            b'f' => self.literal("false").map(|_| Val::Bool(false)),
            b'[' => {
                self.i += 1;
                let mut arr = Vec::new();
                if self.peek() == Some(b']') {
                    self.i += 1;
                    return Ok(Val::Arr(arr));
                }
                loop {
                    arr.push(self.number()?);
                    match self.next_byte()? {
                        b',' => continue,
                        b']' => return Ok(Val::Arr(arr)),
                        c => return Err(format!("unexpected {:?} in array", c as char)),
                    }
                }
            }
            c if c.is_ascii_digit() => Ok(Val::Num(self.number()?)),
            c => Err(format!("unexpected value start {:?}", c as char)),
        }
    }

    fn literal(&mut self, word: &str) -> Result<(), String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(())
        } else {
            Err(format!("invalid literal at {}", self.i))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scioto_sim::{TraceConfig, TraceSink};

    fn sample_trace() -> Trace {
        let sink = TraceSink::new(&TraceConfig::enabled(), 2);
        sink.emit(0, 10, || TraceEvent::TaskExecBegin { callback: 3, creator: 1 });
        sink.emit(0, 40, || TraceEvent::TaskExecEnd { callback: 3 });
        sink.emit(0, 90, || TraceEvent::StealAttempt { victim: 1, got: 2, dur_ns: 30 });
        sink.emit(1, 5, || TraceEvent::TdWave { wave: 2, dir: WaveDir::Up, black: true });
        sink.emit(1, 9, || TraceEvent::RemoteOp {
            kind: RemoteOpKind::Acc,
            target: 0,
            seg: 2,
            offset: 64,
            bytes: 16,
            atomic: true,
        });
        sink.emit(1, 12, || TraceEvent::LockWait { target: 0, dur_ns: 4 });
        sink.emit(1, 20, || TraceEvent::BarrierWait { dur_ns: 0, epoch: 0 });
        sink.emit(1, 33, || TraceEvent::TdProgress { dur_ns: 7 });
        sink.emit(1, 35, || TraceEvent::Block);
        sink.emit(1, 40, || TraceEvent::LocalAccess {
            seg: 1,
            offset: 8,
            bytes: 8,
            write: true,
            atomic: false,
        });
        sink.emit(1, 44, || TraceEvent::LockAcq { target: 0, set: 0, idx: 3, seq: 9 });
        sink.emit(1, 48, || TraceEvent::LockRel { target: 0, set: 0, idx: 3, seq: 9 });
        sink.emit(0, 95, || TraceEvent::MsgSend { dst: 1, bytes: 32, seq: 5 });
        sink.emit(1, 99, || TraceEvent::MsgRecv { src: 0, seq: 5 });
        sink.hist(0, "task_exec_ns", 30);
        sink.hist(0, "task_exec_ns", 4_000);
        sink.hist(1, "steal_rtt_ns", 30_000);
        sink.gauge(1, "queue_local", 7);
        let mut t = sink.finish().unwrap();
        t.final_clock_ns = vec![95, 99];
        t
    }

    #[test]
    fn jsonl_round_trips_events_and_meta() {
        let t = sample_trace();
        let parsed = parse(&t.to_jsonl()).expect("export must re-parse");
        assert_eq!(parsed.events, t.events);
        assert_eq!(parsed.dropped, t.dropped);
        assert_eq!(parsed.final_clock_ns, t.final_clock_ns);
        // And the re-export of the parsed trace is byte-identical.
        assert_eq!(parsed.to_jsonl(), t.to_jsonl());
    }

    #[test]
    fn jsonl_round_trips_metric_registries() {
        let t = sample_trace();
        let parsed = parse(&t.to_jsonl()).expect("export must re-parse");
        assert_eq!(parsed.hists, t.hists);
        assert_eq!(parsed.gauges, t.gauges);
        let h = &parsed.hists[0]["task_exec_ns"];
        assert_eq!((h.count(), h.sum(), h.min(), h.max()), (2, 4_030, 30, 4_000));
        let g = parsed.gauges[1]["queue_local"];
        assert_eq!((g.samples, g.sum, g.max, g.last), (1, 7, 7, 7));
    }

    #[test]
    fn malformed_histogram_line_is_an_error() {
        let t = sample_trace();
        let mut body = t.to_jsonl();
        // A ragged (odd-length) bucket pair array must be rejected.
        body.push_str(
            "{\"hist\":\"bad\",\"rank\":0,\"count\":1,\"sum\":1,\"min\":1,\"max\":1,\"buckets\":[1]}\n",
        );
        let err = parse(&body).unwrap_err();
        assert!(err.contains("malformed histogram bad"), "{err}");
    }

    #[test]
    fn missing_header_is_an_error() {
        let err = parse("{\"rank\":0,\"t\":1,\"ev\":\"Block\"}\n").unwrap_err();
        assert!(err.contains("meta header"), "{err}");
    }

    #[test]
    fn malformed_lines_carry_line_numbers() {
        let t = sample_trace();
        let mut body = t.to_jsonl();
        body.push_str("{\"rank\":0,\"t\":1,\"ev\":\"NoSuchEvent\"}\n");
        let err = parse(&body).unwrap_err();
        assert!(err.contains("malformed NoSuchEvent"), "{err}");
    }

    #[test]
    fn out_of_range_rank_is_rejected() {
        let body = "{\"meta\":\"scioto-trace\",\"version\":2,\"ranks\":1,\"dropped\":[0],\"final_clock_ns\":[5]}\n\
                    {\"rank\":3,\"t\":1,\"ev\":\"Block\"}\n";
        assert!(parse(body).unwrap_err().contains("out of range"));
    }

    #[test]
    fn empty_input_is_an_error() {
        assert!(parse("").is_err());
    }

    #[test]
    fn wall_clock_marker_round_trips() {
        let mut t = sample_trace();
        t.wall_clock = true;
        let body = t.to_jsonl();
        let parsed = parse(&body).expect("wall-clock export must re-parse");
        assert!(parsed.wall_clock);
        assert_eq!(parsed.to_jsonl(), body);
        // Virtual-time traces parse back unmarked.
        assert!(!parse(&sample_trace().to_jsonl()).unwrap().wall_clock);
    }

    #[test]
    fn unknown_clock_kind_is_an_error() {
        let body = "{\"meta\":\"scioto-trace\",\"version\":3,\"ranks\":1,\"dropped\":[0],\
                    \"final_clock_ns\":[5],\"clock\":\"lamport\"}\n";
        let err = parse(body).unwrap_err();
        assert!(err.contains("unknown clock kind"), "{err}");
    }
}
