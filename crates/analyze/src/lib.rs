//! Trace-analysis engine for scioto simulator traces.
//!
//! Consumes a [`scioto_sim::Trace`] — taken in-memory from a
//! [`scioto_sim::Report`] or re-parsed from a JSONL file via
//! [`jsonl::parse`] — and computes:
//!
//! - **blame decomposition** ([`blame`]): every virtual nanosecond of
//!   every rank's elapsed time attributed to exactly one of
//!   {exec, steal, lock, td, barrier, idle}, summing exactly to the
//!   rank's elapsed time;
//! - **steal provenance** ([`provenance`]): victim→thief edges, ring
//!   distances, chain depths, and task-migration counts;
//! - **critical path** ([`critpath`]): a time-continuous backward walk
//!   through task/steal/lock/barrier causality edges yielding the
//!   makespan's composition, a T∞-vs-T1 parallelism estimate, and the
//!   top-k longest segments.
//!
//! [`AnalysisReport::from_trace`] bundles all three plus data-quality
//! warnings, rendering as human text or versioned machine JSON
//! (`scioto-analysis-v1`).

pub mod blame;
pub mod critpath;
pub mod jsonl;
pub mod provenance;
pub mod replay;
pub mod report;
pub mod timeline;
pub mod tune;
pub mod whatif;

pub use blame::{decompose, Blame};
pub use critpath::{CritPath, PathSegment};
pub use provenance::{Provenance, StealEdge};
pub use replay::{lower, ReplayError};
pub use tune::{candidates, Candidate, Score, TuneRow};
pub use whatif::{reprice, Knobs};
pub use report::{AnalysisReport, ANALYSIS_SCHEMA};
pub use timeline::{spans_for_rank, Category, Span, CATEGORIES};

use scioto_sim::Trace;

/// Analyze `trace`, producing the full report.
pub fn analyze(trace: &Trace) -> AnalysisReport {
    AnalysisReport::from_trace(trace)
}
