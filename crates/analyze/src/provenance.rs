//! Steal provenance: who fed whom, how far work travelled, and how long
//! steal chains grew.
//!
//! Built from `StealAttempt` events (victim → thief edges) and
//! `TaskExecBegin` events (the `creator` field marks migrated tasks).
//! Task records carry no global IDs, so chain depth is tracked per rank:
//! the depth of a successful steal is one more than the depth of the
//! victim's most recent successful steal *as a thief* before that moment
//! (work the victim holds may descend from that steal). This is the
//! standard lineage approximation for ID-free traces; it is exact when
//! ranks drain stolen work before stealing again, and an upper bound
//! otherwise.

use scioto_sim::{Trace, TraceEvent};

/// Aggregated victim→thief steal edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StealEdge {
    /// Rank performing the steals.
    pub thief: u32,
    /// Rank stolen from.
    pub victim: u32,
    /// Attempts (successful + failed).
    pub attempts: u64,
    /// Attempts that obtained at least one task.
    pub successes: u64,
    /// Total tasks moved along this edge.
    pub tasks: u64,
    /// Total virtual ns spent on this edge's attempts.
    pub dur_ns: u64,
}

/// The steal-provenance profile of one trace.
#[derive(Clone, Debug, Default)]
pub struct Provenance {
    /// Aggregated edges, sorted by (thief, victim).
    pub edges: Vec<StealEdge>,
    /// Successful-steal counts by ring distance `min(|t-v|, n-|t-v|)`;
    /// index 0 is unused (self-steals cannot happen).
    pub distance_hist: Vec<u64>,
    /// Deepest steal chain observed (0 when nothing was stolen).
    pub chain_depth_max: u64,
    /// Mean chain depth over successful steals (0.0 when none).
    pub chain_depth_mean: f64,
    /// Tasks executed on a rank other than their creator.
    pub migrated_execs: u64,
    /// Total tasks executed (for the migration ratio).
    pub total_execs: u64,
}

impl Provenance {
    /// Successful steals across all edges.
    pub fn total_successes(&self) -> u64 {
        self.edges.iter().map(|e| e.successes).sum()
    }

    /// Fraction of executed tasks that migrated (0.0 when none executed).
    pub fn migration_ratio(&self) -> f64 {
        if self.total_execs == 0 {
            0.0
        } else {
            self.migrated_execs as f64 / self.total_execs as f64
        }
    }

    /// Mean ring distance over successful steals (0.0 when none) — the
    /// headline locality figure: a distance-biased victim policy should
    /// pull this towards 1 while uniform selection sits near the ring's
    /// average distance (~n/4).
    pub fn mean_ring_distance(&self) -> f64 {
        let total: u64 = self.distance_hist.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let weighted: u64 = self
            .distance_hist
            .iter()
            .enumerate()
            .map(|(d, c)| d as u64 * c)
            .sum();
        weighted as f64 / total as f64
    }

    /// Fraction of successful steals landing within ring distance
    /// `radius` (0.0 when none succeeded).
    pub fn near_share(&self, radius: usize) -> f64 {
        let total: u64 = self.distance_hist.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let near: u64 = self
            .distance_hist
            .iter()
            .take(radius + 1)
            .sum();
        near as f64 / total as f64
    }
}

/// Ring radius used for the report's "near-steal share" summary: steals
/// within this many hops of the thief count as local traffic. Derived
/// from the sim's near/far latency preset so "near" means the same thing
/// to the analyzer and to [`scioto_sim::LatencyTiers::nearfar`] pricing.
pub const NEAR_RADIUS: usize = scioto_sim::LatencyTiers::nearfar().near_radius;

/// Build the provenance profile of `trace`.
pub fn analyze(trace: &Trace) -> Provenance {
    let n = trace.nranks();
    let mut edges: std::collections::BTreeMap<(u32, u32), StealEdge> = Default::default();
    let mut distance_hist = vec![0u64; n / 2 + 1];
    let mut migrated_execs = 0u64;
    let mut total_execs = 0u64;

    // (completion time, thief, victim) of successful steals, globally
    // ordered for the chain-depth walk. Ties break by thief rank, which is
    // deterministic because per-rank streams are already ordered.
    let mut successes: Vec<(u64, u32, u32)> = Vec::new();

    for (rank, events) in trace.events.iter().enumerate() {
        let thief = rank as u32;
        for e in events {
            match e.event {
                TraceEvent::StealAttempt { victim, got, dur_ns } => {
                    let edge = edges.entry((thief, victim)).or_insert(StealEdge {
                        thief,
                        victim,
                        attempts: 0,
                        successes: 0,
                        tasks: 0,
                        dur_ns: 0,
                    });
                    edge.attempts += 1;
                    edge.dur_ns += dur_ns;
                    if got > 0 {
                        edge.successes += 1;
                        edge.tasks += got as u64;
                        let d = (thief as i64 - victim as i64).unsigned_abs() as usize;
                        let ring = d.min(n - d);
                        distance_hist[ring] += 1;
                        successes.push((e.t_ns, thief, victim));
                    }
                }
                TraceEvent::TaskExecBegin { creator, .. } => {
                    total_execs += 1;
                    if creator != thief {
                        migrated_execs += 1;
                    }
                }
                _ => {}
            }
        }
    }

    successes.sort_by_key(|&(t, thief, victim)| (t, thief, victim));
    // depth_as_thief[r] = depth of r's most recent successful steal.
    let mut depth_as_thief = vec![0u64; n];
    let mut depth_sum = 0u64;
    let mut depth_max = 0u64;
    for &(_, thief, victim) in &successes {
        let d = depth_as_thief[victim as usize] + 1;
        depth_as_thief[thief as usize] = d;
        depth_sum += d;
        depth_max = depth_max.max(d);
    }
    let chain_depth_mean = if successes.is_empty() {
        0.0
    } else {
        depth_sum as f64 / successes.len() as f64
    };

    Provenance {
        edges: edges.into_values().collect(),
        distance_hist,
        chain_depth_max: depth_max,
        chain_depth_mean,
        migrated_execs,
        total_execs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scioto_sim::{StampedEvent, TraceConfig, TraceSink};

    fn trace_of(per_rank: Vec<Vec<StampedEvent>>) -> Trace {
        let sink = TraceSink::new(&TraceConfig::enabled(), per_rank.len());
        for (rank, events) in per_rank.iter().enumerate() {
            for e in events {
                sink.emit(rank, e.t_ns, || e.event);
            }
        }
        sink.finish().unwrap()
    }

    fn steal(t_ns: u64, victim: u32, got: u32) -> StampedEvent {
        StampedEvent {
            t_ns,
            event: TraceEvent::StealAttempt { victim, got, dur_ns: 10 },
        }
    }

    fn exec(t_ns: u64, creator: u32) -> StampedEvent {
        StampedEvent {
            t_ns,
            event: TraceEvent::TaskExecBegin { callback: 0, creator },
        }
    }

    #[test]
    fn edges_aggregate_attempts_and_tasks() {
        let t = trace_of(vec![
            vec![],
            vec![steal(10, 0, 2), steal(30, 0, 0), steal(50, 0, 3)],
        ]);
        let p = analyze(&t);
        assert_eq!(p.edges.len(), 1);
        let e = p.edges[0];
        assert_eq!((e.thief, e.victim), (1, 0));
        assert_eq!(e.attempts, 3);
        assert_eq!(e.successes, 2);
        assert_eq!(e.tasks, 5);
        assert_eq!(e.dur_ns, 30);
        assert_eq!(p.total_successes(), 2);
    }

    #[test]
    fn ring_distance_wraps() {
        // 4 ranks: 3 steals from 0 → linear distance 3, ring distance 1.
        let t = trace_of(vec![vec![], vec![], vec![], vec![steal(10, 0, 1)]]);
        let p = analyze(&t);
        assert_eq!(p.distance_hist, vec![0, 1, 0]);
    }

    #[test]
    fn chain_depth_follows_victims() {
        // r1 steals from r0 (depth 1), then r2 steals from r1 (depth 2),
        // then r0 steals from r2 (depth 3).
        let t = trace_of(vec![
            vec![steal(50, 2, 1)],
            vec![steal(10, 0, 1)],
            vec![steal(30, 1, 1)],
        ]);
        let p = analyze(&t);
        assert_eq!(p.chain_depth_max, 3);
        assert!((p.chain_depth_mean - 2.0).abs() < 1e-12);
    }

    #[test]
    fn migration_counts_non_creator_execs() {
        let t = trace_of(vec![vec![exec(5, 0), exec(10, 1)], vec![exec(7, 1)]]);
        let p = analyze(&t);
        assert_eq!(p.total_execs, 3);
        assert_eq!(p.migrated_execs, 1);
        assert!((p.migration_ratio() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn locality_summary_from_distance_hist() {
        // 8 ranks; thief 1 steals from 0 (d=1) twice, thief 4 steals from
        // 0 (d=4) once → mean (1+1+4)/3 = 2.0, near share (radius 2) 2/3.
        let t = trace_of(vec![
            vec![],
            vec![steal(10, 0, 1), steal(30, 0, 1)],
            vec![],
            vec![],
            vec![steal(20, 0, 1)],
            vec![],
            vec![],
            vec![],
        ]);
        let p = analyze(&t);
        assert_eq!(p.distance_hist, vec![0, 2, 0, 0, 1]);
        assert!((p.mean_ring_distance() - 2.0).abs() < 1e-12);
        assert!((p.near_share(NEAR_RADIUS) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(p.near_share(4), 1.0);
    }

    #[test]
    fn empty_trace_is_benign() {
        let p = analyze(&trace_of(vec![vec![], vec![]]));
        assert_eq!(p.total_successes(), 0);
        assert_eq!(p.chain_depth_max, 0);
        assert_eq!(p.chain_depth_mean, 0.0);
        assert_eq!(p.migration_ratio(), 0.0);
        assert_eq!(p.mean_ring_distance(), 0.0);
        assert_eq!(p.near_share(NEAR_RADIUS), 0.0);
    }
}
