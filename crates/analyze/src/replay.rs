//! Trace → replay-input lowering: convert a recorded JSONL/in-memory
//! [`Trace`] into a [`scioto_sim::ReplayProgram`] the sim's replay engine
//! can execute without the original workload closure.
//!
//! The lowering derives one [`ReplayOp`] per recorded event and extracts
//! the cross-rank sync structure the tracing layer already records:
//!
//! * `MsgSend{dst, seq}` → `MsgRecv{seq}` on rank `dst` (per-destination
//!   sequence numbers, the same pairing the race checker replays);
//! * `LockRel{…, seq−1}` → `LockAcq{…, seq}` for `seq > 1` (ownership
//!   generations; generation 1 is the initial acquisition);
//! * the k-th `BarrierWait` on every rank forms barrier episode k
//!   (`BarrierWait` is emitted on every rank for every episode);
//! * `Unblock{target}` → the target's first event after its `Block`
//!   (park/wake pairs from mailboxes and termination detection).
//!
//! Edges are added only when the producer's recorded stamp strictly
//! precedes the consumer's. Ties carry no ordering information, and for
//! identity replay edges are redundant anyway — the per-rank completion
//! deltas alone reproduce every recorded stamp; edges exist so what-if
//! re-pricing (see [`crate::whatif`]) keeps recorded causality when
//! durations change.
//!
//! Validation is graceful by construction: a trace that cannot be
//! replayed — ring overflow, missing final clocks (older schema),
//! non-monotone stamps, unmatched sync edges, inconsistent barrier
//! episodes — produces a [`ReplayError`] naming the first offending rank
//! and event, never a panic.

use std::collections::{BTreeMap, HashSet};

use scioto_sim::{event_dur, ReplayOp, ReplayProgram, ReplaySync, Trace, TraceEvent};

/// Why a trace cannot be lowered for replay. `Display` renders the first
/// offending rank/event when one is known.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReplayError {
    /// Rank carrying the offending event, when the fault is rank-local.
    pub rank: Option<usize>,
    /// Index of the offending event within the rank's stream.
    pub index: Option<usize>,
    /// Event name and stamp, pre-rendered for the message.
    pub event: Option<String>,
    /// What is wrong.
    pub detail: String,
}

impl ReplayError {
    fn global(detail: String) -> Self {
        ReplayError {
            rank: None,
            index: None,
            event: None,
            detail,
        }
    }

    fn at(trace: &Trace, rank: usize, index: usize, detail: String) -> Self {
        let event = trace.events[rank].get(index).map(|e| {
            format!("{} at t={}", e.event.name(), e.t_ns)
        });
        ReplayError {
            rank: Some(rank),
            index: Some(index),
            event,
            detail,
        }
    }
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace is not replayable: ")?;
        if let (Some(r), Some(i)) = (self.rank, self.index) {
            write!(f, "rank {r}, event {i}")?;
            if let Some(ev) = &self.event {
                write!(f, " ({ev})")?;
            }
            write!(f, ": ")?;
        }
        write!(f, "{}", self.detail)
    }
}

impl std::error::Error for ReplayError {}

/// Location of a producing event: (rank, event index, recorded stamp).
type Producer = (u32, u32, u64);

/// Lower `trace` into a replay program, validating replayability.
///
/// Identity guarantee: `run_replay(&lower(t)?)` reproduces `t` byte for
/// byte (events, final clocks, metric registries) — the property the
/// verify gate and the `--replay-check` bench flag enforce.
pub fn lower(trace: &Trace) -> Result<ReplayProgram, ReplayError> {
    let n = trace.nranks();
    if n == 0 {
        return Err(ReplayError::global("trace covers zero ranks".into()));
    }
    if trace.wall_clock {
        return Err(ReplayError::global(
            "wall-clock (concurrent-mode) trace; replay requires a virtual-time recording \
             — re-record under --mode sim (wall timestamps are not reproducible, so there \
             is no byte-exact schedule to replay)"
                .into(),
        ));
    }
    for (r, &d) in trace.dropped.iter().enumerate() {
        if d > 0 {
            return Err(ReplayError::global(format!(
                "rank {r}: ring overflow dropped {d} event(s); re-record with a larger \
                 --trace-ring"
            )));
        }
    }
    if trace.final_clock_ns.len() != n {
        return Err(ReplayError::global(format!(
            "trace carries {} final clock(s) for {n} rank(s) (recorded with an older \
             schema?); per-rank final clocks are required for replay",
            trace.final_clock_ns.len()
        )));
    }

    // Pass A: per-rank stamp monotonicity + producer index maps.
    let mut rel_map: BTreeMap<(u32, u32, u32, u64), Producer> = BTreeMap::new();
    let mut send_map: BTreeMap<(u32, u64), Producer> = BTreeMap::new();
    // Per target rank: Unblock events aimed at it, in stamp order.
    let mut unblocks: Vec<Vec<Producer>> = vec![Vec::new(); n];
    // Per rank: (event index, epoch) of each BarrierWait, in episode order.
    let mut barriers: Vec<Vec<(usize, u64)>> = vec![Vec::new(); n];

    for (r, events) in trace.events.iter().enumerate() {
        let mut prev_t = 0u64;
        for (i, e) in events.iter().enumerate() {
            if e.t_ns < prev_t {
                return Err(ReplayError::at(
                    trace,
                    r,
                    i,
                    format!("stamp precedes the previous event at t={prev_t} (out-of-order)"),
                ));
            }
            prev_t = e.t_ns;
            match e.event {
                TraceEvent::LockRel {
                    target,
                    set,
                    idx,
                    seq,
                } => {
                    rel_map.insert((target, set, idx, seq), (r as u32, i as u32, e.t_ns));
                }
                TraceEvent::MsgSend { dst, seq, .. } => {
                    if send_map
                        .insert((dst, seq), (r as u32, i as u32, e.t_ns))
                        .is_some()
                    {
                        return Err(ReplayError::at(
                            trace,
                            r,
                            i,
                            format!("duplicate MsgSend seq {seq} to rank {dst}"),
                        ));
                    }
                }
                TraceEvent::Unblock { target } => {
                    if (target as usize) < n {
                        unblocks[target as usize].push((r as u32, i as u32, e.t_ns));
                    }
                }
                TraceEvent::BarrierWait { epoch, .. } => {
                    barriers[r].push((i, epoch));
                }
                _ => {}
            }
        }
        let last_t = events.last().map_or(0, |e| e.t_ns);
        if trace.final_clock_ns[r] < last_t {
            return Err(ReplayError::at(
                trace,
                r,
                events.len() - 1,
                format!(
                    "final clock {} precedes the rank's last event",
                    trace.final_clock_ns[r]
                ),
            ));
        }
    }

    // Barrier episodes must line up across ranks: same count, same epoch
    // per episode.
    let episodes = barriers[0].len();
    for (r, b) in barriers.iter().enumerate() {
        if b.len() != episodes {
            return Err(ReplayError::global(format!(
                "barrier episode count differs across ranks: rank 0 recorded {episodes}, \
                 rank {r} recorded {} (truncated trace?)",
                b.len()
            )));
        }
    }
    for k in 0..episodes {
        let epoch0 = barriers[0][k].1;
        for (r, b) in barriers.iter().enumerate() {
            if b[k].1 != epoch0 {
                return Err(ReplayError::at(
                    trace,
                    r,
                    b[k].0,
                    format!(
                        "barrier episode {k} has epoch {} on rank {r} but epoch {epoch0} on \
                         rank 0 (interleaved barrier streams?)",
                        b[k].1
                    ),
                ));
            }
        }
    }

    // `unblocks` was filled rank-major; blocks consume wakes in stamp
    // order, so sort each target's list by (stamp, rank, index).
    for list in &mut unblocks {
        list.sort_by_key(|&(r, i, t)| (t, r, i));
    }

    // Pass B: build per-rank ops + collect the watch set.
    let mut ops: Vec<Vec<ReplayOp>> = Vec::with_capacity(n);
    let mut watch: HashSet<(u32, u32)> = HashSet::new();
    for (r, events) in trace.events.iter().enumerate() {
        let mut rank_ops = Vec::with_capacity(events.len());
        let mut prev_t = 0u64;
        let mut episode = 0u32;
        let mut unblock_ptr = 0usize;
        // A pending wake edge: the producer of the Unblock matched to the
        // most recent Block, to be attached to the next event.
        let mut pending_wake: Option<Producer> = None;
        for (i, e) in events.iter().enumerate() {
            let dur = event_dur(&e.event);
            let mut sync = ReplaySync::None;
            match e.event {
                TraceEvent::BarrierWait { .. } => {
                    let arrival = e.t_ns - dur;
                    if arrival < prev_t {
                        return Err(ReplayError::at(
                            trace,
                            r,
                            i,
                            format!(
                                "barrier wait span starts at t={arrival}, before the previous \
                                 event at t={prev_t} (missing or corrupt duration span)"
                            ),
                        ));
                    }
                    sync = ReplaySync::Barrier {
                        episode,
                        arr_delta_ns: arrival - prev_t,
                        rec_arrival_ns: arrival,
                    };
                    episode += 1;
                    pending_wake = None;
                }
                TraceEvent::MsgRecv { src, seq } => {
                    match send_map.get(&(r as u32, seq)) {
                        None => {
                            return Err(ReplayError::at(
                                trace,
                                r,
                                i,
                                format!(
                                    "MsgRecv seq {seq} from rank {src} has no matching MsgSend \
                                     (missing sync-edge data?)"
                                ),
                            ));
                        }
                        Some(&(pr, pi, pt)) => {
                            if pt > e.t_ns {
                                return Err(ReplayError::at(
                                    trace,
                                    r,
                                    i,
                                    format!(
                                        "MsgRecv seq {seq} at t={} precedes its MsgSend at \
                                         t={pt} (causal inversion)",
                                        e.t_ns
                                    ),
                                ));
                            }
                            if pt < e.t_ns {
                                sync = ReplaySync::Edge {
                                    pred_rank: pr,
                                    pred_idx: pi,
                                    lag_ns: e.t_ns - pt,
                                };
                                watch.insert((pr, pi));
                            }
                        }
                    }
                    pending_wake = None;
                }
                TraceEvent::LockAcq {
                    target,
                    set,
                    idx,
                    seq,
                } if seq > 1 => {
                    match rel_map.get(&(target, set, idx, seq - 1)) {
                        None => {
                            return Err(ReplayError::at(
                                trace,
                                r,
                                i,
                                format!(
                                    "lock acquire #{seq} (target {target}, set {set}, idx \
                                     {idx}) has no matching release #{} (missing sync-edge \
                                     data?)",
                                    seq - 1
                                ),
                            ));
                        }
                        Some(&(pr, pi, pt)) => {
                            if pt > e.t_ns {
                                return Err(ReplayError::at(
                                    trace,
                                    r,
                                    i,
                                    format!(
                                        "lock acquire #{seq} at t={} precedes release #{} at \
                                         t={pt} (causal inversion)",
                                        e.t_ns,
                                        seq - 1
                                    ),
                                ));
                            }
                            if pt < e.t_ns && pr as usize != r {
                                sync = ReplaySync::Edge {
                                    pred_rank: pr,
                                    pred_idx: pi,
                                    lag_ns: e.t_ns - pt,
                                };
                                watch.insert((pr, pi));
                            }
                        }
                    }
                    pending_wake = None;
                }
                TraceEvent::Block => {
                    // Match the earliest unconsumed wake aimed at this rank
                    // stamped at or after the park; the *next* event gets
                    // the edge (the park itself is the recorded sleep
                    // start).
                    while unblock_ptr < unblocks[r].len() && unblocks[r][unblock_ptr].2 < e.t_ns {
                        unblock_ptr += 1;
                    }
                    pending_wake = if unblock_ptr < unblocks[r].len() {
                        let p = unblocks[r][unblock_ptr];
                        unblock_ptr += 1;
                        Some(p)
                    } else {
                        None
                    };
                }
                _ => {
                    if let Some((pr, pi, pt)) = pending_wake.take() {
                        if pt < e.t_ns && pr as usize != r {
                            sync = ReplaySync::Edge {
                                pred_rank: pr,
                                pred_idx: pi,
                                lag_ns: e.t_ns - pt,
                            };
                            watch.insert((pr, pi));
                        }
                    }
                }
            }
            rank_ops.push(ReplayOp {
                ev: e.event,
                delta_ns: e.t_ns - prev_t,
                dur_ns: dur,
                rec_t_ns: e.t_ns,
                sync,
                watched: false,
            });
            prev_t = e.t_ns;
        }
        ops.push(rank_ops);
    }

    // Pass C: mark watched producers and compute trailing gaps.
    for &(r, i) in &watch {
        ops[r as usize][i as usize].watched = true;
    }
    let final_gap_ns: Vec<u64> = (0..n)
        .map(|r| {
            let last = trace.events[r].last().map_or(0, |e| e.t_ns);
            trace.final_clock_ns[r] - last
        })
        .collect();

    Ok(ReplayProgram {
        nranks: n,
        ops,
        final_gap_ns,
        rec_final_clock_ns: trace.final_clock_ns.clone(),
        episodes,
        hists: trace.hists.clone(),
        gauges: trace.gauges.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use scioto_sim::{run_replay, StampedEvent, TraceConfig, TraceSink};

    fn trace_of(per_rank: Vec<Vec<StampedEvent>>, final_clocks: Vec<u64>) -> Trace {
        let sink = TraceSink::new(&TraceConfig::enabled(), per_rank.len());
        for (rank, events) in per_rank.iter().enumerate() {
            for e in events {
                sink.emit(rank, e.t_ns, || e.event);
            }
        }
        let mut t = sink.finish().unwrap();
        t.final_clock_ns = final_clocks;
        t
    }

    fn ev(t_ns: u64, event: TraceEvent) -> StampedEvent {
        StampedEvent { t_ns, event }
    }

    /// A consistent two-rank trace exercising every sync kind: a message,
    /// a lock hand-off, a barrier, and a park/wake pair.
    fn rich_trace() -> Trace {
        let r0 = vec![
            ev(50, TraceEvent::LockAcq { target: 1, set: 0, idx: 0, seq: 1 }),
            ev(80, TraceEvent::LockRel { target: 1, set: 0, idx: 0, seq: 1 }),
            ev(100, TraceEvent::MsgSend { dst: 1, bytes: 8, seq: 1 }),
            ev(150, TraceEvent::Unblock { target: 1 }),
            ev(200, TraceEvent::BarrierWait { dur_ns: 40, epoch: 1 }),
        ];
        let r1 = vec![
            ev(90, TraceEvent::Block),
            ev(130, TraceEvent::MsgRecv { src: 0, seq: 1 }),
            ev(
                170,
                TraceEvent::LockAcq { target: 1, set: 0, idx: 0, seq: 2 },
            ),
            ev(
                175,
                TraceEvent::LockRel { target: 1, set: 0, idx: 0, seq: 2 },
            ),
            ev(200, TraceEvent::BarrierWait { dur_ns: 10, epoch: 1 }),
        ];
        trace_of(vec![r0, r1], vec![210, 205])
    }

    #[test]
    fn identity_replay_is_byte_exact() {
        let t = rich_trace();
        let prog = lower(&t).expect("rich trace lowers");
        let replayed = run_replay(&prog);
        assert_eq!(t.to_jsonl(), replayed.to_jsonl());
        assert_eq!(
            crate::analyze(&t).to_json(),
            crate::analyze(&replayed).to_json()
        );
    }

    #[test]
    fn sync_edges_are_derived() {
        let prog = lower(&rich_trace()).unwrap();
        // MsgRecv edge from rank 0's send.
        assert_eq!(
            prog.ops[1][1].sync,
            ReplaySync::Edge { pred_rank: 0, pred_idx: 2, lag_ns: 30 }
        );
        // Lock generation 2 hands off from rank 0's release of gen 1.
        assert_eq!(
            prog.ops[1][2].sync,
            ReplaySync::Edge { pred_rank: 0, pred_idx: 1, lag_ns: 90 }
        );
        // Producers are watched; the wake edge landed on the event after
        // the Block — here the MsgRecv already carries a message edge, so
        // the Block's wake matched the same event index but message
        // pairing wins (Block matching only applies to plain successors).
        assert!(prog.ops[0][2].watched);
        assert!(prog.ops[0][1].watched);
        assert_eq!(prog.episodes, 1);
    }

    #[test]
    fn wall_clock_traces_are_rejected_descriptively() {
        let mut t = rich_trace();
        t.wall_clock = true;
        let e = lower(&t).unwrap_err();
        assert!(e.to_string().contains("wall-clock"), "{e}");
        assert!(e.to_string().contains("virtual-time recording"), "{e}");
        // The message must lead with the standard prefix so callers can
        // classify without a second code path.
        assert!(e.to_string().starts_with("trace is not replayable"), "{e}");
    }

    #[test]
    fn dropped_rings_are_rejected() {
        let mut t = rich_trace();
        t.dropped[1] = 5;
        let e = lower(&t).unwrap_err();
        assert!(e.to_string().contains("ring overflow dropped 5"), "{e}");
    }

    #[test]
    fn missing_final_clocks_are_rejected() {
        let mut t = rich_trace();
        t.final_clock_ns.clear();
        let e = lower(&t).unwrap_err();
        assert!(e.to_string().contains("older schema"), "{e}");
    }

    #[test]
    fn out_of_order_stamps_name_the_event() {
        let t = trace_of(
            vec![vec![
                ev(100, TraceEvent::QueueDepth { local: 1, shared: 0 }),
                ev(50, TraceEvent::QueueDepth { local: 2, shared: 0 }),
            ]],
            vec![100],
        );
        let e = lower(&t).unwrap_err();
        assert_eq!((e.rank, e.index), (Some(0), Some(1)));
        assert!(e.to_string().contains("rank 0, event 1"), "{e}");
        assert!(e.to_string().contains("out-of-order"), "{e}");
    }

    #[test]
    fn unmatched_lock_generation_is_rejected() {
        let t = trace_of(
            vec![vec![ev(
                10,
                TraceEvent::LockAcq { target: 0, set: 0, idx: 0, seq: 3 },
            )]],
            vec![10],
        );
        let e = lower(&t).unwrap_err();
        assert!(e.to_string().contains("no matching release #2"), "{e}");
        assert!(e.to_string().contains("rank 0, event 0"), "{e}");
    }

    #[test]
    fn unmatched_msg_recv_is_rejected() {
        let t = trace_of(
            vec![vec![ev(10, TraceEvent::MsgRecv { src: 3, seq: 7 })]],
            vec![10],
        );
        let e = lower(&t).unwrap_err();
        assert!(e.to_string().contains("no matching MsgSend"), "{e}");
    }

    #[test]
    fn barrier_count_mismatch_is_rejected() {
        let t = trace_of(
            vec![
                vec![ev(10, TraceEvent::BarrierWait { dur_ns: 5, epoch: 1 })],
                vec![],
            ],
            vec![10, 10],
        );
        let e = lower(&t).unwrap_err();
        assert!(e.to_string().contains("episode count differs"), "{e}");
    }

    #[test]
    fn overlapping_barrier_span_is_rejected() {
        let t = trace_of(
            vec![vec![
                ev(100, TraceEvent::QueueDepth { local: 1, shared: 0 }),
                ev(110, TraceEvent::BarrierWait { dur_ns: 50, epoch: 1 }),
            ]],
            vec![110],
        );
        let e = lower(&t).unwrap_err();
        assert!(e.to_string().contains("before the previous event"), "{e}");
    }

    #[test]
    fn final_clock_before_last_event_is_rejected() {
        let t = trace_of(
            vec![vec![ev(100, TraceEvent::QueueDepth { local: 1, shared: 0 })]],
            vec![50],
        );
        let e = lower(&t).unwrap_err();
        assert!(e.to_string().contains("final clock 50 precedes"), "{e}");
    }

    #[test]
    fn truncated_jsonl_feeding_replay_errors_descriptively() {
        let body = rich_trace().to_jsonl();
        // Chop mid-line: the parser, not the lowering, must reject it with
        // a line-numbered message.
        let cut = &body[..body.len() - 15];
        let err = crate::jsonl::parse(cut).unwrap_err();
        assert!(err.contains("line"), "{err}");
    }

    #[test]
    fn dropped_ring_meta_in_jsonl_is_rejected_by_lowering() {
        let mut t = rich_trace();
        t.dropped[0] = 2;
        let parsed = crate::jsonl::parse(&t.to_jsonl()).expect("parses");
        assert_eq!(parsed.dropped, vec![2, 0]);
        let e = lower(&parsed).unwrap_err();
        assert!(e.to_string().contains("ring overflow"), "{e}");
    }
}
