//! The assembled analysis report: per-rank blame, provenance, critical
//! path, warnings — renderable as human text or versioned JSON
//! (`scioto-analysis-v1`, hand-rolled, validated by
//! `scioto_sim::validate_json` in tests and tools).

use std::fmt::Write as _;

use scioto_sim::Trace;

use crate::blame::{self, Blame};
use crate::critpath::{self, CritPath};
use crate::provenance::{self, Provenance};
use crate::timeline::{self, Category, CATEGORIES};

/// Schema tag written into every analysis JSON document.
pub const ANALYSIS_SCHEMA: &str = "scioto-analysis-v1";

/// Name of the runtime's sticky startup gauge (`scioto::trace::GAUGE_STARTUP`
/// — this crate only depends on scioto-sim, so the name is mirrored here).
/// Each rank samples it once, at the moment `TaskCollection::process`
/// finishes its entry barrier: the value is the rank's clock when the
/// machine first became collectively ready to execute tasks.
pub const STARTUP_GAUGE: &str = "startup_ns";

/// Complete analysis of one trace.
#[derive(Clone, Debug)]
pub struct AnalysisReport {
    /// Number of ranks analyzed.
    pub ranks: usize,
    /// Max per-rank elapsed time (virtual, or wall when `wall_clock`).
    pub makespan_ns: u64,
    /// Per-rank elapsed time: virtual ns, or — for wall-clock
    /// (concurrent-mode) traces — each thread's measured wall span.
    pub elapsed_ns: Vec<u64>,
    /// True when the trace carries real wall-clock stamps (concurrent
    /// mode). The blame invariant (rows sum to elapsed) holds in both
    /// clock domains; wall reports are just not reproducible run-to-run.
    pub wall_clock: bool,
    /// Per-rank startup completion stamp (ns), read from the runtime's
    /// sticky [`STARTUP_GAUGE`]. Zero for ranks that never reached
    /// `TaskCollection::process`; all-zero vectors are omitted from both
    /// renderings so traces without the gauge export byte-identically to
    /// earlier schema versions.
    pub startup_ns: Vec<u64>,
    /// Per-rank blame decomposition (each sums to its elapsed time).
    pub blame: Vec<Blame>,
    /// Steal-provenance profile.
    pub provenance: Provenance,
    /// Critical-path walk.
    pub critical_path: CritPath,
    /// Per-rank ring-overflow drop counts, copied from the trace.
    pub dropped: Vec<u64>,
    /// Human-readable data-quality warnings (ring overflow, truncated
    /// walks). Empty for clean traces.
    pub warnings: Vec<String>,
}

impl AnalysisReport {
    /// Analyze `trace` (in-memory or re-parsed from JSONL).
    pub fn from_trace(trace: &Trace) -> AnalysisReport {
        let ranks = trace.nranks();
        let elapsed_ns: Vec<u64> = (0..ranks).map(|r| trace.elapsed_ns(r)).collect();
        let blame: Vec<Blame> = (0..ranks)
            .map(|r| blame::decompose(&timeline::spans_for_rank(trace.events_for(r)), elapsed_ns[r]))
            .collect();
        let critical_path = critpath::analyze(trace);
        let mut warnings = Vec::new();
        let total_dropped: u64 = trace.dropped.iter().sum();
        if total_dropped > 0 {
            warnings.push(format!(
                "ring overflow dropped {total_dropped} event(s) on {} rank(s); \
                 blame and provenance under-count truncated timelines",
                trace.dropped.iter().filter(|&&d| d > 0).count()
            ));
        }
        if critical_path.truncated {
            warnings.push("critical-path walk hit its iteration backstop; path is partial".into());
        }
        for (r, b) in blame.iter().enumerate() {
            if b.total() != elapsed_ns[r] {
                warnings.push(format!(
                    "blame invariant violated on rank {r}: {} != elapsed {}",
                    b.total(),
                    elapsed_ns[r]
                ));
            }
        }
        let startup_ns: Vec<u64> = (0..ranks)
            .map(|r| trace.gauges.get(r).and_then(|g| g.get(STARTUP_GAUGE)).map_or(0, |g| g.last))
            .collect();
        AnalysisReport {
            ranks,
            makespan_ns: elapsed_ns.iter().copied().max().unwrap_or(0),
            elapsed_ns,
            wall_clock: trace.wall_clock,
            startup_ns,
            blame,
            provenance: provenance::analyze(trace),
            critical_path,
            dropped: trace.dropped.clone(),
            warnings,
        }
    }

    /// Blame summed over all ranks (totals `sum(elapsed_ns)`).
    pub fn total_blame(&self) -> Blame {
        let mut total = Blame::default();
        for b in &self.blame {
            total.merge(b);
        }
        total
    }

    /// Versioned machine-readable JSON document. Deterministic: integer
    /// fields are exact and float fields use fixed six-decimal
    /// formatting, so same-seed runs produce byte-identical documents.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        let _ = write!(
            out,
            "{{\n\"schema\":\"{ANALYSIS_SCHEMA}\",\n\"ranks\":{},\n\"makespan_ns\":{},\n",
            self.ranks, self.makespan_ns
        );
        // Emitted only for wall-clock traces so virtual-time documents
        // stay byte-identical to every pinned baseline.
        if self.wall_clock {
            out.push_str("\"clock\":\"wall\",\n");
        }
        // Emitted only when at least one rank recorded the startup gauge,
        // same compatibility rule as the wall-clock marker above.
        if self.startup_ns.iter().any(|&v| v > 0) {
            out.push_str("\"startup_ns\":[");
            push_u64s(&mut out, &self.startup_ns);
            out.push_str("],\n");
        }
        out.push_str("\"dropped_events\":[");
        push_u64s(&mut out, &self.dropped);
        out.push_str("],\n\"blame\":{\"per_rank\":[\n");
        for (r, b) in self.blame.iter().enumerate() {
            let _ = write!(out, "{}{{\"rank\":{r},\"elapsed_ns\":{}", if r == 0 { "" } else { ",\n" }, self.elapsed_ns[r]);
            push_blame(&mut out, b);
            out.push('}');
        }
        out.push_str("\n],\"total\":{");
        let total = self.total_blame();
        let _ = write!(out, "\"elapsed_ns\":{}", total.total());
        push_blame(&mut out, &total);
        out.push_str("}},\n\"provenance\":{\"edges\":[\n");
        for (i, e) in self.provenance.edges.iter().enumerate() {
            let _ = write!(
                out,
                "{}{{\"thief\":{},\"victim\":{},\"attempts\":{},\"successes\":{},\"tasks\":{},\"dur_ns\":{}}}",
                if i == 0 { "" } else { ",\n" },
                e.thief, e.victim, e.attempts, e.successes, e.tasks, e.dur_ns
            );
        }
        out.push_str("\n],\"distance_hist\":[");
        push_u64s(&mut out, &self.provenance.distance_hist);
        let _ = write!(
            out,
            "],\"chain_depth_max\":{},\"chain_depth_mean\":{:.6},\"migrated_execs\":{},\
             \"total_execs\":{},\"migration_ratio\":{:.6},\
             \"mean_ring_distance\":{:.6},\"near_steal_share\":{:.6}}},\n",
            self.provenance.chain_depth_max,
            self.provenance.chain_depth_mean,
            self.provenance.migrated_execs,
            self.provenance.total_execs,
            self.provenance.migration_ratio(),
            self.provenance.mean_ring_distance(),
            self.provenance.near_share(provenance::NEAR_RADIUS)
        );
        let cp = &self.critical_path;
        let _ = write!(
            out,
            "\"critical_path\":{{\"length_ns\":{},\"total_work_ns\":{},\"max_task_ns\":{},\
             \"parallelism\":{:.6},\"num_segments\":{},\"truncated\":{},",
            cp.length_ns,
            cp.total_work_ns,
            cp.max_task_ns,
            cp.parallelism(),
            cp.segments.len(),
            cp.truncated
        );
        out.push_str("\"blame\":{");
        let mut first = true;
        for cat in CATEGORIES {
            let _ = write!(out, "{}\"{}\":{}", if first { "" } else { "," }, cat.name(), cp.blame.get(cat));
            first = false;
        }
        out.push_str("},\"top_segments\":[\n");
        for (i, s) in cp.top_segments(10).iter().enumerate() {
            let _ = write!(
                out,
                "{}{{\"rank\":{},\"cat\":\"{}\",\"start_ns\":{},\"end_ns\":{},\"len_ns\":{}}}",
                if i == 0 { "" } else { ",\n" },
                s.rank,
                s.cat.name(),
                s.start,
                s.end,
                s.len()
            );
        }
        out.push_str("\n]},\n\"warnings\":[");
        for (i, w) in self.warnings.iter().enumerate() {
            let _ = write!(out, "{}\"{}\"", if i == 0 { "" } else { "," }, escape(w));
        }
        out.push_str("]\n}\n");
        out
    }

    /// Human-readable rendering: blame table, steal profile, critical
    /// path composition.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "== trace analysis: {} ranks, makespan {} ns{} ==",
            self.ranks,
            self.makespan_ns,
            if self.wall_clock { " (wall clock)" } else { "" }
        );
        for w in &self.warnings {
            let _ = writeln!(out, "WARNING: {w}");
        }
        if self.startup_ns.iter().any(|&v| v > 0) {
            let max = self.startup_ns.iter().copied().max().unwrap_or(0);
            let agg: u64 = self.startup_ns.iter().sum();
            let _ = writeln!(
                out,
                "startup: ready at {max} ns (slowest rank); {agg} rank-ns aggregate"
            );
        }
        let _ = writeln!(
            out,
            "\n-- blame decomposition ({} ns; rows sum to elapsed) --",
            if self.wall_clock { "wall" } else { "virtual" }
        );
        let _ = writeln!(
            out,
            "{:>5} {:>12} {:>12} {:>10} {:>10} {:>10} {:>12} {:>12}  {}",
            "rank", "exec", "steal", "lock", "td", "barrier", "idle", "elapsed", "idle%"
        );
        for r in 0..self.ranks {
            let b = &self.blame[r];
            let e = self.elapsed_ns[r];
            let idle_pct = if e == 0 { 0.0 } else { 100.0 * b.get(Category::Idle) as f64 / e as f64 };
            let _ = writeln!(
                out,
                "{:>5} {:>12} {:>12} {:>10} {:>10} {:>10} {:>12} {:>12}  {:.1}%",
                r,
                b.get(Category::Exec),
                b.get(Category::Steal),
                b.get(Category::Lock),
                b.get(Category::Td),
                b.get(Category::Barrier),
                b.get(Category::Idle),
                e,
                idle_pct
            );
        }
        let total = self.total_blame();
        let _ = writeln!(
            out,
            "{:>5} {:>12} {:>12} {:>10} {:>10} {:>10} {:>12} {:>12}",
            "all",
            total.get(Category::Exec),
            total.get(Category::Steal),
            total.get(Category::Lock),
            total.get(Category::Td),
            total.get(Category::Barrier),
            total.get(Category::Idle),
            total.total()
        );

        let p = &self.provenance;
        let _ = writeln!(out, "\n-- steal provenance --");
        let _ = writeln!(
            out,
            "edges={} successes={} tasks_moved={} chain_depth max={} mean={:.2} migrated {}/{} execs ({:.1}%)",
            p.edges.len(),
            p.total_successes(),
            p.edges.iter().map(|e| e.tasks).sum::<u64>(),
            p.chain_depth_max,
            p.chain_depth_mean,
            p.migrated_execs,
            p.total_execs,
            100.0 * p.migration_ratio()
        );
        let mut busiest: Vec<_> = p.edges.iter().collect();
        busiest.sort_by(|a, b| b.tasks.cmp(&a.tasks).then((a.thief, a.victim).cmp(&(b.thief, b.victim))));
        for e in busiest.iter().take(5) {
            let _ = writeln!(
                out,
                "  r{} <- r{}: {}/{} attempts ok, {} tasks, {} ns",
                e.thief, e.victim, e.successes, e.attempts, e.tasks, e.dur_ns
            );
        }
        if !p.distance_hist.is_empty() {
            let _ = write!(out, "steal ring distances:");
            for (d, c) in p.distance_hist.iter().enumerate() {
                if *c > 0 {
                    let _ = write!(out, " d{d}={c}");
                }
            }
            let _ = writeln!(out);
        }
        if p.total_successes() > 0 {
            let _ = writeln!(
                out,
                "locality: mean ring distance {:.2}, {:.1}% of steals within d<={}",
                p.mean_ring_distance(),
                100.0 * p.near_share(provenance::NEAR_RADIUS),
                provenance::NEAR_RADIUS
            );
        }

        let cp = &self.critical_path;
        let _ = writeln!(out, "\n-- critical path --");
        let _ = writeln!(
            out,
            "length={} ns  total_work(T1)={} ns  parallelism={:.2}  max_task={} ns  segments={}",
            cp.length_ns,
            cp.total_work_ns,
            cp.parallelism(),
            cp.max_task_ns,
            cp.segments.len()
        );
        let _ = write!(out, "path blame:");
        for cat in CATEGORIES {
            let v = cp.blame.get(cat);
            if v > 0 {
                let pct = if cp.length_ns == 0 { 0.0 } else { 100.0 * v as f64 / cp.length_ns as f64 };
                let _ = write!(out, " {}={v} ({pct:.1}%)", cat.name());
            }
        }
        let _ = writeln!(out);
        let _ = writeln!(out, "top segments:");
        for s in cp.top_segments(5) {
            let _ = writeln!(
                out,
                "  rank {:>3} {:<8} [{} .. {}] {} ns",
                s.rank,
                s.cat.name(),
                s.start,
                s.end,
                s.len()
            );
        }
        out
    }
}

fn push_u64s(out: &mut String, vs: &[u64]) {
    for (i, v) in vs.iter().enumerate() {
        let _ = write!(out, "{}{v}", if i == 0 { "" } else { "," });
    }
}

fn push_blame(out: &mut String, b: &Blame) {
    for cat in CATEGORIES {
        let _ = write!(out, ",\"{}\":{}", cat.name(), b.get(cat));
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use scioto_sim::{validate_json, TraceConfig, TraceEvent, TraceSink};

    fn sample_trace() -> Trace {
        let sink = TraceSink::new(&TraceConfig::enabled(), 2);
        let evs0 = [
            (0, TraceEvent::TaskExecBegin { callback: 0, creator: 0 }),
            (50, TraceEvent::TaskExecEnd { callback: 0 }),
        ];
        let evs1 = [
            (60, TraceEvent::StealAttempt { victim: 0, got: 1, dur_ns: 10 }),
            (60, TraceEvent::TaskExecBegin { callback: 0, creator: 0 }),
            (95, TraceEvent::TaskExecEnd { callback: 0 }),
            (100, TraceEvent::TdProgress { dur_ns: 5 }),
        ];
        for (t, e) in evs0 {
            sink.emit(0, t, || e);
        }
        for (t, e) in evs1 {
            sink.emit(1, t, || e);
        }
        let mut t = sink.finish().unwrap();
        t.final_clock_ns = vec![80, 100];
        t
    }

    #[test]
    fn report_holds_invariants_and_renders() {
        let report = AnalysisReport::from_trace(&sample_trace());
        assert_eq!(report.ranks, 2);
        assert_eq!(report.makespan_ns, 100);
        assert!(report.warnings.is_empty());
        for r in 0..2 {
            assert_eq!(report.blame[r].total(), report.elapsed_ns[r]);
        }
        assert_eq!(report.critical_path.length_ns, 100);
        assert!(report.critical_path.length_ns <= report.elapsed_ns.iter().sum());
        assert!(report.critical_path.length_ns >= report.critical_path.max_task_ns);
        assert_eq!(report.provenance.migrated_execs, 1);

        let text = report.to_text();
        assert!(text.contains("blame decomposition"));
        assert!(text.contains("critical path"));
        assert!(!text.contains("WARNING"));
    }

    #[test]
    fn json_is_valid_and_versioned() {
        let report = AnalysisReport::from_trace(&sample_trace());
        let json = report.to_json();
        validate_json(&json).expect("analysis JSON must parse");
        assert!(json.contains("\"schema\":\"scioto-analysis-v1\""));
        assert!(json.contains("\"blame\""));
        assert!(json.contains("\"critical_path\""));
        assert!(json.contains("\"provenance\""));
        assert!(json.contains("\"mean_ring_distance\":1.000000"));
        assert!(json.contains("\"near_steal_share\":1.000000"));
        assert!(json.contains("\"warnings\":[]"));
    }

    #[test]
    fn locality_summary_renders_in_text() {
        let report = AnalysisReport::from_trace(&sample_trace());
        let text = report.to_text();
        assert!(text.contains("locality: mean ring distance 1.00"));
        assert!(text.contains("100.0% of steals within d<=2"));
    }

    #[test]
    fn dropped_events_surface_as_warnings() {
        let sink = TraceSink::new(&TraceConfig::enabled().with_capacity(1), 1);
        for t in 0..4u64 {
            sink.emit(0, t, || TraceEvent::Block);
        }
        let mut trace = sink.finish().unwrap();
        trace.final_clock_ns = vec![4];
        let report = AnalysisReport::from_trace(&trace);
        assert_eq!(report.dropped, vec![3]);
        assert!(report.warnings.iter().any(|w| w.contains("ring overflow")));
        assert!(report.to_text().contains("WARNING: ring overflow"));
        let json = report.to_json();
        validate_json(&json).unwrap();
        assert!(json.contains("ring overflow"));
    }

    #[test]
    fn startup_gauge_surfaces_in_json_and_text_only_when_present() {
        // Without the gauge: no key, no text line (back-compat with every
        // pinned baseline that predates startup accounting).
        let plain = AnalysisReport::from_trace(&sample_trace());
        assert_eq!(plain.startup_ns, vec![0, 0]);
        assert!(!plain.to_json().contains("startup_ns"));
        assert!(!plain.to_text().contains("startup:"));

        // With it: per-rank stamps in the JSON array and a summary line.
        let sink = TraceSink::new(&TraceConfig::enabled(), 2);
        sink.emit(0, 50, || TraceEvent::TaskExecBegin { callback: 0, creator: 0 });
        sink.emit(0, 80, || TraceEvent::TaskExecEnd { callback: 0 });
        sink.gauge(0, STARTUP_GAUGE, 40);
        sink.gauge(1, STARTUP_GAUGE, 45);
        let mut t = sink.finish().unwrap();
        t.final_clock_ns = vec![80, 100];
        let report = AnalysisReport::from_trace(&t);
        assert_eq!(report.startup_ns, vec![40, 45]);
        let json = report.to_json();
        validate_json(&json).unwrap();
        assert!(json.contains("\"startup_ns\":[40,45]"));
        assert!(report.to_text().contains("startup: ready at 45 ns (slowest rank); 85 rank-ns aggregate"));
    }

    #[test]
    fn same_trace_renders_byte_identically() {
        let a = AnalysisReport::from_trace(&sample_trace()).to_json();
        let b = AnalysisReport::from_trace(&sample_trace()).to_json();
        assert_eq!(a, b);
    }

    #[test]
    fn wall_clock_trace_keeps_blame_exact_and_marks_outputs() {
        let mut t = sample_trace();
        t.wall_clock = true;
        let report = AnalysisReport::from_trace(&t);
        assert!(report.wall_clock);
        // The exactness invariant is clock-domain independent: every rank's
        // decomposition sums to its measured span, with no warnings.
        assert!(report.warnings.is_empty(), "{:?}", report.warnings);
        for r in 0..report.ranks {
            assert_eq!(report.blame[r].total(), report.elapsed_ns[r]);
        }
        let json = report.to_json();
        validate_json(&json).unwrap();
        assert!(json.contains("\"clock\":\"wall\""));
        let text = report.to_text();
        assert!(text.contains("(wall clock)"));
        assert!(text.contains("wall ns; rows sum to elapsed"));
        // Virtual-time documents carry no clock key at all.
        let vt = AnalysisReport::from_trace(&sample_trace());
        assert!(!vt.to_json().contains("\"clock\""));
        assert!(!vt.to_text().contains("wall"));
    }
}
