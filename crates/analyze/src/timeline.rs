//! Per-rank timeline reconstruction: turn a rank's event stream into a
//! list of categorized virtual-time spans.
//!
//! Span sources:
//! * `TaskExecBegin`/`TaskExecEnd` pairs → [`Category::Exec`] spans;
//! * `StealAttempt { dur_ns }` → [`Category::Steal`] spans ending at the
//!   event stamp (events are stamped at completion);
//! * `LockWait { dur_ns }` → [`Category::Lock`];
//! * `BarrierWait { dur_ns }` → [`Category::Barrier`];
//! * `TdProgress { dur_ns }` → [`Category::Td`].
//!
//! Spans on one rank nest like the call stack that emitted them (a lock
//! wait inside a steal sits inside the steal's span); the blame sweep in
//! [`crate::blame`] attributes each instant to the *innermost* covering
//! span. Anything not covered by a span is idle time.

use scioto_sim::{StampedEvent, TraceEvent};

/// Blame category of a span (or of uncovered time).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Category {
    /// Task callback execution.
    Exec,
    /// Steal attempts (successful or not): victim lock, index read,
    /// transfer, unlock.
    Steal,
    /// Mutex queue wait plus acquire round trip.
    Lock,
    /// Termination-detection polling.
    Td,
    /// Barrier arrival-to-release.
    Barrier,
    /// Time covered by no span.
    Idle,
}

/// All categories in reporting order.
pub const CATEGORIES: [Category; 6] = [
    Category::Exec,
    Category::Steal,
    Category::Lock,
    Category::Td,
    Category::Barrier,
    Category::Idle,
];

impl Category {
    /// Stable lowercase name used in reports and JSON.
    pub fn name(self) -> &'static str {
        match self {
            Category::Exec => "exec",
            Category::Steal => "steal",
            Category::Lock => "lock",
            Category::Td => "td",
            Category::Barrier => "barrier",
            Category::Idle => "idle",
        }
    }

    /// Index into [`CATEGORIES`]-ordered arrays.
    pub fn index(self) -> usize {
        self as usize
    }
}

/// One categorized virtual-time span on a single rank.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    /// Blame category.
    pub cat: Category,
    /// Span start, virtual ns.
    pub start: u64,
    /// Span end (exclusive), virtual ns; `end >= start`.
    pub end: u64,
}

impl Span {
    /// Span length in virtual ns.
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// True when the span covers no time.
    pub fn is_empty(&self) -> bool {
        self.end == self.start
    }
}

/// Extract the categorized spans of one rank's event stream, in event
/// order. Unmatched `TaskExecBegin`s (a truncated ring, or a trace cut
/// mid-task) are closed at the rank's last event stamp; unmatched
/// `TaskExecEnd`s are ignored. Duration-stamped spans whose length
/// exceeds their completion stamp are clipped at 0.
pub fn spans_for_rank(events: &[StampedEvent]) -> Vec<Span> {
    let last_t = events.last().map_or(0, |e| e.t_ns);
    let mut spans = Vec::new();
    let mut open_execs: Vec<u64> = Vec::new();
    for e in events {
        match e.event {
            TraceEvent::TaskExecBegin { .. } => open_execs.push(e.t_ns),
            TraceEvent::TaskExecEnd { .. } => {
                if let Some(start) = open_execs.pop() {
                    spans.push(Span {
                        cat: Category::Exec,
                        start,
                        end: e.t_ns.max(start),
                    });
                }
            }
            TraceEvent::StealAttempt { dur_ns, .. } => spans.push(completed(e, dur_ns, Category::Steal)),
            TraceEvent::LockWait { dur_ns, .. } => spans.push(completed(e, dur_ns, Category::Lock)),
            TraceEvent::BarrierWait { dur_ns, .. } => spans.push(completed(e, dur_ns, Category::Barrier)),
            TraceEvent::TdProgress { dur_ns } => spans.push(completed(e, dur_ns, Category::Td)),
            _ => {}
        }
    }
    for start in open_execs {
        spans.push(Span {
            cat: Category::Exec,
            start,
            end: last_t.max(start),
        });
    }
    spans
}

fn completed(e: &StampedEvent, dur_ns: u64, cat: Category) -> Span {
    Span {
        cat,
        start: e.t_ns.saturating_sub(dur_ns),
        end: e.t_ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t_ns: u64, event: TraceEvent) -> StampedEvent {
        StampedEvent { t_ns, event }
    }

    #[test]
    fn spans_cover_all_duration_sources() {
        let events = vec![
            ev(10, TraceEvent::TaskExecBegin { callback: 0, creator: 0 }),
            ev(40, TraceEvent::TaskExecEnd { callback: 0 }),
            ev(70, TraceEvent::StealAttempt { victim: 1, got: 0, dur_ns: 20 }),
            ev(90, TraceEvent::LockWait { target: 1, dur_ns: 5 }),
            ev(100, TraceEvent::BarrierWait { dur_ns: 3, epoch: 0 }),
            ev(120, TraceEvent::TdProgress { dur_ns: 8 }),
            ev(120, TraceEvent::Block),
        ];
        let spans = spans_for_rank(&events);
        assert_eq!(
            spans,
            vec![
                Span { cat: Category::Exec, start: 10, end: 40 },
                Span { cat: Category::Steal, start: 50, end: 70 },
                Span { cat: Category::Lock, start: 85, end: 90 },
                Span { cat: Category::Barrier, start: 97, end: 100 },
                Span { cat: Category::Td, start: 112, end: 120 },
            ]
        );
    }

    #[test]
    fn unmatched_begin_closes_at_last_event() {
        let events = vec![
            ev(10, TraceEvent::TaskExecBegin { callback: 0, creator: 0 }),
            ev(30, TraceEvent::QueueDepth { local: 1, shared: 0 }),
        ];
        let spans = spans_for_rank(&events);
        assert_eq!(spans, vec![Span { cat: Category::Exec, start: 10, end: 30 }]);
    }

    #[test]
    fn unmatched_end_is_ignored_and_oversized_dur_clips_at_zero() {
        let events = vec![
            ev(5, TraceEvent::TaskExecEnd { callback: 0 }),
            ev(7, TraceEvent::TdProgress { dur_ns: 100 }),
        ];
        let spans = spans_for_rank(&events);
        assert_eq!(spans, vec![Span { cat: Category::Td, start: 0, end: 7 }]);
    }

    #[test]
    fn nested_execs_pair_innermost_first() {
        let events = vec![
            ev(0, TraceEvent::TaskExecBegin { callback: 0, creator: 0 }),
            ev(10, TraceEvent::TaskExecBegin { callback: 1, creator: 0 }),
            ev(20, TraceEvent::TaskExecEnd { callback: 1 }),
            ev(30, TraceEvent::TaskExecEnd { callback: 0 }),
        ];
        let spans = spans_for_rank(&events);
        assert_eq!(
            spans,
            vec![
                Span { cat: Category::Exec, start: 10, end: 20 },
                Span { cat: Category::Exec, start: 0, end: 30 },
            ]
        );
    }
}
