//! Closed-loop knob autotuning over replayed schedules.
//!
//! The tuner's loop (driven by the `tune` bench bin) is: record one
//! seeded run → lower it to a replay program → re-price it under each
//! candidate knob assignment ([`crate::whatif::reprice`]) → replay and
//! score → live-validate the most promising candidates → emit a tuned
//! `TcConfig` as JSON plus a human report. This module holds the pure
//! pieces: the candidate sweep (pruned by the recorded critical path),
//! the score extracted from an analysis report, and the two renderers.
//!
//! Pruning follows the ISSUE's rule: the owner-release knobs
//! (`release_fraction`) restructure the schedule rather than re-price it,
//! so replay cannot rank them. They are explored only when the recorded
//! critical path is *headed by queue starvation* — its longest segment is
//! steal or idle time — and even then their replay score is the baseline's
//! (structural knobs ride to live validation on the gate alone).

use crate::critpath::CritPath;
use crate::timeline::Category;
use crate::whatif::Knobs;
use crate::AnalysisReport;

/// One knob assignment in the sweep, with a stable display name.
#[derive(Clone, Debug, PartialEq)]
pub struct Candidate {
    /// Stable axis=value label, e.g. `chunk=5`.
    pub name: String,
    /// The knobs this candidate runs under.
    pub knobs: Knobs,
    /// True when the candidate differs from the baseline only in
    /// structural knobs replay cannot re-price (release fraction): its
    /// replay score is meaningless and live validation decides.
    pub structural: bool,
}

/// Deterministic candidate sweep around `base`, pruned by the recorded
/// critical path `cp`.
///
/// Axes: victim continuation/escape probabilities, steal chunk, TD
/// batching, and — only when the path is headed by steal/idle time —
/// the split release fraction.
pub fn candidates(base: &Knobs, cp: &CritPath) -> Vec<Candidate> {
    let mut out = Vec::new();
    let mut push = |name: String, knobs: Knobs, structural: bool| {
        out.push(Candidate { name, knobs, structural });
    };

    for cont in [0.5, 0.85] {
        if (cont - base.victim_cont).abs() > 1e-9 {
            push(
                format!("cont={cont:.2}"),
                Knobs { victim_cont: cont, ..*base },
                false,
            );
        }
    }
    for escape in [0.0625, 0.25] {
        if (escape - base.victim_escape).abs() > 1e-9 {
            push(
                format!("escape={escape:.4}"),
                Knobs { victim_escape: escape, ..*base },
                false,
            );
        }
    }
    for chunk in [5usize, 20] {
        if chunk != base.chunk {
            push(format!("chunk={chunk}"), Knobs { chunk, ..*base }, false);
        }
    }
    push(
        format!("td_batch={}", !base.td_batch),
        Knobs { td_batch: !base.td_batch, ..*base },
        false,
    );

    // Owner-release knobs: only when the owner's queue heads the path.
    let queue_headed = cp
        .top_segments(1)
        .first()
        .is_some_and(|s| matches!(s.cat, Category::Steal | Category::Idle));
    if queue_headed {
        for frac in [0.25, 0.75, 1.0] {
            if (frac - base.release_fraction).abs() > 1e-9 {
                push(
                    format!("release_fraction={frac:.2}"),
                    Knobs { release_fraction: frac, ..*base },
                    true,
                );
            }
        }
    }
    out
}

/// Scheduling quality extracted from one analysis report.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Score {
    /// Virtual makespan.
    pub makespan_ns: u64,
    /// `max(elapsed) / mean(elapsed) - 1`; 0 is perfectly balanced.
    pub imbalance: f64,
    /// Steal share of total blamed time.
    pub steal_share: f64,
    /// Idle share of total blamed time.
    pub idle_share: f64,
    /// TD-polling share of total blamed time.
    pub td_share: f64,
}

impl Score {
    /// Extract a score from `report`.
    pub fn from_report(report: &AnalysisReport) -> Score {
        let total = report.total_blame();
        let denom = total.total().max(1) as f64;
        let n = report.ranks.max(1) as f64;
        let max = report.elapsed_ns.iter().copied().max().unwrap_or(0) as f64;
        let mean = report.elapsed_ns.iter().sum::<u64>() as f64 / n;
        Score {
            makespan_ns: report.makespan_ns,
            imbalance: if mean > 0.0 { max / mean - 1.0 } else { 0.0 },
            steal_share: total.get(Category::Steal) as f64 / denom,
            idle_share: total.get(Category::Idle) as f64 / denom,
            td_share: total.get(Category::Td) as f64 / denom,
        }
    }

    /// Scalar cost for ranking: makespan, nudged by imbalance so two
    /// candidates with equal makespans prefer the better-balanced one.
    pub fn cost(&self) -> f64 {
        self.makespan_ns as f64 * (1.0 + 0.05 * self.imbalance)
    }
}

/// Replay-score `cand` against a lowered recording: re-price, replay,
/// analyze, extract. Pure virtual-time arithmetic — deterministic.
pub fn replay_score(prog: &scioto_sim::ReplayProgram, base: &Knobs, cand: &Knobs) -> Score {
    let repriced = crate::whatif::reprice(prog, base, cand);
    let trace = scioto_sim::run_replay(&repriced);
    Score::from_report(&crate::analyze(&trace))
}

/// Fixed-point decimal with 4 fractional digits — deterministic across
/// platforms (no shortest-roundtrip float formatting in output files).
fn dec4(v: f64) -> String {
    format!("{v:.4}")
}

/// Render `knobs` as the tuned-config JSON document
/// (`scioto-tcconfig-v1`), consumable by operators or future loaders.
pub fn config_json(knobs: &Knobs, source: &str) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"scioto-tcconfig-v1\",\n");
    s.push_str(&format!("  \"source\": \"{source}\",\n"));
    s.push_str(&format!("  \"chunk\": {},\n", knobs.chunk));
    s.push_str(&format!("  \"victim_cont\": {},\n", dec4(knobs.victim_cont)));
    s.push_str(&format!(
        "  \"victim_escape\": {},\n",
        dec4(knobs.victim_escape)
    ));
    s.push_str(&format!("  \"td_batch\": {},\n", knobs.td_batch));
    s.push_str(&format!(
        "  \"release_fraction\": {}\n",
        dec4(knobs.release_fraction)
    ));
    s.push_str("}\n");
    s
}

/// One row of the tuning report: a candidate and its replay score, plus
/// its live score when the candidate reached validation.
#[derive(Clone, Debug)]
pub struct TuneRow {
    /// Candidate label (`baseline` for the incumbent).
    pub name: String,
    /// Score predicted by replay re-pricing.
    pub replay: Score,
    /// Score measured by a live seeded re-run, when validated.
    pub live: Option<Score>,
}

/// Render the human tuning report: the sweep table, the winner, and the
/// blame movement between baseline and winner.
pub fn render_report(rows: &[TuneRow], winner: &str, baseline: &str) -> String {
    let mut s = String::new();
    s.push_str("scioto autotune report\n");
    s.push_str(&format!("{:-<72}\n", ""));
    s.push_str(&format!(
        "{:<24} {:>12} {:>8} {:>7} {:>7} {:>12}\n",
        "candidate", "replay ns", "imbal", "steal%", "idle%", "live ns"
    ));
    for row in rows {
        let live = row
            .live
            .map_or("-".to_string(), |l| l.makespan_ns.to_string());
        let mark = if row.name == winner { " *" } else { "" };
        s.push_str(&format!(
            "{:<24} {:>12} {:>8} {:>6.1}% {:>6.1}% {:>12}{mark}\n",
            row.name,
            row.replay.makespan_ns,
            dec4(row.replay.imbalance),
            100.0 * row.replay.steal_share,
            100.0 * row.replay.idle_share,
            live,
        ));
    }
    let find = |name: &str| rows.iter().find(|r| r.name == name);
    if let (Some(b), Some(w)) = (find(baseline), find(winner)) {
        if let (Some(bl), Some(wl)) = (b.live, w.live) {
            let gain = bl.makespan_ns as i64 - wl.makespan_ns as i64;
            s.push_str(&format!(
                "\nwinner: {winner} — live makespan {} vs baseline {} ({}{} ns, {:.2}%)\n",
                wl.makespan_ns,
                bl.makespan_ns,
                if gain >= 0 { "-" } else { "+" },
                gain.abs(),
                100.0 * gain as f64 / bl.makespan_ns.max(1) as f64,
            ));
            s.push_str(&format!(
                "blame shift: steal {:.1}% -> {:.1}%, idle {:.1}% -> {:.1}%, td {:.1}% -> {:.1}%\n",
                100.0 * bl.steal_share,
                100.0 * wl.steal_share,
                100.0 * bl.idle_share,
                100.0 * wl.idle_share,
                100.0 * bl.td_share,
                100.0 * wl.td_share,
            ));
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::critpath::PathSegment;
    use crate::Blame;

    fn path_headed_by(cat: Category) -> CritPath {
        CritPath {
            length_ns: 100,
            total_work_ns: 100,
            max_task_ns: 10,
            blame: Blame::default(),
            segments: vec![PathSegment { rank: 0, cat, start: 0, end: 100 }],
            truncated: false,
        }
    }

    #[test]
    fn release_axis_gated_on_queue_headed_path() {
        let base = Knobs::baseline();
        let gated = candidates(&base, &path_headed_by(Category::Exec));
        assert!(
            !gated.iter().any(|c| c.name.starts_with("release_fraction")),
            "exec-headed path must not explore release knobs: {gated:?}"
        );
        let open = candidates(&base, &path_headed_by(Category::Steal));
        let releases: Vec<_> = open
            .iter()
            .filter(|c| c.name.starts_with("release_fraction"))
            .collect();
        assert_eq!(releases.len(), 3);
        assert!(releases.iter().all(|c| c.structural));
        // Non-structural axes are present either way.
        for sweep in [&gated, &open] {
            assert!(sweep.iter().any(|c| c.name == "chunk=5"));
            assert!(sweep.iter().any(|c| c.name == "td_batch=false"));
            assert!(sweep.iter().any(|c| c.name == "cont=0.50"));
            assert!(sweep.iter().any(|c| c.name == "escape=0.2500"));
        }
    }

    #[test]
    fn sweep_skips_values_equal_to_baseline() {
        let mut base = Knobs::baseline();
        base.chunk = 5;
        let sweep = candidates(&base, &path_headed_by(Category::Exec));
        assert!(!sweep.iter().any(|c| c.name == "chunk=5"));
        assert!(sweep.iter().any(|c| c.name == "chunk=20"));
    }

    #[test]
    fn config_json_is_deterministic_and_versioned() {
        let k = Knobs::baseline();
        let a = config_json(&k, "fig7@64 seed=0xD5EED");
        assert_eq!(a, config_json(&k, "fig7@64 seed=0xD5EED"));
        assert!(a.contains("\"schema\": \"scioto-tcconfig-v1\""));
        assert!(a.contains("\"victim_escape\": 0.1250"));
        assert!(a.contains("\"chunk\": 10"));
        scioto_sim::validate_json(&a).expect("config json parses");
    }

    #[test]
    fn score_cost_prefers_smaller_makespan_then_balance() {
        let fast = Score {
            makespan_ns: 100,
            imbalance: 0.5,
            steal_share: 0.0,
            idle_share: 0.0,
            td_share: 0.0,
        };
        let slow = Score { makespan_ns: 120, imbalance: 0.0, ..fast };
        assert!(fast.cost() < slow.cost());
        let balanced = Score { imbalance: 0.0, ..fast };
        assert!(balanced.cost() < fast.cost());
    }

    #[test]
    fn report_renders_winner_and_blame_shift() {
        let s = |m: u64| Score {
            makespan_ns: m,
            imbalance: 0.1,
            steal_share: 0.2,
            idle_share: 0.1,
            td_share: 0.05,
        };
        let rows = vec![
            TuneRow { name: "baseline".into(), replay: s(1000), live: Some(s(1000)) },
            TuneRow { name: "chunk=5".into(), replay: s(900), live: Some(s(880)) },
        ];
        let r = render_report(&rows, "chunk=5", "baseline");
        assert!(r.contains("winner: chunk=5"), "{r}");
        assert!(r.contains("-120 ns"), "{r}");
        assert!(r.contains("blame shift"), "{r}");
    }
}
