//! What-if re-pricing: re-cost a recorded schedule under substituted
//! runtime knobs without re-running the workload.
//!
//! The replay program preserves a run's *structure* — per-rank op order
//! and cross-rank sync edges. Re-pricing rewrites the *costs*: each op's
//! duration (and the slack ahead of it) is scaled by an analytic model of
//! how the candidate knobs change that op class, and the replay engine
//! then re-times the whole schedule, letting cost changes propagate
//! through the recorded sync edges to a new makespan and blame split.
//!
//! Per-knob cost models (all ratios against the recorded baseline knobs):
//!
//! * **latency tiers** — a `StealAttempt`/`LockWait` round trip to rank
//!   `v` scales by `tier_new.scale(me, v, n) / tier_old.scale(me, v, n)`
//!   (an untiered recording has scale 1 everywhere).
//! * **victim cont/escape** — under tiered latency, a steal's expected
//!   cost multiplier is the bias mix `(1 − escape)·near_scale +
//!   escape·far_scale`; steal durations scale by the candidate/baseline
//!   mix ratio. Untiered recordings are distance-blind, so these knobs
//!   re-price to 1 there.
//! * **chunk** — a steal that moved `got` tasks moves `min(got, chunk')`
//!   under the candidate; duration scales by `0.5 + 0.5·got'/got` (the
//!   attempt's fixed round trip is ~half the bill, the per-task transfer
//!   the rest).
//! * **td batch** — batching coalesces the detector's slot reads into one
//!   snapshot; turning it off multiplies `TdProgress` polls by 1.6,
//!   turning it on multiplies by 0.625 (the measured flat-vs-batched
//!   ratio from the PR-3 ablation).
//! * **release fraction/threshold** — deliberately *not* re-priced: they
//!   change which steals exist at all (schedule structure), which replay
//!   cannot predict. The tuner explores them only under critical-path
//!   gating and validates with live runs.
//!
//! Re-pricing is deterministic arithmetic on a cloned program — same
//! candidate, same recording, same bytes out.

use scioto_sim::{LatencyTiers, ReplayProgram, TraceEvent};

/// The knob assignment a what-if scenario prices a recording under.
///
/// `baseline()` mirrors the PR-5 `TcConfig` defaults; the latency tier is
/// the recording's, not the collection's (untiered presets are `None`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Knobs {
    /// Locality-bias geometric continuation probability.
    pub victim_cont: f64,
    /// Locality-bias uniform-escape probability.
    pub victim_escape: f64,
    /// Steal chunk size.
    pub chunk: usize,
    /// Batched termination detection.
    pub td_batch: bool,
    /// Split release fraction (structural — carried for the tuner and the
    /// emitted config, never re-priced here).
    pub release_fraction: f64,
    /// Latency tiers the scenario runs under; `None` = distance-blind.
    pub tiers: Option<LatencyTiers>,
}

impl Knobs {
    /// The PR-5 runtime defaults under a distance-blind latency model.
    pub fn baseline() -> Self {
        Knobs {
            victim_cont: 0.7,
            victim_escape: 0.125,
            chunk: 10,
            td_batch: true,
            release_fraction: 0.5,
            tiers: None,
        }
    }

    /// Expected steal-cost multiplier of the victim bias under `tiers`:
    /// biased draws land near, escapes land anywhere (priced as far).
    fn steal_mix(&self, tiers: &LatencyTiers) -> f64 {
        (1.0 - self.victim_escape) * tiers.near_scale + self.victim_escape * tiers.far_scale
    }
}

/// Tier scale for an op from `me` to `to`, treating an untiered model as
/// scale 1 everywhere.
fn tier_scale(tiers: &Option<LatencyTiers>, me: usize, to: usize, n: usize) -> f64 {
    match tiers {
        Some(t) => t.scale(me, to, n),
        None => 1.0,
    }
}

/// Scale `dur` by `f`, rounding to nearest — deterministic and exact for
/// the identity ratio.
fn scale_dur(dur: u64, f: f64) -> u64 {
    if f == 1.0 {
        return dur;
    }
    (dur as f64 * f).round() as u64
}

/// Re-price `prog` (recorded under `base`) as if it had run under `cand`.
///
/// Returns a new program with rewritten durations and deltas; run it with
/// [`scioto_sim::run_replay`] and analyze the result to score the
/// candidate. `reprice(p, k, k)` is the identity.
pub fn reprice(prog: &ReplayProgram, base: &Knobs, cand: &Knobs) -> ReplayProgram {
    let n = prog.nranks;
    // Victim-bias mix ratio only exists under a tiered candidate model;
    // the recorded mix is priced under the same tiers so the ratio
    // isolates the knob change from the latency change.
    let mix_ratio = match &cand.tiers {
        Some(t) => cand.steal_mix(t) / base.steal_mix(t),
        None => 1.0,
    };
    let td_ratio = match (base.td_batch, cand.td_batch) {
        (true, false) => 1.6,
        (false, true) => 0.625,
        _ => 1.0,
    };

    let mut out = prog.clone();
    for (me, ops) in out.ops.iter_mut().enumerate() {
        for op in ops.iter_mut() {
            let old = op.dur_ns;
            let new = match &mut op.ev {
                TraceEvent::StealAttempt { victim, got, dur_ns } => {
                    let lat = tier_scale(&cand.tiers, me, *victim as usize, n)
                        / tier_scale(&base.tiers, me, *victim as usize, n);
                    let chunk_f = if *got > 0 && cand.chunk < *got as usize {
                        let new_got = cand.chunk as u32;
                        let f = 0.5 + 0.5 * new_got as f64 / *got as f64;
                        *got = new_got;
                        f
                    } else {
                        1.0
                    };
                    let new = scale_dur(old, lat * mix_ratio * chunk_f);
                    *dur_ns = new;
                    new
                }
                TraceEvent::LockWait { target, dur_ns } => {
                    let lat = tier_scale(&cand.tiers, me, *target as usize, n)
                        / tier_scale(&base.tiers, me, *target as usize, n);
                    let new = scale_dur(old, lat);
                    *dur_ns = new;
                    new
                }
                TraceEvent::TdProgress { dur_ns } => {
                    let new = scale_dur(old, td_ratio);
                    *dur_ns = new;
                    new
                }
                // BarrierWait is pure waiting: the replay engine re-derives
                // its duration from the re-timed rendezvous.
                _ => old,
            };
            if new != old {
                // Shift the op's completion by the duration change. Spans
                // may overlap the preceding event (stamped at completion),
                // so the delta is adjusted by the difference rather than
                // rebuilt from the span — a shrunk duration can never push
                // the completion later.
                op.delta_ns = if new >= old {
                    op.delta_ns + (new - old)
                } else {
                    op.delta_ns.saturating_sub(old - new)
                };
                op.dur_ns = new;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay::lower;
    use scioto_sim::{run_replay, Trace, TraceConfig, TraceSink};

    /// Duration carried by a span event (0 for instantaneous events).
    fn event_dur_of(ev: &TraceEvent) -> u64 {
        scioto_sim::event_dur(ev)
    }

    fn steal_trace() -> Trace {
        let sink = TraceSink::new(&TraceConfig::enabled(), 2);
        // Rank 0: two steals (one near, one far on a 2-ring everything is
        // near; distances only matter at larger n — this test uses the
        // untiered ratios), a lock wait, a TD poll.
        sink.emit(0, 100, || TraceEvent::StealAttempt { victim: 1, got: 10, dur_ns: 60 });
        sink.emit(0, 200, || TraceEvent::LockWait { target: 1, dur_ns: 40 });
        sink.emit(0, 300, || TraceEvent::TdProgress { dur_ns: 20 });
        sink.emit(1, 250, || TraceEvent::TdProgress { dur_ns: 10 });
        let mut t = sink.finish().unwrap();
        t.final_clock_ns = vec![310, 260];
        t
    }

    #[test]
    fn identity_reprice_is_a_noop() {
        let prog = lower(&steal_trace()).unwrap();
        let k = Knobs::baseline();
        let repriced = reprice(&prog, &k, &k);
        assert_eq!(
            run_replay(&prog).to_jsonl(),
            run_replay(&repriced).to_jsonl()
        );
    }

    #[test]
    fn chunk_reduction_shrinks_steal_cost_and_got() {
        let prog = lower(&steal_trace()).unwrap();
        let base = Knobs::baseline();
        let cand = Knobs { chunk: 5, ..base };
        let repriced = reprice(&prog, &base, &cand);
        match repriced.ops[0][0].ev {
            TraceEvent::StealAttempt { got, dur_ns, .. } => {
                assert_eq!(got, 5);
                // 0.5 + 0.5·(5/10) = 0.75 → 60 → 45.
                assert_eq!(dur_ns, 45);
            }
            ref e => panic!("unexpected event {e:?}"),
        }
        assert_eq!(repriced.ops[0][0].delta_ns, 100 - 60 + 45);
    }

    #[test]
    fn td_batch_toggle_scales_polls_both_ways() {
        let prog = lower(&steal_trace()).unwrap();
        let base = Knobs::baseline();
        let off = Knobs { td_batch: false, ..base };
        let repriced = reprice(&prog, &base, &off);
        assert_eq!(event_dur_of(&repriced.ops[0][2].ev), 32); // 20 × 1.6
        assert_eq!(event_dur_of(&repriced.ops[1][0].ev), 16); // 10 × 1.6
        // And back: re-pricing an off-recording to on shrinks by 0.625.
        let back = reprice(&prog, &off, &base);
        assert_eq!(event_dur_of(&back.ops[0][2].ev), 13); // 20 × 0.625 rounded
    }

    #[test]
    fn tiered_candidate_prices_by_ring_distance() {
        // 6 ranks: victim 1 is near rank 0 (d=1 ≤ radius 2), victim 3 is
        // far (d=3). Under nearfar tiers vs an untiered recording the two
        // steals scale by near_scale and far_scale respectively (mix ratio
        // is 1 because base and cand share the bias probabilities).
        let sink = TraceSink::new(&TraceConfig::enabled(), 6);
        sink.emit(0, 100, || TraceEvent::StealAttempt { victim: 1, got: 1, dur_ns: 100 });
        sink.emit(0, 300, || TraceEvent::StealAttempt { victim: 3, got: 1, dur_ns: 100 });
        let mut t = sink.finish().unwrap();
        t.final_clock_ns = vec![300, 0, 0, 0, 0, 0];
        let prog = lower(&t).unwrap();
        let base = Knobs::baseline();
        let cand = Knobs { tiers: Some(LatencyTiers::nearfar()), ..base };
        let repriced = reprice(&prog, &base, &cand);
        assert_eq!(event_dur_of(&repriced.ops[0][0].ev), 35); // ×0.35
        assert_eq!(event_dur_of(&repriced.ops[0][1].ev), 125); // ×1.25
    }

    #[test]
    fn escape_increase_raises_steal_mix_under_tiers() {
        let tiers = LatencyTiers::nearfar();
        let base = Knobs { tiers: Some(tiers), ..Knobs::baseline() };
        let hot = Knobs { victim_escape: 0.5, ..base };
        assert!(hot.steal_mix(&tiers) > base.steal_mix(&tiers));
        let prog = lower(&steal_trace()).unwrap();
        let repriced = reprice(&prog, &base, &hot);
        // Steal dur grew; lock/td untouched by this knob.
        assert!(event_dur_of(&repriced.ops[0][0].ev) > 60);
        assert_eq!(event_dur_of(&repriced.ops[0][1].ev), 40);
    }
}
