//! Remotely accessible memory segments and contiguous put/get/acc.

use std::collections::HashMap;
use std::sync::Arc;

use scioto_det::sync::Mutex;

use scioto_sim::{Ctx, RemoteOpKind, TraceEvent, VLock};

use crate::world::Armci;

/// One collectively allocated region: `bytes` bytes on *every* rank.
pub(crate) struct Segment {
    /// Per-rank backing store. The mutex serializes raw accesses (an
    /// accumulate must be atomic with respect to other accumulates, as in
    /// ARMCI); in virtual-time mode it is never contended.
    pub(crate) data: Vec<Mutex<Vec<u8>>>,
    /// Per-word RMW service queues: the target adapter processes atomic
    /// RMWs on one location serially (`LatencyModel::rmw_service` each),
    /// so a hot word — a shared counter — has bounded throughput.
    pub(crate) hot_words: Mutex<HashMap<(usize, usize), Arc<VLock>>>,
}

impl Segment {
    pub(crate) fn hot_word(&self, rank: usize, offset: usize) -> Arc<VLock> {
        self.hot_words
            .lock()
            .entry((rank, offset))
            .or_insert_with(|| Arc::new(VLock::new()))
            .clone()
    }
}

/// Portable handle to a collectively allocated memory region.
///
/// A `Gmem` names `len()` bytes of remotely accessible memory on *each*
/// rank; locations are addressed as `(rank, byte offset)`. Handles are plain
/// `Copy` values (like ARMCI pointers exchanged at allocation time) and can
/// be stored inside task bodies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Gmem {
    pub(crate) id: usize,
    pub(crate) len: usize,
}

impl Gmem {
    /// Bytes allocated per rank.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the per-rank region is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl Armci {
    /// Collectively allocate `bytes` bytes of remotely accessible,
    /// zero-initialized memory on every rank.
    ///
    /// Barrier-free under the default coalesced startup protocol: rank 0
    /// publishes the segment through the collective log and the handle is
    /// valid the moment a rank receives it (the backing store is built
    /// before publication). Batch several allocations under one
    /// [`Ctx::collective_epoch`] to pay a single commit barrier.
    pub fn malloc(&self, ctx: &Ctx, bytes: usize) -> Gmem {
        let n = self.nranks;
        let handle = ctx.collective(|| {
            let seg = Arc::new(Segment {
                data: (0..n).map(|_| Mutex::new(vec![0u8; bytes])).collect(),
                hot_words: Mutex::new(HashMap::new()),
            });
            let mut segs = self.segments.write();
            segs.push(seg);
            Gmem {
                id: segs.len() - 1,
                len: bytes,
            }
        });
        *handle
    }

    pub(crate) fn segment(&self, g: Gmem) -> Arc<Segment> {
        let segs = self.segments.read();
        segs.get(g.id)
            .unwrap_or_else(|| panic!("invalid Gmem handle {}", g.id))
            .clone()
    }

    fn check_bounds(&self, g: Gmem, rank: usize, offset: usize, len: usize) {
        assert!(
            rank < self.nranks,
            "rank {rank} out of range (nranks = {})",
            self.nranks
        );
        assert!(
            offset.checked_add(len).is_some_and(|end| end <= g.len),
            "access [{offset}, {offset}+{len}) out of bounds for segment of {} bytes",
            g.len
        );
    }

    /// Cost of a one-sided data transfer of `len` bytes to/from `target`.
    pub(crate) fn xfer_cost(&self, ctx: &Ctx, target: usize, len: usize) -> u64 {
        if target == ctx.rank() {
            ctx.latency().local_get + (ctx.latency().per_byte * len as f64 * 0.125) as u64
        } else {
            ctx.latency().xfer_to(ctx.rank(), target, self.nranks, len)
        }
    }

    /// One-sided contiguous put: copy `src` into `(rank, offset)`.
    pub fn put(&self, ctx: &Ctx, g: Gmem, rank: usize, offset: usize, src: &[u8]) {
        self.put_impl(ctx, g, rank, offset, src, false);
    }

    /// A put the split-queue protocol declares *atomic*: same cost and
    /// semantics as [`Armci::put`], but the trace marks the written words
    /// as protocol-atomic so the race checker pairs them with the
    /// target's own lock-free index publishes instead of flagging them.
    pub fn put_atomic(&self, ctx: &Ctx, g: Gmem, rank: usize, offset: usize, src: &[u8]) {
        self.put_impl(ctx, g, rank, offset, src, true);
    }

    fn put_impl(&self, ctx: &Ctx, g: Gmem, rank: usize, offset: usize, src: &[u8], atomic: bool) {
        self.check_bounds(g, rank, offset, src.len());
        ctx.yield_point();
        ctx.trace(|| TraceEvent::RemoteOp {
            kind: RemoteOpKind::Put,
            target: rank as u32,
            seg: g.id as u32,
            offset: offset as u64,
            bytes: src.len() as u32,
            atomic,
        });
        let seg = self.segment(g);
        seg.data[rank].lock()[offset..offset + src.len()].copy_from_slice(src);
        ctx.charge_net(self.xfer_cost(ctx, rank, src.len()));
    }

    /// One-sided contiguous get: copy `(rank, offset)` into `dst`.
    pub fn get(&self, ctx: &Ctx, g: Gmem, rank: usize, offset: usize, dst: &mut [u8]) {
        self.get_impl(ctx, g, rank, offset, dst, false);
    }

    /// A get the split-queue protocol declares *atomic* (see
    /// [`Armci::put_atomic`]): reads words that a lock-free writer may be
    /// publishing concurrently, which the protocol tolerates by design.
    pub fn get_atomic(&self, ctx: &Ctx, g: Gmem, rank: usize, offset: usize, dst: &mut [u8]) {
        self.get_impl(ctx, g, rank, offset, dst, true);
    }

    fn get_impl(&self, ctx: &Ctx, g: Gmem, rank: usize, offset: usize, dst: &mut [u8], atomic: bool) {
        self.check_bounds(g, rank, offset, dst.len());
        ctx.yield_point();
        ctx.trace(|| TraceEvent::RemoteOp {
            kind: RemoteOpKind::Get,
            target: rank as u32,
            seg: g.id as u32,
            offset: offset as u64,
            bytes: dst.len() as u32,
            atomic,
        });
        let seg = self.segment(g);
        dst.copy_from_slice(&seg.data[rank].lock()[offset..offset + dst.len()]);
        ctx.charge_net(self.xfer_cost(ctx, rank, dst.len()));
    }

    /// Atomic accumulate of f64 values: `dest[i] += scale * src[i]`.
    /// `offset` is in bytes and must be 8-byte aligned.
    pub fn acc_f64(
        &self,
        ctx: &Ctx,
        g: Gmem,
        rank: usize,
        offset: usize,
        scale: f64,
        src: &[f64],
    ) {
        let len = src.len() * 8;
        self.check_bounds(g, rank, offset, len);
        assert_eq!(offset % 8, 0, "acc_f64 offset must be 8-byte aligned");
        ctx.yield_point();
        ctx.trace(|| TraceEvent::RemoteOp {
            kind: RemoteOpKind::Acc,
            target: rank as u32,
            seg: g.id as u32,
            offset: offset as u64,
            bytes: len as u32,
            atomic: true,
        });
        let seg = self.segment(g);
        let mut data = seg.data[rank].lock();
        for (i, v) in src.iter().enumerate() {
            let o = offset + i * 8;
            let cur = f64::from_le_bytes(data[o..o + 8].try_into().expect("8 bytes"));
            data[o..o + 8].copy_from_slice(&(cur + scale * v).to_le_bytes());
        }
        drop(data);
        ctx.charge_net(self.xfer_cost(ctx, rank, len));
    }

    /// Atomic accumulate of i64 values: `dest[i] += scale * src[i]`.
    pub fn acc_i64(
        &self,
        ctx: &Ctx,
        g: Gmem,
        rank: usize,
        offset: usize,
        scale: i64,
        src: &[i64],
    ) {
        let len = src.len() * 8;
        self.check_bounds(g, rank, offset, len);
        assert_eq!(offset % 8, 0, "acc_i64 offset must be 8-byte aligned");
        ctx.yield_point();
        ctx.trace(|| TraceEvent::RemoteOp {
            kind: RemoteOpKind::Acc,
            target: rank as u32,
            seg: g.id as u32,
            offset: offset as u64,
            bytes: len as u32,
            atomic: true,
        });
        let seg = self.segment(g);
        let mut data = seg.data[rank].lock();
        for (i, v) in src.iter().enumerate() {
            let o = offset + i * 8;
            let cur = i64::from_le_bytes(data[o..o + 8].try_into().expect("8 bytes"));
            data[o..o + 8].copy_from_slice(&cur.wrapping_add(scale.wrapping_mul(*v)).to_le_bytes());
        }
        drop(data);
        ctx.charge_net(self.xfer_cost(ctx, rank, len));
    }

    /// Run `f` with mutable access to this rank's own portion of the
    /// segment. Charges only local software overhead; intended for
    /// owner-private initialization (setup that happens before any
    /// concurrency, so it emits no access record — shared-protocol
    /// accesses must go through [`Armci::with_local_range_mut`]).
    pub fn with_local_mut<R>(&self, ctx: &Ctx, g: Gmem, f: impl FnOnce(&mut [u8]) -> R) -> R {
        let seg = self.segment(g);
        let mut data = seg.data[ctx.rank()].lock();
        f(&mut data)
    }

    /// Run `f` with read access to this rank's own portion of the segment.
    pub fn with_local<R>(&self, ctx: &Ctx, g: Gmem, f: impl FnOnce(&[u8]) -> R) -> R {
        let seg = self.segment(g);
        let data = seg.data[ctx.rank()].lock();
        f(&data)
    }

    /// Owner-side read of `[offset, offset + len)` of this rank's own
    /// portion, recorded in the trace as a `LocalAccess` so the race
    /// checker can pair owner accesses against remote thieves. `atomic`
    /// marks single-word protocol accesses (lock-free index reads) the
    /// queue discipline declares safe against concurrent atomic writers.
    pub fn with_local_range<R>(
        &self,
        ctx: &Ctx,
        g: Gmem,
        offset: usize,
        len: usize,
        atomic: bool,
        f: impl FnOnce(&[u8]) -> R,
    ) -> R {
        self.check_bounds(g, ctx.rank(), offset, len);
        // Order-only instant: the race checker needs the access's position
        // in the rank's timeline, never a duration from its stamp — so the
        // hot per-word protocol path skips the wall-clock query.
        ctx.trace_instant(|| TraceEvent::LocalAccess {
            seg: g.id as u32,
            offset: offset as u64,
            bytes: len as u32,
            write: false,
            atomic,
        });
        let seg = self.segment(g);
        let data = seg.data[ctx.rank()].lock();
        f(&data[offset..offset + len])
    }

    /// Owner-side write access to `[offset, offset + len)` of this rank's
    /// own portion, recorded as a `LocalAccess` write (see
    /// [`Armci::with_local_range`]).
    pub fn with_local_range_mut<R>(
        &self,
        ctx: &Ctx,
        g: Gmem,
        offset: usize,
        len: usize,
        atomic: bool,
        f: impl FnOnce(&mut [u8]) -> R,
    ) -> R {
        self.check_bounds(g, ctx.rank(), offset, len);
        // Order-only instant: the race checker needs the access's position
        // in the rank's timeline, never a duration from its stamp — so the
        // hot per-word protocol path skips the wall-clock query.
        ctx.trace_instant(|| TraceEvent::LocalAccess {
            seg: g.id as u32,
            offset: offset as u64,
            bytes: len as u32,
            write: true,
            atomic,
        });
        let seg = self.segment(g);
        let mut data = seg.data[ctx.rank()].lock();
        f(&mut data[offset..offset + len])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scioto_sim::{LatencyModel, Machine, MachineConfig};

    #[test]
    fn put_get_roundtrip_across_ranks() {
        let out = Machine::run(MachineConfig::virtual_time(4), |ctx| {
            let armci = Armci::init(ctx);
            let g = armci.malloc(ctx, 64);
            let me = ctx.rank();
            let next = (me + 1) % ctx.nranks();
            // Write my rank into my right neighbour's memory.
            armci.put(ctx, g, next, 0, &[me as u8; 8]);
            armci.barrier(ctx);
            let mut buf = [0u8; 8];
            armci.get(ctx, g, me, 0, &mut buf);
            buf[0] as usize
        });
        // Rank r holds the id of its left neighbour.
        assert_eq!(out.results, vec![3, 0, 1, 2]);
    }

    #[test]
    fn acc_f64_accumulates_from_all_ranks() {
        let out = Machine::run(MachineConfig::virtual_time(8), |ctx| {
            let armci = Armci::init(ctx);
            let g = armci.malloc(ctx, 16);
            armci.acc_f64(ctx, g, 0, 8, 2.0, &[1.0]);
            armci.barrier(ctx);
            let mut buf = [0u8; 8];
            armci.get(ctx, g, 0, 8, &mut buf);
            f64::from_le_bytes(buf)
        });
        for v in out.results {
            assert_eq!(v, 16.0); // 8 ranks × scale 2.0 × 1.0
        }
    }

    #[test]
    fn acc_i64_accumulates() {
        let out = Machine::run(MachineConfig::virtual_time(5), |ctx| {
            let armci = Armci::init(ctx);
            let g = armci.malloc(ctx, 8);
            armci.acc_i64(ctx, g, 0, 0, 1, &[ctx.rank() as i64]);
            armci.barrier(ctx);
            armci.read_i64(ctx, g, 0, 0)
        });
        for v in out.results {
            assert_eq!(v, 1 + 2 + 3 + 4);
        }
    }

    #[test]
    fn remote_ops_cost_more_than_local() {
        let out = Machine::run(
            MachineConfig::virtual_time(2).with_latency(LatencyModel::cluster()),
            |ctx| {
                let armci = Armci::init(ctx);
                let g = armci.malloc(ctx, 1024);
                let t0 = ctx.now();
                let buf = [0u8; 1024];
                armci.put(ctx, g, ctx.rank(), 0, &buf);
                let local = ctx.now() - t0;
                let t1 = ctx.now();
                armci.put(ctx, g, (ctx.rank() + 1) % 2, 0, &buf);
                let remote = ctx.now() - t1;
                (local, remote)
            },
        );
        for (local, remote) in out.results {
            assert!(
                remote > 4 * local,
                "remote put ({remote} ns) should dwarf local put ({local} ns)"
            );
        }
    }

    #[test]
    fn separate_segments_are_independent() {
        let out = Machine::run(MachineConfig::virtual_time(2), |ctx| {
            let armci = Armci::init(ctx);
            let a = armci.malloc(ctx, 8);
            let b = armci.malloc(ctx, 8);
            if ctx.rank() == 0 {
                armci.put(ctx, a, 0, 0, &1i64.to_le_bytes());
                armci.put(ctx, b, 0, 0, &2i64.to_le_bytes());
            }
            armci.barrier(ctx);
            (armci.read_i64(ctx, a, 0, 0), armci.read_i64(ctx, b, 0, 0))
        });
        assert!(out.results.iter().all(|&(x, y)| x == 1 && y == 2));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_put_panics() {
        Machine::run(MachineConfig::virtual_time(1), |ctx| {
            let armci = Armci::init(ctx);
            let g = armci.malloc(ctx, 8);
            armci.put(ctx, g, 0, 4, &[0u8; 8]);
        });
    }

    #[test]
    fn with_local_mut_gives_owner_access() {
        let out = Machine::run(MachineConfig::virtual_time(3), |ctx| {
            let armci = Armci::init(ctx);
            let g = armci.malloc(ctx, 4);
            armci.with_local_mut(ctx, g, |bytes| bytes[0] = ctx.rank() as u8);
            armci.barrier(ctx);
            // Everyone reads rank 2's first byte.
            let mut b = [0u8; 1];
            armci.get(ctx, g, 2, 0, &mut b);
            b[0]
        });
        assert_eq!(out.results, vec![2, 2, 2]);
    }
}
