//! # scioto-armci — a one-sided (RMA) communication layer
//!
//! Reimplements the subset of ARMCI (Nieplocha & Carpenter) that the Scioto
//! runtime and the Global Arrays layer use, on top of the `scioto-sim`
//! virtual-time machine:
//!
//! * collective allocation of remotely accessible memory segments
//!   ([`Armci::malloc`] → [`Gmem`] handles addressed as `(rank, offset)`);
//! * contiguous one-sided `put` / `get` and atomic `acc` (accumulate);
//! * remote read-modify-write: fetch-and-add, swap, compare-and-swap;
//! * collectively created mutex sets with per-rank locks
//!   ([`Armci::create_mutexes`]);
//! * `fence` / `all_fence` and an ARMCI-style barrier.
//!
//! As in real ARMCI, one-sided operations complete without any action from
//! the target process; unlike real ARMCI the cost of each operation comes
//! from the machine's [`scioto_sim::LatencyModel`].
//!
//! ```
//! use scioto_sim::{Machine, MachineConfig};
//! use scioto_armci::Armci;
//!
//! let out = Machine::run(MachineConfig::virtual_time(2), |ctx| {
//!     let armci = Armci::init(ctx);
//!     let g = armci.malloc(ctx, 8);
//!     if ctx.rank() == 0 {
//!         armci.put(ctx, g, 1, 0, &42i64.to_le_bytes());
//!     }
//!     armci.barrier(ctx);
//!     armci.read_i64(ctx, g, 1, 0)
//! });
//! assert_eq!(out.results, vec![42, 42]);
//! ```

mod gmem;
mod locks;
mod nonblocking;
mod rmw;
mod strided;
mod typed;
mod world;

pub use gmem::Gmem;
pub use locks::MutexSet;
pub use nonblocking::NbHandle;
pub use strided::Strided;
pub use typed::{bytes_to_f64s, bytes_to_i64s, f64s_to_bytes, i64s_to_bytes};
pub use world::Armci;
