//! Collectively created mutex sets (ARMCI_Create_mutexes).
//!
//! A set of `count` mutexes exists on *every* rank; `lock(idx, rank)`
//! acquires mutex `idx` on `rank`. Hold times span virtual time, so remote
//! critical sections genuinely delay concurrent accessors — the contention
//! effect the Scioto split queues are designed to minimize.

use std::sync::Arc;

use scioto_sim::{Ctx, TraceEvent, VLock};

use crate::world::Armci;

pub(crate) struct MutexStorage {
    /// `locks[rank][idx]`.
    locks: Vec<Vec<VLock>>,
}

/// Handle to a collectively created set of per-rank mutexes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MutexSet {
    id: usize,
    count: usize,
}

impl MutexSet {
    /// Number of mutexes per rank in this set.
    pub fn count(&self) -> usize {
        self.count
    }
}

impl Armci {
    /// Collectively create `count` mutexes on every rank. Barrier-free
    /// under the default coalesced startup protocol; batch with other
    /// collective creations under one [`Ctx::collective_epoch`].
    pub fn create_mutexes(&self, ctx: &Ctx, count: usize) -> MutexSet {
        let n = self.nranks;
        let handle = ctx.collective(|| {
            let storage = Arc::new(MutexStorage {
                locks: (0..n)
                    .map(|_| (0..count).map(|_| VLock::new()).collect())
                    .collect(),
            });
            let mut sets = self.mutex_sets.write();
            sets.push(storage);
            MutexSet {
                id: sets.len() - 1,
                count,
            }
        });
        *handle
    }

    fn mutex(&self, set: MutexSet, idx: usize, rank: usize) -> Arc<MutexStorage> {
        assert!(idx < set.count, "mutex index {idx} out of range");
        assert!(rank < self.nranks, "rank {rank} out of range");
        self.mutex_sets.read()[set.id].clone()
    }

    fn lock_cost(&self, ctx: &Ctx, rank: usize) -> u64 {
        if rank == ctx.rank() {
            ctx.latency().local_get
        } else {
            ctx.latency().lock_to(ctx.rank(), rank, self.nranks)
        }
    }

    /// Acquire mutex `idx` on `rank`, blocking in virtual time while held.
    pub fn lock(&self, ctx: &Ctx, set: MutexSet, idx: usize, rank: usize) {
        let storage = self.mutex(set, idx, rank);
        let traced = ctx.trace_enabled();
        let t0 = if traced { ctx.now() } else { 0 };
        let seq = storage.locks[rank][idx].acquire(ctx, self.lock_cost(ctx, rank));
        if traced {
            // One completion-time clock read stamps both events. LockAcq
            // is emitted at completion so acquisition events appear in
            // lock order: the n-th LockAcq of a mutex carries seq n and is
            // ordered after the LockRel with seq n - 1.
            let t1 = ctx.now();
            ctx.trace_at(t1, || TraceEvent::LockAcq {
                target: rank as u32,
                set: set.id as u32,
                idx: idx as u32,
                seq,
            });
            // The span covers the queue wait plus the acquire round trip.
            // Zero-length waits are elided.
            let dur_ns = t1.saturating_sub(t0);
            if dur_ns > 0 {
                ctx.trace_at(t1, || TraceEvent::LockWait {
                    target: rank as u32,
                    dur_ns,
                });
            }
        }
    }

    /// Try to acquire mutex `idx` on `rank` without blocking.
    pub fn try_lock(&self, ctx: &Ctx, set: MutexSet, idx: usize, rank: usize) -> bool {
        let storage = self.mutex(set, idx, rank);
        match storage.locks[rank][idx].try_acquire(ctx, self.lock_cost(ctx, rank)) {
            Some(seq) => {
                ctx.trace(|| TraceEvent::LockAcq {
                    target: rank as u32,
                    set: set.id as u32,
                    idx: idx as u32,
                    seq,
                });
                true
            }
            None => false,
        }
    }

    /// Release mutex `idx` on `rank`.
    pub fn unlock(&self, ctx: &Ctx, set: MutexSet, idx: usize, rank: usize) {
        let storage = self.mutex(set, idx, rank);
        let seq = storage.locks[rank][idx].release(ctx, self.lock_cost(ctx, rank));
        ctx.trace(|| TraceEvent::LockRel {
            target: rank as u32,
            set: set.id as u32,
            idx: idx as u32,
            seq,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scioto_sim::{Machine, MachineConfig};

    #[test]
    fn mutexes_serialize_remote_critical_sections() {
        let out = Machine::run(MachineConfig::virtual_time(4), |ctx| {
            let armci = Armci::init(ctx);
            let g = armci.malloc(ctx, 8);
            let m = armci.create_mutexes(ctx, 1);
            // All ranks increment a non-atomic counter on rank 0 under the
            // same mutex: read, compute, write — racy without the lock.
            for _ in 0..5 {
                armci.lock(ctx, m, 0, 0);
                let mut buf = [0u8; 8];
                armci.get(ctx, g, 0, 0, &mut buf);
                let v = i64::from_le_bytes(buf);
                ctx.compute(50);
                armci.put(ctx, g, 0, 0, &(v + 1).to_le_bytes());
                armci.unlock(ctx, m, 0, 0);
            }
            armci.barrier(ctx);
            armci.read_i64(ctx, g, 0, 0)
        });
        for v in out.results {
            assert_eq!(v, 20);
        }
    }

    #[test]
    fn distinct_mutexes_do_not_interfere() {
        let out = Machine::run(MachineConfig::virtual_time(2), |ctx| {
            let armci = Armci::init(ctx);
            let m = armci.create_mutexes(ctx, 2);
            // Rank 0 takes mutex 0, rank 1 takes mutex 1 on the same target;
            // no deadlock, no blocking.
            armci.lock(ctx, m, ctx.rank(), 0);
            ctx.compute(100);
            armci.unlock(ctx, m, ctx.rank(), 0);
            ctx.now()
        });
        // Both finish around 100 ns — neither waited for the other.
        for t in out.results {
            assert!(t < 250, "unexpected blocking: {t} ns");
        }
    }

    #[test]
    fn try_lock_reports_contention() {
        let out = Machine::run(MachineConfig::virtual_time(2), |ctx| {
            let armci = Armci::init(ctx);
            let m = armci.create_mutexes(ctx, 1);
            if ctx.rank() == 0 {
                armci.lock(ctx, m, 0, 0);
                ctx.barrier_with_cost(0);
                ctx.barrier_with_cost(0);
                armci.unlock(ctx, m, 0, 0);
                true
            } else {
                ctx.barrier_with_cost(0);
                let got = armci.try_lock(ctx, m, 0, 0);
                ctx.barrier_with_cost(0);
                got
            }
        });
        assert_eq!(out.results, vec![true, false]);
    }

    #[test]
    #[should_panic(expected = "does not hold it")]
    fn unlock_without_lock_panics() {
        Machine::run(MachineConfig::virtual_time(1), |ctx| {
            let armci = Armci::init(ctx);
            let m = armci.create_mutexes(ctx, 1);
            armci.unlock(ctx, m, 0, 0);
        });
    }

    #[test]
    #[should_panic(expected = "re-entrantly")]
    fn reentrant_lock_panics() {
        Machine::run(MachineConfig::virtual_time(1), |ctx| {
            let armci = Armci::init(ctx);
            let m = armci.create_mutexes(ctx, 1);
            armci.lock(ctx, m, 0, 0);
            armci.lock(ctx, m, 0, 0);
        });
    }

    #[test]
    fn lock_unlock_seqs_pair_in_trace_order() {
        use scioto_sim::TraceConfig;
        let out = Machine::run(
            MachineConfig::virtual_time(2).with_trace(TraceConfig::enabled()),
            |ctx| {
                let armci = Armci::init(ctx);
                let m = armci.create_mutexes(ctx, 1);
                armci.lock(ctx, m, 0, 0);
                ctx.compute(50);
                armci.unlock(ctx, m, 0, 0);
                armci.barrier(ctx);
            },
        );
        let trace = out.report.trace.expect("tracing enabled");
        let mut all_seqs = Vec::new();
        for events in &trace.events {
            // Each rank's stream must show its acquisition before its
            // release, with the same ownership generation on both.
            let acq: Vec<(usize, u64)> = events
                .iter()
                .enumerate()
                .filter_map(|(i, e)| match e.event {
                    TraceEvent::LockAcq { seq, .. } => Some((i, seq)),
                    _ => None,
                })
                .collect();
            let rel: Vec<(usize, u64)> = events
                .iter()
                .enumerate()
                .filter_map(|(i, e)| match e.event {
                    TraceEvent::LockRel { seq, .. } => Some((i, seq)),
                    _ => None,
                })
                .collect();
            assert_eq!(acq.len(), 1);
            assert_eq!(rel.len(), 1);
            assert!(acq[0].0 < rel[0].0, "acquire must precede release");
            assert_eq!(acq[0].1, rel[0].1, "acquire/release generations pair");
            all_seqs.push(acq[0].1);
        }
        // Ownership generations are globally sequential across ranks.
        all_seqs.sort_unstable();
        assert_eq!(all_seqs, vec![1, 2]);
    }

    #[test]
    fn multiple_sets_coexist() {
        let out = Machine::run(MachineConfig::virtual_time(2), |ctx| {
            let armci = Armci::init(ctx);
            let a = armci.create_mutexes(ctx, 1);
            let b = armci.create_mutexes(ctx, 3);
            armci.lock(ctx, a, 0, 0);
            armci.lock(ctx, b, 2, 1);
            armci.unlock(ctx, b, 2, 1);
            armci.unlock(ctx, a, 0, 0);
            (a.count(), b.count())
        });
        assert!(out.results.iter().all(|&(x, y)| x == 1 && y == 3));
    }
}
