//! Non-blocking one-sided operations (ARMCI_NbPut / ARMCI_NbGet /
//! ARMCI_Wait).
//!
//! A non-blocking operation injects immediately — the caller is charged
//! only the injection overhead — while the transfer itself completes at
//! `injection time + network latency`. [`Armci::wait`] (or a fence)
//! advances the caller's clock to the completion time if it has not
//! already passed, which is exactly how overlap of communication with
//! computation manifests in virtual time.
//!
//! Data placement semantics: in this shared-memory model the bytes move
//! at injection, so remote readers may observe them slightly early; the
//! *timing* (what the paper's overlap optimizations exploit) is modelled
//! faithfully. Same-location ordering of a rank's own operations is
//! preserved.

use scioto_sim::{Ctx, RemoteOpKind, TraceEvent};

use crate::gmem::Gmem;
use crate::world::Armci;

/// Injection overhead of a non-blocking one-sided call (descriptor setup
/// and doorbell ring).
const INJECT_NS: u64 = 250;

/// Handle to an outstanding non-blocking operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NbHandle {
    /// Virtual time at which the transfer completes.
    complete_at: u64,
}

impl NbHandle {
    /// Virtual completion time of the operation.
    pub fn completes_at(&self) -> u64 {
        self.complete_at
    }

    /// Whether the operation has completed by the caller's current time.
    pub fn is_complete(&self, ctx: &Ctx) -> bool {
        ctx.now() >= self.complete_at
    }
}

impl Armci {
    /// Non-blocking contiguous put. Returns immediately after injection.
    pub fn nb_put(
        &self,
        ctx: &Ctx,
        g: Gmem,
        rank: usize,
        offset: usize,
        src: &[u8],
    ) -> NbHandle {
        ctx.yield_point();
        let seg = self.segment(g);
        assert!(
            offset + src.len() <= g.len(),
            "nb_put out of bounds: [{offset}, {})",
            offset + src.len()
        );
        seg.data[rank].lock()[offset..offset + src.len()].copy_from_slice(src);
        ctx.trace(|| TraceEvent::RemoteOp {
            kind: RemoteOpKind::Put,
            target: rank as u32,
            seg: g.id as u32,
            offset: offset as u64,
            bytes: src.len() as u32,
            atomic: false,
        });
        ctx.charge_cpu(INJECT_NS);
        NbHandle {
            complete_at: ctx.now() + self.xfer_cost(ctx, rank, src.len()),
        }
    }

    /// Non-blocking contiguous get. The destination buffer is filled at
    /// injection; it must not be *read* until [`Armci::wait`] returns (the
    /// completion time is when the data would really be present).
    pub fn nb_get(
        &self,
        ctx: &Ctx,
        g: Gmem,
        rank: usize,
        offset: usize,
        dst: &mut [u8],
    ) -> NbHandle {
        ctx.yield_point();
        let seg = self.segment(g);
        assert!(
            offset + dst.len() <= g.len(),
            "nb_get out of bounds: [{offset}, {})",
            offset + dst.len()
        );
        dst.copy_from_slice(&seg.data[rank].lock()[offset..offset + dst.len()]);
        ctx.trace(|| TraceEvent::RemoteOp {
            kind: RemoteOpKind::Get,
            target: rank as u32,
            seg: g.id as u32,
            offset: offset as u64,
            bytes: dst.len() as u32,
            atomic: false,
        });
        ctx.charge_cpu(INJECT_NS);
        NbHandle {
            complete_at: ctx.now() + self.xfer_cost(ctx, rank, dst.len()),
        }
    }

    /// Wait for a non-blocking operation: advances the caller's clock to
    /// the completion time (a no-op if already past — the overlap win).
    pub fn wait(&self, ctx: &Ctx, h: NbHandle) {
        ctx.advance_to(h.complete_at);
    }

    /// Wait for all of a set of handles.
    pub fn wait_all(&self, ctx: &Ctx, handles: &[NbHandle]) {
        for h in handles {
            self.wait(ctx, *h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scioto_sim::{LatencyModel, Machine, MachineConfig};

    #[test]
    fn overlap_hides_transfer_latency() {
        let out = Machine::run(
            MachineConfig::virtual_time(2).with_latency(LatencyModel::cluster()),
            |ctx| {
                let armci = Armci::init(ctx);
                let g = armci.malloc(ctx, 4096);
                if ctx.rank() != 0 {
                    armci.barrier(ctx);
                    return (0, 0);
                }
                // Blocking: put then compute.
                let t0 = ctx.now();
                let buf = [7u8; 4096];
                armci.put(ctx, g, 1, 0, &buf);
                ctx.compute(20_000);
                let blocking = ctx.now() - t0;
                // Non-blocking: inject, compute 20 µs, then wait.
                let t0 = ctx.now();
                let h = armci.nb_put(ctx, g, 1, 0, &buf);
                ctx.compute(20_000);
                armci.wait(ctx, h);
                let overlapped = ctx.now() - t0;
                armci.barrier(ctx);
                (blocking, overlapped)
            },
        );
        let (blocking, overlapped) = out.results[0];
        // The transfer (~7.6 µs) hides entirely behind the 20 µs compute.
        assert!(
            overlapped < blocking,
            "overlap gave no benefit: {overlapped} vs {blocking}"
        );
        assert!(
            overlapped <= 21_000,
            "overlapped time {overlapped} should be ~compute only"
        );
    }

    #[test]
    fn wait_charges_remaining_latency_when_not_overlapped() {
        let out = Machine::run(
            MachineConfig::virtual_time(2).with_latency(LatencyModel::cluster()),
            |ctx| {
                let armci = Armci::init(ctx);
                let g = armci.malloc(ctx, 1024);
                if ctx.rank() == 0 {
                    let t0 = ctx.now();
                    let h = armci.nb_put(ctx, g, 1, 0, &[1u8; 1024]);
                    armci.wait(ctx, h); // immediate wait = blocking cost
                    ctx.now() - t0
                } else {
                    0
                }
            },
        );
        // injection + full transfer latency (≥ remote_op).
        assert!(out.results[0] >= 3_300, "got {}", out.results[0]);
    }

    #[test]
    fn nb_get_roundtrips_data() {
        let out = Machine::run(MachineConfig::virtual_time(2), |ctx| {
            let armci = Armci::init(ctx);
            let g = armci.malloc(ctx, 8);
            if ctx.rank() == 1 {
                armci.put(ctx, g, 1, 0, &42i64.to_le_bytes());
            }
            armci.barrier(ctx);
            let mut buf = [0u8; 8];
            let h = armci.nb_get(ctx, g, 1, 0, &mut buf);
            armci.wait(ctx, h);
            i64::from_le_bytes(buf)
        });
        assert_eq!(out.results, vec![42, 42]);
    }

    #[test]
    fn handles_report_completion() {
        let out = Machine::run(
            MachineConfig::virtual_time(1).with_latency(LatencyModel::cluster()),
            |ctx| {
                let armci = Armci::init(ctx);
                let g = armci.malloc(ctx, 64);
                let h = armci.nb_put(ctx, g, 0, 0, &[0u8; 64]);
                let before = h.is_complete(ctx);
                ctx.compute(1_000_000);
                let after = h.is_complete(ctx);
                (before, after)
            },
        );
        assert_eq!(out.results[0], (false, true));
    }
}
