//! Remote read-modify-write operations (ARMCI_Rmw): fetch-and-add, swap,
//! compare-and-swap on 8-byte little-endian integers in global memory.

use scioto_sim::{Ctx, RemoteOpKind, TraceEvent};

use crate::gmem::Gmem;
use crate::world::Armci;

impl Armci {
    fn rmw_cost(&self, ctx: &Ctx, rank: usize) -> u64 {
        if rank == ctx.rank() {
            ctx.latency().local_get
        } else {
            ctx.latency().remote_op_to(ctx.rank(), rank, self.nranks)
        }
    }

    fn rmw<R>(
        &self,
        ctx: &Ctx,
        g: Gmem,
        rank: usize,
        offset: usize,
        f: impl FnOnce(i64) -> (i64, R),
    ) -> R {
        assert!(
            offset.is_multiple_of(8) && offset + 8 <= g.len(),
            "rmw offset {offset} invalid for segment of {} bytes",
            g.len()
        );
        let seg = self.segment(g);
        // Target-side serialization: the adapter services RMWs on one word
        // one at a time. Waiting in the service queue spans virtual time,
        // which is what bounds a hot counter's throughput.
        let service = ctx.latency().rmw_service;
        ctx.trace(|| TraceEvent::RemoteOp {
            kind: RemoteOpKind::Rmw,
            target: rank as u32,
            seg: g.id as u32,
            offset: offset as u64,
            bytes: 8,
            atomic: true,
        });
        let word = seg.hot_word(rank, offset);
        let _ = word.acquire(ctx, 0);
        ctx.charge_net(service);
        let mut data = seg.data[rank].lock();
        let cur = i64::from_le_bytes(data[offset..offset + 8].try_into().expect("8 bytes"));
        let (new, ret) = f(cur);
        data[offset..offset + 8].copy_from_slice(&new.to_le_bytes());
        drop(data);
        let _ = word.release(ctx, 0);
        ctx.charge_net(self.rmw_cost(ctx, rank));
        ret
    }

    /// Atomically add `val` to the i64 at `(rank, offset)`, returning the
    /// previous value.
    pub fn fetch_add_i64(&self, ctx: &Ctx, g: Gmem, rank: usize, offset: usize, val: i64) -> i64 {
        self.rmw(ctx, g, rank, offset, |cur| (cur.wrapping_add(val), cur))
    }

    /// Atomically replace the i64 at `(rank, offset)` with `val`, returning
    /// the previous value.
    pub fn swap_i64(&self, ctx: &Ctx, g: Gmem, rank: usize, offset: usize, val: i64) -> i64 {
        self.rmw(ctx, g, rank, offset, |cur| (val, cur))
    }

    /// Atomic compare-and-swap: if the i64 at `(rank, offset)` equals
    /// `expect`, store `new`. Returns the previous value either way.
    pub fn cas_i64(
        &self,
        ctx: &Ctx,
        g: Gmem,
        rank: usize,
        offset: usize,
        expect: i64,
        new: i64,
    ) -> i64 {
        self.rmw(ctx, g, rank, offset, |cur| {
            (if cur == expect { new } else { cur }, cur)
        })
    }

    /// Atomic read of the i64 at `(rank, offset)`.
    pub fn read_i64(&self, ctx: &Ctx, g: Gmem, rank: usize, offset: usize) -> i64 {
        self.rmw(ctx, g, rank, offset, |cur| (cur, cur))
    }

    /// Atomic write of the i64 at `(rank, offset)`.
    pub fn write_i64(&self, ctx: &Ctx, g: Gmem, rank: usize, offset: usize, val: i64) {
        self.rmw(ctx, g, rank, offset, |_| (val, ()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scioto_sim::{ExecMode, Machine, MachineConfig};

    #[test]
    fn fetch_add_produces_unique_tickets() {
        let out = Machine::run(MachineConfig::virtual_time(8), |ctx| {
            let armci = Armci::init(ctx);
            let g = armci.malloc(ctx, 8);
            let mut tickets = Vec::new();
            for _ in 0..10 {
                tickets.push(armci.fetch_add_i64(ctx, g, 0, 0, 1));
            }
            tickets
        });
        let mut all: Vec<i64> = out.results.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..80).collect::<Vec<i64>>());
    }

    #[test]
    fn fetch_add_unique_under_real_concurrency() {
        let cfg = MachineConfig {
            mode: ExecMode::Concurrent,
            ..MachineConfig::virtual_time(8)
        };
        let out = Machine::run(cfg, |ctx| {
            let armci = Armci::init(ctx);
            let g = armci.malloc(ctx, 8);
            (0..100)
                .map(|_| armci.fetch_add_i64(ctx, g, 0, 0, 1))
                .collect::<Vec<i64>>()
        });
        let mut all: Vec<i64> = out.results.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..800).collect::<Vec<i64>>());
    }

    #[test]
    fn swap_returns_previous() {
        let out = Machine::run(MachineConfig::virtual_time(1), |ctx| {
            let armci = Armci::init(ctx);
            let g = armci.malloc(ctx, 16);
            armci.write_i64(ctx, g, 0, 8, 5);
            let old = armci.swap_i64(ctx, g, 0, 8, 9);
            (old, armci.read_i64(ctx, g, 0, 8))
        });
        assert_eq!(out.results, vec![(5, 9)]);
    }

    #[test]
    fn cas_succeeds_only_on_match() {
        let out = Machine::run(MachineConfig::virtual_time(1), |ctx| {
            let armci = Armci::init(ctx);
            let g = armci.malloc(ctx, 8);
            armci.write_i64(ctx, g, 0, 0, 10);
            let a = armci.cas_i64(ctx, g, 0, 0, 99, 1); // fails
            let b = armci.cas_i64(ctx, g, 0, 0, 10, 1); // succeeds
            (a, b, armci.read_i64(ctx, g, 0, 0))
        });
        assert_eq!(out.results, vec![(10, 10, 1)]);
    }

    #[test]
    #[should_panic(expected = "rmw offset")]
    fn unaligned_rmw_panics() {
        Machine::run(MachineConfig::virtual_time(1), |ctx| {
            let armci = Armci::init(ctx);
            let g = armci.malloc(ctx, 16);
            armci.read_i64(ctx, g, 0, 3);
        });
    }
}
