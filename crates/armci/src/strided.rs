//! Strided one-sided operations (ARMCI_PutS / ARMCI_GetS / ARMCI_AccS).
//!
//! A strided descriptor names `count` segments of `seg_len` bytes, the
//! first at `offset`, each subsequent one `stride` bytes later — the shape
//! of a rectangular patch of a row-major matrix. Like ARMCI's strided
//! engine, one strided operation is charged as a single transfer of the
//! total payload (the NIC pipelines the segments).

use scioto_sim::Ctx;

use crate::gmem::Gmem;
use crate::world::Armci;

/// Descriptor of a strided region inside a rank's segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Strided {
    /// Byte offset of the first segment.
    pub offset: usize,
    /// Distance in bytes between the starts of consecutive segments.
    pub stride: usize,
    /// Bytes per segment.
    pub seg_len: usize,
    /// Number of segments.
    pub count: usize,
}

impl Strided {
    /// Total bytes covered by the descriptor.
    pub fn total_bytes(&self) -> usize {
        self.seg_len * self.count
    }

    /// Largest byte offset touched, plus one; zero for an empty region.
    pub fn end(&self) -> usize {
        if self.count == 0 || self.seg_len == 0 {
            return 0;
        }
        self.offset + (self.count - 1) * self.stride + self.seg_len
    }

    fn validate(&self, seg_bytes: usize) {
        if self.count == 0 || self.seg_len == 0 {
            return;
        }
        assert!(
            self.stride >= self.seg_len || self.count == 1,
            "strided segments overlap: stride {} < seg_len {}",
            self.stride,
            self.seg_len
        );
        assert!(
            self.end() <= seg_bytes,
            "strided access ends at {} but segment has {} bytes",
            self.end(),
            seg_bytes
        );
    }
}

impl Armci {
    /// Strided get: gather the described region of `(rank)`'s segment into
    /// the contiguous `dst` (`dst.len() == total_bytes`).
    pub fn get_strided(&self, ctx: &Ctx, g: Gmem, rank: usize, s: Strided, dst: &mut [u8]) {
        s.validate(g.len());
        assert_eq!(dst.len(), s.total_bytes(), "dst length mismatch");
        ctx.yield_point();
        let seg = self.segment(g);
        let data = seg.data[rank].lock();
        for i in 0..s.count {
            let src_off = s.offset + i * s.stride;
            dst[i * s.seg_len..(i + 1) * s.seg_len]
                .copy_from_slice(&data[src_off..src_off + s.seg_len]);
        }
        drop(data);
        ctx.charge_net(self.xfer_cost(ctx, rank, s.total_bytes()));
    }

    /// Strided put: scatter the contiguous `src` into the described region.
    pub fn put_strided(&self, ctx: &Ctx, g: Gmem, rank: usize, s: Strided, src: &[u8]) {
        s.validate(g.len());
        assert_eq!(src.len(), s.total_bytes(), "src length mismatch");
        ctx.yield_point();
        let seg = self.segment(g);
        let mut data = seg.data[rank].lock();
        for i in 0..s.count {
            let dst_off = s.offset + i * s.stride;
            data[dst_off..dst_off + s.seg_len]
                .copy_from_slice(&src[i * s.seg_len..(i + 1) * s.seg_len]);
        }
        drop(data);
        ctx.charge_net(self.xfer_cost(ctx, rank, s.total_bytes()));
    }

    /// Strided atomic f64 accumulate: `dest[i] += scale * src[i]` over the
    /// described region (`seg_len` must be a multiple of 8).
    pub fn acc_strided_f64(
        &self,
        ctx: &Ctx,
        g: Gmem,
        rank: usize,
        s: Strided,
        scale: f64,
        src: &[f64],
    ) {
        s.validate(g.len());
        assert_eq!(s.seg_len % 8, 0, "seg_len must be a multiple of 8");
        assert_eq!(s.offset % 8, 0, "offset must be 8-byte aligned");
        assert_eq!(src.len() * 8, s.total_bytes(), "src length mismatch");
        ctx.yield_point();
        let per_seg = s.seg_len / 8;
        let seg = self.segment(g);
        let mut data = seg.data[rank].lock();
        for i in 0..s.count {
            let base = s.offset + i * s.stride;
            for j in 0..per_seg {
                let o = base + j * 8;
                let cur = f64::from_le_bytes(data[o..o + 8].try_into().expect("8 bytes"));
                let v = src[i * per_seg + j];
                data[o..o + 8].copy_from_slice(&(cur + scale * v).to_le_bytes());
            }
        }
        drop(data);
        ctx.charge_net(self.xfer_cost(ctx, rank, s.total_bytes()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::typed::{bytes_to_f64s, f64s_to_bytes};
    use scioto_sim::{Machine, MachineConfig};

    #[test]
    fn strided_put_get_roundtrip() {
        let out = Machine::run(MachineConfig::virtual_time(2), |ctx| {
            let armci = Armci::init(ctx);
            let g = armci.malloc(ctx, 16 * 8); // a 4x4 f64 matrix
            // Rank 0 writes a 2x2 sub-block at (1,1) of rank 1's matrix.
            if ctx.rank() == 0 {
                let s = Strided {
                    offset: (4 + 1) * 8,
                    stride: 4 * 8,
                    seg_len: 2 * 8,
                    count: 2,
                };
                armci.put_strided(ctx, g, 1, s, &f64s_to_bytes(&[1.0, 2.0, 3.0, 4.0]));
            }
            armci.barrier(ctx);
            let s = Strided {
                offset: (4 + 1) * 8,
                stride: 4 * 8,
                seg_len: 2 * 8,
                count: 2,
            };
            let mut buf = vec![0u8; 32];
            armci.get_strided(ctx, g, 1, s, &mut buf);
            bytes_to_f64s(&buf)
        });
        for v in out.results {
            assert_eq!(v, vec![1.0, 2.0, 3.0, 4.0]);
        }
    }

    #[test]
    fn strided_put_leaves_gaps_untouched() {
        let out = Machine::run(MachineConfig::virtual_time(1), |ctx| {
            let armci = Armci::init(ctx);
            let g = armci.malloc(ctx, 6 * 8);
            armci.put_f64s(ctx, g, 0, 0, &[9.0; 6]);
            let s = Strided {
                offset: 0,
                stride: 3 * 8,
                seg_len: 8,
                count: 2,
            };
            armci.put_strided(ctx, g, 0, s, &f64s_to_bytes(&[1.0, 2.0]));
            armci.get_f64s(ctx, g, 0, 0, 6)
        });
        assert_eq!(out.results[0], vec![1.0, 9.0, 9.0, 2.0, 9.0, 9.0]);
    }

    #[test]
    fn strided_acc_accumulates_elementwise() {
        let out = Machine::run(MachineConfig::virtual_time(4), |ctx| {
            let armci = Armci::init(ctx);
            let g = armci.malloc(ctx, 4 * 8);
            let s = Strided {
                offset: 0,
                stride: 2 * 8,
                seg_len: 8,
                count: 2,
            };
            armci.acc_strided_f64(ctx, g, 0, s, 1.0, &[1.0, 10.0]);
            armci.barrier(ctx);
            armci.get_f64s(ctx, g, 0, 0, 4)
        });
        for v in out.results {
            assert_eq!(v, vec![4.0, 0.0, 40.0, 0.0]);
        }
    }

    #[test]
    fn empty_strided_is_noop() {
        let out = Machine::run(MachineConfig::virtual_time(1), |ctx| {
            let armci = Armci::init(ctx);
            let g = armci.malloc(ctx, 8);
            let s = Strided {
                offset: 0,
                stride: 8,
                seg_len: 0,
                count: 0,
            };
            let mut buf = Vec::new();
            armci.get_strided(ctx, g, 0, s, &mut buf);
            armci.put_strided(ctx, g, 0, s, &[]);
            true
        });
        assert!(out.results[0]);
    }

    #[test]
    #[should_panic(expected = "segments overlap")]
    fn overlapping_stride_rejected() {
        Machine::run(MachineConfig::virtual_time(1), |ctx| {
            let armci = Armci::init(ctx);
            let g = armci.malloc(ctx, 64);
            let s = Strided {
                offset: 0,
                stride: 4,
                seg_len: 8,
                count: 2,
            };
            armci.put_strided(ctx, g, 0, s, &[0u8; 16]);
        });
    }
}
