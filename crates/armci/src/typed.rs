//! Typed convenience views: put/get of `f64` / `i64` slices.

use scioto_sim::Ctx;

use crate::gmem::Gmem;
use crate::world::Armci;

/// Encode a slice of `f64` as little-endian bytes.
pub fn f64s_to_bytes(src: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(src.len() * 8);
    for v in src {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Decode little-endian bytes into `f64` values.
pub fn bytes_to_f64s(bytes: &[u8]) -> Vec<f64> {
    assert_eq!(bytes.len() % 8, 0, "byte length must be a multiple of 8");
    bytes
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().expect("8 bytes")))
        .collect()
}

/// Encode a slice of `i64` as little-endian bytes.
pub fn i64s_to_bytes(src: &[i64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(src.len() * 8);
    for v in src {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Decode little-endian bytes into `i64` values.
pub fn bytes_to_i64s(bytes: &[u8]) -> Vec<i64> {
    assert_eq!(bytes.len() % 8, 0, "byte length must be a multiple of 8");
    bytes
        .chunks_exact(8)
        .map(|c| i64::from_le_bytes(c.try_into().expect("8 bytes")))
        .collect()
}

impl Armci {
    /// Put a slice of `f64` at `(rank, byte offset)`.
    pub fn put_f64s(&self, ctx: &Ctx, g: Gmem, rank: usize, offset: usize, src: &[f64]) {
        self.put(ctx, g, rank, offset, &f64s_to_bytes(src));
    }

    /// Get `count` `f64` values from `(rank, byte offset)`.
    pub fn get_f64s(&self, ctx: &Ctx, g: Gmem, rank: usize, offset: usize, count: usize) -> Vec<f64> {
        let mut buf = vec![0u8; count * 8];
        self.get(ctx, g, rank, offset, &mut buf);
        bytes_to_f64s(&buf)
    }

    /// Put a slice of `i64` at `(rank, byte offset)`.
    pub fn put_i64s(&self, ctx: &Ctx, g: Gmem, rank: usize, offset: usize, src: &[i64]) {
        self.put(ctx, g, rank, offset, &i64s_to_bytes(src));
    }

    /// Get `count` `i64` values from `(rank, byte offset)`.
    pub fn get_i64s(&self, ctx: &Ctx, g: Gmem, rank: usize, offset: usize, count: usize) -> Vec<i64> {
        let mut buf = vec![0u8; count * 8];
        self.get(ctx, g, rank, offset, &mut buf);
        bytes_to_i64s(&buf)
    }

    /// [`Armci::put_i64s`] whose trace record marks the access atomic —
    /// for protocol words ordered by the enclosing algorithm rather than a
    /// lock (same cost as `put_i64s`).
    pub fn put_i64s_atomic(&self, ctx: &Ctx, g: Gmem, rank: usize, offset: usize, src: &[i64]) {
        // protocol: typed passthrough — the caller's site names the
        // ordering protocol for the words it writes.
        self.put_atomic(ctx, g, rank, offset, &i64s_to_bytes(src));
    }

    /// [`Armci::get_i64s`] whose trace record marks the access atomic.
    pub fn get_i64s_atomic(
        &self,
        ctx: &Ctx,
        g: Gmem,
        rank: usize,
        offset: usize,
        count: usize,
    ) -> Vec<i64> {
        let mut buf = vec![0u8; count * 8];
        // protocol: typed passthrough — the caller's site names the
        // ordering protocol for the words it reads.
        self.get_atomic(ctx, g, rank, offset, &mut buf);
        bytes_to_i64s(&buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scioto_sim::{Machine, MachineConfig};

    #[test]
    fn byte_codecs_roundtrip() {
        let f = vec![1.5, -2.25, 0.0, f64::MAX];
        assert_eq!(bytes_to_f64s(&f64s_to_bytes(&f)), f);
        let i = vec![0, -1, i64::MIN, i64::MAX];
        assert_eq!(bytes_to_i64s(&i64s_to_bytes(&i)), i);
    }

    #[test]
    fn typed_put_get_roundtrip() {
        let out = Machine::run(MachineConfig::virtual_time(2), |ctx| {
            let armci = Armci::init(ctx);
            let g = armci.malloc(ctx, 256);
            if ctx.rank() == 0 {
                armci.put_f64s(ctx, g, 1, 16, &[3.5, 4.5]);
                armci.put_i64s(ctx, g, 1, 64, &[-7, 8]);
            }
            armci.barrier(ctx);
            (
                armci.get_f64s(ctx, g, 1, 16, 2),
                armci.get_i64s(ctx, g, 1, 64, 2),
            )
        });
        for (f, i) in out.results {
            assert_eq!(f, vec![3.5, 4.5]);
            assert_eq!(i, vec![-7, 8]);
        }
    }

    #[test]
    #[should_panic(expected = "multiple of 8")]
    fn ragged_decode_panics() {
        bytes_to_f64s(&[0u8; 7]);
    }
}
