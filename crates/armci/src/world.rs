//! The `Armci` world object: initialization, fences, barrier.

use std::sync::Arc;

use scioto_det::sync::RwLock;

use scioto_sim::Ctx;

use crate::gmem::Segment;
use crate::locks::MutexStorage;

/// The ARMCI communication world for one machine.
///
/// Created collectively by [`Armci::init`]; all operations are methods on
/// this object and take the calling rank's [`Ctx`].
pub struct Armci {
    pub(crate) nranks: usize,
    pub(crate) segments: RwLock<Vec<Arc<Segment>>>,
    pub(crate) mutex_sets: RwLock<Vec<Arc<MutexStorage>>>,
}

impl Armci {
    /// Collectively initialize the ARMCI layer. Every rank must call this
    /// once, at the same point of the program.
    ///
    /// Under the default coalesced startup protocol this is barrier-free
    /// (see [`Ctx::collective`]); callers that stack several collective
    /// creations back-to-back — init, mallocs, mutex sets — can wrap the
    /// group in [`Ctx::collective_epoch`] so one commit barrier covers
    /// all of them.
    pub fn init(ctx: &Ctx) -> Arc<Armci> {
        let n = ctx.nranks();
        ctx.collective(|| Armci {
            nranks: n,
            segments: RwLock::new(Vec::new()),
            mutex_sets: RwLock::new(Vec::new()),
        })
    }

    /// Number of ranks in the world.
    pub fn nranks(&self) -> usize {
        self.nranks
    }

    /// Wait for completion of outstanding one-sided operations issued to
    /// `target`. Operations complete synchronously in this model, so a
    /// fence only charges the confirmation round-trip.
    pub fn fence(&self, ctx: &Ctx, target: usize) {
        ctx.yield_point();
        let cost = if target == ctx.rank() {
            ctx.latency().local_get
        } else {
            ctx.latency().remote_op_to(ctx.rank(), target, self.nranks)
        };
        ctx.charge_net(cost);
    }

    /// Fence all targets.
    pub fn all_fence(&self, ctx: &Ctx) {
        ctx.yield_point();
        ctx.charge_net(ctx.latency().remote_op);
    }

    /// ARMCI barrier: an all-fence followed by a tree barrier.
    pub fn barrier(&self, ctx: &Ctx) {
        let l = ctx.latency();
        let cost = l.remote_op + l.barrier_cost(self.nranks);
        ctx.barrier_with_cost(cost);
    }
}
