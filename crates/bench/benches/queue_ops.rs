//! Real (wall-clock) software overhead of the queue operations — the
//! host-side complement to the modelled Table 1 numbers: how many
//! nanoseconds of actual CPU the split-queue code paths cost in this
//! implementation, measured on a 2-rank zero-latency machine.

use scioto_bench::tinybench::bench_custom;

use scioto::{Task, TaskCollection, TcConfig};
use scioto_armci::Armci;
use scioto_sim::{Machine, MachineConfig, TraceConfig};

/// Run `iters` local push+pop pairs inside one machine and return the
/// wall time of the whole run. `trace` toggles the tracing layer so the
/// disabled-sink overhead (`TraceSink::Disabled`, one branch per site)
/// can be compared against the plain baseline — the PR's budget is <3%.
fn push_pop_run(iters: u64, trace: TraceConfig) -> std::time::Duration { // scioto-lint: allow(wallclock)
    let start = std::time::Instant::now(); // scioto-lint: allow(wallclock)
    Machine::run(MachineConfig::virtual_time(1).with_trace(trace), |ctx| {
        let armci = Armci::init(ctx);
        let tc = TaskCollection::create(ctx, &armci, TcConfig::new(64, 10, 1 << 14));
        let h = tc.register(ctx, std::sync::Arc::new(|_| {}));
        let task = Task::with_body_size(h, 64);
        for _ in 0..iters {
            tc.bench_push_local(ctx, &task);
            std::hint::black_box(tc.bench_pop_local(ctx));
        }
    });
    start.elapsed()
}

/// Steal path: rank 1 repeatedly steals chunks that rank 0 replenishes.
fn steal_run(iters: u64) -> std::time::Duration { // scioto-lint: allow(wallclock)
    let start = std::time::Instant::now(); // scioto-lint: allow(wallclock)
    Machine::run(MachineConfig::virtual_time(2), move |ctx| {
        let armci = Armci::init(ctx);
        // The harness scales `iters`; the queue must hold all seeded tasks.
        let capacity = (iters as usize * 10 + 64).next_power_of_two();
        let cfg = TcConfig {
            release_threshold: 1 << 20,
            ..TcConfig::new(64, 10, capacity)
        };
        let tc = TaskCollection::create(ctx, &armci, cfg);
        let h = tc.register(ctx, std::sync::Arc::new(|_| {}));
        let task = Task::with_body_size(h, 64);
        if ctx.rank() == 0 {
            for _ in 0..iters * 10 {
                tc.bench_push_local(ctx, &task);
            }
        }
        armci.barrier(ctx);
        if ctx.rank() == 1 {
            for _ in 0..iters {
                std::hint::black_box(tc.bench_steal(ctx, 0));
            }
        }
        armci.barrier(ctx);
    });
    start.elapsed()
}

fn main() {
    println!("== queue_software_overhead ==");
    bench_custom("local_push_pop_pair", |iters| {
        push_pop_run(iters.max(1), TraceConfig::disabled())
    });
    // Same workload with the tracing ring enabled, to bound the cost of
    // instrumentation when a trace is actually collected.
    bench_custom("local_push_pop_pair_traced", |iters| {
        push_pop_run(iters.max(1), TraceConfig::enabled())
    });
    bench_custom("steal_chunk10", |iters| steal_run(iters.max(1)));
}
