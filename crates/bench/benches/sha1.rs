//! Per-node UTS processing cost (§6.3 of the paper): the paper reports
//! 0.3158 µs (Opteron 254), 0.4753 µs (Xeon), 0.5681 µs (XT4 Opteron 285)
//! per tree node — dominated by the SHA-1 evaluations that generate
//! children. This bench measures the same quantity on the host CPU.

use scioto_bench::tinybench::bench;

use scioto_uts::node::{TreeKind, TreeParams};
use scioto_uts::sha1::sha1;

fn main() {
    println!("== uts_node_processing ==");
    let msg = [0xA5u8; 24];
    bench("sha1_24byte_message", || {
        std::hint::black_box(sha1(std::hint::black_box(&msg)));
    });

    let p = TreeParams {
        kind: TreeKind::Geometric {
            b0: 4.0,
            gen_mx: 1_000,
        },
        seed: 3,
    };
    let root = p.root();
    bench("uts_node_visit_and_spawn", || {
        let kids = p.num_children(std::hint::black_box(&root));
        let mut acc = 0u8;
        for i in 0..kids {
            acc ^= root.child(i).state[0];
        }
        std::hint::black_box(acc);
    });
}
