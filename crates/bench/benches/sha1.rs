//! Per-node UTS processing cost (§6.3 of the paper): the paper reports
//! 0.3158 µs (Opteron 254), 0.4753 µs (Xeon), 0.5681 µs (XT4 Opteron 285)
//! per tree node — dominated by the SHA-1 evaluations that generate
//! children. This bench measures the same quantity on the host CPU.

use criterion::{criterion_group, criterion_main, Criterion};

use scioto_uts::node::{TreeKind, TreeParams};
use scioto_uts::sha1::sha1;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("uts_node_processing");
    g.bench_function("sha1_24byte_message", |b| {
        let msg = [0xA5u8; 24];
        b.iter(|| std::hint::black_box(sha1(std::hint::black_box(&msg))))
    });
    g.bench_function("uts_node_visit_and_spawn", |b| {
        let p = TreeParams {
            kind: TreeKind::Geometric {
                b0: 4.0,
                gen_mx: 1_000,
            },
            seed: 3,
        };
        let root = p.root();
        b.iter(|| {
            let kids = p.num_children(std::hint::black_box(&root));
            let mut acc = 0u8;
            for i in 0..kids {
                acc ^= root.child(i).state[0];
            }
            std::hint::black_box(acc)
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
