//! Host-side cost of running the full termination-detection protocol to
//! completion (all ranks passive, single no-op task) at several machine
//! sizes — the wall-clock complement of Figure 4's virtual-time numbers,
//! and an ablation of the §5.3 votes-before optimization's bookkeeping.

use scioto_bench::tinybench::bench;

use scioto::{Task, TaskCollection, TcConfig, AFFINITY_HIGH};
use scioto_armci::Armci;
use scioto_sim::{LatencyModel, Machine, MachineConfig};

fn run_once(p: usize, votes_before: bool) {
    Machine::run(
        MachineConfig::virtual_time(p).with_latency(LatencyModel::cluster()),
        |ctx| {
            let armci = Armci::init(ctx);
            let cfg = TcConfig::new(8, 10, 64).with_votes_before_opt(votes_before);
            let tc = TaskCollection::create(ctx, &armci, cfg);
            let h = tc.register(ctx, std::sync::Arc::new(|_| {}));
            if ctx.rank() == 0 {
                tc.add(ctx, 0, AFFINITY_HIGH, &Task::new(h, vec![]));
            }
            tc.process(ctx);
        },
    );
}

fn main() {
    println!("== termination_detection ==");
    for p in [2usize, 8, 32] {
        bench(&format!("noop_phase/{p}"), || run_once(p, true));
    }
    bench("noop_phase_no_votes_before_opt_p8", || run_once(8, false));
}
