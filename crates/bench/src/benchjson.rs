//! Machine-readable benchmark output: the `scioto-bench-v1` JSON schema,
//! its writer, validator, and parser.
//!
//! Every bench binary accepts `--json-out <path>` and writes one document:
//!
//! ```json
//! {
//! "schema":"scioto-bench-v1",
//! "name":"table1",
//! "generated_wall_ns":1754500000000000000,
//! "params":{"chunk":"10","ranks":"2"},
//! "metrics":{"cluster_local_insert_ns":495.000000}
//! }
//! ```
//!
//! Layout rules that downstream tools rely on:
//!
//! * `params` keys and `metrics` keys are emitted in sorted order;
//! * metric values use fixed six-decimal formatting;
//! * `generated_wall_ns` — the only nondeterministic field — sits alone
//!   on its own line, so same-seed determinism checks compare documents
//!   with that single line dropped (see [`strip_wall_clock`]).
//!
//! `bench_diff` compares two documents with [`parse`] and flags metric
//! drift beyond configurable tolerances.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::Args;

/// Schema tag written into every bench JSON document.
pub const BENCH_SCHEMA: &str = "scioto-bench-v1";

/// One benchmark result: a name, the parameters that shaped the run, and
/// the measured metrics.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BenchOut {
    /// Benchmark name (`table1`, `fig7_uts_cluster`, ...).
    pub name: String,
    /// Run parameters as strings (rank caps, tree presets, ...).
    pub params: BTreeMap<String, String>,
    /// Measured values. Virtual-time metrics are deterministic for a
    /// given seed; the diff tool's tolerances exist for intentional
    /// code changes, not run-to-run noise.
    pub metrics: BTreeMap<String, f64>,
}

impl BenchOut {
    /// Start a result document for the benchmark `name`.
    pub fn new(name: &str) -> BenchOut {
        BenchOut {
            name: name.to_string(),
            ..Default::default()
        }
    }

    /// Record a run parameter.
    pub fn param(&mut self, key: &str, value: impl std::fmt::Display) {
        self.params.insert(key.to_string(), value.to_string());
    }

    /// Record a metric.
    pub fn metric(&mut self, key: &str, value: f64) {
        self.metrics.insert(key.to_string(), value);
    }

    /// Render the versioned JSON document. `wall_ns` is the wall-clock
    /// stamp (the single nondeterministic field).
    pub fn to_json(&self, wall_ns: u64) -> String {
        let mut out = String::with_capacity(1024);
        let _ = write!(
            out,
            "{{\n\"schema\":\"{BENCH_SCHEMA}\",\n\"name\":\"{}\",\n\"generated_wall_ns\":{wall_ns},\n\"params\":{{",
            self.name
        );
        for (i, (k, v)) in self.params.iter().enumerate() {
            let _ = write!(out, "{}\"{k}\":\"{v}\"", if i == 0 { "" } else { "," });
        }
        out.push_str("},\n\"metrics\":{");
        for (i, (k, v)) in self.metrics.iter().enumerate() {
            let _ = write!(out, "{}\"{k}\":{v:.6}", if i == 0 { "" } else { "," });
        }
        out.push_str("}\n}\n");
        out
    }

    /// Write the document to the `--json-out` path when the flag is
    /// present; no-op otherwise. Panics on I/O failure (bench harness
    /// context — a silent miss would invalidate the run).
    pub fn write_if_requested(&self, args: &Args) {
        let Some(path) = args.get_opt("json-out") else {
            return;
        };
        let wall_ns = std::time::SystemTime::now() // scioto-lint: allow(wallclock)
            .duration_since(std::time::UNIX_EPOCH) // scioto-lint: allow(wallclock)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        let body = self.to_json(wall_ns);
        validate(&body).expect("generated bench JSON must satisfy its own schema");
        std::fs::write(&path, &body).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        eprintln!("bench json: {} metric(s) written to {path}", self.metrics.len());
    }
}

/// Drop the `generated_wall_ns` line — the document's only
/// nondeterministic content — for byte-identical same-seed comparison.
pub fn strip_wall_clock(body: &str) -> String {
    body.lines()
        .filter(|l| !l.starts_with("\"generated_wall_ns\""))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Validate that `body` is well-formed JSON carrying the
/// `scioto-bench-v1` shape (schema tag, name, params, metrics).
pub fn validate(body: &str) -> Result<(), String> {
    scioto_sim::validate_json(body).map_err(|e| format!("not valid JSON: {e}"))?;
    for needle in [
        &format!("\"schema\":\"{BENCH_SCHEMA}\"") as &str,
        "\"name\":",
        "\"generated_wall_ns\":",
        "\"params\":{",
        "\"metrics\":{",
    ] {
        if !body.contains(needle) {
            return Err(format!("missing required member {needle}"));
        }
    }
    Ok(())
}

/// Parse a `scioto-bench-v1` document back into a [`BenchOut`].
/// Accepts exactly the canonical layout [`BenchOut::to_json`] emits.
pub fn parse(body: &str) -> Result<BenchOut, String> {
    validate(body)?;
    let mut out = BenchOut::default();
    out.name = extract_string(body, "\"name\":\"").ok_or("cannot read name")?;
    let params = extract_object(body, "\"params\":{").ok_or("cannot read params")?;
    for (k, v) in split_members(&params) {
        let v = v
            .strip_prefix('"')
            .and_then(|v| v.strip_suffix('"'))
            .ok_or_else(|| format!("param {k} is not a string"))?;
        out.params.insert(k, v.to_string());
    }
    let metrics = extract_object(body, "\"metrics\":{").ok_or("cannot read metrics")?;
    for (k, v) in split_members(&metrics) {
        let v: f64 = v.parse().map_err(|_| format!("metric {k} is not a number: {v}"))?;
        out.metrics.insert(k, v);
    }
    Ok(out)
}

fn extract_string(body: &str, prefix: &str) -> Option<String> {
    let rest = &body[body.find(prefix)? + prefix.len()..];
    Some(rest[..rest.find('"')?].to_string())
}

fn extract_object(body: &str, prefix: &str) -> Option<String> {
    let rest = &body[body.find(prefix)? + prefix.len()..];
    Some(rest[..rest.find('}')?].to_string())
}

/// Split a canonical flat object body (`"k":v,"k2":v2`) into pairs.
/// Values never contain commas or colons in this schema.
fn split_members(body: &str) -> Vec<(String, String)> {
    let mut out = Vec::new();
    for member in body.split(',') {
        if member.is_empty() {
            continue;
        }
        if let Some((k, v)) = member.split_once(':') {
            let k = k.trim_matches('"');
            out.push((k.to_string(), v.to_string()));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchOut {
        let mut b = BenchOut::new("table1");
        b.param("ranks", 2);
        b.param("chunk", 10);
        b.metric("cluster_local_insert_ns", 495.25);
        b.metric("xt4_remote_steal_ns", 32384.0);
        b
    }

    #[test]
    fn json_is_valid_and_round_trips() {
        let b = sample();
        let json = b.to_json(12345);
        validate(&json).unwrap();
        assert!(json.contains("\"generated_wall_ns\":12345,"));
        let parsed = parse(&json).unwrap();
        assert_eq!(parsed, b);
    }

    #[test]
    fn keys_are_sorted_and_floats_canonical() {
        let json = sample().to_json(0);
        let ci = json.find("cluster_local_insert_ns").unwrap();
        let xr = json.find("xt4_remote_steal_ns").unwrap();
        assert!(ci < xr);
        let chunk = json.find("\"chunk\"").unwrap();
        let ranks = json.find("\"ranks\"").unwrap();
        assert!(chunk < ranks);
        assert!(json.contains("\"cluster_local_insert_ns\":495.250000"));
    }

    #[test]
    fn wall_clock_strips_to_identical_documents() {
        let a = sample().to_json(1);
        let b = sample().to_json(999_999_999);
        assert_ne!(a, b);
        assert_eq!(strip_wall_clock(&a), strip_wall_clock(&b));
        assert!(!strip_wall_clock(&a).contains("generated_wall_ns"));
    }

    #[test]
    fn validate_rejects_wrong_shape() {
        assert!(validate("{}").is_err());
        assert!(validate("not json").is_err());
        let mut json = sample().to_json(0);
        json = json.replace(BENCH_SCHEMA, "scioto-bench-v0");
        assert!(validate(&json).is_err());
    }
}
