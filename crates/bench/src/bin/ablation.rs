//! Ablation studies of Scioto's design choices (§5, §5.1, §5.3):
//!
//! * **steal chunk size** — tasks moved per steal operation vs. UTS
//!   throughput (the `chunk_sz` parameter of `tc_create`);
//! * **split release policy** — how much private work the owner exposes
//!   for stealing;
//! * **votes-before optimization** — dirty-mark messages elided by the
//!   §5.3 rule, and its effect on termination cost.
//!
//! Run: `cargo run --release -p scioto-bench --bin ablation`
//! Options: `--engine auto|threads|events`, `--latency flat|nearfar`,
//! plus the policy flags `--victim`, `--barrier`, `--td-batch`,
//! `--old-policy` shared with the other bench binaries.

use std::sync::Arc;

use scioto::{StatsSummary, Task, TaskCollection, TcConfig, AFFINITY_HIGH};
use scioto_armci::Armci;
use scioto_bench::{
    dump_analysis, dump_trace, engine_from_args, obs_requested, run_predict_check, run_race_check, run_replay_check, render_table,
    startup_from_args, startup_param, trace_config, us, Args, BenchOut, LatencyPreset, PolicyFlags,
};
use scioto_sim::{Engine, LatencyModel, Machine, MachineConfig, SpeedModel, StartupMode};

#[derive(Clone, Copy)]
struct SimOpts {
    engine: Engine,
    latency: LatencyPreset,
    startup: StartupMode,
}

fn cluster_machine(p: usize, policy: PolicyFlags, sim: SimOpts) -> MachineConfig {
    MachineConfig::virtual_time(p)
        .with_latency(sim.latency.apply(LatencyModel::cluster()))
        .with_barrier(policy.barrier)
        .with_engine(sim.engine)
        .with_startup(sim.startup)
}
use scioto_uts::scioto_driver::{run_scioto_uts, SciotoUtsConfig};
use scioto_uts::{presets, TreeStats};

fn uts_rate(p: usize, chunk: usize, policy: PolicyFlags, sim: SimOpts) -> (f64, u64) {
    let params = presets::small();
    let out = Machine::run(
        cluster_machine(p, policy, sim).with_speed(SpeedModel::hetero_cluster(p)),
        move |ctx| {
            let cfg = SciotoUtsConfig {
                chunk,
                victim: Some(policy.victim),
                td_batch: Some(policy.td_batch),
                ..SciotoUtsConfig::new(params)
            };
            run_scioto_uts(ctx, &cfg)
        },
    );
    let mut total = TreeStats::default();
    let mut steals = 0;
    for (t, s) in &out.results {
        total.merge(t);
        steals += s.steals_succeeded;
    }
    (
        total.nodes as f64 / (out.report.makespan_ns as f64 / 1e9) / 1e6,
        steals,
    )
}

fn chunk_sweep(bench: &mut BenchOut, policy: PolicyFlags, sim: SimOpts) {
    let mut rows = Vec::new();
    for chunk in [1usize, 2, 5, 10, 20, 50] {
        let (rate, steals) = uts_rate(16, chunk, policy, sim);
        bench.metric(&format!("chunk{chunk:02}_mnodes"), rate);
        bench.metric(&format!("chunk{chunk:02}_steals"), steals as f64);
        rows.push(vec![
            chunk.to_string(),
            format!("{rate:.2}"),
            steals.to_string(),
        ]);
    }
    print!(
        "{}",
        render_table(
            "Ablation: steal chunk size (UTS, 16 ranks, heterogeneous cluster)",
            &["chunk", "Mnodes/s", "successful steals"],
            &rows,
        )
    );
}

fn release_sweep(bench: &mut BenchOut, policy: PolicyFlags, sim: SimOpts) {
    let params = presets::small();
    let mut rows = Vec::new();
    for (threshold, fraction) in [(1usize, 0.25f64), (10, 0.5), (10, 0.9), (64, 0.5)] {
        let out = Machine::run(
            cluster_machine(16, policy, sim).with_speed(SpeedModel::hetero_cluster(16)),
            move |ctx| {
                let cfg = SciotoUtsConfig {
                    release_threshold: Some(threshold),
                    release_fraction: Some(fraction),
                    victim: Some(policy.victim),
                    td_batch: Some(policy.td_batch),
                    ..SciotoUtsConfig::new(params)
                };
                run_scioto_uts(ctx, &cfg).0
            },
        );
        let mut total = TreeStats::default();
        out.results.iter().for_each(|t| total.merge(t));
        let rate = total.nodes as f64 / (out.report.makespan_ns as f64 / 1e9) / 1e6;
        bench.metric(&format!("release_t{threshold:02}_f{fraction}_mnodes"), rate);
        rows.push(vec![format!("{threshold}/{fraction}"), format!("{rate:.2}")]);
    }
    print!(
        "{}",
        render_table(
            "Ablation: split release threshold/fraction (UTS, 16 ranks)",
            &["threshold/fraction", "Mnodes/s"],
            &rows,
        )
    );
}

fn votes_before(bench: &mut BenchOut, policy: PolicyFlags, sim: SimOpts) {
    let mut rows = Vec::new();
    for opt in [true, false] {
        let out = Machine::run(
            cluster_machine(16, policy, sim),
            move |ctx| {
                let armci = Armci::init(ctx);
                let cfg = TcConfig::new(8, 2, 4096)
                    .with_votes_before_opt(opt)
                    .with_victim(policy.victim)
                    .with_td_batch(policy.td_batch);
                let tc = TaskCollection::create(ctx, &armci, cfg);
                let h = tc.register(ctx, Arc::new(|t| t.ctx.compute(5_000)));
                if ctx.rank() == 0 {
                    for _ in 0..500 {
                        tc.add(ctx, 0, AFFINITY_HIGH, &Task::new(h, vec![]));
                    }
                }
                let t0 = ctx.now();
                let stats = tc.process(ctx);
                (stats, ctx.now() - t0)
            },
        );
        let summary = StatsSummary::from_ranks(
            &out.results.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
        );
        let makespan = out.results.iter().map(|(_, t)| *t).max().unwrap();
        let tag = if opt { "on" } else { "off" };
        bench.metric(
            &format!("votes_{tag}_marks_sent"),
            summary.totals.dirty_marks_sent as f64,
        );
        bench.metric(
            &format!("votes_{tag}_marks_elided"),
            summary.totals.dirty_marks_elided as f64,
        );
        bench.metric(&format!("votes_{tag}_phase_ns"), makespan as f64);
        rows.push(vec![
            if opt { "on (§5.3)" } else { "off" }.to_string(),
            summary.totals.dirty_marks_sent.to_string(),
            summary.totals.dirty_marks_elided.to_string(),
            us(makespan),
        ]);
    }
    print!(
        "{}",
        render_table(
            "Ablation: votes-before dirty-mark elision (500 tasks, 16 ranks)",
            &["optimization", "marks sent", "marks elided", "phase µs"],
            &rows,
        )
    );
}

fn main() {
    let args = Args::parse();
    let policy = PolicyFlags::from_args(&args);
    let sim = SimOpts {
        engine: engine_from_args(&args),
        latency: LatencyPreset::from_args(&args),
        startup: startup_from_args(&args),
    };
    if obs_requested(&args) {
        // Dedicated traced votes-before run at 8 ranks; the ablation
        // tables below stay untraced.
        let out = Machine::run(
            cluster_machine(8, policy, sim).with_trace(trace_config(&args)),
            move |ctx| {
                let armci = Armci::init(ctx);
                let cfg = TcConfig::new(8, 2, 4096)
                    .with_votes_before_opt(true)
                    .with_victim(policy.victim)
                    .with_td_batch(policy.td_batch);
                let tc = TaskCollection::create(ctx, &armci, cfg);
                let h = tc.register(ctx, Arc::new(|t| t.ctx.compute(5_000)));
                if ctx.rank() == 0 {
                    for _ in 0..100 {
                        tc.add(ctx, 0, AFFINITY_HIGH, &Task::new(h, vec![]));
                    }
                }
                tc.process(ctx);
            },
        );
        dump_trace(&args, &out.report);
        dump_analysis(&args, &out.report);
        run_race_check(&args, &out.report);
        run_predict_check(&args, &out.report);
        run_replay_check(&args, &out.report);
    }
    let mut bench = BenchOut::new("ablation");
    bench.param("ranks", 16);
    for (k, v) in policy.params() {
        bench.param(k, v);
    }
    if let Some((k, v)) = sim.latency.param() {
        bench.param(k, v);
    }
    if let Some((k, v)) = startup_param(sim.startup) {
        bench.param(k, v);
    }
    chunk_sweep(&mut bench, policy, sim);
    release_sweep(&mut bench, policy, sim);
    votes_before(&mut bench, policy, sim);
    bench.write_if_requested(&args);
}
