//! Analyze a JSONL trace dump offline: blame decomposition, steal
//! provenance, and critical path, without re-running the simulation.
//!
//! Run: `cargo run -p scioto-bench --bin analyze -- \
//!           --file /tmp/trace.jsonl [--json-out /tmp/analysis.json]`
//!
//! The human-readable report goes to stdout; `--json-out` additionally
//! writes the `scioto-analysis-v1` JSON document. The input must be a
//! JSONL dump from `--trace-out <path>.jsonl` (the meta header carries
//! the rank count, final clocks, and drop counters the analysis needs).
//!
//! Exits 0 on success, 1 on unreadable/malformed input. Ring-overflow
//! and truncation warnings are printed but do not fail the run.

use scioto_analyze::jsonl;
use scioto_bench::Args;

fn main() {
    let args = Args::parse();
    let Some(path) = args.get_opt("file") else {
        eprintln!("usage: analyze --file <trace.jsonl> [--json-out <analysis.json>]");
        std::process::exit(1);
    };
    let body = match std::fs::read_to_string(&path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("analyze: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let trace = match jsonl::parse(&body) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("analyze: {path}: {e}");
            std::process::exit(1);
        }
    };
    let report = scioto_analyze::analyze(&trace);
    for w in &report.warnings {
        eprintln!("analyze WARNING: {w}");
    }
    print!("{}", report.to_text());
    if let Some(out) = args.get_opt("json-out") {
        let json = report.to_json();
        scioto_sim::validate_json(&json).expect("analysis JSON must be valid");
        std::fs::write(&out, json).unwrap_or_else(|e| panic!("writing {out}: {e}"));
        eprintln!("analyze: JSON report written to {out}");
    }
}
