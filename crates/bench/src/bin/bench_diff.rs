//! Compare `scioto-bench-v1` JSON documents and flag metric drift.
//!
//! Pairwise: `cargo run -p scioto-bench --bin bench_diff -- \
//!     --baseline results/baselines/BENCH_table1.json \
//!     --new /tmp/BENCH_table1.json [--rel-tol 0.05] [--abs-tol 1e-9]`
//!
//! Directory mode: `bench_diff --all <dir> [--baseline-dir results/baselines]`
//! compares every `BENCH_*.json` under `<dir>` against the same-named
//! file in the baseline directory, applying the same tolerances to each
//! pair — one invocation covers a whole blessed set.
//!
//! A metric drifts when `|new - base| > abs_tol + rel_tol * |base|`, in
//! either direction — an unexpected speedup is as suspicious as a
//! slowdown when virtual-time results are supposed to be deterministic.
//! Metrics present in only one document always count as drift.
//!
//! Exit codes: 0 all metrics within tolerance; 1 drift detected;
//! 2 usage error, unreadable/invalid file, missing baseline, or
//! benchmark/params mismatch (comparing runs with different parameters
//! is a harness bug, not a regression).
//!
//! `--ignore-params victim,barrier,td_batch` drops the named params from
//! both documents before the equality gate — for deliberate cross-policy
//! comparisons (e.g. the old-vs-new hot-path ablation), where the runs
//! differ *only* in those recorded knobs.
//!
//! `--ignore-metrics split_startup_ns_*` drops matching metrics from both
//! documents before comparison (a trailing `*` matches any suffix) — for
//! cross-mode diffs where one side legitimately records extra metrics
//! (the coalesced startup split is absent under `--old-startup`).

use scioto_bench::{benchjson, Args};

fn load(path: &str) -> benchjson::BenchOut {
    let body = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("bench_diff: cannot read {path}: {e}");
        std::process::exit(2);
    });
    benchjson::parse(&body).unwrap_or_else(|e| {
        eprintln!("bench_diff: {path}: {e}");
        std::process::exit(2);
    })
}

struct Tolerance {
    rel: f64,
    abs: f64,
    ignore: Vec<String>,
    ignore_metrics: Vec<String>,
}

/// `pat` matches `key` exactly, or by prefix when it ends in `*`.
fn metric_matches(pat: &str, key: &str) -> bool {
    match pat.strip_suffix('*') {
        Some(prefix) => key.starts_with(prefix),
        None => pat == key,
    }
}

/// Compare one baseline/new pair. Returns the number of drifted metrics;
/// exits 2 on a name/params mismatch (harness bug, not a regression).
fn compare(base_path: &str, new_path: &str, tol: &Tolerance) -> usize {
    let mut base = load(base_path);
    let mut new = load(new_path);
    for key in &tol.ignore {
        base.params.remove(key);
        new.params.remove(key);
    }
    for pat in &tol.ignore_metrics {
        base.metrics.retain(|k, _| !metric_matches(pat, k));
        new.metrics.retain(|k, _| !metric_matches(pat, k));
    }

    if base.name != new.name {
        eprintln!(
            "bench_diff: benchmark mismatch: baseline is {:?}, new is {:?}",
            base.name, new.name
        );
        std::process::exit(2);
    }
    if base.params != new.params {
        eprintln!(
            "bench_diff: params mismatch for {}: baseline {:?} vs new {:?}",
            base.name, base.params, new.params
        );
        std::process::exit(2);
    }

    let mut drifted = 0usize;
    let mut checked = 0usize;
    let keys: std::collections::BTreeSet<&String> =
        base.metrics.keys().chain(new.metrics.keys()).collect();
    for key in keys {
        match (base.metrics.get(key), new.metrics.get(key)) {
            (Some(b), Some(n)) => {
                checked += 1;
                let delta = (n - b).abs();
                if delta > tol.abs + tol.rel * b.abs() {
                    let pct = if *b == 0.0 { f64::INFINITY } else { 100.0 * (n - b) / b };
                    println!("DRIFT {key}: {b:.6} -> {n:.6} ({pct:+.2}%)");
                    drifted += 1;
                }
            }
            (Some(b), None) => {
                println!("DRIFT {key}: {b:.6} -> (missing in new)");
                drifted += 1;
            }
            (None, Some(n)) => {
                println!("DRIFT {key}: (missing in baseline) -> {n:.6}");
                drifted += 1;
            }
            (None, None) => unreachable!(),
        }
    }
    if drifted > 0 {
        eprintln!(
            "bench_diff: {}: {drifted} metric(s) drifted beyond rel {} / abs {} \
             ({checked} compared)",
            base.name, tol.rel, tol.abs
        );
    } else {
        println!(
            "bench_diff: {}: {checked} metric(s) within rel {} / abs {}",
            base.name, tol.rel, tol.abs
        );
    }
    drifted
}

fn main() {
    let args = Args::parse();
    let tol = Tolerance {
        rel: args.get("rel-tol", 0.05),
        abs: args.get("abs-tol", 1e-9),
        ignore: args
            .get_opt("ignore-params")
            .map(|spec| {
                spec.split(',')
                    .map(str::trim)
                    .filter(|k| !k.is_empty())
                    .map(str::to_string)
                    .collect()
            })
            .unwrap_or_default(),
        ignore_metrics: args
            .get_opt("ignore-metrics")
            .map(|spec| {
                spec.split(',')
                    .map(str::trim)
                    .filter(|k| !k.is_empty())
                    .map(str::to_string)
                    .collect()
            })
            .unwrap_or_default(),
    };

    if let Some(dir) = args.get_opt("all") {
        let base_dir = args
            .get_opt("baseline-dir")
            .unwrap_or_else(|| "results/baselines".to_string());
        let mut names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap_or_else(|e| {
                eprintln!("bench_diff: cannot read directory {dir}: {e}");
                std::process::exit(2);
            })
            .filter_map(|entry| {
                let name = entry.ok()?.file_name().into_string().ok()?;
                (name.starts_with("BENCH_") && name.ends_with(".json")).then_some(name)
            })
            .collect();
        names.sort();
        if names.is_empty() {
            eprintln!("bench_diff: no BENCH_*.json files under {dir}");
            std::process::exit(2);
        }
        let mut drifted = 0usize;
        for name in &names {
            let base_path = format!("{base_dir}/{name}");
            if !std::path::Path::new(&base_path).exists() {
                eprintln!(
                    "bench_diff: {name}: no baseline at {base_path} \
                     (bless it or remove the stray result)"
                );
                std::process::exit(2);
            }
            drifted += compare(&base_path, &format!("{dir}/{name}"), &tol);
        }
        if drifted > 0 {
            eprintln!(
                "bench_diff: {drifted} metric(s) drifted across {} file(s)",
                names.len()
            );
            std::process::exit(1);
        }
        println!("bench_diff: {} file(s) clean against {base_dir}", names.len());
        return;
    }

    let (Some(base_path), Some(new_path)) = (args.get_opt("baseline"), args.get_opt("new")) else {
        eprintln!(
            "usage: bench_diff --baseline <base.json> --new <new.json> | --all <dir> \
             [--baseline-dir <dir>] [--rel-tol 0.05] [--abs-tol 1e-9] [--ignore-params a,b,c] \
             [--ignore-metrics a,b*]"
        );
        std::process::exit(2);
    };
    if compare(&base_path, &new_path, &tol) > 0 {
        std::process::exit(1);
    }
}
