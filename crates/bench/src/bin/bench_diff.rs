//! Compare two `scioto-bench-v1` JSON documents and flag metric drift.
//!
//! Run: `cargo run -p scioto-bench --bin bench_diff -- \
//!           --baseline results/baselines/BENCH_table1.json \
//!           --new /tmp/BENCH_table1.json [--rel-tol 0.05] [--abs-tol 1e-9]`
//!
//! A metric drifts when `|new - base| > abs_tol + rel_tol * |base|`, in
//! either direction — an unexpected speedup is as suspicious as a
//! slowdown when virtual-time results are supposed to be deterministic.
//! Metrics present in only one document always count as drift.
//!
//! Exit codes: 0 all metrics within tolerance; 1 drift detected;
//! 2 usage error, unreadable/invalid file, or benchmark/params mismatch
//! (comparing runs with different parameters is a harness bug, not a
//! regression).
//!
//! `--ignore-params victim,barrier,td_batch` drops the named params from
//! both documents before the equality gate — for deliberate cross-policy
//! comparisons (e.g. the old-vs-new hot-path ablation), where the runs
//! differ *only* in those recorded knobs.

use scioto_bench::{benchjson, Args};

fn load(path: &str) -> benchjson::BenchOut {
    let body = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("bench_diff: cannot read {path}: {e}");
        std::process::exit(2);
    });
    benchjson::parse(&body).unwrap_or_else(|e| {
        eprintln!("bench_diff: {path}: {e}");
        std::process::exit(2);
    })
}

fn main() {
    let args = Args::parse();
    let (Some(base_path), Some(new_path)) = (args.get_opt("baseline"), args.get_opt("new")) else {
        eprintln!(
            "usage: bench_diff --baseline <base.json> --new <new.json> \
             [--rel-tol 0.05] [--abs-tol 1e-9] [--ignore-params a,b,c]"
        );
        std::process::exit(2);
    };
    let rel_tol: f64 = args.get("rel-tol", 0.05);
    let abs_tol: f64 = args.get("abs-tol", 1e-9);
    let mut base = load(&base_path);
    let mut new = load(&new_path);
    if let Some(spec) = args.get_opt("ignore-params") {
        for key in spec.split(',').map(str::trim).filter(|k| !k.is_empty()) {
            base.params.remove(key);
            new.params.remove(key);
        }
    }

    if base.name != new.name {
        eprintln!(
            "bench_diff: benchmark mismatch: baseline is {:?}, new is {:?}",
            base.name, new.name
        );
        std::process::exit(2);
    }
    if base.params != new.params {
        eprintln!(
            "bench_diff: params mismatch for {}: baseline {:?} vs new {:?}",
            base.name, base.params, new.params
        );
        std::process::exit(2);
    }

    let mut drifted = 0usize;
    let mut checked = 0usize;
    let keys: std::collections::BTreeSet<&String> =
        base.metrics.keys().chain(new.metrics.keys()).collect();
    for key in keys {
        match (base.metrics.get(key), new.metrics.get(key)) {
            (Some(b), Some(n)) => {
                checked += 1;
                let delta = (n - b).abs();
                if delta > abs_tol + rel_tol * b.abs() {
                    let pct = if *b == 0.0 { f64::INFINITY } else { 100.0 * (n - b) / b };
                    println!("DRIFT {key}: {b:.6} -> {n:.6} ({pct:+.2}%)");
                    drifted += 1;
                }
            }
            (Some(b), None) => {
                println!("DRIFT {key}: {b:.6} -> (missing in new)");
                drifted += 1;
            }
            (None, Some(n)) => {
                println!("DRIFT {key}: (missing in baseline) -> {n:.6}");
                drifted += 1;
            }
            (None, None) => unreachable!(),
        }
    }
    if drifted > 0 {
        eprintln!(
            "bench_diff: {}: {drifted} metric(s) drifted beyond rel {rel_tol} / abs {abs_tol} \
             ({checked} compared)",
            base.name
        );
        std::process::exit(1);
    }
    println!(
        "bench_diff: {}: {checked} metric(s) within rel {rel_tol} / abs {abs_tol}",
        base.name
    );
}
