//! Wall-clock observability gate for the concurrent backend: run the
//! seeded UTS workload under `ExecMode::Concurrent` (real free-running
//! threads), measure the tracing overhead, and export/verify the full
//! observability surface — timestamped JSONL/Chrome traces, blame
//! decomposition, and the happens-before race check.
//!
//! The overhead measurement alternates untraced and traced runs for
//! `--reps` repetitions and compares the *minimum* wall time of each
//! (the minimum is the standard low-noise estimator for "how fast can
//! this go"); the ratio is printed and asserted to stay within
//! `--max-overhead` so a tracing hot-path regression fails CI loudly.
//!
//! Run: `cargo run --release -p scioto-bench --bin concurrent_obs -- \
//!           --ranks 4 --reps 5 --trace-out /tmp/conc.jsonl --race-check`
//!
//! Options: `--ranks N` (default 4), `--app uts|scf` (default uts: the
//! seeded unbalanced tree; scf runs the fig5-style Hartree-Fock task
//! pool, sized by `--atoms N`, default 6), `--tree
//! tiny|small|medium|large` (default tiny), `--seed S` (workload seed,
//! default 42), `--reps N`
//! (default 5), `--max-overhead X` (default 3.0; wall timing on shared
//! CI machines is noisy, so the band is deliberately generous — the gate
//! exists to catch order-of-magnitude perturbation, not 5% drift),
//! `--chrome-out <path>` (Chrome JSON from the same traced run), plus
//! the standard observability flags `--trace-out`, `--trace-summary`,
//! `--analysis-out`, `--race-check`, `--trace-ring`, and `--trace-batch N`
//! (per-rank staged-publication batch; 0/1 selects the historical
//! publish-every-event path). `--old-startup` selects the historical
//! two-barriers-per-collective startup protocol.
//!
//! Exit codes: 0 on success, 1 when the overhead band or a blame/report
//! invariant is violated (race-check failures exit through
//! [`scioto_bench::run_race_check`] with its usual codes).

use scioto_bench::{
    dump_analysis, dump_trace, run_predict_check, run_race_check, startup_from_args, trace_config,
    Args, PolicyFlags,
};
use scioto_det::MonoClock;
use scioto_scf::{run_scf_parallel, BasisSet, LoadBalance, Molecule, ParallelScfConfig};
use scioto_sim::{Machine, MachineConfig, Report, StartupMode, TraceConfig};
use scioto_uts::scioto_driver::{run_scioto_uts, SciotoUtsConfig};
use scioto_uts::{presets, TreeParams};

/// Which workload drives the concurrent machine.
#[derive(Clone, Copy)]
enum App {
    /// Seeded unbalanced tree search (`--tree` selects the preset).
    Uts(TreeParams),
    /// Fig5-style Hartree-Fock Fock-build task pool (`--atoms` atoms).
    Scf { atoms: usize },
}

fn machine(ranks: usize, seed: u64, policy: PolicyFlags, startup: StartupMode) -> MachineConfig {
    MachineConfig::concurrent(ranks)
        .with_seed(seed)
        .with_barrier(policy.barrier)
        .with_startup(startup)
}

fn uts_config(params: TreeParams, policy: PolicyFlags) -> SciotoUtsConfig {
    SciotoUtsConfig {
        victim: Some(policy.victim),
        td_batch: Some(policy.td_batch),
        ..SciotoUtsConfig::new(params)
    }
}

/// One concurrent UTS run; returns the report and the measured wall time
/// of the whole `Machine::run` (thread spawn through trace collection).
fn run_once(
    ranks: usize,
    seed: u64,
    app: App,
    policy: PolicyFlags,
    startup: StartupMode,
    trace: Option<TraceConfig>,
) -> (Report, u64) {
    let mut cfg = machine(ranks, seed, policy, startup);
    if let Some(t) = trace {
        cfg = cfg.with_trace(t);
    }
    let clock = MonoClock::new();
    let out = match app {
        App::Uts(params) => {
            Machine::run(cfg, move |ctx| {
                run_scioto_uts(ctx, &uts_config(params, policy)).0
            })
            .report
        }
        App::Scf { atoms } => {
            let basis = BasisSet::even_tempered(Molecule::h_chain(atoms), 2, 0.4, 3.5);
            Machine::run(cfg, move |ctx| {
                let mut c = ParallelScfConfig {
                    lb: LoadBalance::Scioto,
                    block: 4,
                    chunk: 4,
                    victim: Some(policy.victim),
                    td_batch: Some(policy.td_batch),
                    ..Default::default()
                };
                // Fixed work, like the fig5 harness: iteration count is
                // the benchmark knob, not convergence.
                c.scf.max_iters = 4;
                c.scf.tol = 0.0;
                run_scf_parallel(ctx, &basis, &c).energy
            })
            .report
        }
    };
    (out, clock.now_ns())
}

fn main() {
    let args = Args::parse();
    let ranks: usize = args.get("ranks", 4);
    let seed: u64 = args.get("seed", 42);
    let reps: usize = args.get("reps", 5);
    let max_overhead: f64 = args.get("max-overhead", 3.0);
    let tree: String = args.get("tree", "tiny".to_string());
    let policy = PolicyFlags::from_args(&args);
    let startup = startup_from_args(&args);
    let params = match tree.as_str() {
        "tiny" => presets::tiny(),
        "small" => presets::small(),
        "medium" => presets::medium(),
        "large" => presets::large(),
        other => panic!("unknown tree preset {other}"),
    };
    let app_name: String = args.get("app", "uts".to_string());
    let app = match app_name.as_str() {
        "uts" => App::Uts(params),
        "scf" => App::Scf {
            atoms: args.get("atoms", 6),
        },
        other => panic!("unknown --app {other} (expected uts or scf)"),
    };
    let trace_cfg = trace_config(&args);

    // Overhead measurement: alternate untraced/traced so slow machine
    // drift (thermal, noisy neighbors) hits both arms equally.
    let mut untraced_ns = Vec::with_capacity(reps);
    let mut traced_ns = Vec::with_capacity(reps);
    let mut traced_report = None;
    for rep in 0..reps {
        let (_, ns) = run_once(ranks, seed, app, policy, startup, None);
        untraced_ns.push(ns);
        let (report, ns) = run_once(ranks, seed, app, policy, startup, Some(trace_cfg.clone()));
        traced_ns.push(ns);
        eprintln!(
            "rep {}/{reps}: untraced {:.3} ms, traced {:.3} ms",
            rep + 1,
            untraced_ns[rep] as f64 / 1e6,
            ns as f64 / 1e6
        );
        traced_report = Some(report);
    }
    let untraced_min = *untraced_ns.iter().min().unwrap();
    let traced_min = *traced_ns.iter().min().unwrap();
    let overhead = traced_min as f64 / untraced_min.max(1) as f64;
    let workload = match app {
        App::Uts(_) => format!("uts/{tree}"),
        App::Scf { atoms } => format!("scf/{atoms} atoms"),
    };
    println!(
        "concurrent tracing overhead: traced {:.3} ms vs untraced {:.3} ms \
         (min of {reps} reps, {ranks} ranks, {workload}) -> {overhead:.2}x \
         (budget {max_overhead:.2}x)",
        traced_min as f64 / 1e6,
        untraced_min as f64 / 1e6,
    );
    if overhead > max_overhead {
        eprintln!(
            "concurrent_obs FAILED: tracing overhead {overhead:.2}x exceeds the \
             --max-overhead budget {max_overhead:.2}x"
        );
        std::process::exit(1);
    }

    // Verify the observability surface on the last traced run.
    let report = traced_report.expect("--reps must be >= 1");
    let trace = report
        .trace
        .as_ref()
        .expect("traced concurrent run carries a trace");
    if !trace.wall_clock {
        eprintln!("concurrent_obs FAILED: concurrent trace is not wall-clock marked");
        std::process::exit(1);
    }
    for (r, &ns) in report.rank_clock_ns.iter().enumerate() {
        if ns == 0 {
            eprintln!(
                "concurrent_obs FAILED: rank {r} reports a zero wall-clock span \
                 (Report::rank_clock_ns not filled)"
            );
            std::process::exit(1);
        }
    }
    let analysis = scioto_analyze::analyze(trace);
    for w in &analysis.warnings {
        if w.contains("blame invariant") {
            eprintln!("concurrent_obs FAILED: {w}");
            std::process::exit(1);
        }
        eprintln!("analysis WARNING: {w}");
    }
    println!(
        "blame decomposition exact on all {} ranks (each rank's categories sum to \
         its measured thread span; makespan {:.3} ms wall)",
        analysis.ranks,
        analysis.makespan_ns as f64 / 1e6
    );

    dump_trace(&args, &report);
    dump_analysis(&args, &report);
    if let Some(path) = args.get_opt("chrome-out") {
        std::fs::write(&path, trace.to_chrome_json())
            .unwrap_or_else(|e| panic!("writing chrome trace to {path}: {e}"));
        eprintln!("chrome trace written to {path}");
    }
    run_race_check(&args, &report);
    run_predict_check(&args, &report);
}
