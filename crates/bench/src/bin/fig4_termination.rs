//! Figure 4 — termination detection vs. ARMCI and MPI barriers.
//!
//! Methodology per §5.2: detect termination after executing a single
//! no-op task, and compare against barrier costs, for 1..64 processes.
//! The paper's finding: the wave algorithm detects termination in roughly
//! twice the time of a barrier, with log(p) scaling.
//!
//! Run: `cargo run --release -p scioto-bench --bin fig4_termination`
//! Options: `--max-ranks N`, `--only-ranks N` (single sweep point),
//! `--engine auto|threads|events`, `--latency flat|nearfar`, plus the
//! policy flags `--victim`, `--barrier`, `--td-batch`, `--old-policy`
//! shared with the other bench binaries.

use std::sync::Arc;

use scioto::{Task, TaskCollection, TcConfig, AFFINITY_HIGH};
use scioto_armci::Armci;
use scioto_bench::{
    dump_analysis, dump_trace, engine_from_args, obs_requested, only_ranks, render_table,
    run_predict_check, run_race_check, run_replay_check, startup_from_args, startup_param,
    trace_config, us, Args, BenchOut, LatencyPreset, PolicyFlags,
};
use scioto_mpi::Comm;
use scioto_sim::{Engine, LatencyModel, Machine, MachineConfig, Report, StartupMode, TraceConfig};

#[derive(Clone, Copy)]
struct SimOpts {
    engine: Engine,
    latency: LatencyPreset,
    startup: StartupMode,
}

fn machine(p: usize, policy: PolicyFlags, sim: SimOpts) -> MachineConfig {
    MachineConfig::virtual_time(p)
        .with_latency(sim.latency.apply(LatencyModel::cluster()))
        .with_barrier(policy.barrier)
        .with_engine(sim.engine)
        .with_startup(sim.startup)
}

/// Max over ranks of a per-rank duration measurement.
fn max_ns(results: Vec<u64>) -> u64 {
    results.into_iter().max().unwrap_or(0)
}

fn termination_time(
    p: usize,
    trace: TraceConfig,
    policy: PolicyFlags,
    sim: SimOpts,
) -> (u64, Report) {
    let out = Machine::run(machine(p, policy, sim).with_trace(trace), move |ctx| {
            let armci = Armci::init(ctx);
            let cfg = TcConfig::new(8, 10, 64)
                .with_victim(policy.victim)
                .with_td_batch(policy.td_batch);
            let tc = TaskCollection::create(ctx, &armci, cfg);
            let h = tc.register(ctx, Arc::new(|_| {}));
            armci.barrier(ctx);
            let t0 = ctx.now();
            if ctx.rank() == 0 {
                tc.add(ctx, 0, AFFINITY_HIGH, &Task::new(h, vec![]));
            }
            tc.process(ctx);
            ctx.now() - t0
        },
    );
    (max_ns(out.results), out.report)
}

fn armci_barrier_time(p: usize, policy: PolicyFlags, sim: SimOpts) -> u64 {
    const REPS: u64 = 20;
    let out = Machine::run(machine(p, policy, sim), |ctx| {
            let armci = Armci::init(ctx);
            armci.barrier(ctx);
            let t0 = ctx.now();
            for _ in 0..REPS {
                armci.barrier(ctx);
            }
            (ctx.now() - t0) / REPS
        },
    );
    max_ns(out.results)
}

fn mpi_barrier_time(p: usize, policy: PolicyFlags, sim: SimOpts) -> u64 {
    const REPS: u64 = 20;
    let out = Machine::run(machine(p, policy, sim), |ctx| {
            let comm = Comm::world(ctx);
            comm.barrier(ctx);
            let t0 = ctx.now();
            for _ in 0..REPS {
                comm.barrier(ctx);
            }
            (ctx.now() - t0) / REPS
        },
    );
    max_ns(out.results)
}

fn main() {
    let args = Args::parse();
    let max_p: usize = args.get("max-ranks", 64);
    let policy = PolicyFlags::from_args(&args);
    let sim = SimOpts {
        engine: engine_from_args(&args),
        latency: LatencyPreset::from_args(&args),
        startup: startup_from_args(&args),
    };
    let only = only_ranks(&args);
    if obs_requested(&args) {
        // Dedicated traced detection run (`--trace-ranks N`, default 8);
        // the sweep stays untraced so the published table is unaffected.
        let (_, report) =
            termination_time(args.get("trace-ranks", 8), trace_config(&args), policy, sim);
        dump_trace(&args, &report);
        dump_analysis(&args, &report);
        run_race_check(&args, &report);
        run_predict_check(&args, &report);
        run_replay_check(&args, &report);
    }
    let mut bench = BenchOut::new("fig4_termination");
    bench.param("max_ranks", max_p);
    for (k, v) in policy.params() {
        bench.param(k, v);
    }
    if let Some((k, v)) = sim.latency.param() {
        bench.param(k, v);
    }
    if let Some((k, v)) = startup_param(sim.startup) {
        bench.param(k, v);
    }
    if let Some(o) = only {
        bench.param("only_ranks", o);
    }
    let mut rows = Vec::new();
    let mut p = 1;
    while p <= max_p {
        if only.is_some_and(|o| o != p) {
            p *= 2;
            continue;
        }
        let (td, _) = termination_time(p, TraceConfig::disabled(), policy, sim);
        let ab = armci_barrier_time(p, policy, sim);
        let mb = mpi_barrier_time(p, policy, sim);
        let ratio = td as f64 / ab.max(1) as f64;
        bench.metric(&format!("td_ns_p{p:03}"), td as f64);
        bench.metric(&format!("armci_barrier_ns_p{p:03}"), ab as f64);
        bench.metric(&format!("mpi_barrier_ns_p{p:03}"), mb as f64);
        rows.push(vec![
            p.to_string(),
            us(td),
            us(ab),
            us(mb),
            format!("{ratio:.2}"),
        ]);
        p *= 2;
    }
    bench.write_if_requested(&args);
    print!(
        "{}",
        render_table(
            "Figure 4: termination detection vs. barriers (µs, cluster model)",
            &["P", "Scioto TD", "ARMCI barrier", "MPI barrier", "TD/ARMCI"],
            &rows,
        )
    );
    println!("\npaper: TD detects termination in roughly 2x the barrier time, log(p) growth.");
}
