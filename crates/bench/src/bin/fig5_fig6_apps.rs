//! Figures 5 and 6 — SCF and TCE: Scioto vs. the original global-counter
//! implementations on the heterogeneous cluster.
//!
//! Figure 5 plots parallel speedup (relative to each implementation's own
//! single-process run) and Figure 6 the raw runtimes, for 2..64
//! processes, half Opteron / half Xeon. The paper's findings: the
//! counter-based originals stop scaling (TCE severely, SCF beyond ~32
//! processes) while the Scioto versions keep scaling.
//!
//! Run: `cargo run --release -p scioto-bench --bin fig5_fig6_apps`
//! Options: `--max-ranks N` (default 64), `--atoms N` (default 10),
//! `--tiles N` (default 12), `--engine auto|threads|events`,
//! `--latency flat|nearfar`, `--only-ranks N`, plus the policy flags
//! `--victim`, `--barrier`, `--td-batch`, `--old-policy` shared with
//! the other bench binaries.

use scioto_bench::{
    cluster_rank_sweep, dump_analysis, dump_trace, engine_from_args, obs_requested, only_ranks,
    render_table, run_predict_check, run_race_check, run_replay_check, secs, startup_from_args,
    startup_param, trace_config, Args, BenchOut, LatencyPreset, PolicyFlags,
};
use scioto_scf::{run_scf_parallel, BasisSet, LoadBalance, Molecule, ParallelScfConfig};
use scioto_sim::{Engine, LatencyModel, Machine, MachineConfig, SpeedModel, StartupMode};
use scioto_tce::{run_contraction, ContractionConfig, SparsityPattern, TceLoadBalance};

#[derive(Clone, Copy)]
struct SimOpts {
    engine: Engine,
    latency: LatencyPreset,
    startup: StartupMode,
}

fn machine(p: usize, policy: PolicyFlags, sim: SimOpts) -> MachineConfig {
    MachineConfig::virtual_time(p)
        .with_latency(sim.latency.apply(LatencyModel::cluster()))
        .with_speed(SpeedModel::hetero_cluster(p))
        .with_barrier(policy.barrier)
        .with_engine(sim.engine)
        .with_startup(sim.startup)
}

fn scf_run(p: usize, atoms: usize, lb: LoadBalance, policy: PolicyFlags, sim: SimOpts) -> u64 {
    let basis = BasisSet::even_tempered(Molecule::h_chain(atoms), 2, 0.4, 3.5);
    let out = Machine::run(machine(p, policy, sim), move |ctx| {
        let mut cfg = ParallelScfConfig {
            lb,
            block: 4,
            chunk: 4,
            victim: Some(policy.victim),
            td_batch: Some(policy.td_batch),
            ..Default::default()
        };
        // Fixed-work benchmark: 8 Roothaan iterations (the figure compares
        // load balancers, not convergence paths).
        cfg.scf.max_iters = 8;
        cfg.scf.tol = 0.0;
        run_scf_parallel(ctx, &basis, &cfg).energy
    });
    out.report.makespan_ns
}

fn tce_run(p: usize, tiles: usize, lb: TceLoadBalance, policy: PolicyFlags, sim: SimOpts) -> u64 {
    let out = Machine::run(machine(p, policy, sim), move |ctx| {
        let cfg = ContractionConfig {
            nbr: tiles,
            nbk: tiles,
            nbc: tiles,
            bs: 16,
            pattern_a: SparsityPattern::standard(11),
            pattern_b: SparsityPattern::standard(23),
            lb,
            chunk: 2,
            iterations: 1,
            victim: Some(policy.victim),
            td_batch: Some(policy.td_batch),
        };
        run_contraction(ctx, &cfg).0.contract_ns
    });
    // Contraction-phase makespan: the slowest rank's span (tensor
    // creation/fill is excluded, as the paper measures the kernel).
    out.results.into_iter().max().unwrap_or(0)
}

fn main() {
    let args = Args::parse();
    let max_p: usize = args.get("max-ranks", 64);
    let atoms: usize = args.get("atoms", 16);
    let tiles: usize = args.get("tiles", 48);
    let policy = PolicyFlags::from_args(&args);
    let sim = SimOpts {
        engine: engine_from_args(&args),
        latency: LatencyPreset::from_args(&args),
        startup: startup_from_args(&args),
    };
    let only = only_ranks(&args);

    if obs_requested(&args) {
        // Dedicated traced 4-rank SCF run (2 Roothaan iterations, small
        // basis); the figure sweep below stays untraced.
        let basis = BasisSet::even_tempered(Molecule::h_chain(6), 2, 0.4, 3.5);
        let trace = trace_config(&args);
        let out = Machine::run(machine(4, policy, sim).with_trace(trace), move |ctx| {
            let mut cfg = ParallelScfConfig {
                lb: LoadBalance::Scioto,
                block: 4,
                chunk: 4,
                victim: Some(policy.victim),
                td_batch: Some(policy.td_batch),
                ..Default::default()
            };
            cfg.scf.max_iters = 2;
            cfg.scf.tol = 0.0;
            run_scf_parallel(ctx, &basis, &cfg).energy
        });
        dump_trace(&args, &out.report);
        dump_analysis(&args, &out.report);
        run_race_check(&args, &out.report);
        run_predict_check(&args, &out.report);
        run_replay_check(&args, &out.report);
    }

    let mut ps = vec![1usize];
    ps.extend(cluster_rank_sweep(max_p));

    let mut bench = BenchOut::new("fig5_fig6_apps");
    bench.param("max_ranks", max_p);
    bench.param("atoms", atoms);
    bench.param("tiles", tiles);
    for (k, v) in policy.params() {
        bench.param(k, v);
    }
    if let Some((k, v)) = sim.latency.param() {
        bench.param(k, v);
    }
    if let Some((k, v)) = startup_param(sim.startup) {
        bench.param(k, v);
    }
    if let Some(o) = only {
        bench.param("only_ranks", o);
    }
    let mut results: Vec<(usize, [u64; 4])> = Vec::new();
    for &p in &ps {
        if only.is_some_and(|o| o != p) {
            continue;
        }
        eprintln!("running P = {p} ...");
        let row = [
            scf_run(p, atoms, LoadBalance::Scioto, policy, sim),
            scf_run(p, atoms, LoadBalance::GlobalCounter, policy, sim),
            tce_run(p, tiles, TceLoadBalance::Scioto, policy, sim),
            tce_run(p, tiles, TceLoadBalance::GlobalCounter, policy, sim),
        ];
        for (name, ns) in ["scf", "scf_orig", "tce", "tce_orig"].iter().zip(row) {
            bench.metric(&format!("{name}_ns_p{p:03}"), ns as f64);
        }
        results.push((p, row));
    }
    bench.write_if_requested(&args);

    let base = results[0].1;
    let runtime_rows: Vec<Vec<String>> = results
        .iter()
        .map(|(p, t)| {
            vec![
                p.to_string(),
                secs(t[0]),
                secs(t[1]),
                secs(t[2]),
                secs(t[3]),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            "Figure 6: raw runtime (virtual seconds, heterogeneous cluster)",
            &["P", "SCF", "SCF-Original", "TCE", "TCE-Original"],
            &runtime_rows,
        )
    );

    let speedup_rows: Vec<Vec<String>> = results
        .iter()
        .map(|(p, t)| {
            let s = |i: usize| format!("{:.2}", base[i] as f64 / t[i] as f64);
            vec![p.to_string(), s(0), s(1), s(2), s(3)]
        })
        .collect();
    print!(
        "{}",
        render_table(
            "Figure 5: parallel speedup (vs. each implementation's P = 1 run)",
            &["P", "SCF", "SCF-Original", "TCE", "TCE-Original"],
            &speedup_rows,
        )
    );
    println!(
        "\npaper: Scioto versions keep scaling; the global-counter originals flatten \
         (TCE early, SCF past ~32 processes)."
    );
}
