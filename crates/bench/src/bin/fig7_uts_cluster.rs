//! Figure 7 — UTS on the heterogeneous cluster: Scioto split queues vs.
//! the MPI work-stealing implementation vs. the locked ("No Split")
//! queue ablation.
//!
//! Performance is reported in millions of tree nodes processed per second
//! of virtual time. The paper's findings: split queues beat both the MPI
//! implementation (which pays explicit polling) and the locked queue
//! (which loses concurrency to lock contention), and heterogeneity is
//! absorbed transparently.
//!
//! Run: `cargo run --release -p scioto-bench --bin fig7_uts_cluster`
//! Options: `--max-ranks N` (default 64; the event engine sweeps to 1024
//! and beyond), `--only-ranks N` (single sweep point), `--tree
//! small|medium|large`, `--engine auto|threads|events`, `--latency
//! flat|nearfar` (near/far distance tiers), plus the hot-path policy
//! flags `--victim uniform|locality`, `--barrier flat|tree`,
//! `--td-batch on|off` and the `--old-policy` shorthand for the
//! pre-locality baseline triple. `--old-startup` selects the historical
//! two-barriers-per-collective startup protocol (ablation for the
//! coalesced default); the coalesced runs additionally record
//! `split_startup_ns_pNNN` aggregate startup metrics.
//!
//! `--steal-dist` additionally runs the dedicated traced configuration
//! and records the per-steal ring-distance histogram from the analyzer's
//! provenance pass as first-class bench metrics (`steal_dist_dNNNN`
//! buckets plus mean distance and near-steal share), so steal locality
//! can be pinned and diffed like any throughput figure.

use scioto_bench::{
    cluster_rank_sweep, dump_analysis, dump_trace, engine_from_args, obs_requested, only_ranks,
    render_table, run_predict_check, run_race_check, run_replay_check, startup_from_args,
    startup_param, trace_config, Args, BenchOut, LatencyPreset, PolicyFlags,
};
use scioto_sim::{Engine, LatencyModel, Machine, MachineConfig, SpeedModel, StartupMode};
use scioto_uts::mpi_ws::{run_mpi_uts, MpiUtsConfig};
use scioto_uts::scioto_driver::{run_scioto_uts, SciotoUtsConfig};
use scioto_uts::{presets, TreeParams, TreeStats};

#[derive(Clone, Copy)]
struct SimOpts {
    engine: Engine,
    latency: LatencyPreset,
    startup: StartupMode,
}

fn machine(p: usize, policy: PolicyFlags, sim: SimOpts) -> MachineConfig {
    MachineConfig::virtual_time(p)
        .with_latency(sim.latency.apply(LatencyModel::cluster()))
        .with_speed(SpeedModel::hetero_cluster(p))
        .with_barrier(policy.barrier)
        .with_engine(sim.engine)
        .with_startup(sim.startup)
}

fn uts_config(params: TreeParams, policy: PolicyFlags) -> SciotoUtsConfig {
    SciotoUtsConfig {
        victim: Some(policy.victim),
        td_batch: Some(policy.td_batch),
        ..SciotoUtsConfig::new(params)
    }
}

/// (total nodes, makespan ns) → Mnodes/s.
fn rate(nodes: u64, ns: u64) -> f64 {
    nodes as f64 / (ns as f64 / 1e9) / 1e6
}

/// Returns (Mnodes/s, aggregate per-rank startup ns) for one run.
fn scioto_rate(
    p: usize,
    params: TreeParams,
    queue: scioto::QueueKind,
    policy: PolicyFlags,
    sim: SimOpts,
) -> (f64, u64) {
    let out = Machine::run(machine(p, policy, sim), move |ctx| {
        let cfg = SciotoUtsConfig {
            queue,
            ..uts_config(params, policy)
        };
        run_scioto_uts(ctx, &cfg)
    });
    let mut total = TreeStats::default();
    let mut startup_ns = 0u64;
    for (tree, stats) in &out.results {
        total.merge(tree);
        startup_ns += stats.startup_ns;
    }
    (rate(total.nodes, out.report.makespan_ns), startup_ns)
}

fn mpi_rate(p: usize, params: TreeParams, policy: PolicyFlags, sim: SimOpts) -> f64 {
    let out = Machine::run(machine(p, policy, sim), move |ctx| {
        run_mpi_uts(ctx, &MpiUtsConfig::new(params)).0
    });
    let mut total = TreeStats::default();
    for s in &out.results {
        total.merge(s);
    }
    rate(total.nodes, out.report.makespan_ns)
}

fn main() {
    let args = Args::parse();
    let max_p: usize = args.get("max-ranks", 64);
    let tree: String = args.get("tree", "medium".to_string());
    let policy = PolicyFlags::from_args(&args);
    let sim = SimOpts {
        engine: engine_from_args(&args),
        latency: LatencyPreset::from_args(&args),
        startup: startup_from_args(&args),
    };
    let only = only_ranks(&args);
    let params = match tree.as_str() {
        "tiny" => presets::tiny(),
        "small" => presets::small(),
        "medium" => presets::medium(),
        "large" => presets::large(),
        other => panic!("unknown tree preset {other}"),
    };
    let steal_dist = args.has("steal-dist");
    let mut bench = BenchOut::new("fig7_uts_cluster");
    bench.param("max_ranks", max_p);
    bench.param("tree", &tree);
    for (k, v) in policy.params() {
        bench.param(k, v);
    }
    if let Some((k, v)) = sim.latency.param() {
        bench.param(k, v);
    }
    if let Some((k, v)) = startup_param(sim.startup) {
        bench.param(k, v);
    }
    if let Some(o) = only {
        bench.param("only_ranks", o);
    }
    if obs_requested(&args) || steal_dist {
        // Dedicated traced UTS run (`--trace-ranks N`, default 8, on the
        // tiny tree unless `--trace-tree` picks another preset); the
        // throughput sweep below stays untraced.
        let trace_ranks: usize = args.get("trace-ranks", 8);
        let trace_tree: String = args.get("trace-tree", "tiny".to_string());
        let trace_params = match trace_tree.as_str() {
            "tiny" => presets::tiny(),
            "small" => presets::small(),
            "medium" => presets::medium(),
            "large" => presets::large(),
            other => panic!("unknown tree preset {other}"),
        };
        let trace = trace_config(&args);
        let out = Machine::run(
            machine(trace_ranks, policy, sim).with_trace(trace),
            move |ctx| run_scioto_uts(ctx, &uts_config(trace_params, policy)).0,
        );
        dump_trace(&args, &out.report);
        dump_analysis(&args, &out.report);
        run_race_check(&args, &out.report);
        run_predict_check(&args, &out.report);
        run_replay_check(&args, &out.report);
        if steal_dist {
            // Steal-locality metrics from the analyzer's provenance pass.
            // The traced configuration is part of the metric identity, so
            // it rides in the params; only occupied histogram buckets are
            // recorded — an empty bucket turning hot (or vice versa)
            // surfaces as a metric appearing/vanishing, which bench_diff
            // reports as drift.
            bench.param("steal_dist", "on");
            bench.param("trace_ranks", trace_ranks);
            bench.param("trace_tree", &trace_tree);
            let trace = out.report.trace.as_ref().expect("traced run carries a trace");
            let analysis = scioto_analyze::analyze(trace);
            for w in &analysis.warnings {
                eprintln!("steal-dist WARNING: {w}");
            }
            let prov = analysis.provenance;
            for (d, &c) in prov.distance_hist.iter().enumerate() {
                if c > 0 {
                    bench.metric(&format!("steal_dist_d{d:04}"), c as f64);
                }
            }
            bench.metric("steal_dist_mean", prov.mean_ring_distance());
            bench.metric(
                "steal_dist_near_share",
                prov.near_share(scioto_analyze::provenance::NEAR_RADIUS),
            );
        }
    }
    let mut rows = Vec::new();
    for p in cluster_rank_sweep(max_p) {
        if only.is_some_and(|o| o != p) {
            continue;
        }
        eprintln!("running P = {p} ...");
        let (split, startup_ns) = scioto_rate(p, params, scioto::QueueKind::Split, policy, sim);
        let mpi = mpi_rate(p, params, policy, sim);
        let (nosplit, _) = scioto_rate(p, params, scioto::QueueKind::Locked, policy, sim);
        bench.metric(&format!("split_mnodes_p{p:03}"), split);
        bench.metric(&format!("mpi_ws_mnodes_p{p:03}"), mpi);
        bench.metric(&format!("nosplit_mnodes_p{p:03}"), nosplit);
        // Aggregate rank-ns of startup for the split run. Printed in both
        // startup modes (the ablation compares them), recorded as a bench
        // metric only under the coalesced default: old-startup runs must
        // diff cleanly against pre-coalescing baselines, which lack it.
        eprintln!("  split startup: {startup_ns} rank-ns aggregate");
        if sim.startup == StartupMode::Coalesced {
            bench.metric(&format!("split_startup_ns_p{p:03}"), startup_ns as f64);
        }
        rows.push(vec![
            p.to_string(),
            format!("{split:.2}"),
            format!("{mpi:.2}"),
            format!("{nosplit:.2}"),
        ]);
    }
    bench.write_if_requested(&args);
    print!(
        "{}",
        render_table(
            &format!(
                "Figure 7: UTS throughput on the heterogeneous cluster \
                 (Mnodes/s, {tree} tree)"
            ),
            &["P", "Split-Queues", "MPI-WS", "No Split"],
            &rows,
        )
    );
    println!(
        "\npaper (64 procs): Split-Queues ~72, MPI-WS ~62, No Split ~49 Mnodes/s; \
         split > MPI > no-split at every scale."
    );
}
