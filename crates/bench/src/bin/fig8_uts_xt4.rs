//! Figure 8 — UTS on the Cray XT4 model: Scioto vs. MPI work stealing,
//! up to 512 processes.
//!
//! The XT4's CPUs are uniform (dual-core Opteron 285, 0.5681 µs per UTS
//! node — factor 1.799 of the cluster-Opteron reference) and its network
//! uses the `xt4()` latency preset. The paper's finding: both scale to
//! 512 processes with Scioto at or above the MPI implementation
//! throughout.
//!
//! Run: `cargo run --release -p scioto-bench --bin fig8_uts_xt4`
//! Options: `--max-ranks N` (default 512), `--only-ranks N` (single sweep
//! point), `--tree small|medium|large`, `--engine auto|threads|events`,
//! `--latency flat|nearfar`, plus the policy flags `--victim`,
//! `--barrier`, `--td-batch`, `--old-policy` shared with the other bench
//! binaries.

use scioto_bench::{
    dump_analysis, dump_trace, engine_from_args, obs_requested, only_ranks, render_table,
    run_predict_check, run_race_check, run_replay_check, startup_from_args, startup_param,
    trace_config, Args, BenchOut, LatencyPreset, PolicyFlags,
};
use scioto_sim::{Engine, LatencyModel, Machine, MachineConfig, SpeedModel, StartupMode};
use scioto_uts::mpi_ws::{run_mpi_uts, MpiUtsConfig};
use scioto_uts::scioto_driver::{run_scioto_uts, SciotoUtsConfig};
use scioto_uts::{presets, TreeParams, TreeStats};

/// XT4 Opteron 285: 0.5681 µs per node vs. the 0.3158 µs reference.
const XT4_FACTOR: f64 = 0.5681 / 0.3158;

#[derive(Clone, Copy)]
struct SimOpts {
    engine: Engine,
    latency: LatencyPreset,
    startup: StartupMode,
}

fn machine(p: usize, policy: PolicyFlags, sim: SimOpts) -> MachineConfig {
    MachineConfig::virtual_time(p)
        .with_latency(sim.latency.apply(LatencyModel::xt4()))
        .with_speed(SpeedModel::from_factors(vec![XT4_FACTOR; p]))
        .with_barrier(policy.barrier)
        .with_engine(sim.engine)
        .with_startup(sim.startup)
}

fn uts_config(params: TreeParams, policy: PolicyFlags) -> SciotoUtsConfig {
    SciotoUtsConfig {
        victim: Some(policy.victim),
        td_batch: Some(policy.td_batch),
        ..SciotoUtsConfig::new(params)
    }
}

fn rate(nodes: u64, ns: u64) -> f64 {
    nodes as f64 / (ns as f64 / 1e9) / 1e6
}

fn scioto_rate(p: usize, params: TreeParams, policy: PolicyFlags, sim: SimOpts) -> f64 {
    let out = Machine::run(machine(p, policy, sim), move |ctx| {
        run_scioto_uts(ctx, &uts_config(params, policy)).0
    });
    let mut total = TreeStats::default();
    for s in &out.results {
        total.merge(s);
    }
    rate(total.nodes, out.report.makespan_ns)
}

fn mpi_rate(p: usize, params: TreeParams, policy: PolicyFlags, sim: SimOpts) -> f64 {
    let out = Machine::run(machine(p, policy, sim), move |ctx| {
        run_mpi_uts(ctx, &MpiUtsConfig::new(params)).0
    });
    let mut total = TreeStats::default();
    for s in &out.results {
        total.merge(s);
    }
    rate(total.nodes, out.report.makespan_ns)
}

fn main() {
    let args = Args::parse();
    let max_p: usize = args.get("max-ranks", 512);
    let tree: String = args.get("tree", "medium".to_string());
    let policy = PolicyFlags::from_args(&args);
    let sim = SimOpts {
        engine: engine_from_args(&args),
        latency: LatencyPreset::from_args(&args),
        startup: startup_from_args(&args),
    };
    let only = only_ranks(&args);
    let params = match tree.as_str() {
        "tiny" => presets::tiny(),
        "small" => presets::small(),
        "medium" => presets::medium(),
        "large" => presets::large(),
        other => panic!("unknown tree preset {other}"),
    };
    if obs_requested(&args) {
        // Dedicated traced XT4 UTS run on a tiny tree (`--trace-ranks N`,
        // default 8); the sweep below stays untraced.
        let trace_ranks: usize = args.get("trace-ranks", 8);
        let trace = trace_config(&args);
        let out = Machine::run(
            machine(trace_ranks, policy, sim).with_trace(trace),
            move |ctx| run_scioto_uts(ctx, &uts_config(presets::tiny(), policy)).0,
        );
        dump_trace(&args, &out.report);
        dump_analysis(&args, &out.report);
        run_race_check(&args, &out.report);
        run_predict_check(&args, &out.report);
        run_replay_check(&args, &out.report);
    }
    let mut bench = BenchOut::new("fig8_uts_xt4");
    bench.param("max_ranks", max_p);
    bench.param("tree", &tree);
    for (k, v) in policy.params() {
        bench.param(k, v);
    }
    if let Some((k, v)) = sim.latency.param() {
        bench.param(k, v);
    }
    if let Some((k, v)) = startup_param(sim.startup) {
        bench.param(k, v);
    }
    if let Some(o) = only {
        bench.param("only_ranks", o);
    }
    let mut rows = Vec::new();
    let mut sweep = vec![8usize, 16, 32, 64, 128, 256, 512];
    let mut next = 1024usize;
    while next <= max_p {
        sweep.push(next);
        next *= 2;
    }
    for p in sweep {
        if p > max_p {
            break;
        }
        if only.is_some_and(|o| o != p) {
            continue;
        }
        eprintln!("running P = {p} ...");
        let scioto = scioto_rate(p, params, policy, sim);
        let mpi = mpi_rate(p, params, policy, sim);
        bench.metric(&format!("scioto_mnodes_p{p:03}"), scioto);
        bench.metric(&format!("mpi_mnodes_p{p:03}"), mpi);
        rows.push(vec![
            p.to_string(),
            format!("{scioto:.2}"),
            format!("{mpi:.2}"),
        ]);
    }
    bench.write_if_requested(&args);
    print!(
        "{}",
        render_table(
            &format!("Figure 8: UTS throughput on the Cray XT4 (Mnodes/s, {tree} tree)"),
            &["P", "UTS-Scioto", "UTS-MPI"],
            &rows,
        )
    );
    println!(
        "\npaper (512 procs): UTS-Scioto ~760, UTS-MPI ~700 Mnodes/s; Scioto at or \
         above MPI throughout, both scaling to 512."
    );
}
