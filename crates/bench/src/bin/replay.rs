//! Re-execute a recorded JSONL trace on the virtual-time kernel — no
//! original workload needed — optionally re-priced under substituted
//! knobs (the what-if layer).
//!
//! Run: `cargo run --release -p scioto-bench --bin replay -- --file t.jsonl`
//!
//! Options:
//! * `--file <path>` — recorded JSONL trace (required).
//! * `--check` — verify the replay reproduces the recording
//!   byte-identically (exit 1 on mismatch); incompatible with knob
//!   substitution.
//! * What-if knobs (any subset; omitted knobs keep the baseline value):
//!   `--chunk N`, `--victim-cont F`, `--victim-escape F`,
//!   `--td-batch on|off`, `--latency flat|nearfar` (the scenario's
//!   latency tiers; `--base-latency` names the recording's, default
//!   flat).
//! * `--analysis-out <path>` — write the replayed run's analysis
//!   (`.txt` for human text, JSON otherwise).
//! * `--trace-out <path>` — write the replayed trace (`.jsonl` or Chrome
//!   JSON).
//!
//! Exit codes: 0 ok, 1 `--check` mismatch, 2 unreplayable input.

use scioto_analyze::whatif::{reprice, Knobs};
use scioto_bench::Args;
use scioto_sim::LatencyTiers;

fn tiers_flag(args: &Args, key: &str) -> Option<LatencyTiers> {
    match args.get_opt(key).as_deref() {
        None | Some("flat") => None,
        Some("nearfar") => Some(LatencyTiers::nearfar()),
        Some(v) => panic!("--{key} expects flat|nearfar, got {v}"),
    }
}

fn main() {
    let args = Args::parse();
    let path = args
        .get_opt("file")
        .unwrap_or_else(|| panic!("--file <trace.jsonl> is required"));
    let body = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading {path}: {e}"));
    let trace = match scioto_analyze::jsonl::parse(&body) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("replay: cannot parse {path}: {e}");
            std::process::exit(2);
        }
    };
    let prog = match scioto_analyze::lower(&trace) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("replay: {e}");
            std::process::exit(2);
        }
    };

    let base = Knobs {
        tiers: tiers_flag(&args, "base-latency"),
        ..Knobs::baseline()
    };
    let mut cand = base;
    if let Some(c) = args.get_opt("chunk") {
        cand.chunk = c.parse().unwrap_or_else(|_| panic!("--chunk expects a count, got {c}"));
    }
    if let Some(v) = args.get_opt("victim-cont") {
        cand.victim_cont = v
            .parse()
            .unwrap_or_else(|_| panic!("--victim-cont expects a probability, got {v}"));
    }
    if let Some(v) = args.get_opt("victim-escape") {
        cand.victim_escape = v
            .parse()
            .unwrap_or_else(|_| panic!("--victim-escape expects a probability, got {v}"));
    }
    match args.get_opt("td-batch").as_deref() {
        Some("on") => cand.td_batch = true,
        Some("off") => cand.td_batch = false,
        Some(v) => panic!("--td-batch expects on|off, got {v}"),
        None => {}
    }
    if args.get_opt("latency").is_some() {
        cand.tiers = tiers_flag(&args, "latency");
    }

    let what_if = cand != base;
    if args.has("check") && what_if {
        panic!("--check verifies identity replay; drop the what-if knobs");
    }

    let replayed = if what_if {
        scioto_sim::run_replay(&reprice(&prog, &base, &cand))
    } else {
        scioto_sim::run_replay(&prog)
    };

    if args.has("check") {
        if replayed.to_jsonl() != trace.to_jsonl() {
            eprintln!("replay check FAILED: replay differs from the recording");
            std::process::exit(1);
        }
        eprintln!(
            "replay check OK: {} events over {} ranks reproduced byte-identically",
            trace.total_events(),
            trace.nranks()
        );
    }

    let analysis = scioto_analyze::analyze(&replayed);
    if let Some(out) = args.get_opt("analysis-out") {
        let body = if out.ends_with(".txt") {
            analysis.to_text()
        } else {
            analysis.to_json()
        };
        std::fs::write(&out, body).unwrap_or_else(|e| panic!("writing {out}: {e}"));
        eprintln!("replay analysis written to {out}");
    }
    if let Some(out) = args.get_opt("trace-out") {
        let body = if out.ends_with(".jsonl") {
            replayed.to_jsonl()
        } else {
            replayed.to_chrome_json()
        };
        std::fs::write(&out, body).unwrap_or_else(|e| panic!("writing {out}: {e}"));
        eprintln!("replayed trace written to {out}");
    }

    let mode = if what_if { "what-if" } else { "identity" };
    println!(
        "replayed {path} ({mode}): {} ranks, makespan {} ns",
        analysis.ranks, analysis.makespan_ns
    );
}
