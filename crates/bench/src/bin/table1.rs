//! Table 1 — microbenchmark timings for core task-collection operations.
//!
//! Reproduces: local insert, remote insert, local get, remote steal, with
//! a 1 KiB task body and chunk size 10, under the cluster and Cray XT4
//! latency models. Times are *modelled* (virtual) microseconds; the
//! paper's measured values are printed alongside for comparison.
//!
//! Run: `cargo run --release -p scioto-bench --bin table1`
//! Options: `--engine auto|threads|events`, `--latency flat|nearfar`,
//! `--old-startup` (historical two-barriers-per-collective startup), plus
//! the policy flags `--victim`, `--barrier`, `--td-batch`,
//! `--old-policy` shared with the other bench binaries.

use scioto::{Task, TaskCollection, TcConfig};
use scioto_armci::Armci;
use scioto_bench::{
    dump_analysis, dump_trace, engine_from_args, obs_requested, run_predict_check, run_race_check, run_replay_check, render_table,
    startup_from_args, startup_param, trace_config, us, Args, BenchOut, LatencyPreset, PolicyFlags,
};
use scioto_sim::{Engine, LatencyModel, Machine, MachineConfig, Report, StartupMode, TraceConfig};

const BODY: usize = 1024;
const CHUNK: usize = 10;

/// Measured virtual-time costs of the four operations, in ns.
struct OpTimes {
    local_insert: u64,
    local_get: u64,
    remote_insert: u64,
    remote_steal: u64,
}

fn measure(
    latency: LatencyModel,
    trace: TraceConfig,
    policy: PolicyFlags,
    engine: Engine,
    startup: StartupMode,
) -> (OpTimes, Report) {
    let out = Machine::run(
        MachineConfig::virtual_time(2)
            .with_latency(latency)
            .with_trace(trace)
            .with_barrier(policy.barrier)
            .with_engine(engine)
            .with_startup(startup),
        move |ctx| {
            let armci = Armci::init(ctx);
            // Local-op collection with default split policy.
            let base_cfg = TcConfig::new(BODY, CHUNK, 8192)
                .with_victim(policy.victim)
                .with_td_batch(policy.td_batch);
            let tc = TaskCollection::create(ctx, &armci, base_cfg);
            // Steal-target collection with an eager release policy so the
            // shared portion always has chunks available.
            let steal_cfg = TcConfig {
                release_threshold: 1 << 20,
                ..base_cfg
            };
            let tc2 = TaskCollection::create(ctx, &armci, steal_cfg);
            let h = tc.register(ctx, std::sync::Arc::new(|_| {}));
            let h2 = tc2.register(ctx, std::sync::Arc::new(|_| {}));
            let task = Task::with_body_size(h, BODY);
            let task2 = Task::with_body_size(h2, BODY);

            let mut times = [0u64; 4];
            const N: u64 = 1000;
            if ctx.rank() == 0 {
                // Local insert.
                let t0 = ctx.now();
                for _ in 0..N {
                    tc.bench_push_local(ctx, &task);
                }
                times[0] = (ctx.now() - t0) / N;
                // Local get.
                let t0 = ctx.now();
                for _ in 0..N {
                    assert!(tc.bench_pop_local(ctx));
                }
                times[1] = (ctx.now() - t0) / N;
                // Seed the steal-target collection generously.
                for _ in 0..2000 {
                    tc2.bench_push_local(ctx, &task2);
                }
            }
            armci.barrier(ctx);
            if ctx.rank() == 1 {
                // Remote insert.
                let t0 = ctx.now();
                for _ in 0..N {
                    tc.bench_insert_remote(ctx, 0, &task);
                }
                times[2] = (ctx.now() - t0) / N;
                // Remote steal (chunk tasks per operation).
                const S: u64 = 100;
                let t0 = ctx.now();
                for _ in 0..S {
                    let got = tc2.bench_steal(ctx, 0);
                    assert_eq!(got, CHUNK, "steal bench ran out of shared tasks");
                }
                times[3] = (ctx.now() - t0) / S;
            }
            armci.barrier(ctx);
            times
        },
    );
    let times = OpTimes {
        local_insert: out.results[0][0],
        local_get: out.results[0][1],
        remote_insert: out.results[1][2],
        remote_steal: out.results[1][3],
    };
    (times, out.report)
}

fn main() {
    let args = Args::parse();
    let policy = PolicyFlags::from_args(&args);
    let engine = engine_from_args(&args);
    let latency = LatencyPreset::from_args(&args);
    // The cluster measurement doubles as the traced run when asked for.
    let trace = if obs_requested(&args) {
        trace_config(&args)
    } else {
        TraceConfig::disabled()
    };
    let startup = startup_from_args(&args);
    let (cluster, cluster_report) = measure(
        latency.apply(LatencyModel::cluster()),
        trace,
        policy,
        engine,
        startup,
    );
    let (xt4, _) = measure(
        latency.apply(LatencyModel::xt4()),
        TraceConfig::disabled(),
        policy,
        engine,
        startup,
    );
    dump_trace(&args, &cluster_report);
    dump_analysis(&args, &cluster_report);
    run_race_check(&args, &cluster_report);
    run_predict_check(&args, &cluster_report);
    run_replay_check(&args, &cluster_report);

    let mut bench = BenchOut::new("table1");
    bench.param("body_bytes", BODY);
    bench.param("chunk", CHUNK);
    bench.param("ranks", 2);
    for (k, v) in policy.params() {
        bench.param(k, v);
    }
    if let Some((k, v)) = latency.param() {
        bench.param(k, v);
    }
    if let Some((k, v)) = startup_param(startup) {
        bench.param(k, v);
    }
    for (model, t) in [("cluster", &cluster), ("xt4", &xt4)] {
        bench.metric(&format!("{model}_local_insert_ns"), t.local_insert as f64);
        bench.metric(&format!("{model}_local_get_ns"), t.local_get as f64);
        bench.metric(&format!("{model}_remote_insert_ns"), t.remote_insert as f64);
        bench.metric(&format!("{model}_remote_steal_ns"), t.remote_steal as f64);
    }
    bench.write_if_requested(&args);
    let rows = vec![
        vec![
            "Local Insert".into(),
            us(cluster.local_insert),
            "0.4952".into(),
            us(xt4.local_insert),
            "0.9330".into(),
        ],
        vec![
            "Remote Insert".into(),
            us(cluster.remote_insert),
            "18.0819".into(),
            us(xt4.remote_insert),
            "27.018".into(),
        ],
        vec![
            "Local Get".into(),
            us(cluster.local_get),
            "0.3613".into(),
            us(xt4.local_get),
            "0.6913".into(),
        ],
        vec![
            "Remote Steal".into(),
            us(cluster.remote_steal),
            "29.0080".into(),
            us(xt4.remote_steal),
            "32.384".into(),
        ],
    ];
    print!(
        "{}",
        render_table(
            "Table 1: task collection operation timings (µs; 1 KiB body, chunk 10)",
            &[
                "Operation",
                "Cluster (model)",
                "Cluster (paper)",
                "XT4 (model)",
                "XT4 (paper)",
            ],
            &rows,
        )
    );
}
