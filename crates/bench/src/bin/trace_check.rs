//! Smoke-check a Chrome `trace_event` dump produced by `--trace-out`:
//! the file must parse as JSON and carry at least one event (beyond the
//! `thread_name` metadata record) on every rank's track.
//!
//! Run: `cargo run -p scioto-bench --bin trace_check -- \
//!           --file /tmp/trace.json --ranks 8`
//!
//! With `--replayable` the file is instead treated as a JSONL dump and
//! probed for replayability: parse, lower to a replay program, and report
//! the first offending rank/event when the trace cannot be re-executed.
//! Wall-clock (concurrent-mode) traces are an expected, valid input that
//! is *by design* not replayable — they classify as such with a
//! descriptive note and exit 0, not an error cascade.
//!
//! `--max-episodes N` (with `--replayable`) additionally gates the
//! lowered program's barrier-episode census: more than `N` episodes
//! exits 1. This is the verify-script guard against collective-startup
//! regressions — the coalesced protocol keeps fixed-shape workloads at a
//! known episode count, and an accidental extra barrier shows up here
//! long before it shows up in a throughput figure.
//!
//! Exits 0 on success, 1 with a diagnostic on stderr otherwise. Used by
//! `scripts/verify.sh` to smoke-test the tracing pipeline end to end.

use scioto_bench::Args;
use scioto_sim::validate_json;

fn main() {
    let args = Args::parse();
    let Some(path) = args.get_opt("file") else {
        eprintln!("usage: trace_check --file <trace.json> --ranks <n> | --file <trace.jsonl> --replayable");
        std::process::exit(1);
    };
    if args.has("replayable") {
        let body = match std::fs::read_to_string(&path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("trace_check: cannot read {path}: {e}");
                std::process::exit(1);
            }
        };
        let trace = match scioto_analyze::jsonl::parse(&body) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("trace_check: {path}: {e}");
                std::process::exit(1);
            }
        };
        if trace.wall_clock {
            // Valid trace, wrong clock domain for replay: report the
            // classification and succeed — the file is exactly what a
            // concurrent-mode run is supposed to produce.
            println!(
                "trace_check: {path} is a wall-clock (concurrent-mode) trace: valid, \
                 analyzable, but not replayable by design — wall timestamps are not \
                 reproducible, so there is no byte-exact schedule to re-execute \
                 ({} ranks)",
                trace.nranks()
            );
            return;
        }
        match scioto_analyze::lower(&trace) {
            Ok(prog) => {
                println!(
                    "trace_check: {path} is replayable ({} ranks, {} barrier episode(s))",
                    prog.nranks, prog.episodes
                );
                if let Some(max) = args.get_opt("max-episodes") {
                    let max: usize = max
                        .parse()
                        .unwrap_or_else(|e| panic!("--max-episodes {max}: {e}"));
                    if prog.episodes > max {
                        eprintln!(
                            "trace_check: {path} has {} barrier episode(s), over the \
                             --max-episodes budget {max} — a collective on the startup \
                             or steady-state path regressed to extra barrier rounds",
                            prog.episodes
                        );
                        std::process::exit(1);
                    }
                }
                return;
            }
            Err(e) => {
                eprintln!("trace_check: {path}: {e}");
                std::process::exit(1);
            }
        }
    }
    let ranks: usize = args.get("ranks", 0);
    if ranks == 0 {
        eprintln!("trace_check: --ranks must be >= 1");
        std::process::exit(1);
    }
    let body = match std::fs::read_to_string(&path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("trace_check: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    if let Err(e) = validate_json(&body) {
        eprintln!("trace_check: {path} is not valid JSON: {e}");
        std::process::exit(1);
    }
    // Every rank's track holds its thread_name metadata record plus its
    // events, each carrying a `"tid":R` member — require metadata plus at
    // least one real event per rank. Rank 0's track also carries the
    // process_name metadata record.
    for r in 0..ranks {
        // `tid` is followed by `,` when args trail it, `}` otherwise; both
        // terminators keep rank 1 from matching rank 12.
        let hits = body.matches(&format!("\"tid\":{r},")).count()
            + body.matches(&format!("\"tid\":{r}}}")).count();
        let meta = if r == 0 { 2 } else { 1 };
        if hits < meta + 1 {
            eprintln!(
                "trace_check: rank {r} has {} event(s) in {path}; expected \
                 at least one trace event besides track metadata",
                hits.saturating_sub(meta)
            );
            std::process::exit(1);
        }
    }
    // The Chrome export carries the ring-overflow counters in its
    // `sciotoMeta` trailer; surface drops loudly (they mean truncated
    // timelines) without failing the check.
    if let Some(dropped) = dropped_counts(&body) {
        let total: u64 = dropped.iter().sum();
        if total > 0 {
            eprintln!(
                "trace_check: WARNING: ring overflow dropped {total} event(s) on {} rank(s); \
                 rerun with a larger --trace-ring",
                dropped.iter().filter(|&&d| d > 0).count()
            );
        }
    }
    let clock = if body.contains("\"clock\":\"wall\"") {
        ", wall clock"
    } else {
        ""
    };
    println!("trace_check: {path} OK ({ranks} rank tracks, JSON parses{clock})");
}

/// Pull the per-rank drop counters out of `"sciotoMeta":{"dropped":[...]`.
/// Returns `None` for traces predating the metadata trailer.
fn dropped_counts(body: &str) -> Option<Vec<u64>> {
    let prefix = "\"sciotoMeta\":{\"dropped\":[";
    let rest = &body[body.find(prefix)? + prefix.len()..];
    let list = &rest[..rest.find(']')?];
    list.split(',')
        .filter(|s| !s.is_empty())
        .map(|s| s.trim().parse().ok())
        .collect()
}
