//! Closed-loop knob autotuner: record one seeded fig7-style UTS run,
//! replay it under a deterministic candidate sweep, score candidates by
//! makespan/imbalance/blame shares, live-validate the most promising
//! ones, and emit a tuned `TcConfig` as JSON plus a human report.
//!
//! The loop never re-runs the workload to *rank* candidates — ranking is
//! replay re-pricing (`scioto-analyze`'s what-if layer), which costs
//! milliseconds per candidate. Live seeded runs are reserved for the
//! top-K finishers plus every structural candidate the critical-path
//! gate admitted (release-fraction changes restructure the schedule, so
//! replay cannot price them).
//!
//! Run: `cargo run --release -p scioto-bench --bin tune`
//!
//! Options: `--ranks N` (default 64), `--tree tiny|small|medium|large`
//! (default small), `--seed N` (default 876269 = 0xD5EED),
//! `--max-candidates N`, `--top K` (default 3 live validations),
//! `--engine auto|threads|events`, `--latency flat|nearfar`,
//! `--out <config.json>`, `--report <path>`, `--json-out <BENCH json>`,
//! `--require-improvement` (exit 1 unless the tuned config beats the
//! default live).

use scioto_analyze::tune::{candidates, config_json, render_report, replay_score, Score, TuneRow};
use scioto_analyze::whatif::Knobs;
use scioto_bench::{engine_from_args, startup_from_args, startup_param, Args, BenchOut, LatencyPreset};
use scioto_sim::{
    Engine, LatencyModel, Machine, MachineConfig, SpeedModel, StartupMode, Trace, TraceConfig,
};
use scioto_uts::presets;
use scioto_uts::scioto_driver::{run_scioto_uts, SciotoUtsConfig};
use scioto_uts::TreeParams;

#[derive(Clone, Copy)]
struct RunCfg {
    ranks: usize,
    params: TreeParams,
    seed: u64,
    engine: Engine,
    latency: LatencyPreset,
    startup: StartupMode,
}

/// One live traced seeded run under `knobs`; returns the trace.
fn live_run(rc: RunCfg, knobs: &Knobs) -> Trace {
    let params = rc.params;
    let uts = SciotoUtsConfig {
        chunk: knobs.chunk,
        victim_cont: Some(knobs.victim_cont),
        victim_escape: Some(knobs.victim_escape),
        td_batch: Some(knobs.td_batch),
        release_fraction: Some(knobs.release_fraction),
        ..SciotoUtsConfig::new(params)
    };
    Machine::run(
        MachineConfig::virtual_time(rc.ranks)
            .with_latency(rc.latency.apply(LatencyModel::cluster()))
            .with_speed(SpeedModel::hetero_cluster(rc.ranks))
            .with_seed(rc.seed)
            .with_engine(rc.engine)
            .with_startup(rc.startup)
            .with_trace(TraceConfig::enabled()),
        move |ctx| run_scioto_uts(ctx, &uts).0,
    )
    .report
    .trace
    .expect("tracing was enabled")
}

fn main() {
    let args = Args::parse();
    let rc = RunCfg {
        ranks: args.get("ranks", 64),
        params: match args.get("tree", "small".to_string()).as_str() {
            "tiny" => presets::tiny(),
            "small" => presets::small(),
            "medium" => presets::medium(),
            "large" => presets::large(),
            other => panic!("unknown tree preset {other}"),
        },
        seed: args.get("seed", 0xD5EED),
        engine: engine_from_args(&args),
        latency: LatencyPreset::from_args(&args),
        startup: startup_from_args(&args),
    };
    let tree: String = args.get("tree", "small".to_string());
    let max_candidates: usize = args.get("max-candidates", usize::MAX);
    let top_k: usize = args.get("top", 3);

    // 1. Record the incumbent.
    eprintln!("tune: recording baseline ({} ranks, {tree} tree, seed {})", rc.ranks, rc.seed);
    let base_knobs = Knobs {
        tiers: match rc.latency {
            LatencyPreset::Flat => None,
            LatencyPreset::NearFar => Some(scioto_sim::LatencyTiers::nearfar()),
        },
        ..Knobs::baseline()
    };
    let recording = live_run(rc, &base_knobs);
    let base_report = scioto_analyze::analyze(&recording);
    let base_score = Score::from_report(&base_report);

    // 2. Lower + self-check: the replay engine must reproduce the
    //    recording byte-identically before its re-pricings can be trusted.
    let prog = match scioto_analyze::lower(&recording) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("tune: recording is not replayable: {e}");
            std::process::exit(2);
        }
    };
    let identity = scioto_sim::run_replay(&prog);
    if identity.to_jsonl() != recording.to_jsonl() {
        eprintln!("tune: replay self-check FAILED — refusing to trust re-priced scores");
        std::process::exit(2);
    }
    eprintln!("tune: replay self-check OK ({} events)", recording.total_events());

    // 3. Candidate sweep, pruned by the recorded critical path.
    let mut sweep = candidates(&base_knobs, &base_report.critical_path);
    if sweep.len() > max_candidates {
        eprintln!(
            "tune: truncating sweep {} -> {max_candidates} candidates (--max-candidates)",
            sweep.len()
        );
        sweep.truncate(max_candidates);
    }

    // 4. Replay-score every candidate (structural ones keep the baseline
    //    score: the gate, not the replay, argued for them).
    let scored: Vec<(usize, Score)> = sweep
        .iter()
        .enumerate()
        .map(|(i, c)| {
            let s = if c.structural {
                base_score
            } else {
                replay_score(&prog, &base_knobs, &c.knobs)
            };
            eprintln!(
                "tune: replay {:<24} makespan {} ns{}",
                c.name,
                s.makespan_ns,
                if c.structural { " (structural; live-only)" } else { "" }
            );
            (i, s)
        })
        .collect();

    // 5. Pick live-validation set: top-K replay scores that beat the
    //    baseline, plus every structural candidate.
    let mut ranked: Vec<&(usize, Score)> = scored
        .iter()
        .filter(|(i, s)| !sweep[*i].structural && s.cost() < base_score.cost())
        .collect();
    ranked.sort_by(|a, b| a.1.cost().partial_cmp(&b.1.cost()).unwrap());
    let mut validate: Vec<usize> = ranked.iter().take(top_k).map(|(i, _)| *i).collect();
    validate.extend(
        sweep
            .iter()
            .enumerate()
            .filter(|(_, c)| c.structural)
            .map(|(i, _)| i),
    );

    let mut rows = vec![TuneRow {
        name: "baseline".into(),
        replay: base_score,
        live: Some(base_score),
    }];
    let mut best: (String, Knobs, Score) = ("baseline".into(), base_knobs, base_score);
    for &i in &validate {
        let c = &sweep[i];
        eprintln!("tune: live-validating {}", c.name);
        let live = Score::from_report(&scioto_analyze::analyze(&live_run(rc, &c.knobs)));
        eprintln!("tune: live {:<24} makespan {} ns", c.name, live.makespan_ns);
        rows.push(TuneRow {
            name: c.name.clone(),
            replay: scored[i].1,
            live: Some(live),
        });
        if live.cost() < best.2.cost() {
            best = (c.name.clone(), c.knobs, live);
        }
    }
    // Candidates that were replay-scored but not validated still show in
    // the report.
    for (i, s) in &scored {
        if !validate.contains(i) {
            rows.push(TuneRow { name: sweep[*i].name.clone(), replay: *s, live: None });
        }
    }

    // 6. Emit artifacts.
    let (winner, winner_knobs, winner_score) = best;
    let source = format!(
        "tune fig7@{} tree={tree} seed={} latency={}",
        rc.ranks,
        rc.seed,
        match rc.latency {
            LatencyPreset::Flat => "flat",
            LatencyPreset::NearFar => "nearfar",
        }
    );
    let cfg = config_json(&winner_knobs, &source);
    if let Some(out) = args.get_opt("out") {
        std::fs::write(&out, &cfg).unwrap_or_else(|e| panic!("writing {out}: {e}"));
        eprintln!("tune: tuned config written to {out}");
    }
    let report = render_report(&rows, &winner, "baseline");
    if let Some(out) = args.get_opt("report") {
        std::fs::write(&out, &report).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    }
    print!("{report}");
    print!("{cfg}");

    let mut bench = BenchOut::new("fig7_tuned");
    bench.param("ranks", rc.ranks);
    bench.param("tree", &tree);
    bench.param("seed", rc.seed);
    bench.param("winner", &winner);
    if let Some((k, v)) = rc.latency.param() {
        bench.param(k, v);
    }
    if let Some((k, v)) = startup_param(rc.startup) {
        bench.param(k, v);
    }
    bench.metric("makespan_default_ns", base_score.makespan_ns as f64);
    bench.metric("makespan_tuned_ns", winner_score.makespan_ns as f64);
    bench.metric(
        "headroom_ns",
        base_score.makespan_ns as f64 - winner_score.makespan_ns as f64,
    );
    bench.write_if_requested(&args);

    if args.has("require-improvement") && winner_score.makespan_ns >= base_score.makespan_ns {
        eprintln!(
            "tune: no improvement over defaults (tuned {} ns >= default {} ns)",
            winner_score.makespan_ns, base_score.makespan_ns
        );
        std::process::exit(1);
    }
}
