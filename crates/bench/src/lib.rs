//! Shared plumbing for the table/figure regeneration binaries: argument
//! parsing, aligned table printing, common sweep helpers, and the
//! dependency-free [`tinybench`] harness backing the `benches/` targets.

use std::fmt::Write as _;

pub mod benchjson;
pub mod tinybench;

pub use benchjson::BenchOut;

/// Minimal flag parser: `--key value` pairs and bare flags.
pub struct Args {
    raw: Vec<String>,
}

impl Args {
    /// Parse the process arguments.
    pub fn parse() -> Args {
        Args {
            raw: std::env::args().skip(1).collect(),
        }
    }

    /// Value of `--key <v>` parsed as `T`, or the default.
    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        let flag = format!("--{key}");
        self.raw
            .iter()
            .position(|a| a == &flag)
            .and_then(|i| self.raw.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Value of `--key <v>` as a string, or `None` when the flag is
    /// absent or has no value.
    pub fn get_opt(&self, key: &str) -> Option<String> {
        let flag = format!("--{key}");
        self.raw
            .iter()
            .position(|a| a == &flag)
            .and_then(|i| self.raw.get(i + 1))
            .cloned()
    }

    /// Whether the bare flag `--key` is present.
    pub fn has(&self, key: &str) -> bool {
        let flag = format!("--{key}");
        self.raw.iter().any(|a| a == &flag)
    }

    /// Build an `Args` from explicit values (tests).
    pub fn from_vec(raw: Vec<String>) -> Args {
        Args { raw }
    }
}

impl Default for Args {
    fn default() -> Self {
        Args::parse()
    }
}

/// Render an aligned text table.
pub fn render_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "\n== {title} ==");
    let mut line = String::new();
    for (h, w) in headers.iter().zip(&widths) {
        let _ = write!(line, "{h:>w$}  ", w = w);
    }
    let _ = writeln!(out, "{}", line.trim_end());
    let _ = writeln!(out, "{}", "-".repeat(line.trim_end().len()));
    for row in rows {
        let mut line = String::new();
        for (cell, w) in row.iter().zip(&widths) {
            let _ = write!(line, "{cell:>w$}  ", w = w);
        }
        let _ = writeln!(out, "{}", line.trim_end());
    }
    out
}

/// Format nanoseconds as microseconds with 2 decimals.
pub fn us(ns: u64) -> String {
    format!("{:.2}", ns as f64 / 1e3)
}

/// Format nanoseconds as seconds with 3 decimals.
pub fn secs(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1e9)
}

/// The rank counts used by the paper's cluster figures, extended past the
/// paper's 64-rank ceiling by continuing the powers of two up to `max`
/// (the event engine sweeps to 1024+ ranks on one core).
pub fn cluster_rank_sweep(max: usize) -> Vec<usize> {
    let mut ps = Vec::new();
    let mut p = 2usize;
    while p <= max {
        ps.push(p);
        p *= 2;
    }
    ps
}

/// `--only-ranks N`: restrict a sweep to the single rank count `N`
/// (used to bless large-scale baseline points without re-running the
/// whole ladder). Recorded as a bench param by the bins that honor it.
pub fn only_ranks(args: &Args) -> Option<usize> {
    args.get_opt("only-ranks").map(|v| {
        v.parse()
            .unwrap_or_else(|_| panic!("--only-ranks expects a rank count, got {v}"))
    })
}

/// Parse `--engine auto|threads|events` into a sim [`scioto_sim::Engine`].
/// Both engines produce byte-identical results by construction (verify.sh
/// enforces it at rel-tol 0), so the engine is deliberately *not* recorded
/// as a bench param — baselines blessed under one engine gate the other.
pub fn engine_from_args(args: &Args) -> scioto_sim::Engine {
    match args.get_opt("engine").as_deref() {
        None | Some("auto") => scioto_sim::Engine::Auto,
        Some("threads") => scioto_sim::Engine::Threads,
        Some("events") => scioto_sim::Engine::Events,
        Some(v) => panic!("--engine expects auto|threads|events, got {v}"),
    }
}

/// `--latency flat|nearfar`: whether to attach the near/far distance
/// tiers to a figure's base latency model. `flat` (the default) is the
/// historical distance-blind model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LatencyPreset {
    /// Distance-blind base model (default; matches all old baselines).
    Flat,
    /// Base model with [`scioto_sim::LatencyTiers::nearfar`] attached.
    NearFar,
}

impl LatencyPreset {
    pub fn from_args(args: &Args) -> Self {
        match args.get_opt("latency").as_deref() {
            None | Some("flat") => LatencyPreset::Flat,
            Some("nearfar") => LatencyPreset::NearFar,
            Some(v) => panic!("--latency expects flat|nearfar, got {v}"),
        }
    }

    /// Apply the preset to a figure's base latency model.
    pub fn apply(self, base: scioto_sim::LatencyModel) -> scioto_sim::LatencyModel {
        match self {
            LatencyPreset::Flat => base,
            LatencyPreset::NearFar => base.with_tiers(scioto_sim::LatencyTiers::nearfar()),
        }
    }

    /// The `latency` bench param, recorded only when non-default so the
    /// params of pre-existing baselines (which lack the key) stay valid.
    pub fn param(self) -> Option<(&'static str, String)> {
        match self {
            LatencyPreset::Flat => None,
            LatencyPreset::NearFar => Some(("latency", "nearfar".into())),
        }
    }
}

/// `--old-startup`: run the historical two-barriers-per-collective
/// startup protocol instead of the coalesced default (the PR-5 ablation
/// pattern — old behaviour stays selectable and byte-identical to the
/// pre-coalescing baselines).
pub fn startup_from_args(args: &Args) -> scioto_sim::StartupMode {
    if args.has("old-startup") {
        scioto_sim::StartupMode::Old
    } else {
        scioto_sim::StartupMode::Coalesced
    }
}

/// The `startup` bench param, recorded only under `--old-startup`:
/// coalesced runs (the new default) gain no key, so their BENCH files
/// diff cleanly against freshly blessed baselines, while old-startup runs
/// compare against pre-coalescing baselines with
/// `bench_diff --ignore-params startup`.
pub fn startup_param(mode: scioto_sim::StartupMode) -> Option<(&'static str, String)> {
    match mode {
        scioto_sim::StartupMode::Coalesced => None,
        scioto_sim::StartupMode::Old => Some(("startup", "old".into())),
    }
}

/// The hot-path policy knobs shared by every bench binary:
/// `--victim uniform|locality`, `--barrier flat|tree`,
/// `--td-batch on|off`. Defaults are the new policies; the `old` triple
/// (`uniform`/`flat`/`off`) reproduces the pre-locality baselines
/// byte-for-byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PolicyFlags {
    /// Steal victim-selection policy.
    pub victim: scioto::VictimPolicy,
    /// Machine barrier release model.
    pub barrier: scioto_sim::BarrierKind,
    /// Batched termination detection.
    pub td_batch: bool,
}

impl PolicyFlags {
    /// The new-policy defaults (locality victims, tree barrier, batched
    /// TD).
    pub fn new_policy() -> Self {
        PolicyFlags {
            victim: scioto::VictimPolicy::Locality,
            barrier: scioto_sim::BarrierKind::Tree,
            td_batch: true,
        }
    }

    /// The pre-locality baseline (uniform victims, flat barrier, per-slot
    /// TD) — the ablation reference.
    pub fn old_policy() -> Self {
        PolicyFlags {
            victim: scioto::VictimPolicy::Uniform,
            barrier: scioto_sim::BarrierKind::Flat,
            td_batch: false,
        }
    }

    /// Parse the policy flags, starting from the new-policy defaults.
    /// `--old-policy` selects the full baseline triple in one flag;
    /// individual flags override on top.
    pub fn from_args(args: &Args) -> Self {
        let mut p = if args.has("old-policy") {
            PolicyFlags::old_policy()
        } else {
            PolicyFlags::new_policy()
        };
        match args.get_opt("victim").as_deref() {
            Some("uniform") => p.victim = scioto::VictimPolicy::Uniform,
            Some("locality") => p.victim = scioto::VictimPolicy::Locality,
            Some(other) => panic!("--victim must be uniform|locality, got {other}"),
            None => {}
        }
        match args.get_opt("barrier").as_deref() {
            Some("flat") => p.barrier = scioto_sim::BarrierKind::Flat,
            Some("tree") => p.barrier = scioto_sim::BarrierKind::Tree,
            Some(other) => panic!("--barrier must be flat|tree, got {other}"),
            None => {}
        }
        match args.get_opt("td-batch").as_deref() {
            Some("on") => p.td_batch = true,
            Some("off") => p.td_batch = false,
            Some(other) => panic!("--td-batch must be on|off, got {other}"),
            None => {}
        }
        p
    }

    /// The `(key, value)` params every bench records so `bench_diff` can
    /// tell policy configurations apart.
    pub fn params(&self) -> [(&'static str, String); 3] {
        [
            (
                "victim",
                match self.victim {
                    scioto::VictimPolicy::Uniform => "uniform".to_string(),
                    scioto::VictimPolicy::Locality => "locality".to_string(),
                },
            ),
            (
                "barrier",
                match self.barrier {
                    scioto_sim::BarrierKind::Flat => "flat".to_string(),
                    scioto_sim::BarrierKind::Tree => "tree".to_string(),
                },
            ),
            ("td_batch", if self.td_batch { "on" } else { "off" }.to_string()),
        ]
    }
}

/// Did the user ask for a trace dump (`--trace-out <path>`)?
pub fn trace_requested(args: &Args) -> bool {
    args.get_opt("trace-out").is_some()
}

/// Did the user ask for a happens-before race check on the traced run
/// (`--race-check`)?
pub fn race_check_requested(args: &Args) -> bool {
    args.has("race-check")
}

/// Did the user ask for a replay self-check on the traced run
/// (`--replay-check`)?
pub fn replay_check_requested(args: &Args) -> bool {
    args.has("replay-check")
}

/// Did the user ask for predictive race analysis on the traced run
/// (`--predict`)?
pub fn predict_requested(args: &Args) -> bool {
    args.has("predict")
}

/// Did the user ask for a lock-order deadlock scan on the traced run
/// (`--deadlock`)?
pub fn deadlock_check_requested(args: &Args) -> bool {
    args.has("deadlock")
}

/// Did the user ask for any observability output — a raw trace dump
/// (`--trace-out`), an analysis report (`--analysis-out`), a race check
/// (`--race-check`), a predictive analysis (`--predict`), a deadlock
/// scan (`--deadlock`), or a replay self-check (`--replay-check`)? Any
/// of them makes the bench binaries run their dedicated traced
/// configuration.
pub fn obs_requested(args: &Args) -> bool {
    trace_requested(args)
        || args.get_opt("analysis-out").is_some()
        || race_check_requested(args)
        || replay_check_requested(args)
        || predict_requested(args)
        || deadlock_check_requested(args)
}

/// The trace configuration for a bench binary's traced run: enabled,
/// with the per-rank ring capacity from `--trace-ring N` when given
/// (events beyond the capacity are dropped oldest-first and reported in
/// the trace's `dropped` counters), and the staging batch from
/// `--trace-batch N` (0 or 1 disables batched ring publication; the
/// default batches [`scioto_sim::DEFAULT_TRACE_BATCH`] events).
pub fn trace_config(args: &Args) -> scioto_sim::TraceConfig {
    let mut cfg = scioto_sim::TraceConfig::enabled();
    if let Some(cap) = args.get_opt("trace-ring").and_then(|v| v.parse::<usize>().ok()) {
        cfg = cfg.with_capacity(cap);
    }
    if let Some(b) = args.get_opt("trace-batch").and_then(|v| v.parse::<usize>().ok()) {
        cfg = cfg.with_batch(b);
    }
    cfg
}

/// Analyze `report`'s trace and write the `scioto-analysis-v1` JSON to
/// the `--analysis-out` path (human text instead when the path ends in
/// `.txt`); no-op when the flag is absent. Ring-overflow and truncation
/// warnings are mirrored to stderr so a lossy trace never passes
/// silently.
pub fn dump_analysis(args: &Args, report: &scioto_sim::Report) {
    let Some(path) = args.get_opt("analysis-out") else {
        return;
    };
    let trace = report
        .trace
        .as_ref()
        .expect("dump_analysis needs a report from a tracing-enabled run");
    let analysis = scioto_analyze::analyze(trace);
    for w in &analysis.warnings {
        eprintln!("analysis WARNING: {w}");
    }
    let body = if path.ends_with(".txt") {
        analysis.to_text()
    } else {
        analysis.to_json()
    };
    std::fs::write(&path, body).unwrap_or_else(|e| panic!("writing analysis to {path}: {e}"));
    eprintln!(
        "analysis: {} ranks, makespan {} ns, written to {path}",
        analysis.ranks, analysis.makespan_ns
    );
}

/// Write `report`'s trace to the `--trace-out` path: Chrome `trace_event`
/// JSON by default, flat JSONL when the path ends in `.jsonl`. With
/// `--trace-summary <path>` the human-readable digest is appended there
/// too. Panics if the report carries no trace (the caller must have run
/// the traced machine with `TraceConfig::enabled()`).
pub fn dump_trace(args: &Args, report: &scioto_sim::Report) {
    let Some(path) = args.get_opt("trace-out") else {
        return;
    };
    let trace = report
        .trace
        .as_ref()
        .expect("dump_trace needs a report from a tracing-enabled run");
    let body = if path.ends_with(".jsonl") {
        trace.to_jsonl()
    } else {
        trace.to_chrome_json()
    };
    std::fs::write(&path, body).unwrap_or_else(|e| panic!("writing trace to {path}: {e}"));
    eprintln!(
        "trace: {} events ({} ranks) written to {path}",
        trace.total_events(),
        trace.nranks()
    );
    if let Some(spath) = args.get_opt("trace-summary") {
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&spath)
            .unwrap_or_else(|e| panic!("opening {spath}: {e}"));
        write!(f, "{}", trace.summary()).unwrap_or_else(|e| panic!("writing {spath}: {e}"));
        eprintln!("trace summary appended to {spath}");
    }
}

/// Replay `report`'s trace through the happens-before race checker and
/// print the verdict; no-op without `--race-check`. Exits 1 when races
/// are found and 2 when the trace cannot be replayed (e.g. ring
/// overflow dropped events — rerun with a larger `--trace-ring`), so CI
/// wiring can gate on a clean check. Panics if the report carries no
/// trace (the caller must have run the traced machine).
pub fn run_race_check(args: &Args, report: &scioto_sim::Report) {
    if !race_check_requested(args) {
        return;
    }
    let trace = report
        .trace
        .as_ref()
        .expect("run_race_check needs a report from a tracing-enabled run");
    match scioto_race::check_trace(trace) {
        Ok(verdict) => {
            eprint!("{verdict}");
            if !verdict.is_clean() {
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("race check error: {e}");
            std::process::exit(2);
        }
    }
}

/// Run the sync-preserving predictive race analysis (`--predict`)
/// and/or the lock-order deadlock scan (`--deadlock`) on `report`'s
/// trace and print the verdicts; no-op when neither flag is given.
/// Exits 1 on findings (predicted races, atomicity violations, or
/// lock-order cycles) and 2 when the trace cannot be analyzed (e.g.
/// ring overflow dropped events — rerun with a larger `--trace-ring`).
/// Panics if the report carries no trace (the caller must have run the
/// traced machine).
pub fn run_predict_check(args: &Args, report: &scioto_sim::Report) {
    let do_predict = predict_requested(args);
    let do_deadlock = deadlock_check_requested(args);
    if !do_predict && !do_deadlock {
        return;
    }
    let trace = report
        .trace
        .as_ref()
        .expect("run_predict_check needs a report from a tracing-enabled run");
    let mut findings = false;
    if do_predict {
        match scioto_race::predict(trace) {
            Ok(verdict) => {
                eprint!("{verdict}");
                findings |= !verdict.is_clean();
            }
            Err(e) => {
                eprintln!("predict error: {e}");
                std::process::exit(2);
            }
        }
    }
    if do_deadlock {
        match scioto_race::check_deadlocks(trace) {
            Ok(verdict) => {
                eprint!("{verdict}");
                findings |= !verdict.is_clean();
            }
            Err(e) => {
                eprintln!("deadlock check error: {e}");
                std::process::exit(2);
            }
        }
    }
    if findings {
        std::process::exit(1);
    }
}

/// Lower `report`'s trace to a replay program, re-execute it on the
/// virtual-time kernel, and verify the replay reproduces the live run's
/// trace — and therefore its blame decomposition and critical path —
/// byte-identically; no-op without `--replay-check`. Exits 1 on a replay
/// mismatch and 2 when the trace cannot be lowered (e.g. ring overflow —
/// rerun with a larger `--trace-ring`). Panics if the report carries no
/// trace (the caller must have run the traced machine).
pub fn run_replay_check(args: &Args, report: &scioto_sim::Report) {
    if !replay_check_requested(args) {
        return;
    }
    let trace = report
        .trace
        .as_ref()
        .expect("run_replay_check needs a report from a tracing-enabled run");
    let prog = match scioto_analyze::lower(trace) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("replay check error: {e}");
            std::process::exit(2);
        }
    };
    let replayed = scioto_sim::run_replay(&prog);
    if replayed.to_jsonl() != trace.to_jsonl() {
        eprintln!("replay check FAILED: replayed trace differs from the live recording");
        std::process::exit(1);
    }
    let live = scioto_analyze::analyze(trace).to_json();
    let again = scioto_analyze::analyze(&replayed).to_json();
    if live != again {
        eprintln!("replay check FAILED: replayed analysis differs from the live analysis");
        std::process::exit(1);
    }
    eprintln!(
        "replay check OK: {} events over {} ranks reproduced byte-identically",
        trace.total_events(),
        trace.nranks()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let t = render_table(
            "demo",
            &["P", "value"],
            &[
                vec!["2".into(), "1.00".into()],
                vec!["64".into(), "123.45".into()],
            ],
        );
        assert!(t.contains("demo"));
        assert!(t.contains("123.45"));
    }

    #[test]
    fn unit_formatting() {
        assert_eq!(us(1_500), "1.50");
        assert_eq!(secs(2_500_000_000), "2.500");
    }

    #[test]
    fn sweep_respects_cap() {
        assert_eq!(cluster_rank_sweep(16), vec![2, 4, 8, 16]);
        // Identical to the historical list at the paper's 64-rank ceiling,
        // and continuing in powers of two beyond it.
        assert_eq!(cluster_rank_sweep(64), vec![2, 4, 8, 16, 32, 64]);
        assert_eq!(
            cluster_rank_sweep(1024),
            vec![2, 4, 8, 16, 32, 64, 128, 256, 512, 1024]
        );
    }

    #[test]
    fn latency_preset_applies_tiers() {
        let base = scioto_sim::LatencyModel::cluster();
        assert_eq!(LatencyPreset::Flat.apply(base), base);
        assert_eq!(
            LatencyPreset::NearFar.apply(base),
            scioto_sim::LatencyModel::cluster_nearfar()
        );
        assert_eq!(LatencyPreset::Flat.param(), None);
        assert_eq!(
            LatencyPreset::NearFar.param(),
            Some(("latency", "nearfar".to_string()))
        );
    }
}
