//! A minimal wall-clock benchmark harness (the `criterion` replacement
//! for the hermetic, zero-dependency build).
//!
//! Auto-calibrates the iteration count until one sample runs long enough
//! to be meaningful, takes several samples, and reports the median
//! ns/iteration. Not a statistics engine — the numbers feed EXPERIMENTS.md
//! as order-of-magnitude software-overhead checks, where the medians are
//! stable to a few percent.

use std::time::{Duration, Instant}; // scioto-lint: allow(wallclock)

/// Minimum wall time one calibrated sample should take.
const TARGET_SAMPLE: Duration = Duration::from_millis(20);
/// Samples taken at the calibrated iteration count.
const SAMPLES: usize = 5;

/// Benchmark a closure, timing `iters` consecutive invocations per
/// sample.
pub fn bench(name: &str, mut f: impl FnMut()) {
    bench_custom(name, |iters| {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        start.elapsed()
    });
}

/// Benchmark with caller-controlled timing: `run(iters)` must execute the
/// workload `iters` times and return the total elapsed wall time (the
/// `iter_custom` pattern — lets setup cost stay outside the measurement).
pub fn bench_custom(name: &str, mut run: impl FnMut(u64) -> Duration) {
    // Calibrate: double the iteration count until one sample is long
    // enough that per-sample overhead (thread spawns, clock reads) is
    // amortized.
    let mut iters = 1u64;
    loop {
        let d = run(iters);
        if d >= TARGET_SAMPLE || iters >= 1 << 24 {
            break;
        }
        // Jump close to the target in one step when the measurement is
        // informative, otherwise double.
        let factor = if d > Duration::from_micros(100) {
            (TARGET_SAMPLE.as_nanos() / d.as_nanos().max(1)).clamp(2, 1024) as u64
        } else {
            2
        };
        iters = iters.saturating_mul(factor).min(1 << 24);
    }
    // Saturating guard: the multiplications above keep `iters >= 1`, but
    // the per-iteration division below must never see zero even if the
    // calibration policy changes.
    let iters = iters.max(1);
    let mut per_iter: Vec<f64> = (0..SAMPLES)
        .map(|_| run(iters).as_nanos() as f64 / iters as f64)
        .collect();
    per_iter.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let median = per_iter[per_iter.len() / 2];
    let min = per_iter[0];
    let max = per_iter[per_iter.len() - 1];
    println!(
        "{name:<40} {median:>12.1} ns/iter  (min {min:.1}, max {max:.1}, \
         {iters} iters x {SAMPLES} samples)"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_terminates_on_slow_workloads() {
        // A deliberately slow single iteration must not loop forever.
        bench_custom("slow", |iters| Duration::from_millis(25 * iters.max(1)));
    }

    #[test]
    fn bench_runs_the_closure() {
        let mut count = 0u64;
        bench("counter", || count += 1);
        assert!(count > 0);
    }

    #[test]
    fn harness_never_requests_zero_iters() {
        // The ns/iter report divides by the requested iteration count; a
        // zero request would make every sample 0/0. Record the smallest
        // count the harness ever asks for.
        let mut min_iters = u64::MAX;
        bench_custom("min-iters probe", |iters| {
            min_iters = min_iters.min(iters);
            // Instantly "slow" workload: calibration accepts iters == 1.
            Duration::from_millis(25)
        });
        assert!(min_iters >= 1, "harness requested {min_iters} iterations");
    }
}
