//! End-to-end observability checks for the concurrent (real-thread)
//! backend: wall-clock traced UTS runs must export analyzable,
//! race-checkable traces, and ring overflow under concurrent emission
//! must surface loudly in every reporting surface.

use scioto_sim::{Machine, MachineConfig, TraceConfig};
use scioto_uts::presets;
use scioto_uts::scioto_driver::{run_scioto_uts, SciotoUtsConfig};

fn traced_concurrent_run(ranks: usize, ring: Option<usize>) -> scioto_sim::Report {
    let trace = match ring {
        Some(cap) => TraceConfig::enabled().with_capacity(cap),
        None => TraceConfig::enabled(),
    };
    let params = presets::tiny();
    Machine::run(
        MachineConfig::concurrent(ranks).with_seed(42).with_trace(trace),
        move |ctx| run_scioto_uts(ctx, &SciotoUtsConfig::new(params)).0,
    )
    .report
}

#[test]
fn concurrent_traced_uts_analyzes_and_race_checks_clean() {
    let report = traced_concurrent_run(4, None);
    let trace = report.trace.as_ref().expect("traced run carries a trace");
    assert!(trace.wall_clock, "concurrent trace must be wall-marked");
    assert_eq!(trace.dropped.iter().sum::<u64>(), 0, "default ring must not drop");

    // Per-rank thread spans are measured and bound every stamp.
    for r in 0..4 {
        assert!(report.rank_clock_ns[r] > 0, "rank {r} span not filled");
        assert_eq!(trace.final_clock_ns[r], report.rank_clock_ns[r]);
    }

    // Blame decomposition is exact per rank, warnings-free.
    let analysis = scioto_analyze::analyze(trace);
    assert!(analysis.warnings.is_empty(), "{:?}", analysis.warnings);
    for r in 0..analysis.ranks {
        assert_eq!(analysis.blame[r].total(), analysis.elapsed_ns[r]);
    }

    // The JSONL export round-trips with the wall marker intact.
    let parsed = scioto_analyze::jsonl::parse(&trace.to_jsonl()).expect("export parses");
    assert!(parsed.wall_clock);
    assert_eq!(parsed.to_jsonl(), trace.to_jsonl());

    // The HB race check pairs sync purely structurally — a real-thread
    // UTS run must come back clean with actual edges replayed.
    let verdict = scioto_race::check_trace(trace).expect("trace replays");
    assert!(verdict.is_clean(), "{verdict}");
    assert!(verdict.sync_edges > 0, "UTS run should carry sync edges");

    // And replay lowering refuses wall traces with its descriptive error.
    let err = scioto_analyze::lower(trace).unwrap_err();
    assert!(err.to_string().contains("wall-clock"), "{err}");
}

#[test]
fn concurrent_ring_overflow_warns_in_every_surface() {
    // A 16-slot ring cannot hold a UTS run's event stream; drops must be
    // counted, not silently lost, even under concurrent emission.
    let report = traced_concurrent_run(4, Some(16));
    let trace = report.trace.as_ref().expect("traced run carries a trace");
    let total_dropped: u64 = trace.dropped.iter().sum();
    assert!(total_dropped > 0, "tiny ring must overflow on a UTS run");
    for r in 0..4 {
        assert!(trace.events[r].len() <= 16, "ring capacity must bound retained events");
    }

    // Surface 1: the trace's own summary.
    let summary = trace.summary();
    assert!(summary.contains("WARNING: ring overflow"), "{summary}");
    assert!(summary.contains("clock: wall"), "{summary}");

    // Surface 2: the analysis report (struct, text, and JSON).
    let analysis = scioto_analyze::analyze(trace);
    assert!(
        analysis.warnings.iter().any(|w| w.contains("ring overflow")),
        "{:?}",
        analysis.warnings
    );
    assert!(analysis.to_text().contains("WARNING: ring overflow"));
    assert!(analysis.to_json().contains("ring overflow"));

    // Surface 3: the race checker refuses truncated sync streams with a
    // diagnostic instead of a bogus verdict.
    let err = scioto_race::check_trace(trace).unwrap_err();
    assert!(err.contains("dropped"), "{err}");

    // The drop counters survive the JSONL round trip, so offline tools
    // see the same truncation the live run reported.
    let parsed = scioto_analyze::jsonl::parse(&trace.to_jsonl()).expect("export parses");
    assert_eq!(parsed.dropped, trace.dropped);
}
