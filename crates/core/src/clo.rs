//! Common local objects (§2.3).
//!
//! A common local object (CLO) is a data object of which *every* process
//! holds a local instance (with possibly differing values). Collective
//! registration yields a portable handle; wherever a task executes, it can
//! look up the instance local to that process. Tasks use CLOs to gather
//! intermediate results locally (the UTS tree statistics use this), and
//! CLOs are the only output mechanism when the surrounding model has no
//! global address space (MPI interoperability).

use std::any::Any;
use std::sync::Arc;

use scioto_det::sync::RwLock;

/// Portable handle to a collectively registered common local object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CloHandle(pub u32);

pub(crate) struct CloRegistry {
    tables: Vec<RwLock<Vec<Arc<dyn Any + Send + Sync>>>>,
}

impl CloRegistry {
    pub(crate) fn new(nranks: usize) -> Self {
        CloRegistry {
            tables: (0..nranks).map(|_| RwLock::new(Vec::new())).collect(),
        }
    }

    pub(crate) fn register(&self, rank: usize, obj: Arc<dyn Any + Send + Sync>) -> CloHandle {
        let mut table = self.tables[rank].write();
        table.push(obj);
        CloHandle(table.len() as u32 - 1)
    }

    pub(crate) fn lookup(&self, rank: usize, h: CloHandle) -> Arc<dyn Any + Send + Sync> {
        let table = self.tables[rank].read();
        table
            .get(h.0 as usize)
            .unwrap_or_else(|| {
                panic!(
                    "common local object {} not registered on rank {rank} \
                     (CLOs must be registered collectively)",
                    h.0
                )
            })
            .clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_rank_instances_are_distinct() {
        let r = CloRegistry::new(2);
        let h0 = r.register(0, Arc::new(10u64));
        let h1 = r.register(1, Arc::new(20u64));
        assert_eq!(h0, h1, "collective registration gives the same handle");
        let v0 = r.lookup(0, h0).downcast::<u64>().unwrap();
        let v1 = r.lookup(1, h1).downcast::<u64>().unwrap();
        assert_eq!((*v0, *v1), (10, 20));
    }

    #[test]
    #[should_panic(expected = "not registered")]
    fn missing_clo_panics() {
        CloRegistry::new(1).lookup(0, CloHandle(0));
    }
}
