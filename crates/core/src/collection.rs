//! The task collection: `tc_create` / `tc_add` / `tc_process` / `tc_reset`.

use std::any::Any;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use scioto_armci::Armci;
use scioto_sim::{Ctx, StartupMode, TraceEvent};

use crate::clo::{CloHandle, CloRegistry};
use crate::config::{LbKind, TcConfig};
use crate::queue::PatchQueue;
use crate::registry::{Registry, TaskHandle};
use crate::stats::{ProcessStats, RankCounters};
use crate::task::{Task, TaskFn, TaskHeader, TaskRecord};
use crate::termination::{Poll, WaveDetector};
use crate::config::VictimPolicy;
use crate::victim::VictimSelector;

/// A global-view collection of task objects, distributed as one queue per
/// process in ARMCI shared space.
///
/// Created collectively with [`TaskCollection::create`]; seeded with
/// [`TaskCollection::add`]; processed to global quiescence with the
/// collective [`TaskCollection::process`]; reusable after
/// [`TaskCollection::reset`].
pub struct TaskCollection {
    armci: Arc<Armci>,
    cfg: TcConfig,
    queue: PatchQueue,
    detector: WaveDetector,
    registry: Registry,
    clos: CloRegistry,
    counters: Vec<RankCounters>,
}

/// Execution context handed to every task callback: the simulated process
/// context, the collection (for spawning subtasks and CLO lookup), and the
/// task's descriptor fields.
pub struct TaskCtx<'a> {
    /// The executing rank's machine context.
    pub ctx: &'a Ctx,
    /// The collection the task is executing on.
    pub tc: &'a TaskCollection,
    header: TaskHeader,
    body: &'a [u8],
}

impl<'a> TaskCtx<'a> {
    /// The opaque task body (a private copy; the queue slot is already
    /// released).
    pub fn body(&self) -> &[u8] {
        self.body
    }

    /// Affinity the task was added with.
    pub fn affinity(&self) -> i32 {
        self.header.affinity
    }

    /// Rank that created this task.
    pub fn creator(&self) -> usize {
        self.header.creator as usize
    }
}

impl TaskCollection {
    /// Collectively create a task collection (`tc_create`).
    ///
    /// # Panics
    /// Panics with a descriptive message if `cfg` violates its invariants
    /// (`max_tasks < 2`, `chunk == 0`, bad `release_fraction`) — checked
    /// here so misconfiguration fails at construction, not deep inside
    /// slot encoding on the first add.
    pub fn create(ctx: &Ctx, armci: &Arc<Armci>, cfg: TcConfig) -> Arc<TaskCollection> {
        if let Err(e) = cfg.validate() {
            panic!("invalid TcConfig: {e}");
        }
        // One startup epoch covers the whole creation: the queue's and
        // detector's collective allocations, the collection object itself,
        // and each rank's local fills. Under the coalesced startup
        // protocol the epoch's single commit barrier replaces both the
        // per-collective barrier pairs and the historical trailing
        // `armci.barrier`, which is kept verbatim under `--old-startup`.
        ctx.collective_epoch(|| {
            let n = ctx.nranks();
            let queue = PatchQueue::new(ctx, armci, &cfg);
            let detector = WaveDetector::new(ctx, armci, cfg.td_votes_before_opt, cfg.td_batch);
            let armci2 = Arc::clone(armci);
            let tc = ctx.collective(move || TaskCollection {
                armci: armci2,
                cfg,
                queue,
                detector,
                registry: Registry::new(n),
                clos: CloRegistry::new(n),
                counters: (0..n).map(|_| RankCounters::default()).collect(),
            });
            tc.queue.reset_local(ctx, &tc.armci);
            tc.detector.reset_local(ctx, &tc.armci);
            if ctx.startup() == StartupMode::Old {
                tc.armci.barrier(ctx);
            }
            tc
        })
    }

    /// The configuration the collection was created with.
    pub fn config(&self) -> &TcConfig {
        &self.cfg
    }

    /// The ARMCI world backing the collection.
    pub fn armci(&self) -> &Arc<Armci> {
        &self.armci
    }

    /// Collectively register a task callback (`tc_register_callback`).
    /// Every rank must register its instance of the same logical function
    /// in the same order; the returned handle is identical everywhere.
    pub fn register(&self, ctx: &Ctx, f: TaskFn) -> TaskHandle {
        self.registry.register(ctx.rank(), f)
    }

    /// Collectively register a common local object (§2.3). Each rank
    /// passes its own local instance; the handle is identical everywhere.
    pub fn register_clo<T: Send + Sync + 'static>(&self, ctx: &Ctx, obj: Arc<T>) -> CloHandle {
        self.clos.register(ctx.rank(), obj)
    }

    /// Look up the executing rank's instance of a common local object.
    ///
    /// # Panics
    /// Panics if the handle was not registered on this rank or the type
    /// does not match the registration.
    pub fn clo<T: Send + Sync + 'static>(&self, ctx: &Ctx, h: CloHandle) -> Arc<T> {
        let any: Arc<dyn Any + Send + Sync> = self.clos.lookup(ctx.rank(), h);
        any.downcast::<T>()
            .expect("common local object type mismatch")
    }

    /// Add a task to `proc`'s patch of the collection with the given
    /// affinity (`tc_add`). Copy-in semantics: `task` is reusable on
    /// return.
    ///
    /// High-affinity local adds are lock-free; low-affinity and remote
    /// adds insert at the stealable tail of the target queue.
    pub fn add(&self, ctx: &Ctx, proc: usize, affinity: i32, task: &Task) {
        let me = ctx.rank();
        self.counters[me].tasks_spawned.fetch_add(1, Ordering::Relaxed);
        let rec = self.record_for(ctx, affinity, task);
        if proc == me {
            self.queue
                .push_local(ctx, &self.armci, &rec, &self.counters[me]);
        } else {
            self.queue.insert_tail(ctx, &self.armci, proc, &rec);
            // A remote add transfers work: fold it into the termination
            // detector exactly like a steal (§5.3).
            let marked = self.detector.note_transfer(ctx, &self.armci, proc);
            self.count_mark(me, marked);
        }
    }

    fn count_mark(&self, me: usize, marked: bool) {
        if marked {
            self.counters[me]
                .dirty_marks_sent
                .fetch_add(1, Ordering::Relaxed);
        } else {
            self.counters[me]
                .dirty_marks_elided
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Collectively process the collection to global quiescence
    /// (`tc_process`): a MIMD region in which every rank executes local
    /// tasks, releases/reclaims shared work, steals when idle, and
    /// participates in termination detection. Returns this rank's
    /// statistics for the phase.
    pub fn process(&self, ctx: &Ctx) -> ProcessStats {
        let me = ctx.rank();
        let n = ctx.nranks();
        // Statistics accumulate from `create` (or the last `reset`), so the
        // seeding phase's spawn counts are part of the report.
        self.armci.barrier(ctx);
        // Everything up to here — world init, collective creations, entry
        // barrier — is startup. Recorded once (first phase only) so the
        // blame report and bench JSON can split it out per rank.
        let t_up = ctx.now().max(1);
        if self.counters[me].record_startup(t_up) {
            ctx.trace_gauge(crate::trace::GAUGE_STARTUP, t_up);
        }
        let stealing = self.cfg.ldbal == LbKind::WorkStealing && n > 1;
        let mut since_td = 0u32;
        // Exponential backoff on consecutive failed steals: when the
        // machine is running dry, detector polls (cheap, local) dominate
        // the idle loop instead of lock round-trips to empty victims.
        let mut failed_steals = 0u32;
        let mut backoff = 0u32;
        let mut idle_iter = 0u32;
        let mut victims = VictimSelector::with_probs(
            self.cfg.victim,
            self.cfg.victim_cont,
            self.cfg.victim_escape,
        );
        loop {
            // Drain local (private) work.
            while let Some(rec) = self.queue.pop_local(ctx, &self.armci, &self.counters[me]) {
                self.execute(ctx, rec);
                since_td += 1;
                if since_td >= 16 {
                    since_td = 0;
                    // Keep waves and TERM announcements flowing while busy.
                    self.detector.progress(ctx, &self.armci, false);
                    self.trace_queue_depth(ctx);
                }
            }
            // Private portion empty: reclaim shared work if any.
            if self
                .queue
                .reclaim(ctx, &self.armci, &self.counters[me])
            {
                continue;
            }
            // Passive: detect termination, then hunt for work. Under
            // batched TD the detector poll (whose snapshot read is the
            // dominant idle-loop cost at scale) runs on every 4th
            // idle-loop iteration while actively hunting, and only on
            // every 16th while napping in backoff — a napping rank has
            // published nothing new, so its polls exist purely to observe
            // TERM/wave progress and can be sparse. Every iteration still
            // advances the clock (a steal attempt, a nap tick, or the
            // no-lb spin below), so the deferral is bounded and a TERM
            // announcement is never missed for more than 15 iterations.
            idle_iter = idle_iter.wrapping_add(1);
            let poll_mask = if backoff > 0 { 15 } else { 3 };
            let defer_poll = self.cfg.td_batch && idle_iter & poll_mask != 0;
            if !defer_poll && self.detector.progress(ctx, &self.armci, true) == Poll::Terminated {
                break;
            }
            // Every idle iteration costs at least a poll's worth of CPU,
            // even under a zero-cost latency model — otherwise idle ranks
            // would starve working ranks of virtual time.
            ctx.compute(100);
            if stealing {
                if backoff > 0 {
                    backoff -= 1;
                    ctx.compute(200);
                    continue;
                }
                let victim = {
                    let mut rng = ctx.rng();
                    victims.next(&mut rng, me, n)
                };
                self.counters[me]
                    .steals_attempted
                    .fetch_add(1, Ordering::Relaxed);
                let traced = ctx.trace_enabled();
                let steal_start = if traced { ctx.now() } else { 0 };
                // Locality policy probes availability lock-free before
                // paying the locked steal's two lock round-trips — most
                // hunt attempts land on empty victims, so the probe is
                // the common-case cost of a failed attempt.
                let stolen = if self.cfg.victim == VictimPolicy::Locality
                    && !self.queue.steal_peek(ctx, &self.armci, victim)
                {
                    Vec::new()
                } else {
                    self.queue.steal(ctx, &self.armci, victim)
                };
                if traced {
                    // One completion read stamps the event and the hist.
                    let t1 = ctx.now();
                    let rtt = t1.saturating_sub(steal_start);
                    ctx.trace_at(t1, || TraceEvent::StealAttempt {
                        victim: victim as u32,
                        got: stolen.len() as u32,
                        dur_ns: rtt,
                    });
                    ctx.trace_hist(crate::trace::HIST_STEAL_RTT, rtt);
                }
                victims.note_result(victim, !stolen.is_empty());
                if !stolen.is_empty() {
                    self.counters[me]
                        .steals_succeeded
                        .fetch_add(1, Ordering::Relaxed);
                    self.counters[me]
                        .tasks_stolen
                        .fetch_add(stolen.len() as u64, Ordering::Relaxed);
                    let marked = self.detector.note_transfer(ctx, &self.armci, victim);
                    self.count_mark(me, marked);
                    if self.cfg.victim == VictimPolicy::Locality {
                        // Progress guarantee for the retry cache: two thieves
                        // caching each other can otherwise phase-lock into a
                        // steal-back cycle where the same task bounces
                        // between their queues forever without executing
                        // (each success re-arms both caches, so neither ever
                        // draws a different victim). Executing one stolen
                        // task before the rest become re-stealable retires
                        // at least one task per successful steal, which
                        // bounds total steals and makes the cycle impossible.
                        let mut rest = stolen.into_iter();
                        let first = rest.next().expect("steal was non-empty");
                        for rec in rest {
                            self.queue
                                .push_local(ctx, &self.armci, &rec, &self.counters[me]);
                        }
                        self.execute(ctx, first);
                        since_td += 1;
                    } else {
                        for rec in &stolen {
                            self.queue
                                .push_local(ctx, &self.armci, rec, &self.counters[me]);
                        }
                    }
                    failed_steals = 0;
                } else {
                    failed_steals += 1;
                    // Cap the nap at ~16 detector polls (~10 µs): long
                    // enough to keep failed-steal lock traffic off the
                    // critical path, short enough to react when a busy
                    // owner releases a burst of work mid-phase. Under the
                    // locality policy the probe made each failed attempt
                    // ~3x cheaper, which lets the loop fire ~3x more
                    // probes against a machine that is simply dry — the
                    // waiting is set by the workload, not the probe cost.
                    // A deeper cap (~38 µs) spends that waiting napping
                    // instead of re-probing, cutting steal-loop network
                    // traffic without delaying reaction to a refill more
                    // than a few task granularities.
                    let cap = if self.cfg.victim == VictimPolicy::Locality { 5 } else { 3 };
                    backoff = 4 << failed_steals.min(cap);
                }
            } else {
                // No load balancing: just poll the detector.
                ctx.compute(200);
            }
        }
        // Safety invariant: termination may only be declared when this
        // rank's queue is completely empty.
        assert!(
            self.queue.is_empty_local(ctx, &self.armci),
            "termination detected with tasks remaining on rank {me}"
        );
        self.counters[me]
            .td_waves
            .store(self.detector.waves(me), Ordering::Relaxed);
        // No exit barrier: the TERM announcement propagating down the
        // spanning tree is already a collective exit signal, and no rank
        // can initiate further operations on this collection's queues
        // after observing it.
        self.counters[me].snapshot()
    }

    fn execute(&self, ctx: &Ctx, rec: TaskRecord) {
        let me = ctx.rank();
        let f = self.registry.lookup(me, TaskHandle(rec.header.callback));
        let tctx = TaskCtx {
            ctx,
            tc: self,
            header: rec.header,
            body: &rec.body,
        };
        let traced = ctx.trace_enabled();
        let start = if traced { ctx.now() } else { 0 };
        if traced {
            ctx.trace_at(start, || TraceEvent::TaskExecBegin {
                callback: rec.header.callback,
                creator: rec.header.creator,
            });
        }
        f(&tctx);
        if traced {
            // One completion read stamps the end event and the hist.
            let end = ctx.now();
            ctx.trace_at(end, || TraceEvent::TaskExecEnd {
                callback: rec.header.callback,
            });
            ctx.trace_hist(crate::trace::HIST_TASK_EXEC, end.saturating_sub(start));
        }
        self.counters[me]
            .tasks_executed
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Sample queue occupancy into the trace (event + gauges). Reads only
    /// owner-local metadata, so it has no scheduling point and does not
    /// perturb virtual time.
    fn trace_queue_depth(&self, ctx: &Ctx) {
        if !ctx.trace_enabled() {
            return;
        }
        let (head, split, tail) = self.queue.indices_local(ctx, &self.armci);
        let local = (head - split).max(0) as u64;
        let shared = (split - tail).max(0) as u64;
        ctx.trace(|| TraceEvent::QueueDepth {
            local: local as u32,
            shared: shared as u32,
        });
        ctx.trace_gauge(crate::trace::GAUGE_QUEUE_LOCAL, local);
        ctx.trace_gauge(crate::trace::GAUGE_QUEUE_SHARED, shared);
    }

    /// Collectively reset the collection for reuse (`tc_reset`): empties
    /// every queue and re-arms termination detection. Registered callbacks
    /// and CLOs are kept.
    pub fn reset(&self, ctx: &Ctx) {
        self.armci.barrier(ctx);
        self.queue.reset_local(ctx, &self.armci);
        self.detector.reset_local(ctx, &self.armci);
        self.counters[ctx.rank()].reset();
        self.armci.barrier(ctx);
    }

    /// This rank's statistics from the most recent processing phase.
    pub fn stats(&self, rank: usize) -> ProcessStats {
        self.counters[rank].snapshot()
    }

    /// `(head, split, tail)` indices of this rank's queue — exposed for
    /// tests and diagnostics.
    pub fn queue_indices(&self, ctx: &Ctx) -> (i64, i64, i64) {
        self.queue.indices_local(ctx, &self.armci)
    }

    /// Size in bytes of one serialized task slot.
    pub fn slot_bytes(&self) -> usize {
        self.queue.slot_sz()
    }

    /// Number of callbacks registered on `rank` (diagnostics).
    pub fn registered_callbacks(&self, rank: usize) -> usize {
        self.registry.len(rank)
    }

    // ---- raw queue operations for the Table 1 microbenchmarks ----

    /// Push one task onto the local queue (the paper's "local insert").
    #[doc(hidden)]
    pub fn bench_push_local(&self, ctx: &Ctx, task: &Task) {
        let rec = self.record_for(ctx, 1, task);
        self.queue
            .push_local(ctx, &self.armci, &rec, &self.counters[ctx.rank()]);
    }

    /// Pop one task from the local queue (the paper's "local get").
    /// Returns whether a task was available.
    #[doc(hidden)]
    pub fn bench_pop_local(&self, ctx: &Ctx) -> bool {
        let me = ctx.rank();
        if self
            .queue
            .pop_local(ctx, &self.armci, &self.counters[me])
            .is_some()
        {
            return true;
        }
        self.queue.reclaim(ctx, &self.armci, &self.counters[me])
            && self
                .queue
                .pop_local(ctx, &self.armci, &self.counters[me])
                .is_some()
    }

    /// Insert one task at the tail of `target`'s queue (the paper's
    /// "remote insert").
    #[doc(hidden)]
    pub fn bench_insert_remote(&self, ctx: &Ctx, target: usize, task: &Task) {
        let rec = self.record_for(ctx, 1, task);
        self.queue.insert_tail(ctx, &self.armci, target, &rec);
    }

    /// One steal operation against `victim` (the paper's "remote steal").
    /// Returns the number of tasks transferred.
    #[doc(hidden)]
    pub fn bench_steal(&self, ctx: &Ctx, victim: usize) -> usize {
        self.queue.steal(ctx, &self.armci, victim).len()
    }

    fn record_for(&self, ctx: &Ctx, affinity: i32, task: &Task) -> TaskRecord {
        // Reject oversized bodies here — the one place every add path
        // (including the bench entry points) builds its record — so the
        // failure is a clear message, not a slice panic in slot encoding.
        assert!(
            task.body().len() <= self.cfg.max_body,
            "task body of {} bytes exceeds max_body = {}",
            task.body().len(),
            self.cfg.max_body
        );
        TaskRecord {
            header: TaskHeader {
                callback: task.handle().0,
                affinity,
                creator: ctx.rank() as u32,
                body_len: task.body().len() as u32,
            },
            body: task.body().to_vec(),
        }
    }
}
