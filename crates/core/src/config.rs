//! Task-collection configuration (the `tc_create` parameters of §3.1 plus
//! the ablation and policy knobs the evaluation section exercises).

/// Affinity constant: execute locally if at all possible (placed at the
/// head / private end of the owner's queue).
pub const AFFINITY_HIGH: i32 = 1;

/// Affinity constant: first candidate to be stolen (placed at the tail /
/// shared end of the queue).
pub const AFFINITY_LOW: i32 = -1;

/// Which queue implementation backs each process's patch of the
/// collection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueueKind {
    /// The paper's split queue (§5): owner-private head portion accessed
    /// without locking, shared tail portion under a lock.
    Split,
    /// The paper's original, fully locked queue — every operation,
    /// including the owner's local insert/get, takes the queue lock. Kept
    /// as the "No Split" ablation of Figure 7.
    Locked,
}

/// Dynamic load-balancing policy for `tc_process`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LbKind {
    /// Locality-aware random work stealing (§5.1) — the Scioto default.
    WorkStealing,
    /// No load balancing: each process executes only its own patch
    /// ("dynamic load balancing can be disabled prior to entering the task
    /// parallel region", §2).
    Disabled,
}

/// Victim-selection policy for the steal loop of `tc_process`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VictimPolicy {
    /// Uniform random victim over the other `n - 1` ranks — the policy the
    /// paper describes and the ablation baseline. Draws exactly one RNG
    /// value per attempt, so a run under this policy is byte-identical to
    /// the pre-locality steal loop.
    Uniform,
    /// Locality-aware selection: retry the last successful victim first
    /// (work sources stay productive across consecutive steals), otherwise
    /// draw a ring distance from a truncated geometric distribution so near
    /// neighbours are preferred, with a small uniform escape probability
    /// that keeps distant single-source workloads reachable.
    Locality,
}

/// Configuration for [`crate::TaskCollection::create`], mirroring
/// `tc_create(task_sz, chunk_sz, max_sz)`.
#[derive(Clone, Copy, Debug)]
pub struct TcConfig {
    /// Maximum task body size in bytes (`task_sz`).
    pub max_body: usize,
    /// Maximum number of tasks moved by one steal operation (`chunk_sz`).
    pub chunk: usize,
    /// Capacity of each process's queue in tasks (`max_sz`).
    pub max_tasks: usize,
    /// Queue implementation.
    pub queue: QueueKind,
    /// Load-balancing policy.
    pub ldbal: LbKind,
    /// When the shared portion of the owner's queue drops below this many
    /// tasks (and private work is available), the owner moves the split
    /// pointer to release work for stealing.
    pub release_threshold: usize,
    /// Fraction of the private portion released to the shared portion when
    /// rebalancing the split.
    pub release_fraction: f64,
    /// Enable the §5.3 votes-before optimization that elides unnecessary
    /// dirty marks during termination detection (disable for ablation).
    pub td_votes_before_opt: bool,
    /// Victim-selection policy for work stealing.
    pub victim: VictimPolicy,
    /// Continuation probability of the Locality policy's truncated
    /// geometric distance walk (ignored by Uniform). Higher values reach
    /// farther around the ring per draw.
    pub victim_cont: f64,
    /// Uniform-escape probability of a Locality draw (ignored by
    /// Uniform). Keeps distant single-source workloads reachable.
    pub victim_escape: f64,
    /// Batched termination detection: coalesce the detector's slot reads
    /// into one snapshot per poll and defer polls during steal-backoff
    /// naps (disable for the flat per-slot ablation baseline).
    pub td_batch: bool,
}

impl TcConfig {
    /// A split-queue, work-stealing collection — the paper's default.
    pub fn new(max_body: usize, chunk: usize, max_tasks: usize) -> Self {
        let cfg = TcConfig {
            max_body,
            chunk,
            max_tasks,
            queue: QueueKind::Split,
            ldbal: LbKind::WorkStealing,
            // Release work to the shared portion only when thieves have
            // fully drained it: each release moves half the private
            // portion, so the shared side refills in bursts and the owner
            // takes the split lock rarely (the ablation bench shows higher
            // thresholds cost up to 2x in UTS throughput).
            release_threshold: 1,
            release_fraction: 0.5,
            td_votes_before_opt: true,
            victim: VictimPolicy::Locality,
            victim_cont: crate::victim::CONT_P,
            victim_escape: crate::victim::ESCAPE_P,
            td_batch: true,
        };
        if let Err(e) = cfg.validate() {
            panic!("invalid TcConfig: {e}");
        }
        cfg
    }

    /// Check the configuration's invariants, returning a description of
    /// the first violation.
    ///
    /// [`crate::TaskCollection::create`] calls this, so a bad
    /// configuration (including one assembled with struct-literal syntax,
    /// which bypasses [`TcConfig::new`]) is rejected with a clear message
    /// at construction instead of panicking later inside slot encoding or
    /// hanging the steal loop.
    pub fn validate(&self) -> Result<(), String> {
        if self.max_tasks < 2 {
            return Err(format!(
                "max_tasks = {}: collection must hold at least 2 tasks per patch",
                self.max_tasks
            ));
        }
        if self.chunk == 0 {
            return Err(
                "chunk size must be at least 1: a steal that moves zero tasks \
                 can never make progress"
                    .to_string(),
            );
        }
        if !self.release_fraction.is_finite()
            || self.release_fraction <= 0.0
            || self.release_fraction > 1.0
        {
            return Err(format!(
                "release_fraction = {}: must be in (0, 1]",
                self.release_fraction
            ));
        }
        if !self.victim_cont.is_finite() || self.victim_cont <= 0.0 || self.victim_cont >= 1.0 {
            return Err(format!(
                "victim_cont = {}: must be in (0, 1)",
                self.victim_cont
            ));
        }
        if !self.victim_escape.is_finite()
            || self.victim_escape < 0.0
            || self.victim_escape >= 1.0
        {
            return Err(format!(
                "victim_escape = {}: must be in [0, 1)",
                self.victim_escape
            ));
        }
        Ok(())
    }

    /// Toggle the §5.3 dirty-mark elision optimization.
    pub fn with_votes_before_opt(mut self, on: bool) -> Self {
        self.td_votes_before_opt = on;
        self
    }

    /// Switch the queue implementation.
    pub fn with_queue(mut self, queue: QueueKind) -> Self {
        self.queue = queue;
        self
    }

    /// Switch the load-balancing policy.
    pub fn with_ldbal(mut self, ldbal: LbKind) -> Self {
        self.ldbal = ldbal;
        self
    }

    /// Switch the victim-selection policy.
    pub fn with_victim(mut self, victim: VictimPolicy) -> Self {
        self.victim = victim;
        self
    }

    /// Toggle batched termination detection.
    pub fn with_td_batch(mut self, on: bool) -> Self {
        self.td_batch = on;
        self
    }

    /// Set the Locality victim-selection bias probabilities
    /// (continuation of the geometric walk, uniform escape).
    pub fn with_victim_probs(mut self, cont: f64, escape: f64) -> Self {
        self.victim_cont = cont;
        self.victim_escape = escape;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_roundtrip() {
        let c = TcConfig::new(64, 10, 1000)
            .with_queue(QueueKind::Locked)
            .with_ldbal(LbKind::Disabled);
        assert_eq!(c.max_body, 64);
        assert_eq!(c.chunk, 10);
        assert_eq!(c.max_tasks, 1000);
        assert_eq!(c.queue, QueueKind::Locked);
        assert_eq!(c.ldbal, LbKind::Disabled);
    }

    #[test]
    fn policy_defaults_and_builders() {
        let c = TcConfig::new(8, 1, 16);
        assert_eq!(c.victim, VictimPolicy::Locality);
        assert!(c.td_batch);
        let old = c.with_victim(VictimPolicy::Uniform).with_td_batch(false);
        assert_eq!(old.victim, VictimPolicy::Uniform);
        assert!(!old.td_batch);

        let c = TcConfig::new(8, 1, 16);
        assert_eq!(c.victim_cont, crate::victim::CONT_P);
        assert_eq!(c.victim_escape, crate::victim::ESCAPE_P);
        let tuned = c.with_victim_probs(0.5, 0.25);
        assert_eq!((tuned.victim_cont, tuned.victim_escape), (0.5, 0.25));
    }

    #[test]
    fn bad_victim_probs_rejected() {
        let base = TcConfig::new(8, 1, 16);
        for (cont, escape) in [(0.0, 0.1), (1.0, 0.1), (f64::NAN, 0.1), (0.7, 1.0), (0.7, -0.1)]
        {
            let bad = TcConfig {
                victim_cont: cont,
                victim_escape: escape,
                ..base
            };
            assert!(bad.validate().is_err(), "cont={cont} escape={escape}");
        }
    }

    #[test]
    #[should_panic(expected = "chunk size")]
    fn zero_chunk_rejected() {
        TcConfig::new(8, 0, 16);
    }

    #[test]
    #[should_panic(expected = "at least 2 tasks")]
    fn zero_max_tasks_rejected() {
        TcConfig::new(8, 1, 0);
    }

    #[test]
    fn validate_catches_struct_literal_violations() {
        // Struct-update syntax bypasses `new`'s checks; `validate` (run by
        // `TaskCollection::create`) must still reject the result.
        let bad_tasks = TcConfig {
            max_tasks: 0,
            ..TcConfig::new(8, 1, 16)
        };
        assert!(bad_tasks.validate().unwrap_err().contains("max_tasks = 0"));

        let bad_chunk = TcConfig {
            chunk: 0,
            ..TcConfig::new(8, 1, 16)
        };
        assert!(bad_chunk.validate().unwrap_err().contains("chunk size"));

        let bad_fraction = TcConfig {
            release_fraction: f64::NAN,
            ..TcConfig::new(8, 1, 16)
        };
        assert!(bad_fraction
            .validate()
            .unwrap_err()
            .contains("release_fraction"));

        assert!(TcConfig::new(8, 1, 16).validate().is_ok());
    }
}
