//! # scioto — Shared Collections of Task Objects
//!
//! A Rust reproduction of the Scioto framework (Dinan, Krishnamoorthy,
//! Larkins, Nieplocha, Sadayappan — *Scioto: A Framework for Global-View
//! Task Parallelism*, ICPP 2008): lightweight task management with
//! locality-aware dynamic load balancing for one-sided and global-address-
//! space programming models.
//!
//! The programming model mirrors the paper's C API:
//!
//! * a [`TaskCollection`] is created collectively
//!   ([`TaskCollection::create`] ≙ `tc_create`), seeded with tasks
//!   ([`TaskCollection::add`] ≙ `tc_add`), and processed in a MIMD parallel
//!   region ([`TaskCollection::process`] ≙ `tc_process`);
//! * tasks are contiguous descriptors — a standard header plus an opaque,
//!   user-defined body ([`Task`], Figure 1 of the paper) — dispatched
//!   through collectively registered callback handles
//!   ([`TaskCollection::register`]);
//! * per-process **common local objects** ([`TaskCollection::register_clo`],
//!   §2.3) give tasks a place to accumulate local results, and are the
//!   interoperability mechanism for models without a global address space;
//! * each process's patch of the collection is a circular **split queue**
//!   in ARMCI shared space (§5): a lock-free owner-private portion and a
//!   lock-protected shared portion from which other processes steal;
//! * idle processes perform locality-aware **work stealing** (§5.1) —
//!   random victim, up to `chunk` tasks per steal, taken from the tail
//!   (low-affinity end) with a single one-sided transfer;
//! * global quiescence is detected with the paper's **wave-based
//!   termination algorithm** (§5.2) — a binary spanning tree, white/black
//!   token coloring, one-sided dirty marking of steal victims, and the §5.3
//!   *votes-before* optimization that elides unnecessary markings.
//!
//! ```
//! use scioto_sim::{Machine, MachineConfig};
//! use scioto_armci::Armci;
//! use scioto::{TaskCollection, TcConfig, Task, AFFINITY_HIGH};
//! use std::sync::Arc;
//! use std::sync::atomic::{AtomicU64, Ordering};
//!
//! let out = Machine::run(MachineConfig::virtual_time(4), |ctx| {
//!     let armci = Armci::init(ctx);
//!     let tc = TaskCollection::create(ctx, &armci, TcConfig::new(8, 2, 64));
//!     let counter = Arc::new(AtomicU64::new(0));
//!     let clo = tc.register_clo(ctx, counter.clone());
//!     let hello = tc.register(ctx, Arc::new(move |t| {
//!         let c: Arc<AtomicU64> = t.tc.clo(t.ctx, clo);
//!         c.fetch_add(1, Ordering::Relaxed);
//!     }));
//!     // Seed 10 tasks on rank 0; stealing spreads them.
//!     if ctx.rank() == 0 {
//!         for _ in 0..10 {
//!             tc.add(ctx, 0, AFFINITY_HIGH, &Task::new(hello, vec![]));
//!         }
//!     }
//!     tc.process(ctx);
//!     counter.load(Ordering::Relaxed)
//! });
//! assert_eq!(out.results.iter().sum::<u64>(), 10);
//! ```

mod clo;
mod collection;
mod config;
mod queue;
mod registry;
mod stats;
mod task;
pub mod termination;
pub mod trace;
pub mod victim;
pub mod wire;

pub use clo::CloHandle;
pub use collection::{TaskCollection, TaskCtx};
pub use config::{LbKind, QueueKind, TcConfig, VictimPolicy, AFFINITY_HIGH, AFFINITY_LOW};
pub use registry::TaskHandle;
pub use stats::{ProcessStats, StatsSummary};
pub use task::{Task, TaskFn};
