//! The per-process patch of a task collection: a circular queue of
//! fixed-size task slots in ARMCI shared space (§5 of the paper).
//!
//! Ring positions are monotonically increasing virtual indices
//! (`tail <= split <= head`, slot = `index mod capacity`):
//!
//! ```text
//!     tail ──────────── split ─────────── head
//!       [ shared portion )[ private portion )
//!        stolen from here   owner pops here
//! ```
//!
//! * the **owner** pushes and pops at `head` without any lock — only the
//!   owner ever writes `head` or `split`, and thieves never read `head`;
//! * **thieves** lock the queue, read `(split, tail)`, transfer up to
//!   `chunk` tasks from the tail (the low-affinity end) with one one-sided
//!   get per contiguous run, advance `tail`, and unlock;
//! * the owner moves the **split pointer** under the lock to release
//!   private work for stealing or to reclaim shared work for local
//!   execution — no task is ever copied by these operations (§5);
//! * with [`QueueKind::Locked`] every operation takes the lock and
//!   `split == head` is maintained, which is the paper's original
//!   implementation kept as the "No Split" ablation of Figure 7.
//!
//! Low-affinity local adds and all remote adds insert at the tail
//! (decrementing it), making them the first candidates for stealing and the
//! last for local execution — the priority order of §5.1.

use scioto_armci::{Armci, Gmem, MutexSet};
use scioto_sim::{Ctx, TraceEvent};

use crate::config::{QueueKind, TcConfig};
use crate::stats::RankCounters;
use crate::task::{TaskRecord, HEADER_BYTES};

const HEAD: usize = 0;
const SPLIT: usize = 8;
const TAIL: usize = 16;
const META_BYTES: usize = 24;

pub(crate) struct PatchQueue {
    kind: QueueKind,
    cap: i64,
    slot_sz: usize,
    chunk: usize,
    release_threshold: i64,
    release_fraction: f64,
    meta: Gmem,
    slots: Gmem,
    locks: MutexSet,
}

impl PatchQueue {
    pub(crate) fn new(ctx: &Ctx, armci: &Armci, cfg: &TcConfig) -> Self {
        let slot_sz = (HEADER_BYTES + cfg.max_body).div_ceil(8) * 8;
        let meta = armci.malloc(ctx, META_BYTES);
        let slots = armci.malloc(ctx, cfg.max_tasks * slot_sz);
        let locks = armci.create_mutexes(ctx, 1);
        PatchQueue {
            kind: cfg.queue,
            cap: cfg.max_tasks as i64,
            slot_sz,
            chunk: cfg.chunk,
            release_threshold: cfg.release_threshold as i64,
            release_fraction: cfg.release_fraction,
            meta,
            slots,
            locks,
        }
    }

    pub(crate) fn slot_sz(&self) -> usize {
        self.slot_sz
    }

    // ---- owner-private metadata access (no scheduling point) ----
    //
    // Access-record atomicity follows the split-queue protocol (§5):
    // * `HEAD` is written lock-free by the owner while thieves read it in
    //   `insert_tail`'s composite index get — both sides are marked atomic
    //   (single-word discipline the protocol declares safe);
    // * `SPLIT` is written only under the queue lock, but `steal_peek`
    //   reads it lock-free, so the owner's single-word stores are marked
    //   atomic as well (a stale peek only mis-predicts availability);
    // * `TAIL` is written by thieves under the lock but read lock-free by
    //   the owner's reclaim/release pre-checks and by `steal_peek`, so
    //   those reads and the thieves' puts are marked atomic.

    fn write_meta_local(&self, ctx: &Ctx, armci: &Armci, off: usize, v: i64) {
        armci.with_local_range_mut(ctx, self.meta, off, 8, off == HEAD || off == SPLIT, |b| {
            b.copy_from_slice(&v.to_le_bytes())
        });
    }

    fn slot_pos(&self, index: i64) -> usize {
        (index.rem_euclid(self.cap)) as usize * self.slot_sz
    }

    fn write_slot_local(&self, ctx: &Ctx, armci: &Armci, index: i64, rec: &TaskRecord) {
        let pos = self.slot_pos(index);
        armci.with_local_range_mut(ctx, self.slots, pos, self.slot_sz, false, |b| {
            rec.encode_into(b);
        });
    }

    fn read_slot_local(&self, ctx: &Ctx, armci: &Armci, index: i64) -> TaskRecord {
        let pos = self.slot_pos(index);
        armci.with_local_range(ctx, self.slots, pos, self.slot_sz, false, |b| {
            TaskRecord::decode(b)
        })
    }

    /// Zero the owner's metadata (collective reset; caller barriers, so
    /// this pre-concurrency fill stays un-recorded).
    pub(crate) fn reset_local(&self, ctx: &Ctx, armci: &Armci) {
        armci.with_local_mut(ctx, self.meta, |b| b.fill(0));
    }

    /// `(head, split, tail)` of the owner's queue.
    pub(crate) fn indices_local(&self, ctx: &Ctx, armci: &Armci) -> (i64, i64, i64) {
        let (head, split) = armci.with_local_range(ctx, self.meta, HEAD, 16, false, |b| {
            (
                i64::from_le_bytes(b[0..8].try_into().expect("8")),
                i64::from_le_bytes(b[8..16].try_into().expect("8")),
            )
        });
        let tail = armci.with_local_range(ctx, self.meta, TAIL, 8, true, |b| {
            i64::from_le_bytes(b[0..8].try_into().expect("8"))
        });
        (head, split, tail)
    }

    /// True when the owner's queue holds no tasks.
    pub(crate) fn is_empty_local(&self, ctx: &Ctx, armci: &Armci) -> bool {
        let (head, _, tail) = self.indices_local(ctx, armci);
        head == tail
    }

    // ---- owner operations ----

    /// Owner push. High-affinity tasks go to the head (private end);
    /// low-affinity tasks (`affinity < 0`) are inserted at the tail, the
    /// first position to be stolen.
    pub(crate) fn push_local(
        &self,
        ctx: &Ctx,
        armci: &Armci,
        rec: &TaskRecord,
        counters: &RankCounters,
    ) {
        if rec.header.affinity < 0 && self.kind == QueueKind::Split {
            self.insert_tail(ctx, armci, ctx.rank(), rec);
            return;
        }
        match self.kind {
            QueueKind::Split => {
                let (head, _, tail) = self.indices_local(ctx, armci);
                self.check_capacity(head, tail);
                self.write_slot_local(ctx, armci, head, rec);
                self.write_meta_local(ctx, armci, HEAD, head + 1);
                ctx.charge_cpu(ctx.latency().local_insert);
                self.maybe_release(ctx, armci, counters);
            }
            QueueKind::Locked => {
                armci.lock(ctx, self.locks, 0, ctx.rank());
                let (head, _, tail) = self.indices_local(ctx, armci);
                self.check_capacity(head, tail);
                self.write_slot_local(ctx, armci, head, rec);
                self.write_meta_local(ctx, armci, HEAD, head + 1);
                self.write_meta_local(ctx, armci, SPLIT, head + 1);
                ctx.charge_cpu(ctx.latency().local_insert);
                armci.unlock(ctx, self.locks, 0, ctx.rank());
            }
        }
    }

    /// Owner pop from the head. For the split queue this touches only the
    /// private portion; returns `None` when the private portion is empty
    /// (callers should then try [`PatchQueue::reclaim`]).
    pub(crate) fn pop_local(
        &self,
        ctx: &Ctx,
        armci: &Armci,
        counters: &RankCounters,
    ) -> Option<TaskRecord> {
        match self.kind {
            QueueKind::Split => {
                let (head, split, _) = self.indices_local(ctx, armci);
                if head <= split {
                    return None;
                }
                let h = head - 1;
                let rec = self.read_slot_local(ctx, armci, h);
                self.write_meta_local(ctx, armci, HEAD, h);
                ctx.charge_cpu(ctx.latency().local_get);
                // Keep work available for thieves while draining a deep
                // private portion (the owner "moves tasks between the shared
                // and local portions as the computation progresses", §5).
                self.maybe_release(ctx, armci, counters);
                Some(rec)
            }
            QueueKind::Locked => {
                armci.lock(ctx, self.locks, 0, ctx.rank());
                let (head, _, tail) = self.indices_local(ctx, armci);
                if head <= tail {
                    armci.unlock(ctx, self.locks, 0, ctx.rank());
                    return None;
                }
                let h = head - 1;
                let rec = self.read_slot_local(ctx, armci, h);
                self.write_meta_local(ctx, armci, HEAD, h);
                self.write_meta_local(ctx, armci, SPLIT, h);
                ctx.charge_cpu(ctx.latency().local_get);
                armci.unlock(ctx, self.locks, 0, ctx.rank());
                Some(rec)
            }
        }
    }

    /// Owner reclaims shared work for local execution by moving the split
    /// pointer toward the tail (split queue only). Returns whether any
    /// tasks became private.
    pub(crate) fn reclaim(&self, ctx: &Ctx, armci: &Armci, counters: &RankCounters) -> bool {
        if self.kind != QueueKind::Split {
            return false;
        }
        // Cheap unsynchronized pre-check: `tail` may be stale (thieves only
        // advance it), so a nonzero result here may still vanish under the
        // lock — but zero means definitely nothing to reclaim.
        let (_, split, tail) = self.indices_local(ctx, armci);
        if split - tail <= 0 {
            return false;
        }
        armci.lock(ctx, self.locks, 0, ctx.rank());
        let (_, split, tail) = self.indices_local(ctx, armci);
        let avail = split - tail;
        if avail <= 0 {
            armci.unlock(ctx, self.locks, 0, ctx.rank());
            return false;
        }
        // Reclaim half (at least one); no task is copied, only the split
        // pointer moves.
        let take = (avail + 1) / 2;
        self.write_meta_local(ctx, armci, SPLIT, split - take);
        ctx.charge_cpu(ctx.latency().local_get);
        armci.unlock(ctx, self.locks, 0, ctx.rank());
        counters
            .splits_reclaimed
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        ctx.trace(|| TraceEvent::SplitReclaim {
            moved: take as u32,
        });
        true
    }

    /// After a push, release private work to the shared portion when
    /// thieves have drained it below the threshold.
    fn maybe_release(&self, ctx: &Ctx, armci: &Armci, counters: &RankCounters) {
        let (head, split, tail) = self.indices_local(ctx, armci);
        let shared = split - tail;
        let private = head - split;
        if shared >= self.release_threshold || private < 2 {
            return;
        }
        armci.lock(ctx, self.locks, 0, ctx.rank());
        let (head, split, _) = self.indices_local(ctx, armci);
        let private = head - split;
        if private >= 2 {
            let give = ((private as f64 * self.release_fraction) as i64).clamp(1, private - 1);
            self.write_meta_local(ctx, armci, SPLIT, split + give);
            counters
                .splits_released
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            ctx.trace(|| TraceEvent::SplitRelease {
                moved: give as u32,
            });
        }
        ctx.charge_cpu(ctx.latency().local_get);
        armci.unlock(ctx, self.locks, 0, ctx.rank());
    }

    fn check_capacity(&self, head: i64, tail: i64) {
        assert!(
            head - tail < self.cap,
            "task collection overflow: queue holds {} tasks (max_tasks = {})",
            head - tail,
            self.cap
        );
    }

    // ---- remote / shared-portion operations ----

    /// Insert a task at the tail of `target`'s queue (used for remote adds
    /// and low-affinity local adds): lock, read indices, write the slot and
    /// the decremented tail one-sided, unlock.
    pub(crate) fn insert_tail(&self, ctx: &Ctx, armci: &Armci, target: usize, rec: &TaskRecord) {
        armci.lock(ctx, self.locks, 0, target);
        // Atomic composite get: this one transfer also covers `head`, which
        // the owner updates lock-free (single-word protocol discipline).
        let idx = armci.get_i64s_atomic(ctx, self.meta, target, HEAD, 3);
        let (head, _split, tail) = (idx[0], idx[1], idx[2]);
        self.check_capacity(head, tail);
        let t = tail - 1;
        let pos = self.slot_pos(t);
        let mut buf = vec![0u8; self.slot_sz];
        rec.encode_into(&mut buf);
        armci.put(ctx, self.slots, target, pos, &buf);
        // protocol: single-word tail store under the queue lock; the
        // owner's reclaim/release pre-checks read `tail` lock-free.
        armci.put_i64s_atomic(ctx, self.meta, target, TAIL, &[t]);
        armci.unlock(ctx, self.locks, 0, target);
    }

    /// Lock-free availability probe of `victim`'s shared portion: one
    /// composite atomic read of `(split, tail)`, no lock traffic. The
    /// locality steal path probes before locking so the common case — an
    /// empty victim — costs one one-sided get instead of two lock
    /// round-trips plus a get. Staleness is benign in both directions: a
    /// stale "empty" just retries on the next hunt iteration, a stale
    /// "available" falls through to the locked steal, which re-reads the
    /// indices under the lock.
    pub(crate) fn steal_peek(&self, ctx: &Ctx, armci: &Armci, victim: usize) -> bool {
        // Split queues only: the locked-queue ablation exists to measure
        // the cost of taking the lock for every operation, and a
        // lock-free probe would sidestep exactly the cost it measures.
        if self.kind != QueueKind::Split {
            return true;
        }
        // protocol: heuristic lock-free read of the lock-guarded
        // `split`/`tail` words; a stale view only mis-predicts
        // availability, it never derives state that is written back.
        let idx = armci.get_i64s_atomic(ctx, self.meta, victim, SPLIT, 2);
        idx[0] - idx[1] > 0
    }

    /// Steal up to `chunk` tasks from the tail of `victim`'s shared
    /// portion. Returns the transferred tasks (oldest first).
    pub(crate) fn steal(&self, ctx: &Ctx, armci: &Armci, victim: usize) -> Vec<TaskRecord> {
        debug_assert_ne!(victim, ctx.rank(), "cannot steal from self");
        armci.lock(ctx, self.locks, 0, victim);
        // One one-sided get covers both `split` and `tail`.
        let idx = armci.get_i64s(ctx, self.meta, victim, SPLIT, 2);
        let (split, tail) = (idx[0], idx[1]);
        let avail = split - tail;
        if avail <= 0 {
            armci.unlock(ctx, self.locks, 0, victim);
            return Vec::new();
        }
        let k = (self.chunk as i64).min(avail);
        let mut buf = vec![0u8; (k as usize) * self.slot_sz];
        // The ring window [tail, tail+k) is at most two contiguous runs.
        let start = tail.rem_euclid(self.cap);
        let run1 = k.min(self.cap - start);
        armci.get(
            ctx,
            self.slots,
            victim,
            start as usize * self.slot_sz,
            &mut buf[..run1 as usize * self.slot_sz],
        );
        if run1 < k {
            armci.get(
                ctx,
                self.slots,
                victim,
                0,
                &mut buf[run1 as usize * self.slot_sz..],
            );
        }
        // protocol: single-word tail store under the victim's queue lock;
        // the owner reads `tail` lock-free in its release pre-check.
        armci.put_i64s_atomic(ctx, self.meta, victim, TAIL, &[tail + k]);
        armci.unlock(ctx, self.locks, 0, victim);
        buf.chunks_exact(self.slot_sz)
            .map(TaskRecord::decode)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TcConfig;
    use crate::task::TaskHeader;
    use scioto_sim::{Machine, MachineConfig};
    use std::sync::Arc;

    fn rec(id: u32, affinity: i32) -> TaskRecord {
        TaskRecord {
            header: TaskHeader {
                callback: id,
                affinity,
                creator: 0,
                body_len: 4,
            },
            body: id.to_le_bytes().to_vec(),
        }
    }

    fn setup(ctx: &Ctx, cfg: TcConfig) -> (Arc<Armci>, PatchQueue) {
        let armci = Armci::init(ctx);
        let q = PatchQueue::new(ctx, &armci, &cfg);
        (armci, q)
    }

    #[test]
    fn lifo_pop_order_for_local_work() {
        let out = Machine::run(MachineConfig::virtual_time(1), |ctx| {
            let (armci, q) = setup(ctx, TcConfig::new(16, 2, 32));
            let c = RankCounters::default();
            for i in 0..5 {
                q.push_local(ctx, &armci, &rec(i, 1), &c);
            }
            let mut got = Vec::new();
            loop {
                match q.pop_local(ctx, &armci, &c) {
                    Some(r) => got.push(r.header.callback),
                    None => {
                        if !q.reclaim(ctx, &armci, &c) {
                            break;
                        }
                    }
                }
            }
            got
        });
        assert_eq!(out.results[0], vec![4, 3, 2, 1, 0]);
    }

    #[test]
    fn release_makes_work_stealable_and_steal_takes_from_tail() {
        let out = Machine::run(MachineConfig::virtual_time(2), |ctx| {
            let (armci, q) = setup(ctx, TcConfig::new(16, 2, 64));
            let c = RankCounters::default();
            if ctx.rank() == 0 {
                for i in 0..8 {
                    q.push_local(ctx, &armci, &rec(i, 1), &c);
                }
                armci.barrier(ctx);
                armci.barrier(ctx);
                Vec::new()
            } else {
                armci.barrier(ctx);
                let stolen = q.steal(ctx, &armci, 0);
                armci.barrier(ctx);
                stolen.iter().map(|r| r.header.callback).collect()
            }
        });
        // With release threshold 1, one task (the oldest, task 0 at the
        // tail = lowest local priority) is shared when the thief arrives.
        assert_eq!(out.results[1], vec![0]);
    }

    #[test]
    fn owner_and_thief_never_lose_or_duplicate_tasks() {
        for kind in [QueueKind::Split, QueueKind::Locked] {
            let out = Machine::run(MachineConfig::virtual_time(4), move |ctx| {
                let cfg = TcConfig::new(16, 3, 256).with_queue(kind);
                let (armci, q) = setup(ctx, cfg);
                let c = RankCounters::default();
                // Rank 0 pushes 60 tasks, interleaving with thieves.
                let mut seen = Vec::new();
                if ctx.rank() == 0 {
                    for i in 0..60 {
                        q.push_local(ctx, &armci, &rec(i, 1), &c);
                        ctx.compute(100);
                    }
                    armci.barrier(ctx);
                    loop {
                        match q.pop_local(ctx, &armci, &c) {
                            Some(r) => seen.push(r.header.callback),
                            None => {
                                if !q.reclaim(ctx, &armci, &c) {
                                    break;
                                }
                            }
                        }
                    }
                } else {
                    armci.barrier(ctx);
                    for _ in 0..4 {
                        for r in q.steal(ctx, &armci, 0) {
                            seen.push(r.header.callback);
                        }
                        ctx.compute(500);
                    }
                }
                armci.barrier(ctx);
                seen
            });
            let mut all: Vec<u32> = out.results.into_iter().flatten().collect();
            all.sort_unstable();
            assert_eq!(all, (0..60).collect::<Vec<u32>>(), "kind={kind:?}");
        }
    }

    #[test]
    fn tail_insert_is_stolen_first() {
        let out = Machine::run(MachineConfig::virtual_time(2), |ctx| {
            let (armci, q) = setup(ctx, TcConfig::new(16, 1, 32));
            let c = RankCounters::default();
            if ctx.rank() == 0 {
                q.push_local(ctx, &armci, &rec(100, 1), &c);
                q.push_local(ctx, &armci, &rec(101, 1), &c);
                // Low-affinity task: tail insert, first steal candidate.
                q.push_local(ctx, &armci, &rec(7, -1), &c);
                armci.barrier(ctx);
                armci.barrier(ctx);
                0
            } else {
                armci.barrier(ctx);
                let stolen = q.steal(ctx, &armci, 0);
                armci.barrier(ctx);
                stolen[0].header.callback
            }
        });
        assert_eq!(out.results[1], 7);
    }

    #[test]
    fn remote_insert_lands_on_target_queue() {
        let out = Machine::run(MachineConfig::virtual_time(3), |ctx| {
            let (armci, q) = setup(ctx, TcConfig::new(16, 4, 32));
            let c = RankCounters::default();
            if ctx.rank() != 1 {
                q.insert_tail(ctx, &armci, 1, &rec(ctx.rank() as u32, 0));
            }
            armci.barrier(ctx);
            if ctx.rank() == 1 {
                let mut got = Vec::new();
                while q.reclaim(ctx, &armci, &c) {
                    while let Some(r) = q.pop_local(ctx, &armci, &c) {
                        got.push(r.header.callback);
                    }
                }
                got.sort_unstable();
                got
            } else {
                Vec::new()
            }
        });
        assert_eq!(out.results[1], vec![0, 2]);
    }

    #[test]
    fn ring_wraparound_preserves_tasks() {
        let out = Machine::run(MachineConfig::virtual_time(1), |ctx| {
            // Capacity 4: repeatedly push/pop to force index wraparound.
            let (armci, q) = setup(ctx, TcConfig::new(8, 2, 4));
            let c = RankCounters::default();
            let mut popped = Vec::new();
            for round in 0..10u32 {
                q.push_local(ctx, &armci, &rec(round * 2, 1), &c);
                q.push_local(ctx, &armci, &rec(round * 2 + 1, 1), &c);
                for _ in 0..2 {
                    loop {
                        if let Some(r) = q.pop_local(ctx, &armci, &c) {
                            popped.push(r.header.callback);
                            break;
                        }
                        assert!(q.reclaim(ctx, &armci, &c));
                    }
                }
            }
            popped.len()
        });
        assert_eq!(out.results[0], 20);
    }

    #[test]
    #[should_panic(expected = "task collection overflow")]
    fn overflow_detected() {
        Machine::run(MachineConfig::virtual_time(1), |ctx| {
            let (armci, q) = setup(ctx, TcConfig::new(8, 2, 4));
            let c = RankCounters::default();
            for i in 0..5 {
                q.push_local(ctx, &armci, &rec(i, 1), &c);
            }
        });
    }

    #[test]
    fn steal_from_empty_returns_nothing() {
        let out = Machine::run(MachineConfig::virtual_time(2), |ctx| {
            let (armci, q) = setup(ctx, TcConfig::new(8, 2, 8));
            if ctx.rank() == 1 {
                q.steal(ctx, &armci, 0).len()
            } else {
                0
            }
        });
        assert_eq!(out.results[1], 0);
    }

    #[test]
    fn locked_queue_keeps_split_equal_to_head() {
        let out = Machine::run(MachineConfig::virtual_time(1), |ctx| {
            let cfg = TcConfig::new(8, 2, 16).with_queue(QueueKind::Locked);
            let (armci, q) = setup(ctx, cfg);
            let c = RankCounters::default();
            q.push_local(ctx, &armci, &rec(0, 1), &c);
            q.push_local(ctx, &armci, &rec(1, 1), &c);
            let (h1, s1, _) = q.indices_local(ctx, &armci);
            q.pop_local(ctx, &armci, &c);
            let (h2, s2, _) = q.indices_local(ctx, &armci);
            (h1 == s1, h2 == s2)
        });
        assert_eq!(out.results[0], (true, true));
    }
}
