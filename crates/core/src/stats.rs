//! Per-process statistics for a `tc_process` phase.

use std::sync::atomic::{AtomicU64, Ordering};

/// Mutable per-rank counters, updated during processing.
#[derive(Debug, Default)]
pub(crate) struct RankCounters {
    pub tasks_executed: AtomicU64,
    pub tasks_spawned: AtomicU64,
    pub steals_attempted: AtomicU64,
    pub steals_succeeded: AtomicU64,
    pub tasks_stolen: AtomicU64,
    pub td_waves: AtomicU64,
    pub dirty_marks_sent: AtomicU64,
    pub dirty_marks_elided: AtomicU64,
    pub splits_released: AtomicU64,
    pub splits_reclaimed: AtomicU64,
    /// Clock value (ns) when this rank completed its first `tc_process`
    /// prologue — everything before it is startup: world init, collective
    /// creations, the commit/entry barriers. Recorded once per collection
    /// (see [`RankCounters::record_startup`]) and deliberately NOT cleared
    /// by [`RankCounters::reset`]: startup happens once per run, not once
    /// per phase.
    pub startup_ns: AtomicU64,
}

impl RankCounters {
    /// Record the startup-complete clock value, first call wins. The
    /// caller is this rank's own thread, so load-then-store is race-free.
    pub(crate) fn record_startup(&self, now_ns: u64) -> bool {
        if self.startup_ns.load(Ordering::Relaxed) != 0 {
            return false;
        }
        // A 0 ns startup is indistinguishable from "unrecorded"; clamp to
        // 1 ns so record-once still holds (only reachable under a
        // zero-latency model).
        self.startup_ns.store(now_ns.max(1), Ordering::Relaxed);
        true
    }

    pub(crate) fn snapshot(&self) -> ProcessStats {
        ProcessStats {
            tasks_executed: self.tasks_executed.load(Ordering::Relaxed),
            tasks_spawned: self.tasks_spawned.load(Ordering::Relaxed),
            steals_attempted: self.steals_attempted.load(Ordering::Relaxed),
            steals_succeeded: self.steals_succeeded.load(Ordering::Relaxed),
            tasks_stolen: self.tasks_stolen.load(Ordering::Relaxed),
            td_waves: self.td_waves.load(Ordering::Relaxed),
            dirty_marks_sent: self.dirty_marks_sent.load(Ordering::Relaxed),
            dirty_marks_elided: self.dirty_marks_elided.load(Ordering::Relaxed),
            splits_released: self.splits_released.load(Ordering::Relaxed),
            splits_reclaimed: self.splits_reclaimed.load(Ordering::Relaxed),
            startup_ns: self.startup_ns.load(Ordering::Relaxed),
        }
    }

    /// Clear the per-phase counters. `startup_ns` is sticky (see its
    /// field docs) and survives resets.
    pub(crate) fn reset(&self) {
        self.tasks_executed.store(0, Ordering::Relaxed);
        self.tasks_spawned.store(0, Ordering::Relaxed);
        self.steals_attempted.store(0, Ordering::Relaxed);
        self.steals_succeeded.store(0, Ordering::Relaxed);
        self.tasks_stolen.store(0, Ordering::Relaxed);
        self.td_waves.store(0, Ordering::Relaxed);
        self.dirty_marks_sent.store(0, Ordering::Relaxed);
        self.dirty_marks_elided.store(0, Ordering::Relaxed);
        self.splits_released.store(0, Ordering::Relaxed);
        self.splits_reclaimed.store(0, Ordering::Relaxed);
    }
}

/// Immutable statistics for one rank's participation in one
/// [`crate::TaskCollection::process`] phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProcessStats {
    /// Tasks this rank executed.
    pub tasks_executed: u64,
    /// Tasks this rank added (seeds and subtasks).
    pub tasks_spawned: u64,
    /// Steal operations attempted.
    pub steals_attempted: u64,
    /// Steal operations that returned at least one task.
    pub steals_succeeded: u64,
    /// Tasks acquired by stealing.
    pub tasks_stolen: u64,
    /// Termination-detection waves this rank participated in. Merging
    /// sums this like every other field; use [`StatsSummary::td_waves_max`]
    /// for the per-rank maximum (the number of waves the phase ran).
    pub td_waves: u64,
    /// Dirty-mark messages sent to steal victims.
    pub dirty_marks_sent: u64,
    /// Dirty marks avoided by the §5.3 votes-before optimization.
    pub dirty_marks_elided: u64,
    /// Times the owner moved the split pointer to release work.
    pub splits_released: u64,
    /// Times the owner reclaimed shared work for local execution.
    pub splits_reclaimed: u64,
    /// Clock value (ns) when this rank first completed a `process`
    /// prologue — the per-rank startup cost (world init, collective
    /// creations, entry barriers). Merging sums it, so an aggregate is
    /// total rank-nanoseconds spent in startup. 0 if `process` never ran.
    pub startup_ns: u64,
}

impl ProcessStats {
    /// Accumulate `other` into `self` (for cross-rank aggregation). Every
    /// field is summed — including `td_waves`, so merged totals really are
    /// totals. Phase-level wave counts live in
    /// [`StatsSummary::td_waves_max`].
    pub fn merge(&mut self, other: &ProcessStats) {
        self.tasks_executed += other.tasks_executed;
        self.tasks_spawned += other.tasks_spawned;
        self.steals_attempted += other.steals_attempted;
        self.steals_succeeded += other.steals_succeeded;
        self.tasks_stolen += other.tasks_stolen;
        self.td_waves += other.td_waves;
        self.dirty_marks_sent += other.dirty_marks_sent;
        self.dirty_marks_elided += other.dirty_marks_elided;
        self.splits_released += other.splits_released;
        self.splits_reclaimed += other.splits_reclaimed;
        self.startup_ns += other.startup_ns;
    }

    /// Fraction of steal attempts that returned at least one task.
    /// Returns 1.0 when no steal was ever attempted (nothing was wasted).
    pub fn steal_efficiency(&self) -> f64 {
        if self.steals_attempted == 0 {
            return 1.0;
        }
        self.steals_succeeded as f64 / self.steals_attempted as f64
    }
}

/// Aggregated statistics across all ranks of a processing phase.
#[derive(Debug, Clone, Copy, Default)]
pub struct StatsSummary {
    /// Field-wise sums over all ranks.
    pub totals: ProcessStats,
    /// Largest per-rank `td_waves` — the number of waves the phase ran
    /// (the root participates in every wave).
    pub td_waves_max: u64,
    /// Number of ranks merged.
    pub ranks: usize,
}

impl StatsSummary {
    /// Merge per-rank stats into a summary.
    pub fn from_ranks(stats: &[ProcessStats]) -> Self {
        let mut totals = ProcessStats::default();
        let mut td_waves_max = 0;
        for s in stats {
            totals.merge(s);
            td_waves_max = td_waves_max.max(s.td_waves);
        }
        StatsSummary {
            totals,
            td_waves_max,
            ranks: stats.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_reset() {
        let c = RankCounters::default();
        c.tasks_executed.fetch_add(3, Ordering::Relaxed);
        c.steals_attempted.fetch_add(2, Ordering::Relaxed);
        let s = c.snapshot();
        assert_eq!(s.tasks_executed, 3);
        assert_eq!(s.steals_attempted, 2);
        c.reset();
        assert_eq!(c.snapshot(), ProcessStats::default());
    }

    #[test]
    fn merge_is_fieldwise_sum() {
        // Regression: `merge` used to max-merge td_waves while summing
        // every other field, contradicting the "totals" documentation.
        // Pin the semantics: merge sums everything; the summary carries
        // the wave maximum separately.
        let a = ProcessStats {
            tasks_executed: 5,
            steals_attempted: 3,
            td_waves: 2,
            ..Default::default()
        };
        let b = ProcessStats {
            tasks_executed: 7,
            steals_attempted: 1,
            td_waves: 9,
            ..Default::default()
        };
        let sum = StatsSummary::from_ranks(&[a, b]);
        assert_eq!(sum.totals.tasks_executed, 12);
        assert_eq!(sum.totals.steals_attempted, 4);
        assert_eq!(sum.totals.td_waves, 11, "td_waves is summed like the rest");
        assert_eq!(sum.td_waves_max, 9, "phase wave count is the max");
        assert_eq!(sum.ranks, 2);
    }

    #[test]
    fn steal_efficiency_ratio_and_degenerate_case() {
        let s = ProcessStats {
            steals_attempted: 8,
            steals_succeeded: 6,
            ..Default::default()
        };
        assert!((s.steal_efficiency() - 0.75).abs() < 1e-12);
        assert_eq!(ProcessStats::default().steal_efficiency(), 1.0);
    }
}
