//! Per-process statistics for a `tc_process` phase.

use std::sync::atomic::{AtomicU64, Ordering};

/// Mutable per-rank counters, updated during processing.
#[derive(Debug, Default)]
pub(crate) struct RankCounters {
    pub tasks_executed: AtomicU64,
    pub tasks_spawned: AtomicU64,
    pub steals_attempted: AtomicU64,
    pub steals_succeeded: AtomicU64,
    pub tasks_stolen: AtomicU64,
    pub td_waves: AtomicU64,
    pub dirty_marks_sent: AtomicU64,
    pub dirty_marks_elided: AtomicU64,
    pub splits_released: AtomicU64,
    pub splits_reclaimed: AtomicU64,
}

impl RankCounters {
    pub(crate) fn snapshot(&self) -> ProcessStats {
        ProcessStats {
            tasks_executed: self.tasks_executed.load(Ordering::Relaxed),
            tasks_spawned: self.tasks_spawned.load(Ordering::Relaxed),
            steals_attempted: self.steals_attempted.load(Ordering::Relaxed),
            steals_succeeded: self.steals_succeeded.load(Ordering::Relaxed),
            tasks_stolen: self.tasks_stolen.load(Ordering::Relaxed),
            td_waves: self.td_waves.load(Ordering::Relaxed),
            dirty_marks_sent: self.dirty_marks_sent.load(Ordering::Relaxed),
            dirty_marks_elided: self.dirty_marks_elided.load(Ordering::Relaxed),
            splits_released: self.splits_released.load(Ordering::Relaxed),
            splits_reclaimed: self.splits_reclaimed.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn reset(&self) {
        self.tasks_executed.store(0, Ordering::Relaxed);
        self.tasks_spawned.store(0, Ordering::Relaxed);
        self.steals_attempted.store(0, Ordering::Relaxed);
        self.steals_succeeded.store(0, Ordering::Relaxed);
        self.tasks_stolen.store(0, Ordering::Relaxed);
        self.td_waves.store(0, Ordering::Relaxed);
        self.dirty_marks_sent.store(0, Ordering::Relaxed);
        self.dirty_marks_elided.store(0, Ordering::Relaxed);
        self.splits_released.store(0, Ordering::Relaxed);
        self.splits_reclaimed.store(0, Ordering::Relaxed);
    }
}

/// Immutable statistics for one rank's participation in one
/// [`crate::TaskCollection::process`] phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProcessStats {
    /// Tasks this rank executed.
    pub tasks_executed: u64,
    /// Tasks this rank added (seeds and subtasks).
    pub tasks_spawned: u64,
    /// Steal operations attempted.
    pub steals_attempted: u64,
    /// Steal operations that returned at least one task.
    pub steals_succeeded: u64,
    /// Tasks acquired by stealing.
    pub tasks_stolen: u64,
    /// Termination-detection waves this rank participated in.
    pub td_waves: u64,
    /// Dirty-mark messages sent to steal victims.
    pub dirty_marks_sent: u64,
    /// Dirty marks avoided by the §5.3 votes-before optimization.
    pub dirty_marks_elided: u64,
    /// Times the owner moved the split pointer to release work.
    pub splits_released: u64,
    /// Times the owner reclaimed shared work for local execution.
    pub splits_reclaimed: u64,
}

impl ProcessStats {
    /// Accumulate `other` into `self` (for cross-rank aggregation).
    pub fn merge(&mut self, other: &ProcessStats) {
        self.tasks_executed += other.tasks_executed;
        self.tasks_spawned += other.tasks_spawned;
        self.steals_attempted += other.steals_attempted;
        self.steals_succeeded += other.steals_succeeded;
        self.tasks_stolen += other.tasks_stolen;
        self.td_waves = self.td_waves.max(other.td_waves);
        self.dirty_marks_sent += other.dirty_marks_sent;
        self.dirty_marks_elided += other.dirty_marks_elided;
        self.splits_released += other.splits_released;
        self.splits_reclaimed += other.splits_reclaimed;
    }
}

/// Aggregated statistics across all ranks of a processing phase.
#[derive(Debug, Clone, Copy, Default)]
pub struct StatsSummary {
    /// Sum/max-merged totals.
    pub totals: ProcessStats,
    /// Number of ranks merged.
    pub ranks: usize,
}

impl StatsSummary {
    /// Merge per-rank stats into a summary.
    pub fn from_ranks(stats: &[ProcessStats]) -> Self {
        let mut totals = ProcessStats::default();
        for s in stats {
            totals.merge(s);
        }
        StatsSummary {
            totals,
            ranks: stats.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_reset() {
        let c = RankCounters::default();
        c.tasks_executed.fetch_add(3, Ordering::Relaxed);
        c.steals_attempted.fetch_add(2, Ordering::Relaxed);
        let s = c.snapshot();
        assert_eq!(s.tasks_executed, 3);
        assert_eq!(s.steals_attempted, 2);
        c.reset();
        assert_eq!(c.snapshot(), ProcessStats::default());
    }

    #[test]
    fn merge_sums_counts_and_maxes_waves() {
        let a = ProcessStats {
            tasks_executed: 5,
            td_waves: 2,
            ..Default::default()
        };
        let b = ProcessStats {
            tasks_executed: 7,
            td_waves: 9,
            ..Default::default()
        };
        let sum = StatsSummary::from_ranks(&[a, b]);
        assert_eq!(sum.totals.tasks_executed, 12);
        assert_eq!(sum.totals.td_waves, 9);
        assert_eq!(sum.ranks, 2);
    }
}
