//! Task descriptors: a standard header plus an opaque user body
//! (Figure 1 of the paper).

use crate::registry::TaskHandle;

/// Byte size of the serialized task header.
pub(crate) const HEADER_BYTES: usize = 16;

/// Serialized task header: the metadata the runtime needs to schedule and
/// execute a task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct TaskHeader {
    /// Portable callback handle (`cb_execute` in the paper).
    pub callback: u32,
    /// Affinity the task was added with.
    pub affinity: i32,
    /// Rank that created the task.
    pub creator: u32,
    /// Length of the user body in bytes.
    pub body_len: u32,
}

impl TaskHeader {
    pub(crate) fn encode(&self, out: &mut [u8]) {
        out[0..4].copy_from_slice(&self.callback.to_le_bytes());
        out[4..8].copy_from_slice(&self.affinity.to_le_bytes());
        out[8..12].copy_from_slice(&self.creator.to_le_bytes());
        out[12..16].copy_from_slice(&self.body_len.to_le_bytes());
    }

    pub(crate) fn decode(buf: &[u8]) -> TaskHeader {
        TaskHeader {
            callback: u32::from_le_bytes(buf[0..4].try_into().expect("4 bytes")),
            affinity: i32::from_le_bytes(buf[4..8].try_into().expect("4 bytes")),
            creator: u32::from_le_bytes(buf[8..12].try_into().expect("4 bytes")),
            body_len: u32::from_le_bytes(buf[12..16].try_into().expect("4 bytes")),
        }
    }
}

/// A task under construction: a callback handle plus an opaque body buffer
/// (the `tc_task_create` / `tc_task_body` API of §3.2).
///
/// Tasks are added to a collection with copy-in/copy-out semantics
/// (§3.1): after [`crate::TaskCollection::add`] returns, the `Task` buffer
/// is free for reuse — change the body and add again (`tc_task_reuse`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Task {
    handle: TaskHandle,
    body: Vec<u8>,
}

impl Task {
    /// Create a task dispatching to `handle` with the given body bytes.
    pub fn new(handle: TaskHandle, body: Vec<u8>) -> Self {
        Task { handle, body }
    }

    /// Create a task with a zeroed body of `body_sz` bytes.
    pub fn with_body_size(handle: TaskHandle, body_sz: usize) -> Self {
        Task {
            handle,
            body: vec![0; body_sz],
        }
    }

    /// Callback handle this task dispatches to.
    pub fn handle(&self) -> TaskHandle {
        self.handle
    }

    /// The user-defined body.
    pub fn body(&self) -> &[u8] {
        &self.body
    }

    /// Mutable access to the body, for reuse between `add` calls.
    pub fn body_mut(&mut self) -> &mut Vec<u8> {
        &mut self.body
    }
}

/// Executable payload of one slot, reconstructed on pop/steal.
#[derive(Debug, Clone)]
pub(crate) struct TaskRecord {
    pub header: TaskHeader,
    pub body: Vec<u8>,
}

impl TaskRecord {
    /// Serialize into a fixed-size slot buffer.
    pub(crate) fn encode_into(&self, slot: &mut [u8]) {
        self.header.encode(&mut slot[..HEADER_BYTES]);
        slot[HEADER_BYTES..HEADER_BYTES + self.body.len()].copy_from_slice(&self.body);
    }

    /// Deserialize from a slot buffer.
    pub(crate) fn decode(slot: &[u8]) -> TaskRecord {
        let header = TaskHeader::decode(slot);
        let body =
            slot[HEADER_BYTES..HEADER_BYTES + header.body_len as usize].to_vec();
        TaskRecord { header, body }
    }
}

/// The callback type tasks dispatch to: registered collectively, invoked
/// with a [`crate::TaskCtx`] giving access to the machine context, the
/// collection (for spawning subtasks) and the task body.
pub type TaskFn = std::sync::Arc<dyn Fn(&crate::collection::TaskCtx<'_>) + Send + Sync>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip() {
        let h = TaskHeader {
            callback: 7,
            affinity: -3,
            creator: 12,
            body_len: 100,
        };
        let mut buf = [0u8; HEADER_BYTES];
        h.encode(&mut buf);
        assert_eq!(TaskHeader::decode(&buf), h);
    }

    #[test]
    fn record_roundtrip_with_short_body() {
        let rec = TaskRecord {
            header: TaskHeader {
                callback: 1,
                affinity: 0,
                creator: 2,
                body_len: 3,
            },
            body: vec![9, 8, 7],
        };
        let mut slot = vec![0u8; 32];
        rec.encode_into(&mut slot);
        let back = TaskRecord::decode(&slot);
        assert_eq!(back.body, vec![9, 8, 7]);
        assert_eq!(back.header, rec.header);
    }

    #[test]
    fn task_body_reuse() {
        let mut t = Task::with_body_size(TaskHandle(0), 4);
        assert_eq!(t.body(), &[0, 0, 0, 0]);
        t.body_mut()[1] = 5;
        assert_eq!(t.body(), &[0, 5, 0, 0]);
    }
}
