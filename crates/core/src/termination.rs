//! Wave-based termination detection (§5.2–5.3 of the paper).
//!
//! Termination of a task-parallel phase means: every process is passive
//! (no local tasks) *and* no load-balancing operation is in flight. The
//! detector follows Francez & Rodeh's wave scheme, adapted for one-sided
//! work stealing as in the paper:
//!
//! * a binary spanning tree is mapped onto the process space (parent
//!   `(r-1)/2`, children `2r+1` / `2r+2`);
//! * the root starts a **down-wave** by writing the wave number into its
//!   children's detector state (the token "splits" as it passes down);
//! * when a **passive** process has seen the down-wave and collected both
//!   children's up-tokens, it votes: the up-token is **black** if the
//!   process stole or remotely added work since its last vote, if a thief
//!   marked it **dirty**, or if any child token was black; otherwise
//!   **white**;
//! * an all-white wave at the root means global termination, announced by
//!   a TERM flag propagated down the tree; a black wave triggers a re-vote
//!   (a new down-wave);
//! * a successful thief must mark its victim dirty so the victim retracts
//!   a potentially stale white vote — **unless** the §5.3 *votes-before*
//!   optimization applies: the mark can be elided when the thief has not
//!   yet voted in the current wave, or when the victim is a descendant of
//!   the thief (`victim ⟶votes-before thief`), because in either case the
//!   necessary re-vote is already guaranteed.
//!
//! All inter-process communication is one-sided: tokens, dirty marks and
//! the TERM flag are `i64` slots in each process's ARMCI segment, written
//! by relatives and polled locally.

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};

use scioto_armci::{Armci, Gmem};
use scioto_sim::{Ctx, TraceEvent, WaveDir};

/// Byte offsets of the per-rank detector slots in ARMCI space.
const DOWN: usize = 0; // wave id pushed by the parent (root: self-managed)
const UP0: usize = 8; // encoded token from child 2r+1
const UP1: usize = 16; // encoded token from child 2r+2
const DIRTY: usize = 24; // set to 1 one-sidedly by thieves
const TERM: usize = 32; // set to 1 when termination is announced
pub(crate) const TD_BYTES: usize = 40;

const WHITE: i64 = 1;
const BLACK: i64 = 2;

/// Parent of `rank` in the binary spanning tree.
pub fn parent(rank: usize) -> Option<usize> {
    (rank > 0).then(|| (rank - 1) / 2)
}

/// Children of `rank` among `n` ranks.
pub fn children(rank: usize, n: usize) -> impl Iterator<Item = usize> {
    [2 * rank + 1, 2 * rank + 2]
        .into_iter()
        .filter(move |c| *c < n)
}

/// True when `desc` is a (proper or improper) descendant of `anc` — i.e.
/// `desc` casts its vote no later than `anc` (the votes-before relation of
/// §5.3).
pub fn is_descendant(desc: usize, anc: usize) -> bool {
    let mut v = desc;
    while v > anc {
        v = (v - 1) / 2;
    }
    v == anc
}

/// Per-rank local detector state (shared-memory resident so that
/// [`crate::TaskCollection::add`] can update the transfer flag from inside
/// task execution).
#[derive(Debug, Default)]
pub(crate) struct TdLocal {
    /// Most recent wave this rank has seen/forwarded.
    pub last_down: AtomicI64,
    /// Wave this rank last voted in (0 = none).
    pub voted: AtomicI64,
    /// Work transferred (steal or remote add) since the last vote.
    pub transferred: AtomicBool,
    /// TERM flag has been forwarded to the children.
    pub term_propagated: AtomicBool,
    /// Down-waves this rank participated in (statistics).
    pub waves: AtomicU64,
    /// Virtual time this rank last saw a down-wave (tracing: wave-gap
    /// histogram).
    pub last_wave_ns: AtomicU64,
}

impl TdLocal {
    pub(crate) fn reset(&self) {
        self.last_down.store(0, Ordering::Relaxed);
        self.voted.store(0, Ordering::Relaxed);
        self.transferred.store(false, Ordering::Relaxed);
        self.term_propagated.store(false, Ordering::Relaxed);
        self.waves.store(0, Ordering::Relaxed);
        self.last_wave_ns.store(0, Ordering::Relaxed);
    }
}

/// The distributed wave detector: per-rank slots in ARMCI space plus the
/// local state vector.
pub struct WaveDetector {
    td: Gmem,
    local: Vec<TdLocal>,
    /// Enable the §5.3 votes-before optimization (disable for ablation).
    pub(crate) votes_before_opt: bool,
    /// Batched polling: coalesce the per-poll slot reads (TERM, DOWN and
    /// both child tokens) into one snapshot read instead of up to four
    /// separate slot reads. Slots are single-writer and monotone, so a
    /// slightly stale snapshot only defers a vote to the next poll — it
    /// can never fabricate one (the dirty flag is still read-and-cleared
    /// at vote time, not from the snapshot).
    pub(crate) batch: bool,
}

/// Outcome of one detector poll.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Poll {
    /// Keep working/stealing.
    Continue,
    /// Global termination has been announced.
    Terminated,
}

impl WaveDetector {
    pub(crate) fn new(ctx: &Ctx, armci: &Armci, votes_before_opt: bool, batch: bool) -> Self {
        let td = armci.malloc(ctx, TD_BYTES);
        let n = ctx.nranks();
        WaveDetector {
            td,
            local: (0..n).map(|_| TdLocal::default()).collect(),
            votes_before_opt,
            batch,
        }
    }

    pub(crate) fn reset_local(&self, ctx: &Ctx, armci: &Armci) {
        armci.with_local_mut(ctx, self.td, |b| b.fill(0));
        self.local[ctx.rank()].reset();
    }

    pub(crate) fn waves(&self, rank: usize) -> u64 {
        self.local[rank].waves.load(Ordering::Relaxed)
    }

    /// One-sided store of a token slot. Tokens are single-writer i64
    /// values polled lock-free by the destination, so every slot access is
    /// recorded atomic (no RMW service queue is needed, only single-word
    /// discipline).
    fn put_slot(&self, ctx: &Ctx, armci: &Armci, rank: usize, off: usize, v: i64) {
        // protocol: single-writer i64 token slot, polled lock-free by the
        // destination rank.
        armci.put_atomic(ctx, self.td, rank, off, &v.to_le_bytes());
    }

    fn read_slot(&self, ctx: &Ctx, armci: &Armci, off: usize) -> i64 {
        // protocol: single-writer i64 slot polled lock-free by the owner.
        armci.with_local_range(ctx, self.td, off, 8, true, |b| {
            i64::from_le_bytes(b.try_into().expect("8 bytes"))
        })
    }

    /// Batched poll: all five detector slots decoded from one coalesced
    /// atomic read (same multi-word discipline as the split queue's
    /// composite meta reads).
    fn snapshot(&self, ctx: &Ctx, armci: &Armci) -> [i64; 5] {
        // protocol: single-writer i64 slots polled lock-free, read as one
        // atomic multi-word snapshot.
        armci.with_local_range(ctx, self.td, 0, TD_BYTES, true, |b| {
            let mut s = [0i64; 5];
            for (i, w) in b.chunks_exact(8).enumerate() {
                s[i] = i64::from_le_bytes(w.try_into().expect("8 bytes"));
            }
            s
        })
    }

    /// Slot value from the poll's snapshot when batching, or a direct
    /// per-slot read otherwise.
    fn slot_of(&self, ctx: &Ctx, armci: &Armci, snap: Option<&[i64; 5]>, off: usize) -> i64 {
        match snap {
            Some(s) => s[off / 8],
            None => self.read_slot(ctx, armci, off),
        }
    }

    /// Atomically read and clear the local dirty flag (a thief may be
    /// writing it concurrently in real-thread mode).
    fn take_dirty(&self, ctx: &Ctx, armci: &Armci) -> bool {
        armci.with_local_range_mut(ctx, self.td, DIRTY, 8, true, |b| {
            let v = i64::from_le_bytes(b[..8].try_into().expect("8 bytes"));
            b.copy_from_slice(&0i64.to_le_bytes());
            v != 0
        })
    }

    /// One detector step for `ctx.rank()`. `passive` must be true iff the
    /// rank currently has no local work; only passive ranks vote (and only
    /// a passive root starts waves), but every caller forwards waves and
    /// the TERM announcement.
    pub(crate) fn progress(&self, ctx: &Ctx, armci: &Armci, passive: bool) -> Poll {
        if !ctx.trace_enabled() {
            return self.progress_inner(ctx, armci, passive);
        }
        // Stamped at completion: the TdProgress span covers this whole poll
        // (slot reads, token puts, voting) for the blame decomposition.
        let t0 = ctx.now();
        let poll = self.progress_inner(ctx, armci, passive);
        let dur_ns = ctx.now().saturating_sub(t0);
        if dur_ns > 0 {
            ctx.trace(|| TraceEvent::TdProgress { dur_ns });
        }
        poll
    }

    fn progress_inner(&self, ctx: &Ctx, armci: &Armci, passive: bool) -> Poll {
        let me = ctx.rank();
        let n = ctx.nranks();
        let st = &self.local[me];
        // The detector slots are written by other ranks: polling them is a
        // shared-state access and therefore a scheduling point (this also
        // keeps idle ranks from monopolizing the virtual-time baton).
        ctx.yield_point();
        ctx.charge_cpu(ctx.latency().local_get);

        // Batched polling takes one snapshot of every slot up front;
        // stale values are safe (slots are single-writer and monotone, so
        // a missed update is simply picked up by the next poll).
        let snap = if self.batch {
            Some(self.snapshot(ctx, armci))
        } else {
            None
        };
        let snap = snap.as_ref();

        // Termination announcement.
        if self.slot_of(ctx, armci, snap, TERM) == 1 {
            if !st.term_propagated.swap(true, Ordering::Relaxed) {
                ctx.trace(|| TraceEvent::TdWave {
                    wave: st.last_down.load(Ordering::Relaxed) as u32,
                    dir: WaveDir::Term,
                    black: false,
                });
                for c in children(me, n) {
                    self.put_slot(ctx, armci, c, TERM, 1);
                }
            }
            return Poll::Terminated;
        }

        // Down-wave handling.
        if me == 0 {
            if passive && st.last_down.load(Ordering::Relaxed) == st.voted.load(Ordering::Relaxed)
            {
                // Previous wave completed (black) or none started: begin the
                // next wave.
                let w = st.last_down.load(Ordering::Relaxed) + 1;
                st.last_down.store(w, Ordering::Relaxed);
                st.waves.fetch_add(1, Ordering::Relaxed);
                self.trace_down_wave(ctx, st, w);
                for c in children(me, n) {
                    self.put_slot(ctx, armci, c, DOWN, w);
                }
            }
        } else {
            let w = self.slot_of(ctx, armci, snap, DOWN);
            if w > st.last_down.load(Ordering::Relaxed) {
                st.last_down.store(w, Ordering::Relaxed);
                st.waves.fetch_add(1, Ordering::Relaxed);
                self.trace_down_wave(ctx, st, w);
                for c in children(me, n) {
                    self.put_slot(ctx, armci, c, DOWN, w);
                }
            }
        }

        if !passive {
            return Poll::Continue;
        }

        // Voting.
        let w = st.last_down.load(Ordering::Relaxed);
        if w > st.voted.load(Ordering::Relaxed) {
            let mut color = WHITE;
            let mut ready = true;
            for (i, _c) in children(me, n).enumerate() {
                let tok = self.slot_of(ctx, armci, snap, if i == 0 { UP0 } else { UP1 });
                if tok / 4 == w {
                    if tok % 4 == BLACK {
                        color = BLACK;
                    }
                } else {
                    ready = false;
                }
            }
            if ready {
                if self.take_dirty(ctx, armci) || st.transferred.swap(false, Ordering::Relaxed) {
                    color = BLACK;
                }
                st.voted.store(w, Ordering::Relaxed);
                ctx.trace(|| TraceEvent::TdWave {
                    wave: w as u32,
                    dir: WaveDir::Up,
                    black: color == BLACK,
                });
                if me == 0 {
                    if color == WHITE {
                        // Global termination: announce down the tree.
                        armci.with_local_range_mut(ctx, self.td, TERM, 8, true, |b| {
                            b.copy_from_slice(&1i64.to_le_bytes())
                        });
                        st.term_propagated.store(true, Ordering::Relaxed);
                        ctx.trace(|| TraceEvent::TdWave {
                            wave: w as u32,
                            dir: WaveDir::Term,
                            black: false,
                        });
                        for c in children(me, n) {
                            self.put_slot(ctx, armci, c, TERM, 1);
                        }
                        return Poll::Terminated;
                    }
                    // Black wave: the next progress call starts a re-vote.
                } else {
                    let p = parent(me).expect("non-root has a parent");
                    let slot = if me == 2 * p + 1 { UP0 } else { UP1 };
                    self.put_slot(ctx, armci, p, slot, w * 4 + color);
                }
            }
        }
        Poll::Continue
    }

    /// Trace a down-wave arrival and feed the quiescence-gap histogram
    /// (virtual time between successive waves seen by this rank).
    fn trace_down_wave(&self, ctx: &Ctx, st: &TdLocal, w: i64) {
        if !ctx.trace_enabled() {
            return;
        }
        let now = ctx.now();
        let last = st.last_wave_ns.swap(now, Ordering::Relaxed);
        if st.waves.load(Ordering::Relaxed) > 1 {
            ctx.trace_hist(crate::trace::HIST_TD_WAVE_GAP, now.saturating_sub(last));
        }
        ctx.trace(|| TraceEvent::TdWave {
            wave: w as u32,
            dir: WaveDir::Down,
            black: false,
        });
    }

    /// Record a work transfer from `victim`/to `target` and apply the dirty
    /// marking rule of §5.3. Called by a successful thief (victim = the
    /// rank stolen from) and by remote adds (victim = the rank given work).
    ///
    /// Returns whether a dirty mark was actually sent (for statistics).
    pub(crate) fn note_transfer(&self, ctx: &Ctx, armci: &Armci, other: usize) -> bool {
        let me = ctx.rank();
        let st = &self.local[me];
        st.transferred.store(true, Ordering::Relaxed);
        let voted_current = {
            let w = st.last_down.load(Ordering::Relaxed);
            w > 0 && st.voted.load(Ordering::Relaxed) == w
        };
        let must_mark = if self.votes_before_opt {
            // §5.3: marking is needed only if we already voted in this
            // wave and the other process does not vote before us.
            voted_current && !is_descendant(other, me)
        } else {
            true
        };
        if must_mark {
            self.put_slot(ctx, armci, other, DIRTY, 1);
        }
        must_mark
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scioto_sim::{Machine, MachineConfig};

    #[test]
    fn tree_relations() {
        assert_eq!(parent(0), None);
        assert_eq!(parent(1), Some(0));
        assert_eq!(parent(2), Some(0));
        assert_eq!(parent(5), Some(2));
        assert_eq!(children(0, 6).collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(children(2, 6).collect::<Vec<_>>(), vec![5]);
        assert_eq!(children(3, 6).count(), 0);
    }

    #[test]
    fn descendant_relation() {
        assert!(is_descendant(5, 0));
        assert!(is_descendant(5, 2));
        assert!(is_descendant(3, 1));
        assert!(!is_descendant(3, 2));
        assert!(!is_descendant(0, 1));
        assert!(is_descendant(4, 4), "relation is reflexive");
    }

    #[test]
    fn all_passive_ranks_terminate() {
        for n in [1, 2, 3, 5, 8, 16, 33] {
            let out = Machine::run(MachineConfig::virtual_time(n), move |ctx| {
                let armci = Armci::init(ctx);
                let det = WaveDetector::new(ctx, &armci, true, false);
                armci.barrier(ctx);
                let mut polls = 0u64;
                loop {
                    if det.progress(ctx, &armci, true) == Poll::Terminated {
                        break;
                    }
                    ctx.compute(100);
                    polls += 1;
                    assert!(polls < 1_000_000, "termination never detected (n={n})");
                }
                polls
            });
            assert_eq!(out.results.len(), n);
        }
    }

    #[test]
    fn batched_detector_terminates_everywhere() {
        for n in [1, 2, 3, 5, 8, 16, 33] {
            let out = Machine::run(MachineConfig::virtual_time(n), move |ctx| {
                let armci = Armci::init(ctx);
                let det = WaveDetector::new(ctx, &armci, true, true);
                armci.barrier(ctx);
                let mut polls = 0u64;
                loop {
                    if det.progress(ctx, &armci, true) == Poll::Terminated {
                        break;
                    }
                    ctx.compute(100);
                    polls += 1;
                    assert!(polls < 1_000_000, "termination never detected (n={n})");
                }
                polls
            });
            assert_eq!(out.results.len(), n);
        }
    }

    #[test]
    fn batched_transfer_blackens_the_first_wave() {
        // The dirty flag is cleared at vote time, not from the snapshot:
        // a transfer noted before the vote must still blacken it.
        let out = Machine::run(MachineConfig::virtual_time(4), |ctx| {
            let armci = Armci::init(ctx);
            let det = WaveDetector::new(ctx, &armci, true, true);
            armci.barrier(ctx);
            if ctx.rank() == 1 {
                det.note_transfer(ctx, &armci, 2);
            }
            loop {
                if det.progress(ctx, &armci, true) == Poll::Terminated {
                    break;
                }
                ctx.compute(100);
            }
            det.waves(ctx.rank())
        });
        assert!(
            out.results[0] >= 2,
            "root must run at least two waves, ran {}",
            out.results[0]
        );
    }

    #[test]
    fn no_premature_termination_under_seeded_steal_storm() {
        // Tasks fan work out to random ranks for several generations; the
        // detector (batched and unbatched) must only declare termination
        // once every spawned task has executed. `process` additionally
        // asserts the local queue is empty at termination, so a premature
        // TERM would panic there or strand tasks and break the totals.
        use crate::{Task, TaskCollection, TcConfig, AFFINITY_HIGH};
        use scioto_sim::LatencyModel;
        use std::sync::Arc;

        const GENERATIONS: u8 = 6;
        const ROOTS: u64 = 4;
        for batch in [true, false] {
            let out = Machine::run(
                MachineConfig::virtual_time(8).with_latency(LatencyModel::cluster()),
                move |ctx| {
                    let armci = Armci::init(ctx);
                    let cfg = TcConfig::new(16, 2, 1 << 12).with_td_batch(batch);
                    let tc = TaskCollection::create(ctx, &armci, cfg);
                    let handle_cell = Arc::new(std::sync::OnceLock::new());
                    let hr = handle_cell.clone();
                    let h = tc.register(
                        ctx,
                        Arc::new(move |t| {
                            let gen = t.body()[0];
                            if gen > 0 {
                                let h = *hr.get().expect("handle registered");
                                let n = t.ctx.nranks();
                                for _ in 0..2 {
                                    let target =
                                        t.ctx.rng().gen_below(n as u64) as usize;
                                    t.tc.add(
                                        t.ctx,
                                        target,
                                        AFFINITY_HIGH,
                                        &Task::new(h, vec![gen - 1]),
                                    );
                                }
                            }
                            t.ctx.compute(500);
                        }),
                    );
                    handle_cell.set(h).expect("set once");
                    if ctx.rank() == 0 {
                        for _ in 0..ROOTS {
                            tc.add(ctx, 0, AFFINITY_HIGH, &Task::new(h, vec![GENERATIONS]));
                        }
                    }
                    tc.process(ctx)
                },
            );
            let spawned: u64 = out.results.iter().map(|s| s.tasks_spawned).sum();
            let executed: u64 = out.results.iter().map(|s| s.tasks_executed).sum();
            // Each root grows a full binary tree of depth GENERATIONS.
            let expect = ROOTS * (2u64.pow(GENERATIONS as u32 + 1) - 1);
            assert_eq!(executed, spawned, "batch={batch}");
            assert_eq!(executed, expect, "batch={batch}");
        }
    }

    #[test]
    fn transfer_blackens_the_first_wave() {
        // Rank 1 "transfers work" before going passive; the first wave must
        // come back black and termination needs at least a second wave.
        let out = Machine::run(MachineConfig::virtual_time(4), |ctx| {
            let armci = Armci::init(ctx);
            let det = WaveDetector::new(ctx, &armci, true, false);
            armci.barrier(ctx);
            if ctx.rank() == 1 {
                det.note_transfer(ctx, &armci, 2);
            }
            loop {
                if det.progress(ctx, &armci, true) == Poll::Terminated {
                    break;
                }
                ctx.compute(100);
            }
            det.waves(ctx.rank())
        });
        assert!(
            out.results[0] >= 2,
            "root must run at least two waves, ran {}",
            out.results[0]
        );
    }

    #[test]
    fn votes_before_optimization_elides_descendant_marks() {
        let out = Machine::run(MachineConfig::virtual_time(8), |ctx| {
            let armci = Armci::init(ctx);
            let det = WaveDetector::new(ctx, &armci, true, false);
            armci.barrier(ctx);
            if ctx.rank() == 1 {
                // Rank 3 is a descendant of rank 1: no mark needed even
                // after voting.
                det.local[1].last_down.store(5, Ordering::Relaxed);
                det.local[1].voted.store(5, Ordering::Relaxed);
                let marked_desc = det.note_transfer(ctx, &armci, 3);
                let marked_other = det.note_transfer(ctx, &armci, 2);
                (marked_desc, marked_other)
            } else {
                (false, false)
            }
        });
        assert_eq!(out.results[1], (false, true));
    }

    #[test]
    fn unvoted_thief_never_marks() {
        let out = Machine::run(MachineConfig::virtual_time(4), |ctx| {
            let armci = Armci::init(ctx);
            let det = WaveDetector::new(ctx, &armci, true, false);
            armci.barrier(ctx);
            if ctx.rank() == 2 {
                det.note_transfer(ctx, &armci, 1)
            } else {
                false
            }
        });
        assert!(!out.results[2]);
    }

    #[test]
    fn disabled_optimization_always_marks() {
        let out = Machine::run(MachineConfig::virtual_time(4), |ctx| {
            let armci = Armci::init(ctx);
            let det = WaveDetector::new(ctx, &armci, false, false);
            armci.barrier(ctx);
            if ctx.rank() == 1 {
                det.note_transfer(ctx, &armci, 3)
            } else {
                false
            }
        });
        assert!(out.results[1]);
    }
}

