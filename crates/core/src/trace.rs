//! Runtime-level observability: the metric names the Scioto runtime
//! records into the simulator's tracing layer, plus re-exports of the
//! trace types so applications depending only on `scioto` can configure
//! and consume traces.
//!
//! Enable tracing with
//! `MachineConfig::virtual_time(n).with_trace(TraceConfig::enabled())`;
//! the completed run's [`Trace`] hangs off `RunOutput::report.trace`.
//! Events are stamped with the emitting rank's virtual clock, so traces
//! of a given seed are bit-identical across runs.

pub use scioto_sim::{
    validate_json, Gauge, RemoteOpKind, StampedEvent, Trace, TraceConfig, TraceEvent, VtHistogram,
    WaveDir,
};

/// Histogram of task callback execution time (virtual ns), recorded by
/// `TaskCollection::process` around every task it runs.
pub const HIST_TASK_EXEC: &str = "task_exec_ns";

/// Histogram of steal round-trip time (virtual ns): victim lock, index
/// read, task transfer, unlock — including failed attempts.
pub const HIST_STEAL_RTT: &str = "steal_rtt_ns";

/// Histogram of the virtual-time gap between successive termination-
/// detection waves seen by a rank (the quiescence-probe cadence).
pub const HIST_TD_WAVE_GAP: &str = "td_wave_gap_ns";

/// Gauge of the per-rank startup cost: the rank's clock (ns) when it
/// first completed a `TaskCollection::process` prologue. Sampled once per
/// collection, so `last == max` and it survives trace replay byte-exactly
/// (gauges round-trip through JSONL and the replay engine verbatim).
pub const GAUGE_STARTUP: &str = "startup_ns";

/// Gauge of the owner-private queue portion, sampled at detector polls.
pub const GAUGE_QUEUE_LOCAL: &str = "queue_local";

/// Gauge of the shared (stealable) queue portion, sampled at detector
/// polls.
pub const GAUGE_QUEUE_SHARED: &str = "queue_shared";

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use scioto_armci::Armci;
    use scioto_sim::{LatencyModel, Machine, MachineConfig, TraceConfig, TraceEvent};

    use crate::{Task, TaskCollection, TcConfig, AFFINITY_HIGH};

    fn run_traced(seed: u64, trace: TraceConfig) -> scioto_sim::Report {
        let cfg = MachineConfig::virtual_time(4)
            .with_latency(LatencyModel::cluster())
            .with_seed(seed)
            .with_trace(trace);
        Machine::run(cfg, |ctx| {
            let armci = Armci::init(ctx);
            let tc = TaskCollection::create(ctx, &armci, TcConfig::new(8, 2, 256));
            let h = tc.register(ctx, Arc::new(|t| t.ctx.compute(500)));
            if ctx.rank() == 0 {
                for _ in 0..64 {
                    tc.add(ctx, 0, AFFINITY_HIGH, &Task::new(h, vec![]));
                }
            }
            tc.process(ctx);
        })
        .report
    }

    #[test]
    fn runtime_emits_task_steal_split_and_wave_events() {
        let report = run_traced(7, TraceConfig::enabled());
        let trace = report.trace.expect("tracing was enabled");
        let count = |name: &str| -> usize {
            trace
                .events
                .iter()
                .flatten()
                .filter(|e| e.event.name() == name)
                .count()
        };
        assert!(count("TaskExecBegin") == 64 && count("TaskExecEnd") == 64);
        assert!(count("StealAttempt") > 0, "work must be stolen");
        assert!(count("SplitRelease") > 0, "rank 0 must release work");
        assert!(count("TdWave") > 0, "waves must be traced");
        assert!(count("RemoteOp") > 0, "armci ops must be traced");
        // Every rank participates in termination detection.
        for r in 0..trace.nranks() {
            assert!(
                trace
                    .events_for(r)
                    .iter()
                    .any(|e| matches!(e.event, TraceEvent::TdWave { .. })),
                "rank {r} has no TdWave events"
            );
        }
        // The runtime histograms were populated.
        let exec = trace.merged_hist(super::HIST_TASK_EXEC).expect("task hist");
        assert_eq!(exec.count(), 64);
        assert!(exec.min() >= 500, "task latency includes the 500 ns compute");
        assert!(trace.merged_hist(super::HIST_STEAL_RTT).is_some());
    }

    #[test]
    fn disabled_tracing_attaches_nothing() {
        let report = run_traced(7, TraceConfig::disabled());
        assert!(report.trace.is_none());
    }

    #[test]
    fn traced_and_untraced_runs_agree_on_virtual_time() {
        // Instrumentation must not perturb the simulation: same seed, with
        // and without tracing, must produce identical clocks.
        let traced = run_traced(11, TraceConfig::enabled());
        let plain = run_traced(11, TraceConfig::disabled());
        assert_eq!(traced.makespan_ns, plain.makespan_ns);
        assert_eq!(traced.rank_clock_ns, plain.rank_clock_ns);
    }
}
