//! Victim selection for the steal loop of `tc_process`.
//!
//! Two policies, selected by [`VictimPolicy`] in [`crate::TcConfig`]:
//!
//! * **Uniform** — the paper's policy: every attempt draws one victim
//!   uniformly from the other `n - 1` ranks. Kept as the ablation
//!   baseline; it consumes exactly one RNG value per attempt so runs
//!   under it are byte-identical to the pre-locality steal loop.
//! * **Locality** — distance-biased selection informed by the analyzer's
//!   steal-distance histogram (which shows uniform draws scatter flat
//!   over the ring while work sources are few): a thief first retries
//!   the rank its last successful steal came from (a productive victim
//!   usually stays productive, and the retry costs no RNG draw), and
//!   otherwise draws a ring distance from a truncated geometric
//!   distribution so near neighbours are preferred. A small uniform
//!   escape probability preserves global mixing, so a lone distant work
//!   source is still found quickly — the property that keeps localized
//!   stealing's load-balance guarantees intact.
//!
//! Both policies draw only from the calling rank's deterministic RNG
//! stream, so victim sequences are reproducible per seed.

use scioto_det::Rng;

use crate::config::VictimPolicy;

/// Default probability that a Locality draw ignores the distance bias and
/// falls back to a uniform draw (keeps distant single-source workloads
/// reachable). Overridable per collection via
/// [`crate::TcConfig::victim_escape`] — the autotuner's search axis.
pub const ESCAPE_P: f64 = 0.125;

/// Default per-step continuation probability of the truncated geometric
/// distance walk: `P(d = k) = (1 - CONT_P) * CONT_P^(k-1)` up to the ring
/// radius. Overridable via [`crate::TcConfig::victim_cont`].
pub const CONT_P: f64 = 0.7;

/// Draws for which a victim that just came up empty stays masked by the
/// negative cache. The geometric bias re-draws the same near neighbours
/// constantly; without a mask a dry neighbourhood is re-probed every few
/// attempts and failed probes dominate the steal bill.
const EMPTY_TTL: u32 = 16;

/// Bounded redraws per [`VictimSelector::next`] when draws land on masked
/// victims. The mask is advisory: after this many redraws the last draw is
/// used anyway, so global mixing (and the load-balance argument that rests
/// on it) survives even with every neighbour masked.
const MASK_REDRAWS: usize = 4;

/// Stateful victim chooser for one rank's steal loop.
#[derive(Debug)]
pub struct VictimSelector {
    policy: VictimPolicy,
    /// Continuation probability of the geometric distance walk.
    cont: f64,
    /// Uniform-escape probability of a biased draw.
    escape: f64,
    last_success: Option<usize>,
    /// Draw counter; advances once per `next` call (Locality only).
    clock: u32,
    /// Negative cache: `empty_until[v] > clock` masks rank `v` from
    /// biased draws because a recent steal or probe found it empty.
    /// Lazily sized on first use.
    empty_until: Vec<u32>,
}

impl VictimSelector {
    /// A selector for `policy` with the default bias probabilities and an
    /// empty retry cache.
    pub fn new(policy: VictimPolicy) -> Self {
        Self::with_probs(policy, CONT_P, ESCAPE_P)
    }

    /// A selector with explicit geometric-continuation and uniform-escape
    /// probabilities (Locality only; Uniform ignores both).
    pub fn with_probs(policy: VictimPolicy, cont: f64, escape: f64) -> Self {
        VictimSelector {
            policy,
            cont,
            escape,
            last_success: None,
            clock: 0,
            empty_until: Vec::new(),
        }
    }

    /// Uniform draw over the `n - 1` ranks other than `me` — exactly one
    /// RNG value, the historical steal-loop draw.
    fn uniform(rng: &mut Rng, me: usize, n: usize) -> usize {
        let mut v = rng.gen_range(0..n - 1);
        if v >= me {
            v += 1;
        }
        v
    }

    /// One biased Locality draw: geometric ring distance with a uniform
    /// escape.
    fn biased(&self, rng: &mut Rng, me: usize, n: usize) -> usize {
        if rng.gen_bool(self.escape) {
            return Self::uniform(rng, me, n);
        }
        // Truncated geometric ring distance: start adjacent, keep
        // walking outward with probability `cont`, stop at the ring
        // radius. Distances 1..=n/2 in either direction cover every
        // other rank.
        let dmax = (n / 2).max(1);
        let mut d = 1;
        while d < dmax && rng.gen_bool(self.cont) {
            d += 1;
        }
        if rng.gen_bool(0.5) {
            (me + d) % n
        } else {
            (me + n - d) % n
        }
    }

    /// Choose the next victim for rank `me` of `n`. `n` must be at least 2
    /// and `me < n`; never returns `me`.
    pub fn next(&mut self, rng: &mut Rng, me: usize, n: usize) -> usize {
        debug_assert!(n >= 2 && me < n);
        match self.policy {
            VictimPolicy::Uniform => Self::uniform(rng, me, n),
            VictimPolicy::Locality => {
                if let Some(v) = self.last_success {
                    return v;
                }
                self.clock = self.clock.wrapping_add(1);
                if self.empty_until.len() < n {
                    self.empty_until.resize(n, 0);
                }
                // Redraw past victims the negative cache still masks, up
                // to the redraw budget; the final draw stands regardless.
                let mut v = self.biased(rng, me, n);
                for _ in 0..MASK_REDRAWS {
                    if self.empty_until[v] <= self.clock {
                        break;
                    }
                    v = self.biased(rng, me, n);
                }
                v
            }
        }
    }

    /// Feed back the outcome of a steal from `victim`: a success arms the
    /// retry cache; a failure clears it (when cached) and masks the
    /// victim in the negative cache for [`EMPTY_TTL`] draws.
    pub fn note_result(&mut self, victim: usize, got: bool) {
        if got {
            self.last_success = Some(victim);
            if let Some(slot) = self.empty_until.get_mut(victim) {
                *slot = 0;
            }
        } else {
            if self.last_success == Some(victim) {
                self.last_success = None;
            }
            if self.policy == VictimPolicy::Locality {
                if self.empty_until.len() <= victim {
                    self.empty_until.resize(victim + 1, 0);
                }
                self.empty_until[victim] = self.clock.wrapping_add(EMPTY_TTL);
            }
        }
    }

    /// The cached last successful victim, if any (tests/diagnostics).
    pub fn cached(&self) -> Option<usize> {
        self.last_success
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Rng {
        Rng::stream(0xFEED, 3)
    }

    /// Ring distance between two ranks on an `n`-ring.
    fn ring(a: usize, b: usize, n: usize) -> usize {
        let d = a.abs_diff(b);
        d.min(n - d)
    }

    #[test]
    fn uniform_policy_matches_historical_draw() {
        // The Uniform path must consume exactly one gen_range(0..n-1) per
        // attempt and apply the skip-self shift — byte-identical to the
        // pre-policy steal loop.
        let (me, n) = (5usize, 16usize);
        let mut a = rng();
        let mut b = rng();
        let mut sel = VictimSelector::new(VictimPolicy::Uniform);
        for _ in 0..1000 {
            let expect = {
                let mut v = a.gen_range(0..n - 1);
                if v >= me {
                    v += 1;
                }
                v
            };
            assert_eq!(sel.next(&mut b, me, n), expect);
        }
    }

    #[test]
    fn uniform_histogram_is_flat() {
        let (me, n) = (0usize, 16usize);
        let mut r = rng();
        let mut sel = VictimSelector::new(VictimPolicy::Uniform);
        let mut hist = vec![0u64; n / 2 + 1];
        for _ in 0..30_000 {
            let v = sel.next(&mut r, me, n);
            hist[ring(me, v, n)] += 1;
        }
        // Distances 1..7 each cover two ranks (~2/15 of draws), distance 8
        // covers one (~1/15). Every two-rank bucket within 20% of its
        // expectation is flat enough to distinguish from geometric decay.
        let expect = 30_000.0 * 2.0 / 15.0;
        for d in 1..=7 {
            let c = hist[d] as f64;
            assert!(
                (c - expect).abs() < 0.2 * expect,
                "distance {d} count {c} vs flat expectation {expect}: {hist:?}"
            );
        }
    }

    #[test]
    fn locality_histogram_decays_geometrically() {
        let (me, n) = (0usize, 16usize);
        let mut r = rng();
        let mut sel = VictimSelector::new(VictimPolicy::Locality);
        let mut hist = vec![0u64; n / 2 + 1];
        for _ in 0..30_000 {
            let v = sel.next(&mut r, me, n);
            assert_ne!(v, me);
            hist[ring(me, v, n)] += 1;
            // No feedback at all: a success would arm the retry cache and
            // a failure would arm the negative cache; the pure-draw
            // distribution is measured.
        }
        // Strictly decreasing over the first distances and heavily
        // front-loaded overall.
        assert!(hist[1] > hist[2] && hist[2] > hist[3] && hist[3] > hist[4], "{hist:?}");
        let near: u64 = hist[1..=3].iter().sum();
        assert!(
            near as f64 > 0.55 * 30_000.0,
            "d<=3 should dominate under the geometric bias: {hist:?}"
        );
    }

    #[test]
    fn custom_probs_shift_the_distance_distribution() {
        // The tunable bias: a higher continuation probability must push
        // draws to larger ring distances, and default-valued with_probs
        // must reproduce new() exactly (same RNG consumption).
        let (me, n) = (0usize, 32usize);
        let mean_d = |cont: f64| {
            let mut r = rng();
            let sel = VictimSelector::with_probs(VictimPolicy::Locality, cont, 0.05);
            let mut sum = 0usize;
            for _ in 0..20_000 {
                sum += ring(me, sel.biased(&mut r, me, n), n);
            }
            sum as f64 / 20_000.0
        };
        assert!(
            mean_d(0.9) > mean_d(0.3) + 1.0,
            "cont=0.9 should walk much farther than cont=0.3"
        );

        let mut a = rng();
        let mut b = rng();
        let mut def = VictimSelector::new(VictimPolicy::Locality);
        let mut exp = VictimSelector::with_probs(VictimPolicy::Locality, CONT_P, ESCAPE_P);
        for _ in 0..500 {
            assert_eq!(def.next(&mut a, 3, 16), exp.next(&mut b, 3, 16));
        }
    }

    #[test]
    fn locality_retries_last_successful_victim() {
        let mut r = rng();
        let mut sel = VictimSelector::new(VictimPolicy::Locality);
        let v = sel.next(&mut r, 0, 8);
        sel.note_result(v, true);
        // Cached victim is retried without consulting the RNG.
        for _ in 0..5 {
            assert_eq!(sel.next(&mut r, 0, 8), v);
        }
        // A failure on the cached victim clears the cache.
        sel.note_result(v, false);
        assert_eq!(sel.cached(), None);
    }

    #[test]
    fn failure_on_other_victim_keeps_cache() {
        let mut sel = VictimSelector::new(VictimPolicy::Locality);
        sel.note_result(3, true);
        sel.note_result(5, false);
        assert_eq!(sel.cached(), Some(3));
    }

    #[test]
    fn negative_cache_avoids_recently_empty_victims() {
        // 4 ranks, thief 0: mask both near neighbours (1 and 3); while the
        // mask is live, draws land on rank 2 essentially always (the
        // redraw budget makes a masked return vanishingly rare).
        let mut r = rng();
        let mut sel = VictimSelector::new(VictimPolicy::Locality);
        sel.note_result(1, false);
        sel.note_result(3, false);
        let picks: Vec<usize> = (0..8).map(|_| sel.next(&mut r, 0, 4)).collect();
        assert!(
            picks.iter().filter(|&&v| v == 2).count() >= 7,
            "masked neighbours should be skipped: {picks:?}"
        );
    }

    #[test]
    fn negative_cache_expires_after_ttl() {
        let mut r = rng();
        let mut sel = VictimSelector::new(VictimPolicy::Locality);
        // On a 2-ring the only victim is rank 0; masking it cannot stop
        // draws (the mask is advisory), and after EMPTY_TTL draws the
        // entry has expired outright.
        sel.note_result(0, false);
        for _ in 0..EMPTY_TTL + 1 {
            assert_eq!(sel.next(&mut r, 1, 2), 0);
        }
        assert!(sel.empty_until[0] <= sel.clock, "mask should have expired");
    }

    #[test]
    fn success_clears_negative_cache_entry() {
        let mut sel = VictimSelector::new(VictimPolicy::Locality);
        sel.note_result(2, false);
        assert!(sel.empty_until[2] > sel.clock);
        sel.note_result(2, true);
        assert_eq!(sel.empty_until[2], 0);
    }

    #[test]
    fn uniform_policy_ignores_negative_cache() {
        // Uniform must stay byte-identical to the historical draw even
        // when failures are reported: note_result must not grow state
        // that changes the draw path.
        let (me, n) = (2usize, 8usize);
        let mut a = rng();
        let mut b = rng();
        let mut sel = VictimSelector::new(VictimPolicy::Uniform);
        for _ in 0..500 {
            let expect = {
                let mut v = a.gen_range(0..n - 1);
                if v >= me {
                    v += 1;
                }
                v
            };
            let v = sel.next(&mut b, me, n);
            assert_eq!(v, expect);
            sel.note_result(v, false);
        }
    }

    #[test]
    fn same_seed_gives_identical_victim_sequences() {
        for policy in [VictimPolicy::Uniform, VictimPolicy::Locality] {
            let draw = || {
                let mut r = Rng::stream(42, 7);
                let mut sel = VictimSelector::new(policy);
                (0..200)
                    .map(|i| {
                        let v = sel.next(&mut r, 7, 32);
                        // Exercise the cache path deterministically too.
                        sel.note_result(v, i % 5 == 0);
                        v
                    })
                    .collect::<Vec<_>>()
            };
            assert_eq!(draw(), draw(), "{policy:?}");
        }
    }

    #[test]
    fn two_rank_ring_always_picks_the_peer() {
        let mut r = rng();
        for policy in [VictimPolicy::Uniform, VictimPolicy::Locality] {
            let mut sel = VictimSelector::new(policy);
            for _ in 0..50 {
                assert_eq!(sel.next(&mut r, 1, 2), 0);
            }
        }
    }
}
