//! Helpers for packing task bodies ("the user views the task body as a
//! contiguous buffer ... where they can store any arguments they wish in
//! any format", §2.1). Fixed-width little-endian codecs keep bodies
//! portable between ranks.

/// Append a `u64` to a body buffer.
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append an `i64` to a body buffer.
pub fn put_i64(buf: &mut Vec<u8>, v: i64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append an `f64` to a body buffer.
pub fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Read the `u64` at byte offset `off`.
pub fn get_u64(buf: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(buf[off..off + 8].try_into().expect("8 bytes"))
}

/// Read the `i64` at byte offset `off`.
pub fn get_i64(buf: &[u8], off: usize) -> i64 {
    i64::from_le_bytes(buf[off..off + 8].try_into().expect("8 bytes"))
}

/// Read the `f64` at byte offset `off`.
pub fn get_f64(buf: &[u8], off: usize) -> f64 {
    f64::from_le_bytes(buf[off..off + 8].try_into().expect("8 bytes"))
}

/// Overwrite the `u64` at byte offset `off`.
pub fn set_u64(buf: &mut [u8], off: usize, v: u64) {
    buf[off..off + 8].copy_from_slice(&v.to_le_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_mixed() {
        let mut b = Vec::new();
        put_u64(&mut b, 42);
        put_i64(&mut b, -7);
        put_f64(&mut b, 1.5);
        assert_eq!(get_u64(&b, 0), 42);
        assert_eq!(get_i64(&b, 8), -7);
        assert_eq!(get_f64(&b, 16), 1.5);
        set_u64(&mut b, 0, 99);
        assert_eq!(get_u64(&b, 0), 99);
    }
}
