//! End-to-end tests of the task-collection semantics: seeding, stealing,
//! subtask spawning, termination safety, CLOs, reuse, and both queue
//! implementations.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use scioto_det::sync::Mutex;

use scioto::{
    LbKind, QueueKind, Task, TaskCollection, TcConfig, AFFINITY_HIGH, AFFINITY_LOW,
};
use scioto_armci::Armci;
use scioto_sim::{ExecMode, LatencyModel, Machine, MachineConfig};

/// Run a machine in which rank 0 seeds `n_tasks` no-op tasks and everyone
/// processes; returns per-rank executed counts.
fn run_seeded(
    ranks: usize,
    n_tasks: u64,
    cfg: TcConfig,
    latency: LatencyModel,
    mode: ExecMode,
) -> Vec<u64> {
    let mc = MachineConfig {
        mode,
        ..MachineConfig::virtual_time(ranks).with_latency(latency)
    };
    let out = Machine::run(mc, move |ctx| {
        let armci = Armci::init(ctx);
        let tc = TaskCollection::create(ctx, &armci, cfg);
        let executed = Arc::new(AtomicU64::new(0));
        let clo = tc.register_clo(ctx, executed.clone());
        let h = tc.register(
            ctx,
            Arc::new(move |t| {
                let c: Arc<AtomicU64> = t.tc.clo(t.ctx, clo);
                c.fetch_add(1, Ordering::Relaxed);
                t.ctx.compute(1_000);
            }),
        );
        if ctx.rank() == 0 {
            let task = Task::new(h, vec![]);
            for _ in 0..n_tasks {
                tc.add(ctx, 0, AFFINITY_HIGH, &task);
            }
        }
        tc.process(ctx);
        executed.load(Ordering::Relaxed)
    });
    out.results
}

#[test]
fn every_seeded_task_executes_exactly_once() {
    for ranks in [1, 2, 4, 7] {
        let counts = run_seeded(
            ranks,
            100,
            TcConfig::new(8, 2, 256),
            LatencyModel::zero(),
            ExecMode::VirtualTime,
        );
        assert_eq!(counts.iter().sum::<u64>(), 100, "ranks={ranks}");
    }
}

#[test]
fn stealing_spreads_work_across_ranks() {
    let counts = run_seeded(
        8,
        400,
        TcConfig::new(8, 4, 1024),
        LatencyModel::cluster(),
        ExecMode::VirtualTime,
    );
    assert_eq!(counts.iter().sum::<u64>(), 400);
    let busy = counts.iter().filter(|&&c| c > 0).count();
    assert!(
        busy >= 6,
        "with 400 coarse tasks, most of 8 ranks should execute some: {counts:?}"
    );
}

#[test]
fn locked_queue_processes_everything_too() {
    let counts = run_seeded(
        4,
        120,
        TcConfig::new(8, 2, 512).with_queue(QueueKind::Locked),
        LatencyModel::cluster(),
        ExecMode::VirtualTime,
    );
    assert_eq!(counts.iter().sum::<u64>(), 120);
}

#[test]
fn disabled_load_balancing_keeps_tasks_local() {
    let out = Machine::run(MachineConfig::virtual_time(4), |ctx| {
        let armci = Armci::init(ctx);
        let cfg = TcConfig::new(8, 2, 128).with_ldbal(LbKind::Disabled);
        let tc = TaskCollection::create(ctx, &armci, cfg);
        let executed = Arc::new(AtomicU64::new(0));
        let clo = tc.register_clo(ctx, executed.clone());
        let h = tc.register(
            ctx,
            Arc::new(move |t| {
                let c: Arc<AtomicU64> = t.tc.clo(t.ctx, clo);
                c.fetch_add(1, Ordering::Relaxed);
            }),
        );
        // Every rank seeds 5 tasks for itself.
        for _ in 0..5 {
            tc.add(ctx, ctx.rank(), AFFINITY_HIGH, &Task::new(h, vec![]));
        }
        tc.process(ctx);
        executed.load(Ordering::Relaxed)
    });
    assert_eq!(out.results, vec![5, 5, 5, 5]);
}

#[test]
fn subtasks_spawned_during_execution_are_processed() {
    // A binary fan-out: each task with depth d spawns two tasks of depth
    // d-1; total = 2^(d+1) - 1 tasks.
    let out = Machine::run(MachineConfig::virtual_time(4), |ctx| {
        let armci = Armci::init(ctx);
        let tc = TaskCollection::create(ctx, &armci, TcConfig::new(8, 2, 4096));
        let executed = Arc::new(AtomicU64::new(0));
        let clo = tc.register_clo(ctx, executed.clone());
        let h_cell = Arc::new(Mutex::new(None::<scioto::TaskHandle>));
        let h_cell2 = h_cell.clone();
        let h = tc.register(
            ctx,
            Arc::new(move |t| {
                let c: Arc<AtomicU64> = t.tc.clo(t.ctx, clo);
                c.fetch_add(1, Ordering::Relaxed);
                let depth = scioto::wire::get_u64(t.body(), 0);
                if depth > 0 {
                    let h = (*h_cell2.lock()).expect("handle registered");
                    let mut body = Vec::new();
                    scioto::wire::put_u64(&mut body, depth - 1);
                    let child = Task::new(h, body);
                    t.tc.add(t.ctx, t.ctx.rank(), AFFINITY_HIGH, &child);
                    t.tc.add(t.ctx, t.ctx.rank(), AFFINITY_HIGH, &child);
                }
            }),
        );
        *h_cell.lock() = Some(h);
        if ctx.rank() == 0 {
            let mut body = Vec::new();
            scioto::wire::put_u64(&mut body, 6);
            tc.add(ctx, 0, AFFINITY_HIGH, &Task::new(h, body));
        }
        tc.process(ctx);
        executed.load(Ordering::Relaxed)
    });
    assert_eq!(out.results.iter().sum::<u64>(), (1 << 7) - 1);
}

#[test]
fn remote_adds_reach_their_target_and_terminate() {
    let out = Machine::run(MachineConfig::virtual_time(4), |ctx| {
        let armci = Armci::init(ctx);
        let cfg = TcConfig::new(8, 2, 128).with_ldbal(LbKind::Disabled);
        let tc = TaskCollection::create(ctx, &armci, cfg);
        let executed = Arc::new(AtomicU64::new(0));
        let clo = tc.register_clo(ctx, executed.clone());
        let h = tc.register(
            ctx,
            Arc::new(move |t| {
                let c: Arc<AtomicU64> = t.tc.clo(t.ctx, clo);
                c.fetch_add(1, Ordering::Relaxed);
            }),
        );
        // Everybody seeds 3 tasks onto rank 2 (remote for most).
        for _ in 0..3 {
            tc.add(ctx, 2, AFFINITY_HIGH, &Task::new(h, vec![]));
        }
        tc.process(ctx);
        executed.load(Ordering::Relaxed)
    });
    assert_eq!(out.results, vec![0, 0, 12, 0]);
}

#[test]
fn collection_is_reusable_after_reset() {
    let out = Machine::run(MachineConfig::virtual_time(3), |ctx| {
        let armci = Armci::init(ctx);
        let tc = TaskCollection::create(ctx, &armci, TcConfig::new(8, 2, 64));
        let executed = Arc::new(AtomicU64::new(0));
        let clo = tc.register_clo(ctx, executed.clone());
        let h = tc.register(
            ctx,
            Arc::new(move |t| {
                let c: Arc<AtomicU64> = t.tc.clo(t.ctx, clo);
                c.fetch_add(1, Ordering::Relaxed);
            }),
        );
        let mut totals = Vec::new();
        for phase in 0..3 {
            if ctx.rank() == 0 {
                for _ in 0..(10 * (phase + 1)) {
                    tc.add(ctx, 0, AFFINITY_HIGH, &Task::new(h, vec![]));
                }
            }
            tc.process(ctx);
            totals.push(executed.swap(0, Ordering::Relaxed));
            tc.reset(ctx);
        }
        totals
    });
    for phase in 0..3 {
        let total: u64 = out.results.iter().map(|v| v[phase]).sum();
        assert_eq!(total, 10 * (phase as u64 + 1), "phase {phase}");
    }
}

#[test]
fn task_bodies_travel_intact_through_steals() {
    // Each task carries a unique payload; a per-rank CLO set collects what
    // was seen. The union must be exactly the seeded payloads.
    let out = Machine::run(
        MachineConfig::virtual_time(6).with_latency(LatencyModel::cluster()),
        |ctx| {
            let armci = Armci::init(ctx);
            let tc = TaskCollection::create(ctx, &armci, TcConfig::new(16, 3, 512));
            let seen = Arc::new(Mutex::new(Vec::<u64>::new()));
            let clo = tc.register_clo(ctx, seen.clone());
            let h = tc.register(
                ctx,
                Arc::new(move |t| {
                    let s: Arc<Mutex<Vec<u64>>> = t.tc.clo(t.ctx, clo);
                    s.lock().push(scioto::wire::get_u64(t.body(), 0));
                    t.ctx.compute(5_000);
                }),
            );
            if ctx.rank() == 0 {
                for i in 0..200u64 {
                    let mut body = Vec::new();
                    scioto::wire::put_u64(&mut body, i);
                    tc.add(ctx, 0, AFFINITY_HIGH, &Task::new(h, body));
                }
            }
            tc.process(ctx);
            let seen_tasks = seen.lock().clone();
            seen_tasks
        },
    );
    let mut all: Vec<u64> = out.results.into_iter().flatten().collect();
    all.sort_unstable();
    assert_eq!(all, (0..200).collect::<Vec<u64>>());
}

#[test]
fn affinity_low_tasks_are_stolen_before_affinity_high() {
    // Rank 0 seeds interleaved high/low tasks and never executes (it
    // sleeps in a long task); rank 1 steals. The first stolen tasks must
    // be predominantly low-affinity ones.
    let out = Machine::run(
        MachineConfig::virtual_time(2).with_latency(LatencyModel::zero()),
        |ctx| {
            let armci = Armci::init(ctx);
            let tc = TaskCollection::create(ctx, &armci, TcConfig::new(16, 1, 512));
            let seen = Arc::new(Mutex::new(Vec::<(u64, i32)>::new()));
            let clo = tc.register_clo(ctx, seen.clone());
            let h = tc.register(
                ctx,
                Arc::new(move |t| {
                    let s: Arc<Mutex<Vec<(u64, i32)>>> = t.tc.clo(t.ctx, clo);
                    s.lock().push((scioto::wire::get_u64(t.body(), 0), t.affinity()));
                    t.ctx.compute(2_000);
                }),
            );
            if ctx.rank() == 0 {
                for i in 0..20u64 {
                    let mut body = Vec::new();
                    scioto::wire::put_u64(&mut body, i);
                    let aff = if i % 2 == 0 { AFFINITY_HIGH } else { AFFINITY_LOW };
                    tc.add(ctx, 0, aff, &Task::new(h, body));
                }
            }
            tc.process(ctx);
            let stats = tc.stats(ctx.rank());
            let seen_tasks = seen.lock().clone();
            (seen_tasks, stats.tasks_stolen)
        },
    );
    let (rank1_seen, rank1_stolen) = &out.results[1];
    assert_eq!(*rank1_stolen as usize, rank1_seen.len());
    if !rank1_seen.is_empty() {
        // The very first steal must take a low-affinity task: they sit at
        // the tail of rank 0's queue.
        assert_eq!(rank1_seen[0].1, AFFINITY_LOW, "{rank1_seen:?}");
    }
    let total: usize = out.results.iter().map(|(v, _)| v.len()).sum();
    assert_eq!(total, 20);
}

#[test]
fn stats_account_for_all_tasks() {
    let out = Machine::run(
        MachineConfig::virtual_time(4).with_latency(LatencyModel::cluster()),
        |ctx| {
            let armci = Armci::init(ctx);
            let tc = TaskCollection::create(ctx, &armci, TcConfig::new(8, 2, 256));
            let h = tc.register(ctx, Arc::new(|t| t.ctx.compute(500)));
            if ctx.rank() == 0 {
                for _ in 0..50 {
                    tc.add(ctx, 0, AFFINITY_HIGH, &Task::new(h, vec![]));
                }
            }
            tc.process(ctx)
        },
    );
    let summary = scioto::StatsSummary::from_ranks(&out.results);
    assert_eq!(summary.totals.tasks_executed, 50);
    assert_eq!(summary.totals.tasks_spawned, 50);
    assert!(summary.totals.tasks_stolen as i64 >= 0);
    assert!(summary.totals.steals_succeeded <= summary.totals.steals_attempted);
}

#[test]
fn concurrent_mode_executes_all_tasks() {
    // Real threads, real locks: the same runtime code must stay correct
    // under genuine preemption.
    for _ in 0..3 {
        let counts = run_seeded(
            4,
            200,
            TcConfig::new(8, 2, 1024),
            LatencyModel::zero(),
            ExecMode::Concurrent,
        );
        assert_eq!(counts.iter().sum::<u64>(), 200);
    }
}

#[test]
fn virtual_time_runs_are_deterministic() {
    let run = || {
        let mc = MachineConfig::virtual_time(5).with_latency(LatencyModel::cluster());
        Machine::run(mc, |ctx| {
            let armci = Armci::init(ctx);
            let tc = TaskCollection::create(ctx, &armci, TcConfig::new(8, 2, 512));
            let h = tc.register(ctx, Arc::new(|t| t.ctx.compute(777)));
            if ctx.rank() == 0 {
                for _ in 0..100 {
                    tc.add(ctx, 0, AFFINITY_HIGH, &Task::new(h, vec![]));
                }
            }
            let stats = tc.process(ctx);
            (stats.tasks_executed, ctx.now())
        })
    };
    let a = run();
    let b = run();
    assert_eq!(a.results, b.results);
    assert_eq!(a.report.makespan_ns, b.report.makespan_ns);
}

#[test]
fn chunked_steals_respect_chunk_size() {
    let out = Machine::run(MachineConfig::virtual_time(2), |ctx| {
        let armci = Armci::init(ctx);
        let tc = TaskCollection::create(ctx, &armci, TcConfig::new(8, 5, 512));
        let h = tc.register(ctx, Arc::new(|t| t.ctx.compute(10_000)));
        if ctx.rank() == 0 {
            for _ in 0..100 {
                tc.add(ctx, 0, AFFINITY_HIGH, &Task::new(h, vec![]));
            }
        }
        tc.process(ctx)
    });
    let thief = out.results[1];
    if thief.steals_succeeded > 0 {
        assert!(thief.tasks_stolen <= thief.steals_succeeded * 5);
    }
}
