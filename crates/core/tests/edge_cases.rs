//! Edge cases of the task-collection lifecycle: empty phases, capacity
//! boundaries, degenerate machine sizes, body-size limits, and stats
//! accessors.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use scioto::{
    LbKind, QueueKind, Task, TaskCollection, TcConfig, AFFINITY_HIGH, AFFINITY_LOW,
};
use scioto_armci::Armci;
use scioto_sim::{ExecMode, LatencyModel, Machine, MachineConfig};

#[test]
fn empty_phase_terminates_promptly() {
    // No tasks at all: processing must still detect termination.
    for ranks in [1, 2, 9] {
        let out = Machine::run(
            MachineConfig::virtual_time(ranks).with_latency(LatencyModel::cluster()),
            |ctx| {
                let armci = Armci::init(ctx);
                let tc = TaskCollection::create(ctx, &armci, TcConfig::new(8, 2, 16));
                let _h = tc.register(ctx, Arc::new(|_| {}));
                let stats = tc.process(ctx);
                stats.tasks_executed
            },
        );
        assert_eq!(out.results.iter().sum::<u64>(), 0, "ranks={ranks}");
    }
}

#[test]
fn single_rank_with_stealing_config_works() {
    let out = Machine::run(MachineConfig::virtual_time(1), |ctx| {
        let armci = Armci::init(ctx);
        let tc = TaskCollection::create(ctx, &armci, TcConfig::new(8, 2, 64));
        let n = Arc::new(AtomicU64::new(0));
        let clo = tc.register_clo(ctx, n.clone());
        let h = tc.register(
            ctx,
            Arc::new(move |t| {
                let c: Arc<AtomicU64> = t.tc.clo(t.ctx, clo);
                c.fetch_add(1, Ordering::Relaxed);
            }),
        );
        for _ in 0..30 {
            tc.add(ctx, 0, AFFINITY_HIGH, &Task::new(h, vec![]));
        }
        tc.process(ctx);
        n.load(Ordering::Relaxed)
    });
    assert_eq!(out.results[0], 30);
}

#[test]
fn body_at_exact_max_size_is_accepted() {
    let out = Machine::run(MachineConfig::virtual_time(2), |ctx| {
        let armci = Armci::init(ctx);
        let tc = TaskCollection::create(ctx, &armci, TcConfig::new(32, 2, 16));
        let seen = Arc::new(AtomicU64::new(0));
        let clo = tc.register_clo(ctx, seen.clone());
        let h = tc.register(
            ctx,
            Arc::new(move |t| {
                assert_eq!(t.body().len(), 32);
                assert!(t.body().iter().all(|&b| b == 0xAB));
                let c: Arc<AtomicU64> = t.tc.clo(t.ctx, clo);
                c.fetch_add(1, Ordering::Relaxed);
            }),
        );
        if ctx.rank() == 0 {
            tc.add(ctx, 1, AFFINITY_HIGH, &Task::new(h, vec![0xAB; 32]));
        }
        tc.process(ctx);
        seen.load(Ordering::Relaxed)
    });
    assert_eq!(out.results.iter().sum::<u64>(), 1);
}

#[test]
fn oversized_body_is_rejected() {
    let r = std::panic::catch_unwind(|| {
        Machine::run(MachineConfig::virtual_time(1), |ctx| {
            let armci = Armci::init(ctx);
            let tc = TaskCollection::create(ctx, &armci, TcConfig::new(8, 2, 16));
            let h = tc.register(ctx, Arc::new(|_| {}));
            tc.add(ctx, 0, AFFINITY_HIGH, &Task::new(h, vec![0; 9]));
        });
    });
    assert!(r.is_err(), "oversized body must panic");
}

#[test]
fn queue_filled_to_capacity_processes_fully() {
    // max_tasks tasks seeded into a queue of exactly that capacity.
    let out = Machine::run(MachineConfig::virtual_time(1), |ctx| {
        let armci = Armci::init(ctx);
        let tc = TaskCollection::create(ctx, &armci, TcConfig::new(8, 2, 64));
        let n = Arc::new(AtomicU64::new(0));
        let clo = tc.register_clo(ctx, n.clone());
        let h = tc.register(
            ctx,
            Arc::new(move |t| {
                let c: Arc<AtomicU64> = t.tc.clo(t.ctx, clo);
                c.fetch_add(1, Ordering::Relaxed);
            }),
        );
        for _ in 0..63 {
            tc.add(ctx, 0, AFFINITY_HIGH, &Task::new(h, vec![]));
        }
        tc.process(ctx);
        n.load(Ordering::Relaxed)
    });
    assert_eq!(out.results[0], 63);
}

#[test]
fn mixed_affinity_low_remote_seeding() {
    // All-low-affinity tasks seeded remotely still execute exactly once.
    let out = Machine::run(
        MachineConfig::virtual_time(3).with_latency(LatencyModel::cluster()),
        |ctx| {
            let armci = Armci::init(ctx);
            let tc = TaskCollection::create(ctx, &armci, TcConfig::new(8, 1, 128));
            let n = Arc::new(AtomicU64::new(0));
            let clo = tc.register_clo(ctx, n.clone());
            let h = tc.register(
                ctx,
                Arc::new(move |t| {
                    let c: Arc<AtomicU64> = t.tc.clo(t.ctx, clo);
                    c.fetch_add(1, Ordering::Relaxed);
                    t.ctx.compute(2_000);
                }),
            );
            if ctx.rank() == 0 {
                for i in 0..24 {
                    tc.add(ctx, i % 3, AFFINITY_LOW, &Task::new(h, vec![]));
                }
            }
            tc.process(ctx);
            n.load(Ordering::Relaxed)
        },
    );
    assert_eq!(out.results.iter().sum::<u64>(), 24);
}

#[test]
fn disabled_ldbal_locked_queue_combination() {
    let out = Machine::run(MachineConfig::virtual_time(2), |ctx| {
        let armci = Armci::init(ctx);
        let cfg = TcConfig::new(8, 2, 64)
            .with_queue(QueueKind::Locked)
            .with_ldbal(LbKind::Disabled);
        let tc = TaskCollection::create(ctx, &armci, cfg);
        let n = Arc::new(AtomicU64::new(0));
        let clo = tc.register_clo(ctx, n.clone());
        let h = tc.register(
            ctx,
            Arc::new(move |t| {
                let c: Arc<AtomicU64> = t.tc.clo(t.ctx, clo);
                c.fetch_add(1, Ordering::Relaxed);
            }),
        );
        for _ in 0..7 {
            tc.add(ctx, ctx.rank(), AFFINITY_HIGH, &Task::new(h, vec![]));
        }
        tc.process(ctx);
        n.load(Ordering::Relaxed)
    });
    assert_eq!(out.results, vec![7, 7]);
}

#[test]
fn accessors_report_configuration() {
    Machine::run(MachineConfig::virtual_time(2), |ctx| {
        let armci = Armci::init(ctx);
        let tc = TaskCollection::create(ctx, &armci, TcConfig::new(24, 3, 32));
        assert_eq!(tc.config().chunk, 3);
        assert_eq!(tc.config().max_tasks, 32);
        // Header (16) + body (24) rounded to 8.
        assert_eq!(tc.slot_bytes(), 40);
        let _ = tc.register(ctx, Arc::new(|_| {}));
        let _ = tc.register(ctx, Arc::new(|_| {}));
        assert_eq!(tc.registered_callbacks(ctx.rank()), 2);
        let (h, s, t) = tc.queue_indices(ctx);
        assert_eq!((h, s, t), (0, 0, 0));
    });
}

#[test]
fn creator_and_affinity_visible_to_tasks() {
    let out = Machine::run(MachineConfig::virtual_time(2), |ctx| {
        let armci = Armci::init(ctx);
        let tc = TaskCollection::create(ctx, &armci, TcConfig::new(8, 2, 16));
        let seen = Arc::new(scioto_det::sync::Mutex::new(Vec::<(usize, i32)>::new()));
        let clo = tc.register_clo(ctx, seen.clone());
        let h = tc.register(
            ctx,
            Arc::new(move |t| {
                let s: Arc<scioto_det::sync::Mutex<Vec<(usize, i32)>>> = t.tc.clo(t.ctx, clo);
                s.lock().push((t.creator(), t.affinity()));
            }),
        );
        if ctx.rank() == 1 {
            tc.add(ctx, 0, 5, &Task::new(h, vec![]));
        }
        tc.process(ctx);
        let v = seen.lock().clone();
        v
    });
    let all: Vec<(usize, i32)> = out.results.into_iter().flatten().collect();
    assert_eq!(all, vec![(1, 5)]);
}

#[test]
fn concurrent_mode_locked_queue_soak() {
    for _ in 0..2 {
        let cfg = MachineConfig {
            mode: ExecMode::Concurrent,
            ..MachineConfig::virtual_time(4)
        };
        let out = Machine::run(cfg, |ctx| {
            let armci = Armci::init(ctx);
            let tc = TaskCollection::create(
                ctx,
                &armci,
                TcConfig::new(8, 3, 2048).with_queue(QueueKind::Locked),
            );
            let n = Arc::new(AtomicU64::new(0));
            let clo = tc.register_clo(ctx, n.clone());
            let h = tc.register(
                ctx,
                Arc::new(move |t| {
                    let c: Arc<AtomicU64> = t.tc.clo(t.ctx, clo);
                    c.fetch_add(1, Ordering::Relaxed);
                }),
            );
            for _ in 0..100 {
                tc.add(ctx, ctx.rank(), AFFINITY_HIGH, &Task::new(h, vec![]));
            }
            tc.process(ctx);
            n.load(Ordering::Relaxed)
        });
        assert_eq!(out.results.iter().sum::<u64>(), 400);
    }
}

#[test]
#[should_panic(expected = "invalid TcConfig: max_tasks = 0")]
fn create_rejects_zero_capacity_config() {
    // Struct-literal configs bypass `TcConfig::new`'s checks; `create`
    // must reject them before any slot arithmetic runs.
    Machine::run(MachineConfig::virtual_time(1), |ctx| {
        let armci = Armci::init(ctx);
        let cfg = TcConfig {
            max_tasks: 0,
            ..TcConfig::new(8, 2, 16)
        };
        TaskCollection::create(ctx, &armci, cfg);
    });
}

#[test]
#[should_panic(expected = "invalid TcConfig: chunk size")]
fn create_rejects_zero_chunk_config() {
    Machine::run(MachineConfig::virtual_time(1), |ctx| {
        let armci = Armci::init(ctx);
        let cfg = TcConfig {
            chunk: 0,
            ..TcConfig::new(8, 2, 16)
        };
        TaskCollection::create(ctx, &armci, cfg);
    });
}

#[test]
#[should_panic(expected = "exceeds max_body")]
fn bench_push_rejects_oversized_body() {
    // The bench entry points share the descriptive body-size check with
    // `add` — an oversized body must not reach slot encoding.
    Machine::run(MachineConfig::virtual_time(1), |ctx| {
        let armci = Armci::init(ctx);
        let tc = TaskCollection::create(ctx, &armci, TcConfig::new(8, 2, 16));
        let h = tc.register(ctx, Arc::new(|_| {}));
        tc.bench_push_local(ctx, &Task::new(h, vec![0u8; 9]));
    });
}
