//! Randomized tests of the task-collection invariants: conservation (no
//! task lost or duplicated) and termination safety under randomized
//! workloads, queue kinds, chunk sizes, and spawn topologies.
//!
//! Ported from `proptest` to seeded loops over the in-tree deterministic
//! RNG so the default workspace carries zero external dependencies; every
//! case is reproducible from the printed case seed.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use scioto_det::sync::Mutex;
use scioto_det::Rng;

use scioto::{QueueKind, Task, TaskCollection, TcConfig, AFFINITY_HIGH, AFFINITY_LOW};
use scioto_armci::Armci;
use scioto_sim::{LatencyModel, Machine, MachineConfig};

/// Every seeded task executes exactly once, for any rank count, chunk,
/// queue kind, affinity mix, and seeding pattern.
#[test]
fn tasks_execute_exactly_once() {
    for case in 0..16u64 {
        let mut rng = Rng::stream(0x7A5C_0001, case);
        let ranks = rng.gen_range(1..6usize);
        let chunk = rng.gen_range(1..8usize);
        let locked = rng.gen_bool(0.5);
        let nseeds = rng.gen_range(1..80usize);
        let seeds: Vec<(usize, bool)> = (0..nseeds)
            .map(|_| (rng.gen_range(0..6usize), rng.gen_bool(0.5)))
            .collect();
        let machine_seed = rng.gen_range(0..1_000u64);

        let seeds2 = seeds.clone();
        let cfg = MachineConfig::virtual_time(ranks)
            .with_latency(LatencyModel::cluster())
            .with_seed(machine_seed);
        let out = Machine::run(cfg, move |ctx| {
            let armci = Armci::init(ctx);
            let kind = if locked { QueueKind::Locked } else { QueueKind::Split };
            let tc = TaskCollection::create(
                ctx,
                &armci,
                TcConfig::new(16, chunk, 4096).with_queue(kind),
            );
            let seen = Arc::new(Mutex::new(Vec::<u64>::new()));
            let clo = tc.register_clo(ctx, seen.clone());
            let h = tc.register(ctx, Arc::new(move |t| {
                let s: Arc<Mutex<Vec<u64>>> = t.tc.clo(t.ctx, clo);
                s.lock().push(scioto::wire::get_u64(t.body(), 0));
                t.ctx.compute(700);
            }));
            // Rank 0 seeds tasks onto (possibly remote) target ranks with
            // mixed affinities.
            if ctx.rank() == 0 {
                let mut task = Task::with_body_size(h, 8);
                for (id, (target, low)) in seeds2.iter().enumerate() {
                    scioto::wire::set_u64(task.body_mut(), 0, id as u64);
                    let aff = if *low { AFFINITY_LOW } else { AFFINITY_HIGH };
                    tc.add(ctx, target % ctx.nranks(), aff, &task);
                }
            }
            tc.process(ctx);
            let ids = seen.lock().clone();
            ids
        });
        let mut all: Vec<u64> = out.results.into_iter().flatten().collect();
        all.sort_unstable();
        let expect: Vec<u64> = (0..seeds.len() as u64).collect();
        assert_eq!(all, expect, "case {case}: lost or duplicated tasks");
    }
}

/// Random recursive spawn trees: the number of executed tasks matches
/// the algebraic tree size, wherever tasks migrate.
#[test]
fn recursive_spawns_all_execute() {
    for case in 0..16u64 {
        let mut rng = Rng::stream(0x7A5C_0002, case);
        let ranks = rng.gen_range(2..5usize);
        let fanout = rng.gen_range(1..4u64);
        let depth = rng.gen_range(1..5u64);
        let machine_seed = rng.gen_range(0..1_000u64);

        let cfg = MachineConfig::virtual_time(ranks)
            .with_latency(LatencyModel::cluster())
            .with_seed(machine_seed);
        let out = Machine::run(cfg, move |ctx| {
            let armci = Armci::init(ctx);
            let tc = TaskCollection::create(ctx, &armci, TcConfig::new(16, 2, 1 << 14));
            let executed = Arc::new(AtomicU64::new(0));
            let clo = tc.register_clo(ctx, executed.clone());
            let handle_cell = Arc::new(std::sync::OnceLock::new());
            let hc = handle_cell.clone();
            let h = tc.register(ctx, Arc::new(move |t| {
                let c: Arc<AtomicU64> = t.tc.clo(t.ctx, clo);
                c.fetch_add(1, Ordering::Relaxed);
                let d = scioto::wire::get_u64(t.body(), 0);
                t.ctx.compute(300);
                if d > 0 {
                    let h = *hc.get().expect("registered");
                    let mut child = Task::with_body_size(h, 8);
                    scioto::wire::set_u64(child.body_mut(), 0, d - 1);
                    for _ in 0..fanout {
                        t.tc.add(t.ctx, t.ctx.rank(), AFFINITY_HIGH, &child);
                    }
                }
            }));
            handle_cell.set(h).expect("once");
            if ctx.rank() == 0 {
                let mut root = Task::with_body_size(h, 8);
                scioto::wire::set_u64(root.body_mut(), 0, depth);
                tc.add(ctx, 0, AFFINITY_HIGH, &root);
            }
            tc.process(ctx);
            executed.load(Ordering::Relaxed)
        });
        // Tree size = 1 + f + f^2 + ... + f^depth.
        let mut expect = 0u64;
        let mut level = 1u64;
        for _ in 0..=depth {
            expect += level;
            level *= fanout;
        }
        assert_eq!(
            out.results.iter().sum::<u64>(),
            expect,
            "case {case}: fanout={fanout} depth={depth}"
        );
    }
}

/// Phase reuse: random per-phase seed counts all process correctly
/// through reset cycles.
#[test]
fn reset_cycles_preserve_counts() {
    for case in 0..16u64 {
        let mut rng = Rng::stream(0x7A5C_0003, case);
        let nphases = rng.gen_range(1..4usize);
        let phases: Vec<u64> = (0..nphases).map(|_| rng.gen_range(0..30u64)).collect();
        let ranks = rng.gen_range(1..4usize);

        let phases2 = phases.clone();
        let out = Machine::run(MachineConfig::virtual_time(ranks), move |ctx| {
            let armci = Armci::init(ctx);
            let tc = TaskCollection::create(ctx, &armci, TcConfig::new(8, 2, 256));
            let executed = Arc::new(AtomicU64::new(0));
            let clo = tc.register_clo(ctx, executed.clone());
            let h = tc.register(ctx, Arc::new(move |t| {
                let c: Arc<AtomicU64> = t.tc.clo(t.ctx, clo);
                c.fetch_add(1, Ordering::Relaxed);
            }));
            let mut per_phase = Vec::new();
            for &count in &phases2 {
                if ctx.rank() == 0 {
                    for _ in 0..count {
                        tc.add(ctx, 0, AFFINITY_HIGH, &Task::new(h, vec![]));
                    }
                }
                tc.process(ctx);
                per_phase.push(executed.swap(0, Ordering::Relaxed));
                tc.reset(ctx);
            }
            per_phase
        });
        for (i, &count) in phases.iter().enumerate() {
            let total: u64 = out.results.iter().map(|v| v[i]).sum();
            assert_eq!(total, count, "case {case}: phase {i}");
        }
    }
}
