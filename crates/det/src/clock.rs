//! Monotonic wall-clock source for the concurrent execution mode.
//!
//! This module is the single sanctioned `std::time` site in the runtime
//! proper: everything that needs real elapsed time (the concurrent
//! kernel's trace stamps, per-thread span measurement, makespan) goes
//! through [`MonoClock`] instead of touching `std::time::Instant`
//! directly. `scioto-lint`'s `wallclock` rule enforces this textually —
//! the waiver below is the only one inside `crates/det`, and the lint's
//! allowlist rejects new `std::time` uses anywhere else in the runtime,
//! so the rule stays meaningful as the codebase grows.
//!
//! The clock is monotonic (never goes backwards) and reads as `u64`
//! nanoseconds since construction, matching the virtual-time kernel's
//! clock representation so traces from both modes share one schema.

use std::time::Instant; // scioto-lint: allow(wallclock)

/// A monotonic nanosecond clock anchored at construction time.
///
/// Cheap to read from many threads concurrently (`Instant::elapsed` is
/// lock-free on the platforms we target); all readers observe a common
/// epoch, so cross-thread stamp comparisons are meaningful modulo the
/// OS clock's own resolution.
#[derive(Debug)]
pub struct MonoClock {
    start: Instant,
}

impl MonoClock {
    /// Anchor a new clock at "now".
    pub fn new() -> Self {
        MonoClock { start: Instant::now() }
    }

    /// Nanoseconds elapsed since construction. Saturates at `u64::MAX`
    /// (≈584 years), and is monotone non-decreasing across calls from
    /// any thread.
    ///
    /// One monotonic read against the cached origin, converted in `u64`
    /// arithmetic — no `u128` widening on the concurrent kernel's stamp
    /// path, which calls this once per trace event.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        let d = self.start.elapsed();
        d.as_secs()
            .saturating_mul(1_000_000_000)
            .saturating_add(u64::from(d.subsec_nanos()))
    }
}

impl Default for MonoClock {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotone_across_reads() {
        let c = MonoClock::new();
        let mut prev = 0u64;
        for _ in 0..1000 {
            let now = c.now_ns();
            assert!(now >= prev, "clock went backwards: {now} < {prev}");
            prev = now;
        }
    }

    #[test]
    fn advances_past_a_real_sleep() {
        let c = MonoClock::new();
        std::thread::sleep(std::time::Duration::from_millis(2)); // scioto-lint: allow(wallclock)
        assert!(c.now_ns() >= 1_000_000, "clock failed to advance");
    }

    #[test]
    fn readable_from_other_threads() {
        let c = MonoClock::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let a = c.now_ns();
                    let b = c.now_ns();
                    assert!(b >= a);
                });
            }
        });
    }
}
