//! Deterministic, dependency-free primitives shared by every Scioto crate.
//!
//! The reproduction's claims are only checkable if every run is
//! bit-reproducible from a single seed (see EXPERIMENTS.md), and only
//! buildable if a clean checkout compiles with **no registry access**.
//! This crate supplies the two things the workspace previously pulled from
//! crates.io:
//!
//! * [`rng`] — a SplitMix64-seeded xoshiro256** generator with the small
//!   surface the codebase actually uses (`gen_range`, `gen_f64`,
//!   `shuffle`, per-stream derivation), replacing `rand`;
//! * [`sync`] — thin `Mutex` / `RwLock` / `Condvar` wrappers over
//!   `std::sync` with the poison-free, guard-returning API the code was
//!   written against, replacing `parking_lot`.
//!
//! Per-rank streams are derived by hashing `(seed, stream_id)` through
//! SplitMix64 ([`Rng::stream`]) so that distinct seeds can never collide
//! across ranks — unlike the earlier `seed ^ rank * CONST` XOR-mix, which
//! mapped `(seed = CONST, rank = 0)` and `(seed = 0, rank = 1)` to the
//! same state.
//!
//! A third module, [`clock`], exists for the one place determinism ends:
//! the concurrent (real-thread) execution mode needs real timestamps,
//! and [`clock::MonoClock`] is the single sanctioned wall-clock source —
//! see the `wallclock` lint in `scioto-race`.

pub mod clock;
pub mod rng;
pub mod sync;

pub use clock::MonoClock;
pub use rng::{Rng, SplitMix64};
