//! Deterministic pseudo-random number generation.
//!
//! [`SplitMix64`] (Steele, Lea & Flood 2014) is used for seeding and for
//! stream derivation; the main generator is xoshiro256** (Blackman &
//! Vigna 2018), a 256-bit-state generator with full 64-bit output
//! avalanche and a 2^256 − 1 period. Both are tiny, portable, and — the
//! property this repo cares about — produce the identical sequence on
//! every platform for a given seed.

/// SplitMix64: a 64-bit state hash-based generator. Primarily a seeding
/// and key-derivation tool here; every output is a full avalanche of the
/// counter state.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// The SplitMix64 output function: a finalizing 64 -> 64 bit mix with
/// full avalanche (every input bit affects every output bit).
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(GOLDEN_GAMMA);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SplitMix64 {
    /// A generator starting from `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// The workhorse generator: xoshiro256** seeded through SplitMix64.
///
/// Construct with [`Rng::seed_from_u64`] for a single stream or
/// [`Rng::stream`] for one of a family of decorrelated streams (one per
/// simulated rank).
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// A generator whose 256-bit state is expanded from `seed` by
    /// SplitMix64 — the standard, collision-free seeding procedure for
    /// the xoshiro family.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        // SplitMix64 expansion of any seed is nonzero in practice; guard
        // anyway, since the all-zero state is xoshiro's one fixed point.
        if s == [0; 4] {
            return Rng { s: [GOLDEN_GAMMA, 1, 2, 3] };
        }
        Rng { s }
    }

    /// Stream `stream_id` of the family keyed by `seed`.
    ///
    /// The effective seed is `mix64(mix64(seed) + stream_id)`: the outer
    /// hash sees a fully avalanched image of `seed`, so two distinct
    /// `(seed, stream_id)` pairs collide only if
    /// `mix64(a) - mix64(b) == id_b - id_a`, which for small stream ids is
    /// a 2^-64 accident rather than a structural identity. (The previous
    /// `seed ^ id * CONST` scheme was linear and collided for trivially
    /// related seeds.)
    pub fn stream(seed: u64, stream_id: u64) -> Self {
        Self::seed_from_u64(mix64(mix64(seed).wrapping_add(stream_id)))
    }

    /// Next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1]
            .wrapping_mul(5)
            .rotate_left(7)
            .wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Uniform value in `0..n` without modulo bias (Lemire's method with
    /// rejection).
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn gen_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "gen_below: empty range");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut lo = m as u64;
        if lo < n {
            let threshold = n.wrapping_neg() % n;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform value in the half-open range, e.g. `rng.gen_range(0..n)`.
    /// Implemented for the integer and float range types the workspace
    /// uses.
    ///
    /// # Panics
    /// Panics if the range is empty.
    pub fn gen_range<R: UniformRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

/// A range type [`Rng::gen_range`] can sample uniformly.
pub trait UniformRange {
    type Output;
    fn sample(self, rng: &mut Rng) -> Self::Output;
}

macro_rules! impl_uniform_int {
    ($($ty:ty),*) => {$(
        impl UniformRange for core::ops::Range<$ty> {
            type Output = $ty;
            fn sample(self, rng: &mut Rng) -> $ty {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.gen_below(span) as i128) as $ty
            }
        }
        impl UniformRange for core::ops::RangeInclusive<$ty> {
            type Output = $ty;
            fn sample(self, rng: &mut Rng) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $ty;
                }
                (lo as i128 + rng.gen_below(span + 1) as i128) as $ty
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl UniformRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample(self, rng: &mut Rng) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let v = self.start + rng.gen_f64() * (self.end - self.start);
        // Rounding can land exactly on `end`; fold back into range.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference sequence for seed 1234567 (from the public-domain
        // splitmix64.c by Vigna).
        let mut sm = SplitMix64::new(1234567);
        assert_eq!(sm.next_u64(), 6457827717110365317);
        assert_eq!(sm.next_u64(), 3203168211198807973);
        assert_eq!(sm.next_u64(), 9817491932198370423);
    }

    #[test]
    fn same_seed_same_sequence() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn streams_do_not_collide_where_the_xor_mix_did() {
        // The pre-det scheme `seed ^ rank * C` mapped (seed = C, rank = 0)
        // and (seed = 0, rank = 1) to the same state. The hashed streams
        // must keep them apart.
        const C: u64 = 0x9E37_79B9_7F4A_7C15;
        let mut a = Rng::stream(C, 0);
        let mut b = Rng::stream(0, 1);
        let va: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn adjacent_streams_differ() {
        let mut prev = Rng::stream(7, 0);
        for id in 1..64u64 {
            let mut cur = Rng::stream(7, id);
            assert_ne!(
                (0..4).map(|_| prev.next_u64()).collect::<Vec<_>>(),
                (0..4).map(|_| cur.next_u64()).collect::<Vec<_>>(),
                "streams {} and {} coincide",
                id - 1,
                id
            );
            prev = Rng::stream(7, id);
        }
    }

    #[test]
    fn gen_below_is_in_range_and_covers() {
        let mut rng = Rng::seed_from_u64(3);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            let v = rng.gen_below(7);
            assert!(v < 7);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues hit: {seen:?}");
    }

    #[test]
    fn gen_range_int_bounds() {
        let mut rng = Rng::seed_from_u64(9);
        for _ in 0..1_000 {
            let v = rng.gen_range(10..20u64);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5..5i64);
            assert!((-5..5).contains(&w));
            let x = rng.gen_range(0..=3u32);
            assert!(x <= 3);
        }
    }

    #[test]
    fn gen_range_f64_bounds() {
        let mut rng = Rng::seed_from_u64(11);
        for _ in 0..1_000 {
            let v = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&v), "{v}");
        }
    }

    #[test]
    fn gen_f64_is_unit_interval_and_roughly_uniform() {
        let mut rng = Rng::seed_from_u64(5);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean = {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation_and_seed_stable() {
        let mut v1: Vec<u32> = (0..50).collect();
        let mut v2: Vec<u32> = (0..50).collect();
        Rng::seed_from_u64(8).shuffle(&mut v1);
        Rng::seed_from_u64(8).shuffle(&mut v2);
        assert_eq!(v1, v2);
        assert_ne!(v1, (0..50).collect::<Vec<u32>>());
        let mut sorted = v1.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_rejected() {
        Rng::seed_from_u64(0).gen_range(5..5u64);
    }
}
