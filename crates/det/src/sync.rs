//! Poison-free synchronization wrappers over `std::sync`.
//!
//! The simulator deliberately keeps locking usable after a rank thread
//! panics: the kernel propagates "poison" itself (waking every rank so it
//! can unwind), and the surviving ranks still need to take the scheduler
//! lock on their way out. `std`'s lock poisoning would turn that orderly
//! teardown into a second panic, so these wrappers strip `PoisonError`
//! and expose the guard-returning API (`lock()`, `read()`, `write()`,
//! `Condvar::wait(&mut guard)`) the codebase was written against.

use std::sync::PoisonError;

/// A mutual-exclusion lock. `lock()` returns the guard directly; a
/// poisoned inner lock (some holder panicked) is treated as unlocked.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`]; the lock is released on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can move the inner guard out and back
    // while the caller keeps holding `&mut MutexGuard`.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Block until the lock is acquired.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Acquire the lock only if it is free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken by Condvar::wait")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken by Condvar::wait")
    }
}

/// A condition variable paired with [`Mutex`]. `wait` takes the guard by
/// `&mut` and reacquires the lock before returning, so the caller's
/// borrow stays valid across the wait (the `parking_lot` calling
/// convention).
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Atomically release the guard's lock and park; on wakeup the lock is
    /// reacquired before returning. Wakeups may be spurious.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard already taken");
        let inner = self.inner.wait(inner).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

/// A reader-writer lock with the guard-returning, poison-free API.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared-access RAII guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-access RAII guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Block until shared access is acquired.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Block until exclusive access is acquired.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn try_lock_reports_contention() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_many_readers_one_writer() {
        let l = RwLock::new(vec![1, 2, 3]);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(*r1, *r2);
        }
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }

    #[test]
    fn lock_survives_a_panicked_holder() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("holder dies with the lock");
        })
        .join();
        // parking_lot semantics: the data is still reachable.
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn condvar_wait_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut ready = m.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
            true
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        assert!(t.join().unwrap());
    }
}
