//! The `Ga` world object and 2-D distributed arrays.

use std::sync::Arc;

use scioto_det::sync::RwLock;

use scioto_armci::{Armci, Gmem, Strided};
use scioto_sim::Ctx;

use crate::dist::{BlockDist, Patch};

/// Portable integer handle to a global array — exactly what GA programs
/// store inside Scioto task bodies (Figure 1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GaHandle(pub i64);

pub(crate) struct ArrayMeta {
    pub(crate) name: String,
    pub(crate) dist: BlockDist,
    pub(crate) gmem: Gmem,
}

/// The Global Arrays runtime for one machine.
pub struct Ga {
    pub(crate) armci: Arc<Armci>,
    pub(crate) arrays: RwLock<Vec<Arc<ArrayMeta>>>,
}

impl Ga {
    /// Collectively initialize Global Arrays (initializes ARMCI
    /// internally, like `GA_Initialize`).
    pub fn init(ctx: &Ctx) -> Arc<Ga> {
        let armci = Armci::init(ctx);
        ctx.collective(|| Ga {
            armci,
            arrays: RwLock::new(Vec::new()),
        })
    }

    /// The underlying ARMCI world.
    pub fn armci(&self) -> &Arc<Armci> {
        &self.armci
    }

    /// Number of ranks.
    pub fn nranks(&self) -> usize {
        self.armci.nranks()
    }

    /// Collectively create a `rows × cols` f64 array, zero-initialized.
    pub fn create(&self, ctx: &Ctx, name: &str, rows: usize, cols: usize) -> GaHandle {
        let n = self.nranks();
        let dist = BlockDist::new(rows, cols, n);
        let gmem = self.armci.malloc(ctx, dist.max_owned() * 8);
        let handle = ctx.collective(|| {
            let mut arrays = self.arrays.write();
            arrays.push(Arc::new(ArrayMeta {
                name: name.to_string(),
                dist,
                gmem,
            }));
            GaHandle(arrays.len() as i64 - 1)
        });
        *handle
    }

    pub(crate) fn meta(&self, h: GaHandle) -> Arc<ArrayMeta> {
        let arrays = self.arrays.read();
        arrays
            .get(h.0 as usize)
            .unwrap_or_else(|| panic!("invalid GA handle {}", h.0))
            .clone()
    }

    /// Name the array was created with.
    pub fn name(&self, h: GaHandle) -> String {
        self.meta(h).name.clone()
    }

    /// Global dimensions `(rows, cols)`.
    pub fn dims(&self, h: GaHandle) -> (usize, usize) {
        let d = self.meta(h).dist;
        (d.rows, d.cols)
    }

    /// Rank owning element `(i, j)` (GA's `NGA_Locate`).
    pub fn locate(&self, h: GaHandle, i: usize, j: usize) -> usize {
        self.meta(h).dist.locate(i, j)
    }

    /// Patch owned by `rank` (GA's `NGA_Distribution`).
    pub fn distribution(&self, h: GaHandle, rank: usize) -> Patch {
        self.meta(h).dist.owned(rank)
    }

    /// Block distribution descriptor.
    pub fn dist(&self, h: GaHandle) -> BlockDist {
        self.meta(h).dist
    }

    /// Synchronize: completes outstanding operations on all ranks
    /// (GA_Sync = fence + barrier).
    pub fn sync(&self, ctx: &Ctx) {
        self.armci.barrier(ctx);
    }

    /// Strided descriptor addressing `inter` within `owner_patch`'s
    /// row-major local storage.
    fn strided_for(owner_patch: Patch, inter: Patch) -> Strided {
        let ocols = owner_patch.cols();
        Strided {
            offset: ((inter.rlo - owner_patch.rlo) * ocols + (inter.clo - owner_patch.clo)) * 8,
            stride: ocols * 8,
            seg_len: inter.cols() * 8,
            count: inter.rows(),
        }
    }

    /// Get a rectangular patch as a row-major `Vec<f64>`.
    pub fn get(&self, ctx: &Ctx, h: GaHandle, p: Patch) -> Vec<f64> {
        let meta = self.meta(h);
        self.check_patch(&meta.dist, p);
        let mut out = vec![0.0f64; p.size()];
        for (rank, inter) in meta.dist.owners(p, self.nranks()) {
            let owner_patch = meta.dist.owned(rank);
            let s = Self::strided_for(owner_patch, inter);
            let mut buf = vec![0u8; s.total_bytes()];
            self.armci.get_strided(ctx, meta.gmem, rank, s, &mut buf);
            // Scatter rows of the intersection into the output patch.
            for (ri, row) in buf.chunks_exact(inter.cols() * 8).enumerate() {
                let gi = inter.rlo + ri;
                let dst_base = (gi - p.rlo) * p.cols() + (inter.clo - p.clo);
                for (ci, chunk) in row.chunks_exact(8).enumerate() {
                    out[dst_base + ci] =
                        f64::from_le_bytes(chunk.try_into().expect("8 bytes"));
                }
            }
        }
        out
    }

    /// Put a row-major patch (`data.len() == p.size()`).
    pub fn put(&self, ctx: &Ctx, h: GaHandle, p: Patch, data: &[f64]) {
        assert_eq!(data.len(), p.size(), "patch data length mismatch");
        let meta = self.meta(h);
        self.check_patch(&meta.dist, p);
        for (rank, inter) in meta.dist.owners(p, self.nranks()) {
            let owner_patch = meta.dist.owned(rank);
            let s = Self::strided_for(owner_patch, inter);
            let mut buf = Vec::with_capacity(s.total_bytes());
            for ri in 0..inter.rows() {
                let gi = inter.rlo + ri;
                let src_base = (gi - p.rlo) * p.cols() + (inter.clo - p.clo);
                for v in &data[src_base..src_base + inter.cols()] {
                    buf.extend_from_slice(&v.to_le_bytes());
                }
            }
            self.armci.put_strided(ctx, meta.gmem, rank, s, &buf);
        }
    }

    /// Atomic accumulate: `A[p] += alpha * data` (GA's `NGA_Acc`).
    pub fn acc(&self, ctx: &Ctx, h: GaHandle, p: Patch, alpha: f64, data: &[f64]) {
        assert_eq!(data.len(), p.size(), "patch data length mismatch");
        let meta = self.meta(h);
        self.check_patch(&meta.dist, p);
        for (rank, inter) in meta.dist.owners(p, self.nranks()) {
            let owner_patch = meta.dist.owned(rank);
            let s = Self::strided_for(owner_patch, inter);
            let mut buf = Vec::with_capacity(inter.size());
            for ri in 0..inter.rows() {
                let gi = inter.rlo + ri;
                let src_base = (gi - p.rlo) * p.cols() + (inter.clo - p.clo);
                buf.extend_from_slice(&data[src_base..src_base + inter.cols()]);
            }
            self.armci
                .acc_strided_f64(ctx, meta.gmem, rank, s, alpha, &buf);
        }
    }

    /// Collectively fill the whole array with `v` (each rank fills its own
    /// patch; callers should `sync` before depending on the result).
    pub fn fill(&self, ctx: &Ctx, h: GaHandle, v: f64) {
        let meta = self.meta(h);
        let mine = meta.dist.owned(ctx.rank());
        if mine.is_empty() {
            return;
        }
        self.armci.with_local_mut(ctx, meta.gmem, |bytes| {
            for chunk in bytes[..mine.size() * 8].chunks_exact_mut(8) {
                chunk.copy_from_slice(&v.to_le_bytes());
            }
        });
        ctx.compute((mine.size() as u64).max(1));
    }

    /// Collectively zero the array.
    pub fn zero(&self, ctx: &Ctx, h: GaHandle) {
        self.fill(ctx, h, 0.0);
    }

    fn check_patch(&self, d: &BlockDist, p: Patch) {
        assert!(
            p.rhi <= d.rows && p.chi <= d.cols,
            "patch {p:?} out of bounds for {}x{} array",
            d.rows,
            d.cols
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scioto_sim::{Machine, MachineConfig};

    #[test]
    fn put_then_get_roundtrips_across_distribution() {
        for n in [1, 2, 4, 6] {
            let out = Machine::run(MachineConfig::virtual_time(n), |ctx| {
                let ga = Ga::init(ctx);
                let a = ga.create(ctx, "a", 9, 7);
                if ctx.rank() == 0 {
                    let data: Vec<f64> = (0..63).map(|x| x as f64).collect();
                    ga.put(ctx, a, Patch::new(0, 9, 0, 7), &data);
                }
                ga.sync(ctx);
                ga.get(ctx, a, Patch::new(2, 6, 1, 5))
            });
            // Rows 2..6, cols 1..5 of the row-major 9x7 matrix.
            let expect: Vec<f64> = (2..6)
                .flat_map(|i| (1..5).map(move |j| (i * 7 + j) as f64))
                .collect();
            for r in out.results {
                assert_eq!(r, expect, "n={n}");
            }
        }
    }

    #[test]
    fn acc_sums_contributions_from_all_ranks() {
        let out = Machine::run(MachineConfig::virtual_time(4), |ctx| {
            let ga = Ga::init(ctx);
            let a = ga.create(ctx, "acc", 6, 6);
            ga.zero(ctx, a);
            ga.sync(ctx);
            let p = Patch::new(1, 4, 1, 4);
            ga.acc(ctx, a, p, 2.0, &vec![1.0; p.size()]);
            ga.sync(ctx);
            ga.get(ctx, a, Patch::new(0, 6, 0, 6))
        });
        for r in out.results {
            for i in 0..6 {
                for j in 0..6 {
                    let inside = (1..4).contains(&i) && (1..4).contains(&j);
                    let expect = if inside { 8.0 } else { 0.0 };
                    assert_eq!(r[i * 6 + j], expect, "({i},{j})");
                }
            }
        }
    }

    #[test]
    fn locate_and_distribution_agree() {
        let out = Machine::run(MachineConfig::virtual_time(6), |ctx| {
            let ga = Ga::init(ctx);
            let a = ga.create(ctx, "loc", 12, 10);
            let mut ok = true;
            for i in 0..12 {
                for j in 0..10 {
                    let owner = ga.locate(a, i, j);
                    ok &= ga.distribution(a, owner).contains(i, j);
                }
            }
            ok
        });
        assert!(out.results.into_iter().all(|b| b));
    }

    #[test]
    fn multiple_arrays_are_independent() {
        let out = Machine::run(MachineConfig::virtual_time(2), |ctx| {
            let ga = Ga::init(ctx);
            let a = ga.create(ctx, "a", 4, 4);
            let b = ga.create(ctx, "b", 4, 4);
            ga.fill(ctx, a, 1.0);
            ga.fill(ctx, b, 2.0);
            ga.sync(ctx);
            let pa = ga.get(ctx, a, Patch::new(0, 4, 0, 4));
            let pb = ga.get(ctx, b, Patch::new(0, 4, 0, 4));
            (pa.iter().sum::<f64>(), pb.iter().sum::<f64>())
        });
        for (sa, sb) in out.results {
            assert_eq!(sa, 16.0);
            assert_eq!(sb, 32.0);
        }
    }

    #[test]
    fn handles_are_portable_integers() {
        let out = Machine::run(MachineConfig::virtual_time(3), |ctx| {
            let ga = Ga::init(ctx);
            let a = ga.create(ctx, "x", 2, 2);
            a.0
        });
        assert!(out.results.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_patch_panics() {
        Machine::run(MachineConfig::virtual_time(1), |ctx| {
            let ga = Ga::init(ctx);
            let a = ga.create(ctx, "a", 4, 4);
            ga.get(ctx, a, Patch::new(0, 5, 0, 4));
        });
    }
}
