//! `read_inc` shared counters (GA's `NGA_Read_inc`).
//!
//! The original SCF and TCE implementations replicate the task list on
//! every process and draw the next task index by atomically incrementing a
//! shared counter — the locality-oblivious dynamic load balancer that
//! Figures 5 and 6 of the paper compare Scioto against. Every increment is
//! a remote RMW on the counter's host rank, which is exactly the
//! serialization bottleneck the paper attributes the original codes'
//! scaling collapse to.

use scioto_armci::Gmem;
use scioto_sim::Ctx;

use crate::array::Ga;

/// Handle to a shared counter hosted on one rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaCounter {
    gmem: Gmem,
    host: usize,
}

impl Ga {
    /// Collectively create a shared counter initialized to zero, hosted on
    /// `host`.
    pub fn create_counter(&self, ctx: &Ctx, host: usize) -> GaCounter {
        assert!(host < self.nranks(), "host rank out of range");
        let gmem = self.armci.malloc(ctx, 8);
        GaCounter { gmem, host }
    }

    /// Atomically add `inc` to the counter and return its previous value.
    pub fn read_inc(&self, ctx: &Ctx, c: GaCounter, inc: i64) -> i64 {
        self.armci.fetch_add_i64(ctx, c.gmem, c.host, 0, inc)
    }

    /// Collectively reset the counter to zero. Requires a `sync` by the
    /// caller before reuse.
    pub fn reset_counter(&self, ctx: &Ctx, c: GaCounter) {
        if ctx.rank() == c.host {
            self.armci.write_i64(ctx, c.gmem, c.host, 0, 0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scioto_sim::{Machine, MachineConfig};

    #[test]
    fn read_inc_hands_out_unique_indices() {
        let out = Machine::run(MachineConfig::virtual_time(6), |ctx| {
            let ga = Ga::init(ctx);
            let c = ga.create_counter(ctx, 0);
            ga.sync(ctx);
            let mut mine = Vec::new();
            loop {
                let i = ga.read_inc(ctx, c, 1);
                if i >= 100 {
                    break;
                }
                mine.push(i);
            }
            mine
        });
        let mut all: Vec<i64> = out.results.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<i64>>());
    }

    #[test]
    fn reset_counter_restarts_numbering() {
        let out = Machine::run(MachineConfig::virtual_time(2), |ctx| {
            let ga = Ga::init(ctx);
            let c = ga.create_counter(ctx, 1);
            ga.sync(ctx);
            ga.read_inc(ctx, c, 1);
            ga.sync(ctx);
            ga.reset_counter(ctx, c);
            ga.sync(ctx);
            ga.read_inc(ctx, c, 5)
        });
        // After reset, the two ranks draw 0 and 5 in some order.
        let mut r = out.results;
        r.sort_unstable();
        assert_eq!(r, vec![0, 5]);
    }

    #[test]
    fn counter_serializes_in_virtual_time() {
        // With cluster latencies, 64 increments from 8 ranks must take at
        // least 64 serialized remote RMW times on the critical path... but
        // one-sided RMWs pipeline per-rank; what must hold is that every
        // index is unique and the host's memory saw all updates.
        let out = Machine::run(
            MachineConfig::virtual_time(8).with_latency(scioto_sim::LatencyModel::cluster()),
            |ctx| {
                let ga = Ga::init(ctx);
                let c = ga.create_counter(ctx, 0);
                ga.sync(ctx);
                let v: Vec<i64> = (0..8).map(|_| ga.read_inc(ctx, c, 1)).collect();
                ga.sync(ctx);
                v
            },
        );
        let mut all: Vec<i64> = out.results.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..64).collect::<Vec<i64>>());
    }
}
