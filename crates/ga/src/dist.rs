//! Rectangular patches and the 2-D block distribution.

/// A half-open rectangular region `[rlo, rhi) × [clo, chi)` of a 2-D array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Patch {
    /// First row (inclusive).
    pub rlo: usize,
    /// Last row (exclusive).
    pub rhi: usize,
    /// First column (inclusive).
    pub clo: usize,
    /// Last column (exclusive).
    pub chi: usize,
}

impl Patch {
    /// Construct `[rlo, rhi) × [clo, chi)`.
    pub fn new(rlo: usize, rhi: usize, clo: usize, chi: usize) -> Self {
        assert!(rlo <= rhi && clo <= chi, "malformed patch");
        Patch { rlo, rhi, clo, chi }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rhi - self.rlo
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.chi - self.clo
    }

    /// Number of elements.
    pub fn size(&self) -> usize {
        self.rows() * self.cols()
    }

    /// True when the patch covers no elements.
    pub fn is_empty(&self) -> bool {
        self.size() == 0
    }

    /// Intersection with `other` (possibly empty).
    pub fn intersect(&self, other: &Patch) -> Patch {
        let rlo = self.rlo.max(other.rlo);
        let rhi = self.rhi.min(other.rhi).max(rlo);
        let clo = self.clo.max(other.clo);
        let chi = self.chi.min(other.chi).max(clo);
        Patch { rlo, rhi, clo, chi }
    }

    /// True when `(i, j)` lies within the patch.
    pub fn contains(&self, i: usize, j: usize) -> bool {
        i >= self.rlo && i < self.rhi && j >= self.clo && j < self.chi
    }
}

/// A 2-D block distribution of a `rows × cols` array over `n` ranks
/// arranged in a `pr × pc` process grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockDist {
    /// Global rows.
    pub rows: usize,
    /// Global columns.
    pub cols: usize,
    /// Process-grid rows.
    pub pr: usize,
    /// Process-grid columns.
    pub pc: usize,
    /// Rows per grid row (block height).
    pub br: usize,
    /// Columns per grid column (block width).
    pub bc: usize,
}

impl BlockDist {
    /// Build the near-square process grid for `n` ranks and block the
    /// array over it.
    pub fn new(rows: usize, cols: usize, n: usize) -> Self {
        assert!(n >= 1);
        let (pr, pc) = process_grid(n);
        BlockDist {
            rows,
            cols,
            pr,
            pc,
            br: rows.div_ceil(pr).max(1),
            bc: cols.div_ceil(pc).max(1),
        }
    }

    /// Rank owning element `(i, j)`.
    pub fn locate(&self, i: usize, j: usize) -> usize {
        assert!(i < self.rows && j < self.cols, "index out of bounds");
        let gr = (i / self.br).min(self.pr - 1);
        let gc = (j / self.bc).min(self.pc - 1);
        gr * self.pc + gc
    }

    /// The patch owned by `rank` (possibly empty).
    pub fn owned(&self, rank: usize) -> Patch {
        let gr = rank / self.pc;
        let gc = rank % self.pc;
        if gr >= self.pr {
            return Patch::new(0, 0, 0, 0);
        }
        let rlo = (gr * self.br).min(self.rows);
        let rhi = ((gr + 1) * self.br).min(self.rows);
        let clo = (gc * self.bc).min(self.cols);
        let chi = ((gc + 1) * self.bc).min(self.cols);
        Patch::new(rlo, rhi.max(rlo), clo, chi.max(clo))
    }

    /// Maximum number of elements owned by any rank.
    pub fn max_owned(&self) -> usize {
        self.br * self.bc
    }

    /// Ranks whose owned patches intersect `p`, with the non-empty
    /// intersections.
    pub fn owners(&self, p: Patch, n: usize) -> Vec<(usize, Patch)> {
        let mut out = Vec::new();
        for rank in 0..n {
            let inter = self.owned(rank).intersect(&p);
            if !inter.is_empty() {
                out.push((rank, inter));
            }
        }
        out
    }
}

/// Near-square factorization `pr × pc = n` with `pr <= pc`.
pub(crate) fn process_grid(n: usize) -> (usize, usize) {
    let mut pr = (n as f64).sqrt() as usize;
    while pr > 1 && !n.is_multiple_of(pr) {
        pr -= 1;
    }
    (pr.max(1), n / pr.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_is_near_square() {
        assert_eq!(process_grid(1), (1, 1));
        assert_eq!(process_grid(4), (2, 2));
        assert_eq!(process_grid(6), (2, 3));
        assert_eq!(process_grid(12), (3, 4));
        assert_eq!(process_grid(64), (8, 8));
        assert_eq!(process_grid(7), (1, 7));
    }

    #[test]
    fn every_element_has_exactly_one_owner() {
        for n in [1, 2, 3, 4, 6, 8, 16] {
            let d = BlockDist::new(10, 13, n);
            for i in 0..10 {
                for j in 0..13 {
                    let owner = d.locate(i, j);
                    assert!(owner < n);
                    assert!(d.owned(owner).contains(i, j), "n={n} ({i},{j})");
                    // No other rank owns it.
                    for r in 0..n {
                        if r != owner {
                            assert!(!d.owned(r).contains(i, j));
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn owners_cover_patch_exactly() {
        let d = BlockDist::new(16, 16, 4);
        let p = Patch::new(3, 12, 5, 14);
        let owners = d.owners(p, 4);
        let covered: usize = owners.iter().map(|(_, q)| q.size()).sum();
        assert_eq!(covered, p.size());
    }

    #[test]
    fn intersect_clamps_to_empty() {
        let a = Patch::new(0, 4, 0, 4);
        let b = Patch::new(6, 8, 6, 8);
        assert!(a.intersect(&b).is_empty());
    }

    #[test]
    fn patch_accessors() {
        let p = Patch::new(2, 5, 1, 7);
        assert_eq!(p.rows(), 3);
        assert_eq!(p.cols(), 6);
        assert_eq!(p.size(), 18);
        assert!(p.contains(2, 1));
        assert!(!p.contains(5, 1));
    }

    #[test]
    fn tiny_arrays_on_many_ranks() {
        // More ranks than elements: distribution must stay consistent.
        let d = BlockDist::new(2, 2, 16);
        let mut owners = std::collections::HashSet::new();
        for i in 0..2 {
            for j in 0..2 {
                owners.insert(d.locate(i, j));
            }
        }
        assert!(!owners.is_empty());
        let covered: usize = (0..16).map(|r| d.owned(r).size()).sum();
        assert_eq!(covered, 4);
    }
}
