//! Global operations (GA's `GA_Dgop`): element-wise reductions over a
//! per-rank vector, implemented with ARMCI accumulates into a rank-0
//! scratch buffer followed by a broadcast read.

use scioto_sim::Ctx;

use crate::array::Ga;

impl Ga {
    /// Element-wise global sum: every rank passes `vals` (same length on
    /// all ranks) and receives the rank-wise sum.
    pub fn gop_sum_f64(&self, ctx: &Ctx, vals: &[f64]) -> Vec<f64> {
        let len = vals.len();
        let scratch = self.armci.malloc(ctx, (len.max(1)) * 8);
        self.armci.acc_f64(ctx, scratch, 0, 0, 1.0, vals);
        self.armci.barrier(ctx);
        let out = self.armci.get_f64s(ctx, scratch, 0, 0, len);
        self.armci.barrier(ctx);
        out
    }

    /// Global maximum of a single value.
    pub fn gop_max_f64(&self, ctx: &Ctx, val: f64) -> f64 {
        // Encode max via repeated CAS on rank 0 would be awkward with f64;
        // gather all values to rank 0 instead (one slot per rank).
        let n = self.nranks();
        let scratch = self.armci.malloc(ctx, n * 8);
        self.armci
            .put_f64s(ctx, scratch, 0, ctx.rank() * 8, &[val]);
        self.armci.barrier(ctx);
        let all = self.armci.get_f64s(ctx, scratch, 0, 0, n);
        self.armci.barrier(ctx);
        all.into_iter().fold(f64::NEG_INFINITY, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scioto_sim::{Machine, MachineConfig};

    #[test]
    fn gop_sum_adds_all_ranks() {
        let out = Machine::run(MachineConfig::virtual_time(5), |ctx| {
            let ga = Ga::init(ctx);
            ga.gop_sum_f64(ctx, &[ctx.rank() as f64, 1.0])
        });
        for v in out.results {
            assert_eq!(v, vec![10.0, 5.0]);
        }
    }

    #[test]
    fn gop_max_finds_global_maximum() {
        let out = Machine::run(MachineConfig::virtual_time(7), |ctx| {
            let ga = Ga::init(ctx);
            ga.gop_max_f64(ctx, -(ctx.rank() as f64))
        });
        for v in out.results {
            assert_eq!(v, 0.0);
        }
    }

    #[test]
    fn gop_sum_empty_vector() {
        let out = Machine::run(MachineConfig::virtual_time(2), |ctx| {
            let ga = Ga::init(ctx);
            ga.gop_sum_f64(ctx, &[])
        });
        for v in out.results {
            assert!(v.is_empty());
        }
    }
}
