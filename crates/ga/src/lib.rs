//! # scioto-ga — Global Arrays over the ARMCI layer
//!
//! A reimplementation of the Global Arrays subset used by the Scioto paper's
//! applications (SCF, the TCE tensor-contraction kernel, and the §4
//! matrix-multiplication example):
//!
//! * 2-D block-distributed `f64` arrays with portable integer handles
//!   ([`GaHandle`]) that can be stored inside Scioto task bodies;
//! * rectangular patch `get` / `put` / `acc` built on ARMCI strided
//!   transfers;
//! * distribution queries ([`Ga::locate`], [`Ga::distribution`]);
//! * `read_inc` shared counters — the load-balancing mechanism of the
//!   *original* SCF and TCE implementations that Scioto is compared
//!   against (Figures 5 and 6);
//! * `sync` and a global reduction (`gop`).
//!
//! ```
//! use scioto_sim::{Machine, MachineConfig};
//! use scioto_ga::{Ga, Patch};
//!
//! let out = Machine::run(MachineConfig::virtual_time(4), |ctx| {
//!     let ga = Ga::init(ctx);
//!     let a = ga.create(ctx, "a", 8, 8);
//!     ga.fill(ctx, a, 1.0);
//!     ga.sync(ctx);
//!     let patch = ga.get(ctx, a, Patch::new(0, 8, 0, 8));
//!     patch.iter().sum::<f64>()
//! });
//! assert_eq!(out.results, vec![64.0; 4]);
//! ```

mod array;
mod counter;
mod dist;
mod gop;
mod ops;

pub use array::{Ga, GaHandle};
pub use counter::GaCounter;
pub use dist::{BlockDist, Patch};
