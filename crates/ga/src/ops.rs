//! Whole-array collective operations (GA_Copy, GA_Scale, GA_Add, GA_Ddot,
//! GA_Transpose, GA_Symmetrize): each rank transforms its own patch, with
//! cross-patch data fetched one-sidedly where the shapes demand it.

use scioto_sim::Ctx;

use crate::array::{Ga, GaHandle};
use crate::dist::Patch;

impl Ga {
    /// Collective copy `dst ← src` (same dimensions required).
    pub fn copy(&self, ctx: &Ctx, src: GaHandle, dst: GaHandle) {
        assert_eq!(self.dims(src), self.dims(dst), "GA copy shape mismatch");
        let mine = self.distribution(dst, ctx.rank());
        if !mine.is_empty() {
            let data = self.get(ctx, src, mine);
            self.put(ctx, dst, mine, &data);
        }
        self.sync(ctx);
    }

    /// Collective in-place scale `a ← alpha · a`.
    pub fn scale(&self, ctx: &Ctx, a: GaHandle, alpha: f64) {
        let mine = self.distribution(a, ctx.rank());
        if !mine.is_empty() {
            let mut data = self.get(ctx, a, mine);
            for v in &mut data {
                *v *= alpha;
            }
            self.put(ctx, a, mine, &data);
            ctx.compute(mine.size() as u64);
        }
        self.sync(ctx);
    }

    /// Collective element-wise add `c ← alpha·a + beta·b`.
    pub fn add(
        &self,
        ctx: &Ctx,
        alpha: f64,
        a: GaHandle,
        beta: f64,
        b: GaHandle,
        c: GaHandle,
    ) {
        assert_eq!(self.dims(a), self.dims(c), "GA add shape mismatch");
        assert_eq!(self.dims(b), self.dims(c), "GA add shape mismatch");
        let mine = self.distribution(c, ctx.rank());
        if !mine.is_empty() {
            let va = self.get(ctx, a, mine);
            let vb = self.get(ctx, b, mine);
            let vc: Vec<f64> = va
                .iter()
                .zip(vb.iter())
                .map(|(x, y)| alpha * x + beta * y)
                .collect();
            self.put(ctx, c, mine, &vc);
            ctx.compute(mine.size() as u64 * 2);
        }
        self.sync(ctx);
    }

    /// Collective dot product `Σ_ij A_ij · B_ij`; every rank receives the
    /// global value.
    pub fn ddot(&self, ctx: &Ctx, a: GaHandle, b: GaHandle) -> f64 {
        assert_eq!(self.dims(a), self.dims(b), "GA ddot shape mismatch");
        let mine = self.distribution(a, ctx.rank());
        let partial = if mine.is_empty() {
            0.0
        } else {
            let va = self.get(ctx, a, mine);
            let vb = self.get(ctx, b, mine);
            ctx.compute(mine.size() as u64 * 2);
            va.iter().zip(vb.iter()).map(|(x, y)| x * y).sum()
        };
        self.gop_sum_f64(ctx, &[partial])[0]
    }

    /// Collective transpose `dst ← srcᵀ` (`dst` must be `cols × rows`).
    pub fn transpose_into(&self, ctx: &Ctx, src: GaHandle, dst: GaHandle) {
        let (r, c) = self.dims(src);
        assert_eq!(self.dims(dst), (c, r), "GA transpose shape mismatch");
        let mine = self.distribution(dst, ctx.rank());
        if !mine.is_empty() {
            // The needed source patch is the transpose of my patch.
            let want = Patch::new(mine.clo, mine.chi, mine.rlo, mine.rhi);
            let s = self.get(ctx, src, want);
            let (wr, wc) = (want.rows(), want.cols());
            let mut t = vec![0.0; wr * wc];
            for i in 0..wr {
                for j in 0..wc {
                    t[j * wr + i] = s[i * wc + j];
                }
            }
            self.put(ctx, dst, mine, &t);
            ctx.compute((wr * wc) as u64);
        }
        self.sync(ctx);
    }

    /// Collective symmetrization `a ← (a + aᵀ)/2` (square arrays).
    pub fn symmetrize(&self, ctx: &Ctx, a: GaHandle) {
        let (r, c) = self.dims(a);
        assert_eq!(r, c, "GA symmetrize needs a square array");
        let tmp = self.create(ctx, "symmetrize-tmp", r, c);
        self.transpose_into(ctx, a, tmp);
        self.add(ctx, 0.5, a, 0.5, tmp, a);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scioto_sim::{Machine, MachineConfig};

    fn fill_index(ctx: &Ctx, ga: &Ga, h: GaHandle, rows: usize, cols: usize) {
        if ctx.rank() == 0 {
            let data: Vec<f64> = (0..rows * cols).map(|x| x as f64).collect();
            ga.put(ctx, h, Patch::new(0, rows, 0, cols), &data);
        }
        ga.sync(ctx);
    }

    #[test]
    fn copy_and_scale() {
        let out = Machine::run(MachineConfig::virtual_time(4), |ctx| {
            let ga = Ga::init(ctx);
            let a = ga.create(ctx, "a", 6, 5);
            let b = ga.create(ctx, "b", 6, 5);
            fill_index(ctx, &ga, a, 6, 5);
            ga.copy(ctx, a, b);
            ga.scale(ctx, b, 2.0);
            ga.get(ctx, b, Patch::new(0, 6, 0, 5))
        });
        let expect: Vec<f64> = (0..30).map(|x| 2.0 * x as f64).collect();
        for r in out.results {
            assert_eq!(r, expect);
        }
    }

    #[test]
    fn add_linear_combination() {
        let out = Machine::run(MachineConfig::virtual_time(3), |ctx| {
            let ga = Ga::init(ctx);
            let a = ga.create(ctx, "a", 4, 4);
            let b = ga.create(ctx, "b", 4, 4);
            let c = ga.create(ctx, "c", 4, 4);
            ga.fill(ctx, a, 1.0);
            ga.fill(ctx, b, 10.0);
            ga.sync(ctx);
            ga.add(ctx, 2.0, a, 0.5, b, c);
            ga.get(ctx, c, Patch::new(0, 4, 0, 4))
        });
        for r in out.results {
            assert!(r.iter().all(|&v| v == 7.0));
        }
    }

    #[test]
    fn ddot_matches_dense() {
        let out = Machine::run(MachineConfig::virtual_time(4), |ctx| {
            let ga = Ga::init(ctx);
            let a = ga.create(ctx, "a", 5, 7);
            fill_index(ctx, &ga, a, 5, 7);
            ga.ddot(ctx, a, a)
        });
        let expect: f64 = (0..35).map(|x| (x * x) as f64).sum();
        for v in out.results {
            assert_eq!(v, expect);
        }
    }

    #[test]
    fn transpose_roundtrip() {
        let out = Machine::run(MachineConfig::virtual_time(4), |ctx| {
            let ga = Ga::init(ctx);
            let a = ga.create(ctx, "a", 4, 6);
            let t = ga.create(ctx, "t", 6, 4);
            let tt = ga.create(ctx, "tt", 4, 6);
            fill_index(ctx, &ga, a, 4, 6);
            ga.transpose_into(ctx, a, t);
            ga.transpose_into(ctx, t, tt);
            (
                ga.get(ctx, a, Patch::new(0, 4, 0, 6)),
                ga.get(ctx, t, Patch::new(0, 6, 0, 4)),
                ga.get(ctx, tt, Patch::new(0, 4, 0, 6)),
            )
        });
        for (a, t, tt) in out.results {
            assert_eq!(a, tt, "double transpose must be identity");
            for i in 0..4 {
                for j in 0..6 {
                    assert_eq!(a[i * 6 + j], t[j * 4 + i]);
                }
            }
        }
    }

    #[test]
    fn symmetrize_produces_symmetric_matrix() {
        let out = Machine::run(MachineConfig::virtual_time(2), |ctx| {
            let ga = Ga::init(ctx);
            let a = ga.create(ctx, "a", 5, 5);
            fill_index(ctx, &ga, a, 5, 5);
            ga.symmetrize(ctx, a);
            ga.get(ctx, a, Patch::new(0, 5, 0, 5))
        });
        for m in out.results {
            for i in 0..5 {
                for j in 0..5 {
                    assert_eq!(m[i * 5 + j], m[j * 5 + i]);
                    // (a_ij + a_ji)/2 of the index fill.
                    let expect = ((i * 5 + j) + (j * 5 + i)) as f64 / 2.0;
                    assert_eq!(m[i * 5 + j], expect);
                }
            }
        }
    }
}
