//! Property tests of Global Arrays against a local mirror model: any
//! sequence of put/acc operations applied both to the distributed array
//! and to a plain dense matrix must agree on every subsequent get.

use proptest::prelude::*;

use scioto_ga::{Ga, Patch};
use scioto_sim::{Machine, MachineConfig};

/// A randomly generated patch inside an `rows × cols` array.
fn arb_patch(rows: usize, cols: usize) -> impl Strategy<Value = Patch> {
    (0..rows, 0..cols).prop_flat_map(move |(rlo, clo)| {
        (Just(rlo), (rlo + 1)..=rows, Just(clo), (clo + 1)..=cols)
            .prop_map(|(rlo, rhi, clo, chi)| Patch::new(rlo, rhi, clo, chi))
    })
}

#[derive(Debug, Clone)]
enum Op {
    Put(Patch, f64),
    Acc(Patch, f64, f64),
}

fn arb_op(rows: usize, cols: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        (arb_patch(rows, cols), -5.0f64..5.0).prop_map(|(p, v)| Op::Put(p, v)),
        (arb_patch(rows, cols), -2.0f64..2.0, -3.0f64..3.0)
            .prop_map(|(p, a, v)| Op::Acc(p, a, v)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Distributed array contents always match the dense mirror.
    #[test]
    fn ga_matches_dense_mirror(
        ranks in 1usize..6,
        ops in proptest::collection::vec(arb_op(9, 7), 1..12),
        check in arb_patch(9, 7),
    ) {
        const ROWS: usize = 9;
        const COLS: usize = 7;
        let ops2 = ops.clone();
        let out = Machine::run(MachineConfig::virtual_time(ranks), move |ctx| {
            let ga = Ga::init(ctx);
            let a = ga.create(ctx, "mirror-test", ROWS, COLS);
            let mut mirror = vec![0.0f64; ROWS * COLS];
            // Rank 0 applies all operations (serial application keeps the
            // mirror well-defined); everyone then reads.
            if ctx.rank() == 0 {
                for op in &ops2 {
                    match *op {
                        Op::Put(p, v) => {
                            let data = vec![v; p.size()];
                            ga.put(ctx, a, p, &data);
                            for i in p.rlo..p.rhi {
                                for j in p.clo..p.chi {
                                    mirror[i * COLS + j] = v;
                                }
                            }
                        }
                        Op::Acc(p, alpha, v) => {
                            let data = vec![v; p.size()];
                            ga.acc(ctx, a, p, alpha, &data);
                            for i in p.rlo..p.rhi {
                                for j in p.clo..p.chi {
                                    mirror[i * COLS + j] += alpha * v;
                                }
                            }
                        }
                    }
                }
            }
            ga.sync(ctx);
            let got = ga.get(ctx, a, check);
            let want: Vec<f64> = (check.rlo..check.rhi)
                .flat_map(|i| (check.clo..check.chi).map(move |j| (i, j)))
                .map(|(i, j)| mirror[i * COLS + j])
                .collect();
            (got, want, ctx.rank())
        });
        // Rank 0 holds the authoritative mirror; other ranks' reads must
        // match rank 0's read (they all see the same distributed state).
        let (got0, want0, _) = &out.results[0];
        for (g, w) in got0.iter().zip(want0) {
            prop_assert!((g - w).abs() < 1e-9, "{g} vs {w}");
        }
        for (got, _, _) in &out.results[1..] {
            prop_assert_eq!(got, got0);
        }
    }

    /// `read_inc` with arbitrary increments is a serial counter: the set
    /// of observed values is exactly the prefix sums.
    #[test]
    fn read_inc_is_a_serial_counter(
        ranks in 1usize..5,
        draws in 1usize..12,
        inc in 1i64..5,
    ) {
        let out = Machine::run(MachineConfig::virtual_time(ranks), move |ctx| {
            let ga = Ga::init(ctx);
            let c = ga.create_counter(ctx, 0);
            ga.sync(ctx);
            (0..draws).map(|_| ga.read_inc(ctx, c, inc)).collect::<Vec<i64>>()
        });
        let mut all: Vec<i64> = out.results.into_iter().flatten().collect();
        all.sort_unstable();
        let expect: Vec<i64> = (0..(ranks * draws) as i64).map(|k| k * inc).collect();
        prop_assert_eq!(all, expect);
    }
}
