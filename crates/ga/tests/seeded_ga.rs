//! Randomized tests of Global Arrays against a local mirror model: any
//! sequence of put/acc operations applied both to the distributed array
//! and to a plain dense matrix must agree on every subsequent get.
//!
//! Ported from `proptest` to seeded loops over the in-tree deterministic
//! RNG; every case is reproducible from the printed case number.

use scioto_det::Rng;
use scioto_ga::{Ga, Patch};
use scioto_sim::{Machine, MachineConfig};

/// A random patch inside an `rows × cols` array.
fn random_patch(rng: &mut Rng, rows: usize, cols: usize) -> Patch {
    let rlo = rng.gen_range(0..rows);
    let rhi = rng.gen_range(rlo + 1..=rows);
    let clo = rng.gen_range(0..cols);
    let chi = rng.gen_range(clo + 1..=cols);
    Patch::new(rlo, rhi, clo, chi)
}

#[derive(Debug, Clone)]
enum Op {
    Put(Patch, f64),
    Acc(Patch, f64, f64),
}

fn random_op(rng: &mut Rng, rows: usize, cols: usize) -> Op {
    let p = random_patch(rng, rows, cols);
    if rng.gen_bool(0.5) {
        Op::Put(p, rng.gen_range(-5.0..5.0))
    } else {
        Op::Acc(p, rng.gen_range(-2.0..2.0), rng.gen_range(-3.0..3.0))
    }
}

/// Distributed array contents always match the dense mirror.
#[test]
fn ga_matches_dense_mirror() {
    const ROWS: usize = 9;
    const COLS: usize = 7;
    for case in 0..16u64 {
        let mut rng = Rng::stream(0x6A11_0001, case);
        let ranks = rng.gen_range(1..6usize);
        let nops = rng.gen_range(1..12usize);
        let ops: Vec<Op> = (0..nops).map(|_| random_op(&mut rng, ROWS, COLS)).collect();
        let check = random_patch(&mut rng, ROWS, COLS);

        let ops2 = ops.clone();
        let out = Machine::run(MachineConfig::virtual_time(ranks), move |ctx| {
            let ga = Ga::init(ctx);
            let a = ga.create(ctx, "mirror-test", ROWS, COLS);
            let mut mirror = vec![0.0f64; ROWS * COLS];
            // Rank 0 applies all operations (serial application keeps the
            // mirror well-defined); everyone then reads.
            if ctx.rank() == 0 {
                for op in &ops2 {
                    match *op {
                        Op::Put(p, v) => {
                            let data = vec![v; p.size()];
                            ga.put(ctx, a, p, &data);
                            for i in p.rlo..p.rhi {
                                for j in p.clo..p.chi {
                                    mirror[i * COLS + j] = v;
                                }
                            }
                        }
                        Op::Acc(p, alpha, v) => {
                            let data = vec![v; p.size()];
                            ga.acc(ctx, a, p, alpha, &data);
                            for i in p.rlo..p.rhi {
                                for j in p.clo..p.chi {
                                    mirror[i * COLS + j] += alpha * v;
                                }
                            }
                        }
                    }
                }
            }
            ga.sync(ctx);
            let got = ga.get(ctx, a, check);
            let want: Vec<f64> = (check.rlo..check.rhi)
                .flat_map(|i| (check.clo..check.chi).map(move |j| (i, j)))
                .map(|(i, j)| mirror[i * COLS + j])
                .collect();
            (got, want, ctx.rank())
        });
        // Rank 0 holds the authoritative mirror; other ranks' reads must
        // match rank 0's read (they all see the same distributed state).
        let (got0, want0, _) = &out.results[0];
        for (g, w) in got0.iter().zip(want0) {
            assert!((g - w).abs() < 1e-9, "case {case}: {g} vs {w}");
        }
        for (got, _, _) in &out.results[1..] {
            assert_eq!(got, got0, "case {case}: rank read diverges from rank 0");
        }
    }
}

/// `read_inc` with arbitrary increments is a serial counter: the set
/// of observed values is exactly the prefix sums.
#[test]
fn read_inc_is_a_serial_counter() {
    for case in 0..16u64 {
        let mut rng = Rng::stream(0x6A11_0002, case);
        let ranks = rng.gen_range(1..5usize);
        let draws = rng.gen_range(1..12usize);
        let inc = rng.gen_range(1..5i64);

        let out = Machine::run(MachineConfig::virtual_time(ranks), move |ctx| {
            let ga = Ga::init(ctx);
            let c = ga.create_counter(ctx, 0);
            ga.sync(ctx);
            (0..draws).map(|_| ga.read_inc(ctx, c, inc)).collect::<Vec<i64>>()
        });
        let mut all: Vec<i64> = out.results.into_iter().flatten().collect();
        all.sort_unstable();
        let expect: Vec<i64> = (0..(ranks * draws) as i64).map(|k| k * inc).collect();
        assert_eq!(all, expect, "case {case}");
    }
}
