//! Tree-based collectives: barrier, broadcast, reduce, allreduce.
//!
//! All collectives run over real point-to-point messages on a binary
//! spanning tree rooted at rank 0 (parent `(r-1)/2`, children `2r+1`,
//! `2r+2`), so their virtual-time cost grows with `log2(n)` message
//! latencies — the behaviour Figure 4 of the paper compares against.

use scioto_sim::Ctx;

use crate::comm::Comm;

/// Element-wise reduction operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Element-wise sum.
    Sum,
    /// Element-wise maximum.
    Max,
    /// Element-wise minimum.
    Min,
}

impl ReduceOp {
    fn f64(self, a: f64, b: f64) -> f64 {
        match self {
            ReduceOp::Sum => a + b,
            ReduceOp::Max => a.max(b),
            ReduceOp::Min => a.min(b),
        }
    }

    fn u64(self, a: u64, b: u64) -> u64 {
        match self {
            ReduceOp::Sum => a.wrapping_add(b),
            ReduceOp::Max => a.max(b),
            ReduceOp::Min => a.min(b),
        }
    }
}

fn parent(rank: usize) -> Option<usize> {
    (rank > 0).then(|| (rank - 1) / 2)
}

fn children(rank: usize, n: usize) -> impl Iterator<Item = usize> {
    [2 * rank + 1, 2 * rank + 2]
        .into_iter()
        .filter(move |c| *c < n)
}

impl Comm {
    /// Barrier: an up-wave (reduce) followed by a down-wave (broadcast) of
    /// empty messages over the binary tree.
    pub fn barrier(&self, ctx: &Ctx) {
        self.up_wave(ctx, &[]);
        self.down_wave(ctx, Vec::new());
    }

    /// Broadcast `data` from rank 0 to all ranks.
    pub fn bcast(&self, ctx: &Ctx, data: Vec<u8>) -> Vec<u8> {
        self.down_wave(ctx, data)
    }

    /// Element-wise allreduce over `f64` vectors (all ranks must pass the
    /// same length).
    pub fn allreduce_f64(&self, ctx: &Ctx, vals: &[f64], op: ReduceOp) -> Vec<f64> {
        let mut acc = vals.to_vec();
        let rank = ctx.rank();
        for c in children(rank, self.nranks) {
            let m = self.recv(ctx, Some(c), Some(Comm::INTERNAL_TAG));
            let theirs = decode_f64(&m.data);
            assert_eq!(theirs.len(), acc.len(), "allreduce length mismatch");
            for (a, b) in acc.iter_mut().zip(theirs) {
                *a = op.f64(*a, b);
            }
        }
        if let Some(p) = parent(rank) {
            self.send_raw(ctx, p, Comm::INTERNAL_TAG, &encode_f64(&acc));
        }
        decode_f64(&self.down_wave(ctx, encode_f64(&acc)))
    }

    /// Element-wise allreduce over `u64` vectors.
    pub fn allreduce_u64(&self, ctx: &Ctx, vals: &[u64], op: ReduceOp) -> Vec<u64> {
        let mut acc = vals.to_vec();
        let rank = ctx.rank();
        for c in children(rank, self.nranks) {
            let m = self.recv(ctx, Some(c), Some(Comm::INTERNAL_TAG));
            let theirs = decode_u64(&m.data);
            assert_eq!(theirs.len(), acc.len(), "allreduce length mismatch");
            for (a, b) in acc.iter_mut().zip(theirs) {
                *a = op.u64(*a, b);
            }
        }
        if let Some(p) = parent(rank) {
            self.send_raw(ctx, p, Comm::INTERNAL_TAG, &encode_u64(&acc));
        }
        decode_u64(&self.down_wave(ctx, encode_u64(&acc)))
    }

    /// Up-wave: receive one message from each child, then send `payload`
    /// to the parent.
    fn up_wave(&self, ctx: &Ctx, payload: &[u8]) {
        let rank = ctx.rank();
        for c in children(rank, self.nranks) {
            self.recv(ctx, Some(c), Some(Comm::INTERNAL_TAG));
        }
        if let Some(p) = parent(rank) {
            self.send_raw(ctx, p, Comm::INTERNAL_TAG, payload);
        }
    }

    /// Down-wave: receive the payload from the parent (rank 0 uses its
    /// own), forward to children, return it.
    fn down_wave(&self, ctx: &Ctx, root_payload: Vec<u8>) -> Vec<u8> {
        let rank = ctx.rank();
        let payload = match parent(rank) {
            None => root_payload,
            Some(p) => self.recv(ctx, Some(p), Some(Comm::INTERNAL_TAG)).data,
        };
        for c in children(rank, self.nranks) {
            self.send_raw(ctx, c, Comm::INTERNAL_TAG, &payload);
        }
        payload
    }
}

impl Comm {
    /// Gather every rank's byte payload at rank 0 (returned in rank order
    /// there; other ranks receive an empty vec). Implemented as direct
    /// sends — the paper-era MPI gather for modest payloads.
    pub fn gather(&self, ctx: &Ctx, payload: &[u8]) -> Vec<Vec<u8>> {
        let rank = ctx.rank();
        if rank == 0 {
            let mut out = vec![Vec::new(); self.nranks];
            out[0] = payload.to_vec();
            for _ in 1..self.nranks {
                let m = self.recv(ctx, None, Some(Comm::INTERNAL_TAG | 1));
                out[m.src] = m.data;
            }
            out
        } else {
            self.send_raw(ctx, 0, Comm::INTERNAL_TAG | 1, payload);
            Vec::new()
        }
    }

    /// Scatter per-rank payloads from rank 0: rank `r` receives
    /// `payloads[r]`. Non-root ranks pass an empty slice.
    pub fn scatter(&self, ctx: &Ctx, payloads: &[Vec<u8>]) -> Vec<u8> {
        let rank = ctx.rank();
        if rank == 0 {
            assert_eq!(
                payloads.len(),
                self.nranks,
                "scatter needs one payload per rank"
            );
            for (r, p) in payloads.iter().enumerate().skip(1) {
                self.send_raw(ctx, r, Comm::INTERNAL_TAG | 2, p);
            }
            payloads[0].clone()
        } else {
            self.recv(ctx, Some(0), Some(Comm::INTERNAL_TAG | 2)).data
        }
    }
}

fn encode_f64(v: &[f64]) -> Vec<u8> {
    v.iter().flat_map(|x| x.to_le_bytes()).collect()
}

fn decode_f64(b: &[u8]) -> Vec<f64> {
    b.chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().expect("8 bytes")))
        .collect()
}

fn encode_u64(v: &[u64]) -> Vec<u8> {
    v.iter().flat_map(|x| x.to_le_bytes()).collect()
}

fn decode_u64(b: &[u8]) -> Vec<u64> {
    b.chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use scioto_sim::{LatencyModel, Machine, MachineConfig};

    #[test]
    fn barrier_synchronizes_clocks() {
        let out = Machine::run(
            MachineConfig::virtual_time(8).with_latency(LatencyModel::cluster()),
            |ctx| {
                let comm = Comm::world(ctx);
                ctx.compute(ctx.rank() as u64 * 1_000);
                comm.barrier(ctx);
                ctx.now()
            },
        );
        let release = out.results[0];
        // Everybody leaves no earlier than the slowest arrival (7 µs).
        for t in &out.results {
            assert!(*t >= 7_000);
        }
        // Leaf release times differ only by the down-wave path; all must be
        // at least the root's release.
        for t in &out.results {
            assert!(*t >= release || *t + 100_000 > release);
        }
    }

    #[test]
    fn barrier_cost_grows_with_ranks() {
        let time = |n| {
            Machine::run(
                MachineConfig::virtual_time(n).with_latency(LatencyModel::cluster()),
                |ctx| {
                    let comm = Comm::world(ctx);
                    let t0 = ctx.now();
                    comm.barrier(ctx);
                    ctx.now() - t0
                },
            )
            .report
            .makespan_ns
        };
        let t2 = time(2);
        let t64 = time(64);
        assert!(
            t64 > 2 * t2,
            "64-rank barrier ({t64} ns) should cost much more than 2-rank ({t2} ns)"
        );
    }

    #[test]
    fn bcast_distributes_root_payload() {
        let out = Machine::run(MachineConfig::virtual_time(7), |ctx| {
            let comm = Comm::world(ctx);
            let data = if ctx.rank() == 0 {
                vec![1, 2, 3]
            } else {
                Vec::new()
            };
            comm.bcast(ctx, data)
        });
        for d in out.results {
            assert_eq!(d, vec![1, 2, 3]);
        }
    }

    #[test]
    fn allreduce_f64_sum_and_max() {
        let out = Machine::run(MachineConfig::virtual_time(5), |ctx| {
            let comm = Comm::world(ctx);
            let r = ctx.rank() as f64;
            let sum = comm.allreduce_f64(ctx, &[r, 1.0], ReduceOp::Sum);
            let max = comm.allreduce_f64(ctx, &[r], ReduceOp::Max);
            (sum, max)
        });
        for (sum, max) in out.results {
            assert_eq!(sum, vec![10.0, 5.0]);
            assert_eq!(max, vec![4.0]);
        }
    }

    #[test]
    fn allreduce_u64_min() {
        let out = Machine::run(MachineConfig::virtual_time(6), |ctx| {
            let comm = Comm::world(ctx);
            comm.allreduce_u64(ctx, &[ctx.rank() as u64 + 10], ReduceOp::Min)
        });
        for v in out.results {
            assert_eq!(v, vec![10]);
        }
    }

    #[test]
    fn gather_collects_in_rank_order() {
        let out = Machine::run(MachineConfig::virtual_time(5), |ctx| {
            let comm = Comm::world(ctx);
            let payload = vec![ctx.rank() as u8; ctx.rank() + 1];
            comm.gather(ctx, &payload)
        });
        let root = &out.results[0];
        assert_eq!(root.len(), 5);
        for (r, p) in root.iter().enumerate() {
            assert_eq!(p, &vec![r as u8; r + 1]);
        }
        assert!(out.results[1..].iter().all(|v| v.is_empty()));
    }

    #[test]
    fn scatter_delivers_per_rank_payloads() {
        let out = Machine::run(MachineConfig::virtual_time(4), |ctx| {
            let comm = Comm::world(ctx);
            let payloads = if ctx.rank() == 0 {
                (0..4u8).map(|r| vec![r * 10]).collect()
            } else {
                Vec::new()
            };
            comm.scatter(ctx, &payloads)
        });
        for (r, p) in out.results.iter().enumerate() {
            assert_eq!(p, &vec![r as u8 * 10]);
        }
    }

    #[test]
    fn gather_then_scatter_roundtrip() {
        let out = Machine::run(MachineConfig::virtual_time(3), |ctx| {
            let comm = Comm::world(ctx);
            let gathered = comm.gather(ctx, &[ctx.rank() as u8 + 1]);
            comm.scatter(ctx, &gathered)
        });
        for (r, p) in out.results.iter().enumerate() {
            assert_eq!(p, &vec![r as u8 + 1]);
        }
    }

    #[test]
    fn collectives_interleave_with_p2p() {
        let out = Machine::run(MachineConfig::virtual_time(4), |ctx| {
            let comm = Comm::world(ctx);
            // P2P traffic before and after a barrier must not be consumed
            // by the collective machinery.
            if ctx.rank() == 0 {
                comm.send(ctx, 1, 42, &[7]);
            }
            comm.barrier(ctx);
            let got = if ctx.rank() == 1 {
                comm.recv(ctx, Some(0), Some(42)).data[0]
            } else {
                0
            };
            comm.barrier(ctx);
            got
        });
        assert_eq!(out.results[1], 7);
    }
}
