//! Point-to-point messaging: send, recv, iprobe.

use std::sync::Arc;

use scioto_sim::{Ctx, MailboxRouter, Msg, MsgFilter};

/// Per-message sender-side injection overhead in nanoseconds (matching
/// buffer + envelope handling of a tuned MPI implementation).
pub(crate) const SEND_OVERHEAD_NS: u64 = 300;

/// The world communicator.
///
/// Created collectively by [`Comm::world`]; tags are arbitrary `u64`
/// values, with the top bit reserved for this crate's collectives.
pub struct Comm {
    pub(crate) router: Arc<MailboxRouter>,
    pub(crate) nranks: usize,
}

impl Comm {
    /// Reserved tag bit used by the tree collectives.
    pub(crate) const INTERNAL_TAG: u64 = 1 << 63;

    /// Collectively create the world communicator.
    pub fn world(ctx: &Ctx) -> Arc<Comm> {
        let n = ctx.nranks();
        ctx.collective(|| Comm {
            router: Arc::new(MailboxRouter::new(n)),
            nranks: n,
        })
    }

    /// Number of ranks in the communicator.
    pub fn nranks(&self) -> usize {
        self.nranks
    }

    fn check_tag(tag: u64) {
        assert!(
            tag & Comm::INTERNAL_TAG == 0,
            "user tags must not set the reserved top bit"
        );
    }

    /// Send `data` to `dst` with `tag`. Returns when the message is
    /// injected (buffered eager send); delivery takes network latency.
    pub fn send(&self, ctx: &Ctx, dst: usize, tag: u64, data: &[u8]) {
        Comm::check_tag(tag);
        self.send_raw(ctx, dst, tag, data);
    }

    pub(crate) fn send_raw(&self, ctx: &Ctx, dst: usize, tag: u64, data: &[u8]) {
        assert!(dst < self.nranks, "destination rank {dst} out of range");
        let l = ctx.latency();
        let net = l.msg_to(ctx.rank(), dst, self.nranks, data.len());
        self.router
            .send(ctx, dst, tag, data.to_vec(), SEND_OVERHEAD_NS, net);
    }

    /// Blocking receive matching `src` (any if `None`) and `tag` (any if
    /// `None`).
    pub fn recv(&self, ctx: &Ctx, src: Option<usize>, tag: Option<u64>) -> Msg {
        self.router.recv(ctx, MsgFilter { src, tag })
    }

    /// Software cost of one MPI_Iprobe/MPI_Test-style progress call on a
    /// 2008-era InfiniBand MPI (message-queue traversal in the library).
    pub const PROBE_NS: u64 = 800;

    /// Non-blocking receive of a message that has already arrived.
    /// Charges a probe's worth of library overhead.
    pub fn try_recv(&self, ctx: &Ctx, src: Option<usize>, tag: Option<u64>) -> Option<Msg> {
        ctx.charge_cpu(Comm::PROBE_NS);
        self.router.try_recv(ctx, MsgFilter { src, tag })
    }

    /// Non-blocking probe: has a matching message already arrived? Charges
    /// the library's message-queue traversal cost.
    pub fn iprobe(&self, ctx: &Ctx, src: Option<usize>, tag: Option<u64>) -> bool {
        ctx.charge_cpu(Comm::PROBE_NS);
        self.router.iprobe(ctx, MsgFilter { src, tag })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scioto_sim::{LatencyModel, Machine, MachineConfig};

    #[test]
    fn ping_pong() {
        let out = Machine::run(MachineConfig::virtual_time(2), |ctx| {
            let comm = Comm::world(ctx);
            if ctx.rank() == 0 {
                comm.send(ctx, 1, 5, b"ping");
                let m = comm.recv(ctx, Some(1), Some(6));
                m.data
            } else {
                let m = comm.recv(ctx, Some(0), Some(5));
                assert_eq!(m.data, b"ping");
                comm.send(ctx, 0, 6, b"pong");
                m.data
            }
        });
        assert_eq!(out.results[0], b"pong");
    }

    #[test]
    fn latency_delays_visibility_for_iprobe() {
        let out = Machine::run(
            MachineConfig::virtual_time(2).with_latency(LatencyModel::cluster()),
            |ctx| {
                let comm = Comm::world(ctx);
                if ctx.rank() == 0 {
                    comm.send(ctx, 1, 1, &[9]);
                    0
                } else {
                    // Poll until the message becomes visible; count polls.
                    let mut polls = 0u64;
                    while !comm.iprobe(ctx, None, None) {
                        polls += 1;
                        ctx.compute(200);
                    }
                    polls
                }
            },
        );
        assert!(
            out.results[1] > 3,
            "message should take several polls to arrive, got {}",
            out.results[1]
        );
    }

    #[test]
    #[should_panic(expected = "reserved top bit")]
    fn reserved_tag_rejected() {
        Machine::run(MachineConfig::virtual_time(2), |ctx| {
            let comm = Comm::world(ctx);
            if ctx.rank() == 0 {
                comm.send(ctx, 1, Comm::INTERNAL_TAG | 1, &[]);
            } else {
                comm.recv(ctx, None, None);
            }
        });
    }

    #[test]
    fn any_source_receive() {
        let out = Machine::run(MachineConfig::virtual_time(4), |ctx| {
            let comm = Comm::world(ctx);
            if ctx.rank() == 0 {
                let mut sum = 0usize;
                for _ in 0..3 {
                    let m = comm.recv(ctx, None, Some(2));
                    sum += m.src;
                }
                sum
            } else {
                comm.send(ctx, 0, 2, &[]);
                0
            }
        });
        assert_eq!(out.results[0], 1 + 2 + 3);
    }
}
