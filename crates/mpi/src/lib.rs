//! # scioto-mpi — a two-sided (MPI-style) messaging layer
//!
//! The Scioto paper compares its one-sided work stealing against an MPI
//! work-stealing implementation that must *poll* for steal requests between
//! units of work (§6.2, Figures 7 and 8), and measures its termination
//! detector against `MPI_Barrier` (Figure 4). This crate provides the
//! two-sided substrate for those baselines: tagged `send` / `recv` /
//! `iprobe` plus tree-based collectives (barrier, broadcast, reduce,
//! allreduce), built on the virtual-time mailboxes of `scioto-sim`.
//!
//! Message visibility respects network latency: an `iprobe` cannot observe
//! a message that is still in flight, exactly the property that makes
//! polling-based stealing pay an overhead that Scioto's one-sided queues
//! avoid.
//!
//! ```
//! use scioto_sim::{Machine, MachineConfig};
//! use scioto_mpi::Comm;
//!
//! let out = Machine::run(MachineConfig::virtual_time(4), |ctx| {
//!     let comm = Comm::world(ctx);
//!     let total = comm.allreduce_u64(ctx, &[ctx.rank() as u64], scioto_mpi::ReduceOp::Sum);
//!     total[0]
//! });
//! assert_eq!(out.results, vec![6, 6, 6, 6]);
//! ```

mod collectives;
mod comm;

pub use collectives::ReduceOp;
pub use comm::Comm;
pub use scioto_sim::{Msg, MsgFilter};
