//! Standalone happens-before race checker for exported JSONL traces.
//!
//! Usage: `race_check TRACE.jsonl [TRACE2.jsonl ...]`
//!
//! Exit status: 0 when every trace is race-free, 1 when any race is
//! found, 2 on I/O, parse, or replay errors.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "-h" || a == "--help") {
        eprintln!("usage: race_check TRACE.jsonl [TRACE2.jsonl ...]");
        eprintln!("  replays each JSONL trace with vector clocks and reports");
        eprintln!("  happens-before races on simulated global memory");
        return ExitCode::from(2);
    }
    let mut racy = false;
    for path in &args {
        let body = match std::fs::read_to_string(path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("race_check: {path}: {e}");
                return ExitCode::from(2);
            }
        };
        let trace = match scioto_analyze::jsonl::parse(&body) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("race_check: {path}: parse error: {e}");
                return ExitCode::from(2);
            }
        };
        match scioto_race::check_trace(&trace) {
            Ok(report) => {
                print!("{path}: {report}");
                racy |= !report.is_clean();
            }
            Err(e) => {
                eprintln!("race_check: {path}: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if racy {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
