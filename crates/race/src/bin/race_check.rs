//! Standalone race / deadlock checker for exported JSONL traces.
//!
//! Usage: `race_check [--predict] [--deadlock] [--json-out FILE] TRACE.jsonl ...`
//!
//! Always replays the happens-before check. `--predict` additionally
//! runs the sync-preserving predictive analysis (schedule-masked races
//! plus atomic-protocol verification); `--deadlock` runs the cross-rank
//! lock-order cycle scan. `--json-out FILE` writes one canonical
//! `scioto-race-v1` JSON object per trace (one per line) to FILE
//! (`-` for stdout).
//!
//! Exit status contract (stable, relied on by `scripts/verify.sh`):
//! * **0** — every trace analyzed and clean;
//! * **1** — analysis completed and found races, predicted races,
//!   atomicity violations, or deadlock cycles;
//! * **2** — a trace could not be analyzed: I/O error, malformed JSONL
//!   (never a panic), dropped events, or replay deadlock.

use std::process::ExitCode;

fn usage() {
    eprintln!("usage: race_check [--predict] [--deadlock] [--json-out FILE] TRACE.jsonl ...");
    eprintln!("  replays each JSONL trace with vector clocks and reports");
    eprintln!("  happens-before races on simulated global memory");
    eprintln!("  --predict    also predict schedule-masked races and check");
    eprintln!("               atomic-protocol access patterns");
    eprintln!("  --deadlock   also scan the cross-rank lock-order graph for cycles");
    eprintln!("  --json-out F write scioto-race-v1 JSON reports to F (- for stdout)");
    eprintln!("exit status: 0 clean, 1 findings, 2 unanalyzable");
}

fn main() -> ExitCode {
    let mut do_predict = false;
    let mut do_deadlock = false;
    let mut json_out: Option<String> = None;
    let mut paths: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--predict" => do_predict = true,
            "--deadlock" => do_deadlock = true,
            "--json-out" => match args.next() {
                Some(f) => json_out = Some(f),
                None => {
                    eprintln!("race_check: --json-out needs a file argument");
                    return ExitCode::from(2);
                }
            },
            "-h" | "--help" => {
                usage();
                return ExitCode::from(2);
            }
            flag if flag.starts_with('-') && flag != "-" => {
                eprintln!("race_check: unknown flag {flag}");
                usage();
                return ExitCode::from(2);
            }
            _ => paths.push(a),
        }
    }
    if paths.is_empty() {
        usage();
        return ExitCode::from(2);
    }

    let mut findings = false;
    let mut json_lines = String::new();
    for path in &paths {
        let body = match std::fs::read_to_string(path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("race_check: {path}: {e}");
                return ExitCode::from(2);
            }
        };
        let trace = match scioto_analyze::jsonl::parse(&body) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("race_check: {path}: parse error: {e}");
                return ExitCode::from(2);
            }
        };
        let hb = match scioto_race::check_trace(&trace) {
            Ok(report) => {
                print!("{path}: {report}");
                findings |= !report.is_clean();
                report
            }
            Err(e) => {
                eprintln!("race_check: {path}: {e}");
                return ExitCode::from(2);
            }
        };
        let predicted = if do_predict {
            match scioto_race::predict(&trace) {
                Ok(report) => {
                    print!("{path}: {report}");
                    findings |= !report.is_clean();
                    Some(report)
                }
                Err(e) => {
                    eprintln!("race_check: {path}: predict: {e}");
                    return ExitCode::from(2);
                }
            }
        } else {
            None
        };
        let deadlocks = if do_deadlock {
            match scioto_race::check_deadlocks(&trace) {
                Ok(report) => {
                    print!("{path}: {report}");
                    findings |= !report.is_clean();
                    Some(report)
                }
                Err(e) => {
                    eprintln!("race_check: {path}: deadlock: {e}");
                    return ExitCode::from(2);
                }
            }
        } else {
            None
        };
        if json_out.is_some() {
            json_lines.push_str(&scioto_race::render_report(
                path,
                trace.nranks(),
                &hb,
                predicted.as_ref(),
                deadlocks.as_ref(),
            ));
            json_lines.push('\n');
        }
    }

    if let Some(f) = &json_out {
        let res = if f == "-" {
            print!("{json_lines}");
            Ok(())
        } else {
            std::fs::write(f, &json_lines)
        };
        if let Err(e) = res {
            eprintln!("race_check: {f}: {e}");
            return ExitCode::from(2);
        }
    }
    if findings {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
