//! Source-tree invariant scanner. See [`scioto_race::lint`] for the rules.
//!
//! Usage: `scioto-lint [--stats] [ROOT ...]` — roots default to `crates`
//! and `src` under the current directory.
//!
//! Default mode prints findings; exit status: 0 clean, 1 findings, 2 I/O
//! error. `--stats` prints live waiver counts per rule (one `<rule> <n>`
//! line per known rule, sorted, plus a `total` line) and always exits 0
//! on success — `verify.sh` diffs this output against the committed
//! ratchet file `results/lint_waivers.txt` so waiver totals can only
//! shrink without a bless.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut stats = false;
    let mut roots: Vec<PathBuf> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "-h" | "--help" => {
                eprintln!("usage: scioto-lint [--stats] [ROOT ...]   (default roots: crates src)");
                return ExitCode::from(2);
            }
            "--stats" => stats = true,
            _ => roots.push(PathBuf::from(arg)),
        }
    }
    if roots.is_empty() {
        roots = ["crates", "src"]
            .iter()
            .map(PathBuf::from)
            .filter(|p| p.is_dir())
            .collect();
        if roots.is_empty() {
            eprintln!("scioto-lint: no crates/ or src/ directory here; pass roots explicitly");
            return ExitCode::from(2);
        }
    }
    if stats {
        match scioto_race::waiver_stats(&roots) {
            Ok(counts) => {
                let mut total = 0usize;
                for (rule, n) in &counts {
                    println!("{rule} {n}");
                    total += n;
                }
                println!("total {total}");
                return ExitCode::SUCCESS;
            }
            Err(e) => {
                eprintln!("scioto-lint: --stats: {e}");
                return ExitCode::from(2);
            }
        }
    }
    let mut findings = Vec::new();
    for root in &roots {
        match scioto_race::lint_tree(root) {
            Ok(f) => findings.extend(f),
            Err(e) => {
                eprintln!("scioto-lint: {}: {e}", root.display());
                return ExitCode::from(2);
            }
        }
    }
    for f in &findings {
        println!("{f}");
    }
    if findings.is_empty() {
        println!("scioto-lint: clean ({} root(s))", roots.len());
        ExitCode::SUCCESS
    } else {
        println!("scioto-lint: {} finding(s)", findings.len());
        ExitCode::from(1)
    }
}
