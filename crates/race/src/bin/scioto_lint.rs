//! Source-tree invariant scanner. See [`scioto_race::lint`] for the rules.
//!
//! Usage: `scioto-lint [ROOT ...]` — roots default to `crates` and `src`
//! under the current directory. Exit status: 0 clean, 1 findings, 2 I/O
//! error.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut roots: Vec<PathBuf> = std::env::args().skip(1).map(PathBuf::from).collect();
    if roots.iter().any(|r| r.as_os_str() == "-h" || r.as_os_str() == "--help") {
        eprintln!("usage: scioto-lint [ROOT ...]   (default: crates src)");
        return ExitCode::from(2);
    }
    if roots.is_empty() {
        roots = ["crates", "src"]
            .iter()
            .map(PathBuf::from)
            .filter(|p| p.is_dir())
            .collect();
        if roots.is_empty() {
            eprintln!("scioto-lint: no crates/ or src/ directory here; pass roots explicitly");
            return ExitCode::from(2);
        }
    }
    let mut findings = Vec::new();
    for root in &roots {
        match scioto_race::lint_tree(root) {
            Ok(f) => findings.extend(f),
            Err(e) => {
                eprintln!("scioto-lint: {}: {e}", root.display());
                return ExitCode::from(2);
            }
        }
    }
    for f in &findings {
        println!("{f}");
    }
    if findings.is_empty() {
        println!("scioto-lint: clean ({} root(s))", roots.len());
        ExitCode::SUCCESS
    } else {
        println!("scioto-lint: {} finding(s)", findings.len());
        ExitCode::from(1)
    }
}
