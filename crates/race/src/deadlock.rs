//! Potential-deadlock prediction: the cross-rank lock-order graph.
//!
//! A deterministic trace that ran to completion obviously did not
//! deadlock — but the *order* in which ranks nest VLock acquisitions
//! is a schedule-independent fact, and inconsistent nesting is a
//! deadlock waiting for the right interleaving. This module builds the
//! classic lock-order graph (Goodlock-style) from the trace and reports
//! every cycle that survives the gate-lock filter:
//!
//! * **hold edges** — rank r acquires lock `B` while holding `A`:
//!   edge `A → B`, witnessed by the two acquisition events and the full
//!   set of locks r held at the request;
//! * **barrier wait edges** — a barrier episode cannot complete until
//!   every participant arrives, so it behaves like a resource every
//!   participant holds until its own `BarrierWait`. A rank waiting at
//!   barrier `e` while holding `L` contributes `L → Barrier(e)`
//!   (holders block arrivals needing `L`); a rank acquiring `L` before
//!   its own arrival at `e` contributes `Barrier(e) → L` (its arrival
//!   is blocked by the acquire). The 2-cycle `L → Barrier(e) → L` is
//!   exactly the hold-a-lock-across-a-barrier deadlock;
//! * **TD up-wave edges** — the termination-detection up wave joins
//!   votes bottom-up like a barrier; the same two edge forms apply to
//!   each `(wave, occurrence)` episode.
//!
//! A cycle is reported only when one witness per edge can be chosen
//! with pairwise-distinct ranks (one rank cannot deadlock with itself;
//! its operations are totally ordered) and pairwise-disjoint holdsets
//! (a common *gate* lock held around both nestings serializes them —
//! the classic Goodlock false-positive filter). Every reported cycle
//! names the participating ranks, each edge's witness events, and the
//! lock sets held.
//!
//! Enumeration is bounded (cycle length ≤ [`MAX_CYCLE_LEN`], at most
//! [`MAX_CYCLES`] cycles, [`MAX_DFS_STEPS`] DFS steps); hitting a bound
//! sets `truncated` on the report — never silently.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use scioto_sim::{Trace, TraceEvent, WaveDir};

type LockKey = (u32, u32, u32);

/// Longest cycle reported. Real lock hierarchies run shallow; a longer
/// cycle always contains the short inconsistencies this bounds.
pub const MAX_CYCLE_LEN: usize = 6;
/// Most cycles reported before truncating.
pub const MAX_CYCLES: usize = 64;
/// DFS step budget across the whole enumeration.
pub const MAX_DFS_STEPS: usize = 1_000_000;
/// Witnesses kept per distinct edge (first-come, favoring distinct
/// ranks so the validity search has material to work with).
const MAX_WITNESSES: usize = 8;

/// One node of the lock-order graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Resource {
    /// A VLock `(target, set, idx)`.
    Lock(LockKey),
    /// A barrier episode (global epoch).
    Barrier(u64),
    /// A TD up-wave episode `(wave, per-rank occurrence)`.
    TdUp(u32, u64),
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Resource::Lock((t, s, i)) => write!(f, "lock(target {t}, set {s}, idx {i})"),
            Resource::Barrier(e) => write!(f, "barrier(epoch {e})"),
            Resource::TdUp(w, o) => write!(f, "td-up(wave {w}, occurrence {o})"),
        }
    }
}

/// One observation of an edge `from → to`: rank `rank` held `from`
/// (established at `held_ev`) while requesting `to` (at `req_ev`), with
/// `holdset` the locks held at the request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EdgeWitness {
    pub rank: u32,
    /// Event index (in `rank`'s stream) establishing the hold — the
    /// acquire of `from`, or the pending barrier/td arrival for wait
    /// edges.
    pub held_ev: u32,
    pub held_t_ns: u64,
    /// Event index of the blocked request.
    pub req_ev: u32,
    pub req_t_ns: u64,
    /// Locks held at the request (gate-lock filtering input).
    pub holdset: Vec<LockKey>,
}

/// One potential deadlock: a cycle in the lock-order graph with a
/// valid witness assignment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cycle {
    /// The resources on the cycle, in edge order (`nodes[i] →
    /// nodes[(i+1) % len]`).
    pub nodes: Vec<Resource>,
    /// The chosen witness for each edge, aligned with `nodes`.
    pub witnesses: Vec<EdgeWitness>,
    /// Participating ranks (one per edge, pairwise distinct), sorted.
    pub ranks: Vec<u32>,
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "potential deadlock cycle ({} node(s), ranks {:?}):",
            self.nodes.len(),
            self.ranks
        )?;
        for (i, w) in self.witnesses.iter().enumerate() {
            let from = &self.nodes[i];
            let to = &self.nodes[(i + 1) % self.nodes.len()];
            writeln!(
                f,
                "  {from} -> {to}: rank {} holds since event #{} (t={}ns), requests at \
                 event #{} (t={}ns), holding {:?}",
                w.rank, w.held_ev, w.held_t_ns, w.req_ev, w.req_t_ns, w.holdset
            )?;
        }
        Ok(())
    }
}

/// Outcome of a deadlock scan.
#[derive(Debug)]
pub struct DeadlockReport {
    /// Valid cycles found, deterministic order.
    pub cycles: Vec<Cycle>,
    /// Nodes in the lock-order graph.
    pub nodes: usize,
    /// Distinct directed edges.
    pub edges: usize,
    /// True when an enumeration bound was hit — findings may be
    /// incomplete (raise the bounds to be sure).
    pub truncated: bool,
}

impl DeadlockReport {
    /// True when no potential deadlock was found (and the scan was
    /// complete).
    pub fn is_clean(&self) -> bool {
        self.cycles.is_empty() && !self.truncated
    }
}

impl fmt::Display for DeadlockReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "deadlock scan: {} node(s), {} edge(s), {} cycle(s){}",
            self.nodes,
            self.edges,
            self.cycles.len(),
            if self.truncated { " [TRUNCATED — bounds hit, findings incomplete]" } else { "" }
        )?;
        for c in &self.cycles {
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

/// Scan a trace for potential deadlocks. Needs no clocks — lock
/// nesting is a per-rank program-order fact — so it works even on
/// traces the HB replay rejects, except for dropped events (a truncated
/// stream can hide the edge that completes a cycle).
pub fn check_deadlocks(trace: &Trace) -> Result<DeadlockReport, String> {
    if let Some((rank, &d)) = trace.dropped.iter().enumerate().find(|(_, &d)| d > 0) {
        return Err(format!(
            "rank {rank} dropped {d} event(s); rerun with a larger trace ring \
             (--trace-ring) for a complete lock-order graph"
        ));
    }

    // Edge map: (from, to) → witnesses (capped, distinct-rank first).
    let mut edges: BTreeMap<(Resource, Resource), Vec<EdgeWitness>> = BTreeMap::new();
    let mut add_edge = |from: Resource, to: Resource, w: EdgeWitness| {
        let ws = edges.entry((from, to)).or_default();
        if ws.len() < MAX_WITNESSES && (ws.iter().all(|x| x.rank != w.rank) || ws.len() < 2) {
            ws.push(w);
        }
    };

    for (rank, events) in trace.events.iter().enumerate() {
        // Forward pass: occurrence index per (Up, wave) emission.
        let mut up_occ: BTreeMap<u32, u64> = BTreeMap::new();
        let mut occ_at: Vec<u64> = vec![0; events.len()];
        for (i, ev) in events.iter().enumerate() {
            if let TraceEvent::TdWave { wave, dir: WaveDir::Up, .. } = &ev.event {
                let o = up_occ.entry(*wave).or_default();
                *o += 1;
                occ_at[i] = *o;
            }
        }
        // Backward pass: the next barrier / up-wave each event precedes.
        let mut next_barrier: Vec<Option<(u64, u32, u64)>> = vec![None; events.len()];
        let mut next_up: Vec<Option<(u32, u64, u32, u64)>> = vec![None; events.len()];
        let mut nb = None;
        let mut nu = None;
        for (i, ev) in events.iter().enumerate().rev() {
            next_barrier[i] = nb;
            next_up[i] = nu;
            match &ev.event {
                TraceEvent::BarrierWait { epoch, .. } => nb = Some((*epoch, i as u32, ev.t_ns)),
                TraceEvent::TdWave { wave, dir: WaveDir::Up, .. } => {
                    nu = Some((*wave, occ_at[i], i as u32, ev.t_ns));
                }
                _ => {}
            }
        }
        // Main pass: held-lock tracking and edge emission.
        let mut held: Vec<(LockKey, u32, u64)> = Vec::new();
        for (i, ev) in events.iter().enumerate() {
            match &ev.event {
                TraceEvent::LockAcq { target, set, idx, .. } => {
                    let k = (*target, *set, *idx);
                    let holdset: Vec<LockKey> = held.iter().map(|(h, _, _)| *h).collect();
                    for (h, hev, ht) in &held {
                        add_edge(
                            Resource::Lock(*h),
                            Resource::Lock(k),
                            EdgeWitness {
                                rank: rank as u32,
                                held_ev: *hev,
                                held_t_ns: *ht,
                                req_ev: i as u32,
                                req_t_ns: ev.t_ns,
                                holdset: holdset.clone(),
                            },
                        );
                    }
                    // The rank's pending barrier/up-wave arrival is an
                    // obligation: the episode is "held" until it arrives,
                    // and this acquire blocks the arrival.
                    if let Some((e, bev, bt)) = next_barrier[i] {
                        add_edge(
                            Resource::Barrier(e),
                            Resource::Lock(k),
                            EdgeWitness {
                                rank: rank as u32,
                                held_ev: bev,
                                held_t_ns: bt,
                                req_ev: i as u32,
                                req_t_ns: ev.t_ns,
                                holdset: holdset.clone(),
                            },
                        );
                    }
                    if let Some((w, o, uev, ut)) = next_up[i] {
                        add_edge(
                            Resource::TdUp(w, o),
                            Resource::Lock(k),
                            EdgeWitness {
                                rank: rank as u32,
                                held_ev: uev,
                                held_t_ns: ut,
                                req_ev: i as u32,
                                req_t_ns: ev.t_ns,
                                holdset,
                            },
                        );
                    }
                    held.push((k, i as u32, ev.t_ns));
                }
                TraceEvent::LockRel { target, set, idx, .. } => {
                    let k = (*target, *set, *idx);
                    if let Some(p) = held.iter().rposition(|(h, _, _)| *h == k) {
                        held.remove(p);
                    }
                }
                TraceEvent::BarrierWait { epoch, .. } => {
                    let holdset: Vec<LockKey> = held.iter().map(|(h, _, _)| *h).collect();
                    for (h, hev, ht) in &held {
                        add_edge(
                            Resource::Lock(*h),
                            Resource::Barrier(*epoch),
                            EdgeWitness {
                                rank: rank as u32,
                                held_ev: *hev,
                                held_t_ns: *ht,
                                req_ev: i as u32,
                                req_t_ns: ev.t_ns,
                                holdset: holdset.clone(),
                            },
                        );
                    }
                }
                TraceEvent::TdWave { wave, dir: WaveDir::Up, .. } => {
                    let holdset: Vec<LockKey> = held.iter().map(|(h, _, _)| *h).collect();
                    for (h, hev, ht) in &held {
                        add_edge(
                            Resource::Lock(*h),
                            Resource::TdUp(*wave, occ_at[i]),
                            EdgeWitness {
                                rank: rank as u32,
                                held_ev: *hev,
                                held_t_ns: *ht,
                                req_ev: i as u32,
                                req_t_ns: ev.t_ns,
                                holdset: holdset.clone(),
                            },
                        );
                    }
                }
                _ => {}
            }
        }
    }

    // Restrict to nodes with both in- and out-edges; nothing else can
    // sit on a cycle. On clean traces (no lock held across a wait, no
    // nesting inversion) this usually empties the graph immediately.
    let mut has_in: BTreeSet<Resource> = BTreeSet::new();
    let mut has_out: BTreeSet<Resource> = BTreeSet::new();
    for (from, to) in edges.keys() {
        has_out.insert(*from);
        has_in.insert(*to);
    }
    let live: BTreeSet<Resource> = has_in.intersection(&has_out).copied().collect();
    let adj: BTreeMap<Resource, Vec<Resource>> = {
        let mut adj: BTreeMap<Resource, Vec<Resource>> = BTreeMap::new();
        for (from, to) in edges.keys() {
            if live.contains(from) && live.contains(to) {
                adj.entry(*from).or_default().push(*to);
            }
        }
        adj
    };

    let node_count: BTreeSet<Resource> = edges
        .keys()
        .flat_map(|(a, b)| [*a, *b])
        .collect();
    let edge_count = edges.len();

    // Cycle enumeration: DFS from each live node in sorted order,
    // reporting only cycles whose minimum node is the start (dedups
    // rotations). Bounded by length, count, and total steps.
    let mut cycles: Vec<Cycle> = Vec::new();
    let mut truncated = false;
    let mut steps = 0usize;
    let nodes_sorted: Vec<Resource> = live.iter().copied().collect();
    for &start in &nodes_sorted {
        let mut path = vec![start];
        dfs(
            start,
            start,
            &adj,
            &edges,
            &mut path,
            &mut cycles,
            &mut steps,
            &mut truncated,
        );
        if truncated || cycles.len() >= MAX_CYCLES {
            truncated |= cycles.len() >= MAX_CYCLES;
            break;
        }
    }

    Ok(DeadlockReport {
        cycles,
        nodes: node_count.len(),
        edges: edge_count,
        truncated,
    })
}

#[allow(clippy::too_many_arguments)]
fn dfs(
    start: Resource,
    at: Resource,
    adj: &BTreeMap<Resource, Vec<Resource>>,
    edges: &BTreeMap<(Resource, Resource), Vec<EdgeWitness>>,
    path: &mut Vec<Resource>,
    cycles: &mut Vec<Cycle>,
    steps: &mut usize,
    truncated: &mut bool,
) {
    *steps += 1;
    if *steps > MAX_DFS_STEPS {
        *truncated = true;
        return;
    }
    let Some(nexts) = adj.get(&at) else { return };
    for &next in nexts {
        if *truncated || cycles.len() >= MAX_CYCLES {
            return;
        }
        if next == start {
            if let Some(cycle) = validate(path, edges) {
                cycles.push(cycle);
            }
            continue;
        }
        // Rotation dedup: only cycles whose minimum node is `start`.
        if next < start || path.contains(&next) || path.len() >= MAX_CYCLE_LEN {
            continue;
        }
        path.push(next);
        dfs(start, next, adj, edges, path, cycles, steps, truncated);
        path.pop();
    }
}

/// Choose one witness per edge of the candidate cycle such that ranks
/// are pairwise distinct and holdsets pairwise disjoint (gate-lock
/// filter). Returns the assembled cycle, or `None` if no assignment
/// exists (the cycle cannot actually deadlock).
fn validate(
    path: &[Resource],
    edges: &BTreeMap<(Resource, Resource), Vec<EdgeWitness>>,
) -> Option<Cycle> {
    let n = path.len();
    let mut chosen: Vec<EdgeWitness> = Vec::with_capacity(n);
    fn pick(
        i: usize,
        n: usize,
        path: &[Resource],
        edges: &BTreeMap<(Resource, Resource), Vec<EdgeWitness>>,
        chosen: &mut Vec<EdgeWitness>,
    ) -> bool {
        if i == n {
            return true;
        }
        let key = (path[i], path[(i + 1) % n]);
        let Some(ws) = edges.get(&key) else { return false };
        for w in ws {
            let ok = chosen.iter().all(|c| {
                c.rank != w.rank && c.holdset.iter().all(|h| !w.holdset.contains(h))
            });
            if !ok {
                continue;
            }
            chosen.push(w.clone());
            if pick(i + 1, n, path, edges, chosen) {
                return true;
            }
            chosen.pop();
        }
        false
    }
    if !pick(0, n, path, edges, &mut chosen) {
        return None;
    }
    let mut ranks: Vec<u32> = chosen.iter().map(|w| w.rank).collect();
    ranks.sort_unstable();
    Some(Cycle { nodes: path.to_vec(), witnesses: chosen, ranks })
}

#[cfg(test)]
mod tests {
    use super::*;
    use scioto_sim::StampedEvent;

    fn trace_of(ranks: Vec<Vec<(u64, TraceEvent)>>) -> Trace {
        let n = ranks.len();
        Trace {
            events: ranks
                .into_iter()
                .map(|evs| {
                    evs.into_iter()
                        .map(|(t_ns, event)| StampedEvent { t_ns, event })
                        .collect()
                })
                .collect(),
            dropped: vec![0; n],
            final_clock_ns: Vec::new(),
            wall_clock: false,
            hists: (0..n).map(|_| Default::default()).collect(),
            gauges: (0..n).map(|_| Default::default()).collect(),
        }
    }

    fn acq(idx: u32, seq: u64) -> TraceEvent {
        TraceEvent::LockAcq { target: 0, set: 0, idx, seq }
    }

    fn rel(idx: u32, seq: u64) -> TraceEvent {
        TraceEvent::LockRel { target: 0, set: 0, idx, seq }
    }

    #[test]
    fn two_rank_lock_order_cycle() {
        // Rank 0 nests A then B; rank 1 nests B then A.
        let t = trace_of(vec![
            vec![(1, acq(0, 1)), (2, acq(1, 1)), (3, rel(1, 1)), (4, rel(0, 1))],
            vec![(5, acq(1, 2)), (6, acq(0, 2)), (7, rel(0, 2)), (8, rel(1, 2))],
        ]);
        let r = check_deadlocks(&t).unwrap();
        assert!(!r.truncated);
        assert_eq!(r.cycles.len(), 1, "{r}");
        let c = &r.cycles[0];
        assert_eq!(c.nodes.len(), 2);
        assert_eq!(c.ranks, vec![0, 1]);
        assert_eq!(
            c.nodes,
            vec![Resource::Lock((0, 0, 0)), Resource::Lock((0, 0, 1))]
        );
        // Edge witnesses carry the exact trace events.
        assert_eq!(c.witnesses[0].rank, 0);
        assert_eq!((c.witnesses[0].held_ev, c.witnesses[0].req_ev), (0, 1));
        assert_eq!(c.witnesses[1].rank, 1);
        assert_eq!((c.witnesses[1].held_ev, c.witnesses[1].req_ev), (0, 1));
        assert_eq!(c.witnesses[0].holdset, vec![(0, 0, 0)]);
    }

    #[test]
    fn consistent_nesting_is_clean() {
        // Both ranks nest A then B — a total order, no cycle.
        let t = trace_of(vec![
            vec![(1, acq(0, 1)), (2, acq(1, 1)), (3, rel(1, 1)), (4, rel(0, 1))],
            vec![(5, acq(0, 2)), (6, acq(1, 2)), (7, rel(1, 2)), (8, rel(0, 2))],
        ]);
        let r = check_deadlocks(&t).unwrap();
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn three_rank_lock_order_cycle() {
        // A→B on rank 0, B→C on rank 1, C→A on rank 2.
        let t = trace_of(vec![
            vec![(1, acq(0, 1)), (2, acq(1, 1)), (3, rel(1, 1)), (4, rel(0, 1))],
            vec![(5, acq(1, 2)), (6, acq(2, 1)), (7, rel(2, 1)), (8, rel(1, 2))],
            vec![(9, acq(2, 2)), (10, acq(0, 2)), (11, rel(0, 2)), (12, rel(2, 2))],
        ]);
        let r = check_deadlocks(&t).unwrap();
        assert_eq!(r.cycles.len(), 1, "{r}");
        let c = &r.cycles[0];
        assert_eq!(c.nodes.len(), 3);
        assert_eq!(c.ranks, vec![0, 1, 2]);
        assert_eq!(
            c.nodes,
            vec![
                Resource::Lock((0, 0, 0)),
                Resource::Lock((0, 0, 1)),
                Resource::Lock((0, 0, 2)),
            ]
        );
    }

    #[test]
    fn gate_lock_suppresses_cycle() {
        // Both inversions happen under a common gate lock G (idx 9):
        // the schedules serialize, no deadlock is possible.
        let t = trace_of(vec![
            vec![
                (1, acq(9, 1)),
                (2, acq(0, 1)),
                (3, acq(1, 1)),
                (4, rel(1, 1)),
                (5, rel(0, 1)),
                (6, rel(9, 1)),
            ],
            vec![
                (7, acq(9, 2)),
                (8, acq(1, 2)),
                (9, acq(0, 2)),
                (10, rel(0, 2)),
                (11, rel(1, 2)),
                (12, rel(9, 2)),
            ],
        ]);
        let r = check_deadlocks(&t).unwrap();
        assert!(r.cycles.is_empty(), "{r}");
    }

    #[test]
    fn single_rank_inversion_is_not_a_deadlock() {
        // One rank nests A→B and later B→A: its operations are totally
        // ordered, so no schedule deadlocks.
        let t = trace_of(vec![vec![
            (1, acq(0, 1)),
            (2, acq(1, 1)),
            (3, rel(1, 1)),
            (4, rel(0, 1)),
            (5, acq(1, 2)),
            (6, acq(0, 2)),
            (7, rel(0, 2)),
            (8, rel(1, 2)),
        ]]);
        let r = check_deadlocks(&t).unwrap();
        assert!(r.cycles.is_empty(), "{r}");
    }

    #[test]
    fn lock_held_across_barrier_cycles_with_waiting_acquirer() {
        // Rank 0 waits at barrier 0 while holding L; rank 1 acquires L
        // on its way to the same barrier: Lock(L) → Barrier(0) → Lock(L).
        let t = trace_of(vec![
            vec![
                (1, acq(0, 1)),
                (2, TraceEvent::BarrierWait { dur_ns: 0, epoch: 0 }),
                (3, rel(0, 1)),
            ],
            vec![
                (4, acq(0, 2)),
                (5, rel(0, 2)),
                (6, TraceEvent::BarrierWait { dur_ns: 0, epoch: 0 }),
            ],
        ]);
        let r = check_deadlocks(&t).unwrap();
        assert_eq!(r.cycles.len(), 1, "{r}");
        let c = &r.cycles[0];
        assert_eq!(c.nodes.len(), 2);
        assert!(c.nodes.contains(&Resource::Barrier(0)));
        assert!(c.nodes.contains(&Resource::Lock((0, 0, 0))));
        assert_eq!(c.ranks, vec![0, 1]);
    }

    #[test]
    fn barrier_without_held_lock_is_clean() {
        let t = trace_of(vec![
            vec![
                (1, acq(0, 1)),
                (2, rel(0, 1)),
                (3, TraceEvent::BarrierWait { dur_ns: 0, epoch: 0 }),
            ],
            vec![
                (4, acq(0, 2)),
                (5, rel(0, 2)),
                (6, TraceEvent::BarrierWait { dur_ns: 0, epoch: 0 }),
            ],
        ]);
        let r = check_deadlocks(&t).unwrap();
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn lock_held_across_td_up_wave_cycles() {
        let up = |wave| TraceEvent::TdWave { wave, dir: WaveDir::Up, black: false };
        let t = trace_of(vec![
            vec![(1, acq(0, 1)), (2, up(1)), (3, rel(0, 1))],
            vec![(4, acq(0, 2)), (5, rel(0, 2)), (6, up(1))],
        ]);
        let r = check_deadlocks(&t).unwrap();
        assert_eq!(r.cycles.len(), 1, "{r}");
        assert!(r.cycles[0].nodes.contains(&Resource::TdUp(1, 1)));
    }

    #[test]
    fn dropped_events_are_an_error() {
        let mut t = trace_of(vec![vec![(1, acq(0, 1))]]);
        t.dropped[0] = 1;
        assert!(check_deadlocks(&t).unwrap_err().contains("dropped"));
    }
}
