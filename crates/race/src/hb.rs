//! The happens-before engine: an offline vector-clock replay of a
//! deterministic virtual-time [`Trace`].
//!
//! # How the replay works
//!
//! Virtual timestamps alone cannot order a trace — unrelated events on
//! different ranks routinely carry the *same* virtual time, and a
//! synchronization producer can even be stamped later than its consumer
//! (events are stamped at operation completion). The engine therefore
//! ignores timestamps entirely and replays the per-rank event streams
//! with a worklist scheduler driven by *explicit* pairing data carried in
//! the events themselves:
//!
//! * [`TraceEvent::LockAcq`] with ownership generation `s` blocks until
//!   the [`TraceEvent::LockRel`] with generation `s - 1` of the same
//!   `(target, set, idx)` mutex has been replayed (release → acquire
//!   edge);
//! * [`TraceEvent::MsgRecv`] blocks until the [`TraceEvent::MsgSend`]
//!   with the same destination and per-destination sequence number has
//!   been replayed (send → receive edge);
//! * [`TraceEvent::BarrierWait`] carries the barrier epoch; an episode
//!   releases only once every participating rank has arrived, and every
//!   participant leaves with the join of all arrival clocks;
//! * [`TraceEvent::TdWave`] events order the termination-detection tree:
//!   a down-wave at a rank is ordered after the same wave at its parent,
//!   an up-vote after the same wave's votes at its children, and a
//!   termination announcement after the parent's announcement.
//!
//! Wave numbers restart when a task collection is reset between
//! episodes, so wave edges are matched by per-key *occurrence* index,
//! clamped to the number of occurrences the producer ever emits. A
//! clamped (stale) match joins with an older clock of the same producer
//! rank — an under-approximation of happens-before, which can only
//! produce extra race reports, never hide one.
//!
//! Producer snapshots are taken *before* the producer's own clock tick,
//! so an access performed after a release is correctly unordered with
//! the acquirer even though both sit on the same rank clock history.
//!
//! # What is a race
//!
//! Memory accesses are [`TraceEvent::RemoteOp`] (one-sided put/get/
//! acc/rmw against `(target, seg, offset)`) and [`TraceEvent::LocalAccess`]
//! (the owner touching its own segment). Two accesses race iff they
//! touch the same 8-byte word of the same rank's segment, neither
//! happens-before the other, at least one is a write, they come from
//! different ranks, and they are not both atomic. `acc`/`rmw` are
//! inherently atomic; `atomic` puts/gets/local accesses are the
//! single-word protocol accesses the runtime declares safe (lock-free
//! index publishes of the split queue, termination-detection token
//! slots).

use std::collections::HashMap;
use std::fmt;

use scioto_sim::{RemoteOpKind, Trace, TraceEvent, WaveDir};

/// A memory access extracted from one trace event (one event may touch
/// several words; the record identifies the event, not the word).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct AccessRec {
    /// Rank that performed the access.
    rank: u32,
    /// Index of the access event in that rank's event stream.
    ev_idx: u32,
    /// The rank's replay clock (own vector-clock component) at the access.
    clock: u64,
    write: bool,
    atomic: bool,
}

/// Frontier of accesses to one 8-byte word: the most recent write and
/// read per `(rank, atomic)` class. Keeping the per-class latest access
/// is sound: a new access ordered after a rank's latest plain (resp.
/// atomic) access is ordered after all earlier ones of that class.
#[derive(Default)]
struct WordState {
    writes: Vec<AccessRec>,
    reads: Vec<AccessRec>,
}

/// One detected race: two conflicting accesses to the word range
/// `word..=word_hi` (8-byte indices within segment `seg` owned by rank
/// `owner`) with no happens-before order between them.
///
/// Reports are deduplicated by *access-site pair*: all raced words
/// between the same pair of sites (same ranks, operation kinds, and
/// write/atomic classes on the same segment) collapse into one report
/// whose `word_count` counts the distinct 8-byte words exactly. The
/// attributed `first`/`second` events are the earliest raced pair of
/// the site.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Race {
    /// Rank whose segment slice holds the words.
    pub owner: u32,
    /// Segment id (`Gmem` creation order).
    pub seg: u32,
    /// Lowest raced 8-byte word index within the owner's slice.
    pub word: u64,
    /// Highest raced word index (equals `word` for single-word races).
    pub word_hi: u64,
    /// Exact number of distinct raced words collapsed into this report.
    pub word_count: u64,
    /// The earlier-replayed access of the unordered pair.
    pub first: AccessInfo,
    /// The later-replayed access of the unordered pair.
    pub second: AccessInfo,
}

/// Attribution of one side of a race.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AccessInfo {
    /// Rank that performed the access.
    pub rank: u32,
    /// Virtual time stamped on the access event.
    pub t_ns: u64,
    /// The rank's replay (vector-clock) position at the access.
    pub clock: u64,
    /// Operation kind, e.g. `put`, `get`, `local write`, `local read`.
    pub op: String,
    pub write: bool,
    pub atomic: bool,
    /// The nearest synchronization event replayed before this access on
    /// the same rank, as `(virtual time, description)` — the last point
    /// at which this rank synchronized before racing.
    pub nearest_sync: Option<(u64, String)>,
}

impl fmt::Display for Race {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "race on rank {} seg {} words {}..={} ({} word(s), bytes {}..{}):",
            self.owner,
            self.seg,
            self.word,
            self.word_hi,
            self.word_count,
            self.word * 8,
            self.word_hi * 8 + 8
        )?;
        for (tag, a) in [("first", &self.first), ("second", &self.second)] {
            write!(
                f,
                "  {tag}: rank {} t={}ns clock={} {} ({}{});",
                a.rank,
                a.t_ns,
                a.clock,
                a.op,
                if a.write { "write" } else { "read" },
                if a.atomic { ", atomic" } else { "" },
            )?;
            match &a.nearest_sync {
                Some((t, s)) => writeln!(f, " last sync: {s} at t={t}ns")?,
                None => writeln!(f, " no prior sync on this rank")?,
            }
        }
        Ok(())
    }
}

/// Outcome of a full-trace check.
#[derive(Debug)]
pub struct RaceReport {
    /// Detected races, in deterministic replay order.
    pub races: Vec<Race>,
    /// Events replayed.
    pub events: u64,
    /// Synchronization edges applied (joins).
    pub sync_edges: u64,
    /// Distinct 8-byte words that saw at least one access.
    pub words: usize,
}

impl RaceReport {
    /// True when the trace is race-free.
    pub fn is_clean(&self) -> bool {
        self.races.is_empty()
    }
}

impl fmt::Display for RaceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "race check: {} event(s), {} sync edge(s), {} word(s) tracked, {} race(s)",
            self.events,
            self.sync_edges,
            self.words,
            self.races.len()
        )?;
        for r in &self.races {
            write!(f, "{r}")?;
        }
        Ok(())
    }
}

/// Parent of `rank` in the termination-detection spanning tree.
fn td_parent(rank: u32) -> Option<u32> {
    (rank > 0).then(|| (rank - 1) / 2)
}

fn td_children(rank: u32, n: u32) -> impl Iterator<Item = u32> {
    [2 * rank + 1, 2 * rank + 2]
        .into_iter()
        .filter(move |c| *c < n)
}

type LockKey = (u32, u32, u32);
type WaveKey = (u32, WaveDir, u32);

fn join(into: &mut [u64], from: &[u64]) {
    for (a, b) in into.iter_mut().zip(from) {
        *a = (*a).max(*b);
    }
}

/// Check a trace for happens-before races on simulated global memory.
///
/// Fails (with a diagnostic) when the trace dropped events — a truncated
/// stream cannot be replayed faithfully — or when the replay deadlocks
/// because a synchronization producer is missing.
pub fn check_trace(trace: &Trace) -> Result<RaceReport, String> {
    if let Some((rank, &d)) = trace.dropped.iter().enumerate().find(|(_, &d)| d > 0) {
        return Err(format!(
            "rank {rank} dropped {d} event(s); rerun with a larger trace ring \
             (--trace-ring) for an exact replay"
        ));
    }
    let n = trace.nranks();
    let n32 = n as u32;

    // Pre-count producers so consumers can (a) detect a missing producer
    // as a hard error instead of deadlocking silently, and (b) clamp
    // td-wave occurrence matching when episodes reset wave numbers.
    let mut msg_send_total: HashMap<(u32, u64), u32> = HashMap::new();
    let mut wave_total: HashMap<WaveKey, u64> = HashMap::new();
    let mut barrier_expect: HashMap<u64, u32> = HashMap::new();
    for (rank, events) in trace.events.iter().enumerate() {
        for e in events {
            match e.event {
                TraceEvent::MsgSend { dst, seq, .. } => {
                    *msg_send_total.entry((dst, seq)).or_default() += 1;
                }
                TraceEvent::TdWave { wave, dir, .. } => {
                    *wave_total.entry((rank as u32, dir, wave)).or_default() += 1;
                }
                TraceEvent::BarrierWait { epoch, .. } => {
                    *barrier_expect.entry(epoch).or_default() += 1;
                }
                _ => {}
            }
        }
    }

    let mut cursors = vec![0usize; n];
    let mut clocks: Vec<Vec<u64>> = (0..n)
        .map(|r| {
            let mut c = vec![0u64; n];
            c[r] = 1;
            c
        })
        .collect();

    // Producer snapshots (taken before the producer's clock tick).
    let mut lock_rel: HashMap<(LockKey, u64), Vec<u64>> = HashMap::new();
    let mut msg_send: HashMap<(u32, u64), Vec<u64>> = HashMap::new();
    let mut waves: HashMap<(WaveKey, u64), Vec<u64>> = HashMap::new();
    let mut wave_emitted: HashMap<WaveKey, u64> = HashMap::new();
    let mut wave_consumed: HashMap<(u32, WaveKey), u64> = HashMap::new();
    let mut barrier_arrived: HashMap<u64, Vec<usize>> = HashMap::new();
    let mut barrier_join: HashMap<u64, Vec<u64>> = HashMap::new();

    let mut words: HashMap<(u32, u32, u64), WordState> = HashMap::new();
    let mut raws: Vec<RawRace> = Vec::new();
    let mut events_replayed = 0u64;
    let mut sync_edges = 0u64;

    loop {
        let mut progressed = false;
        for r in 0..n {
            'stream: while cursors[r] < trace.events[r].len() {
                let ev = &trace.events[r][cursors[r]];
                // Phase 1: readiness. Collect the incoming join without
                // mutating any consume-tracking state, so a blocked retry
                // starts from scratch.
                let mut incoming: Option<Vec<u64>> = None;
                let mut wave_consumes: Vec<(u32, WaveKey)> = Vec::new();
                match &ev.event {
                    TraceEvent::LockAcq { target, set, idx, seq } => {
                        if *seq > 1 {
                            let key = (*target, *set, *idx);
                            match lock_rel.get(&(key, seq - 1)) {
                                Some(vc) => incoming = Some(vc.clone()),
                                None => break 'stream,
                            }
                        }
                    }
                    TraceEvent::MsgRecv { seq, .. } => {
                        let key = (r as u32, *seq);
                        match msg_send.get(&key) {
                            Some(vc) => incoming = Some(vc.clone()),
                            None => {
                                if msg_send_total.get(&key).copied().unwrap_or(0) == 0 {
                                    return Err(format!(
                                        "rank {r}: MsgRecv seq {seq} has no matching MsgSend \
                                         in the trace"
                                    ));
                                }
                                break 'stream;
                            }
                        }
                    }
                    TraceEvent::BarrierWait { epoch, .. } => {
                        if let Some(j) = barrier_join.get(epoch) {
                            incoming = Some(j.clone());
                        } else {
                            let arrived = barrier_arrived.entry(*epoch).or_default();
                            if !arrived.contains(&r) {
                                arrived.push(r);
                            }
                            let expect = barrier_expect.get(epoch).copied().unwrap_or(0);
                            if (arrived.len() as u32) < expect {
                                break 'stream;
                            }
                            // Last arriver: release the episode with the
                            // join of every participant's arrival clock.
                            let mut j = vec![0u64; n];
                            for &p in arrived.iter() {
                                join(&mut j, &clocks[p]);
                            }
                            barrier_join.insert(*epoch, j.clone());
                            incoming = Some(j);
                        }
                    }
                    TraceEvent::TdWave { wave, dir, .. } => {
                        let mut joined = vec![0u64; n];
                        let mut have_any = false;
                        let mut blocked = false;
                        let producers: Vec<u32> = match dir {
                            WaveDir::Down | WaveDir::Term => {
                                td_parent(r as u32).into_iter().collect()
                            }
                            WaveDir::Up => td_children(r as u32, n32).collect(),
                        };
                        for p in producers {
                            let pkey = (p, *dir, *wave);
                            let total = wave_total.get(&pkey).copied().unwrap_or(0);
                            if total == 0 {
                                // The producer never saw this wave (skipped
                                // episode); no edge to take.
                                continue;
                            }
                            let ckey = (r as u32, pkey);
                            let k = wave_consumed.get(&ckey).copied().unwrap_or(0) + 1;
                            // Clamp to what the producer ever emits: wave
                            // numbers restart across episodes, so a skipped
                            // wave on one side yields a stale (older, still
                            // happens-before-sound) match.
                            let want = k.min(total);
                            match waves.get(&(pkey, want)) {
                                Some(vc) => {
                                    join(&mut joined, vc);
                                    have_any = true;
                                    wave_consumes.push(ckey);
                                }
                                None => {
                                    blocked = true;
                                    break;
                                }
                            }
                        }
                        if blocked {
                            break 'stream;
                        }
                        if have_any {
                            incoming = Some(joined);
                        }
                    }
                    _ => {}
                }

                // Phase 2: commit. Apply the join, record accesses, and
                // publish producer snapshots.
                for ckey in wave_consumes {
                    *wave_consumed.entry(ckey).or_default() += 1;
                }
                if let Some(vc) = incoming {
                    join(&mut clocks[r], &vc);
                    sync_edges += 1;
                }
                match &ev.event {
                    TraceEvent::RemoteOp { kind, target, seg, offset, bytes, atomic } => {
                        record_access(
                            &mut words,
                            &mut raws,
                            &clocks[r],
                            AccessRec {
                                rank: r as u32,
                                ev_idx: cursors[r] as u32,
                                clock: clocks[r][r],
                                write: kind.is_write(),
                                atomic: *atomic || kind.is_atomic(),
                            },
                            *target,
                            *seg,
                            *offset,
                            *bytes,
                        );
                    }
                    TraceEvent::LocalAccess { seg, offset, bytes, write, atomic } => {
                        record_access(
                            &mut words,
                            &mut raws,
                            &clocks[r],
                            AccessRec {
                                rank: r as u32,
                                ev_idx: cursors[r] as u32,
                                clock: clocks[r][r],
                                write: *write,
                                atomic: *atomic,
                            },
                            r as u32,
                            *seg,
                            *offset,
                            *bytes,
                        );
                    }
                    TraceEvent::LockRel { target, set, idx, seq } => {
                        lock_rel.insert(((*target, *set, *idx), *seq), clocks[r].clone());
                        clocks[r][r] += 1;
                    }
                    TraceEvent::MsgSend { dst, seq, .. } => {
                        msg_send.insert((*dst, *seq), clocks[r].clone());
                        clocks[r][r] += 1;
                    }
                    TraceEvent::TdWave { wave, dir, .. } => {
                        let key = (r as u32, *dir, *wave);
                        let occ = wave_emitted.entry(key).or_default();
                        *occ += 1;
                        waves.insert((key, *occ), clocks[r].clone());
                        clocks[r][r] += 1;
                    }
                    TraceEvent::BarrierWait { .. } | TraceEvent::LockAcq { .. } => {
                        clocks[r][r] += 1;
                    }
                    _ => {}
                }
                cursors[r] += 1;
                events_replayed += 1;
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }

    if let Some(r) = (0..n).find(|&r| cursors[r] < trace.events[r].len()) {
        let ev = &trace.events[r][cursors[r]];
        return Err(format!(
            "replay deadlocked: rank {r} blocked at event {} ({:?} at t={}ns); \
             a synchronization producer is missing from the trace",
            cursors[r], ev.event, ev.t_ns
        ));
    }

    Ok(RaceReport {
        races: dedupe_races(trace, raws),
        events: events_replayed,
        sync_edges,
        words: words.len(),
    })
}

/// One raw (word, unordered-pair) hit recorded during replay, before
/// site-pair deduplication.
struct RawRace {
    owner: u32,
    seg: u32,
    word: u64,
    prior: AccessRec,
    rec: AccessRec,
}

/// Collapse raw hits into site-pair-deduplicated [`Race`] reports: one
/// report per (owner, seg, first-site class, second-site class), where a
/// site class is the access's (rank, operation, write, atomic) tuple.
/// The report keeps the earliest raced event pair and counts the exact
/// set of distinct raced words.
fn dedupe_races(trace: &Trace, raws: Vec<RawRace>) -> Vec<Race> {
    type SiteClass = (u32, String, bool, bool);
    let mut grouped: Vec<(Race, std::collections::BTreeSet<u64>)> = Vec::new();
    let mut index: HashMap<(u32, u32, SiteClass, SiteClass), usize> = HashMap::new();
    for raw in raws {
        let first = access_info(trace, raw.prior);
        let second = access_info(trace, raw.rec);
        let key = (
            raw.owner,
            raw.seg,
            (first.rank, first.op.clone(), first.write, first.atomic),
            (second.rank, second.op.clone(), second.write, second.atomic),
        );
        match index.get(&key) {
            Some(&i) => {
                grouped[i].1.insert(raw.word);
            }
            None => {
                index.insert(key, grouped.len());
                let mut set = std::collections::BTreeSet::new();
                set.insert(raw.word);
                grouped.push((
                    Race {
                        owner: raw.owner,
                        seg: raw.seg,
                        word: raw.word,
                        word_hi: raw.word,
                        word_count: 1,
                        first,
                        second,
                    },
                    set,
                ));
            }
        }
    }
    grouped
        .into_iter()
        .map(|(mut race, set)| {
            race.word = *set.iter().next().expect("non-empty word set");
            race.word_hi = *set.iter().next_back().expect("non-empty word set");
            race.word_count = set.len() as u64;
            race
        })
        .collect()
}

/// Words overlapped by a byte range (8-byte granularity).
fn word_range(offset: u64, bytes: u32) -> std::ops::RangeInclusive<u64> {
    let last = offset + u64::from(bytes.max(1)) - 1;
    (offset / 8)..=(last / 8)
}

#[allow(clippy::too_many_arguments)]
fn record_access(
    words: &mut HashMap<(u32, u32, u64), WordState>,
    raws: &mut Vec<RawRace>,
    clock: &[u64],
    rec: AccessRec,
    owner: u32,
    seg: u32,
    offset: u64,
    bytes: u32,
) {
    let report = |prior: &AccessRec, w: u64| {
        if prior.rank == rec.rank
            || (prior.atomic && rec.atomic)
            || prior.clock <= clock[prior.rank as usize]
        {
            return None;
        }
        Some(RawRace { owner, seg, word: w, prior: *prior, rec })
    };
    for w in word_range(offset, bytes) {
        let st = words.entry((owner, seg, w)).or_default();
        // A write conflicts with prior writes and reads; a read only with
        // prior writes.
        for prior in &st.writes {
            if let Some(raw) = report(prior, w) {
                raws.push(raw);
            }
        }
        if rec.write {
            for prior in &st.reads {
                if let Some(raw) = report(prior, w) {
                    raws.push(raw);
                }
            }
        }
        let list = if rec.write { &mut st.writes } else { &mut st.reads };
        match list
            .iter_mut()
            .find(|a| a.rank == rec.rank && a.atomic == rec.atomic)
        {
            Some(slot) => *slot = rec,
            None => list.push(rec),
        }
    }
}

/// Build the report-side attribution for one access on `rank` at event
/// index `ev_idx` with replay clock `clock` (shared with the predictive
/// engine, which reuses the same attribution format).
pub(crate) fn attribute(
    trace: &Trace,
    rank: u32,
    ev_idx: u32,
    clock: u64,
    write: bool,
    atomic: bool,
) -> AccessInfo {
    access_info(trace, AccessRec { rank, ev_idx, clock, write, atomic })
}

/// Build the report-side attribution for one access record.
fn access_info(trace: &Trace, rec: AccessRec) -> AccessInfo {
    let stream = &trace.events[rec.rank as usize];
    let ev = &stream[rec.ev_idx as usize];
    let op = match &ev.event {
        TraceEvent::RemoteOp { kind, .. } => match kind {
            RemoteOpKind::Put => "put",
            RemoteOpKind::Get => "get",
            RemoteOpKind::Acc => "acc",
            RemoteOpKind::Rmw => "rmw",
        }
        .to_string(),
        TraceEvent::LocalAccess { write, .. } => {
            format!("local {}", if *write { "write" } else { "read" })
        }
        other => format!("{other:?}"),
    };
    let nearest_sync = stream[..rec.ev_idx as usize]
        .iter()
        .rev()
        .find_map(|e| match &e.event {
            TraceEvent::LockAcq { target, set, idx, seq } => Some((
                e.t_ns,
                format!("lock acquire #{seq} (target {target}, set {set}, idx {idx})"),
            )),
            TraceEvent::LockRel { target, set, idx, seq } => Some((
                e.t_ns,
                format!("lock release #{seq} (target {target}, set {set}, idx {idx})"),
            )),
            TraceEvent::BarrierWait { epoch, .. } => {
                Some((e.t_ns, format!("barrier epoch {epoch}")))
            }
            TraceEvent::MsgSend { dst, seq, .. } => {
                Some((e.t_ns, format!("msg send #{seq} to rank {dst}")))
            }
            TraceEvent::MsgRecv { src, seq } => {
                Some((e.t_ns, format!("msg recv #{seq} from rank {src}")))
            }
            TraceEvent::TdWave { wave, dir, .. } => {
                Some((e.t_ns, format!("td {dir:?}-wave {wave}")))
            }
            _ => None,
        });
    AccessInfo {
        rank: rec.rank,
        t_ns: ev.t_ns,
        clock: rec.clock,
        op,
        write: rec.write,
        atomic: rec.atomic,
        nearest_sync,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scioto_sim::StampedEvent;

    /// Build a trace from per-rank `(t_ns, event)` lists.
    fn trace_of(ranks: Vec<Vec<(u64, TraceEvent)>>) -> Trace {
        let n = ranks.len();
        Trace {
            events: ranks
                .into_iter()
                .map(|evs| {
                    evs.into_iter()
                        .map(|(t_ns, event)| StampedEvent { t_ns, event })
                        .collect()
                })
                .collect(),
            dropped: vec![0; n],
            final_clock_ns: Vec::new(),
            wall_clock: false,
            hists: (0..n).map(|_| Default::default()).collect(),
            gauges: (0..n).map(|_| Default::default()).collect(),
        }
    }

    fn put(target: u32, offset: u64, bytes: u32) -> TraceEvent {
        TraceEvent::RemoteOp {
            kind: RemoteOpKind::Put,
            target,
            seg: 0,
            offset,
            bytes,
            atomic: false,
        }
    }

    fn get(target: u32, offset: u64, bytes: u32) -> TraceEvent {
        TraceEvent::RemoteOp {
            kind: RemoteOpKind::Get,
            target,
            seg: 0,
            offset,
            bytes,
            atomic: false,
        }
    }

    fn local(offset: u64, bytes: u32, write: bool, atomic: bool) -> TraceEvent {
        TraceEvent::LocalAccess { seg: 0, offset, bytes, write, atomic }
    }

    fn acq(seq: u64) -> TraceEvent {
        TraceEvent::LockAcq { target: 0, set: 0, idx: 0, seq }
    }

    fn rel(seq: u64) -> TraceEvent {
        TraceEvent::LockRel { target: 0, set: 0, idx: 0, seq }
    }

    fn barrier(epoch: u64) -> TraceEvent {
        TraceEvent::BarrierWait { dur_ns: 0, epoch }
    }

    #[test]
    fn unordered_conflicting_writes_race() {
        let t = trace_of(vec![
            vec![(10, local(0, 8, true, false))],
            vec![(20, put(0, 0, 8))],
        ]);
        let r = check_trace(&t).unwrap();
        assert_eq!(r.races.len(), 1);
        let race = &r.races[0];
        assert_eq!((race.owner, race.seg, race.word), (0, 0, 0));
        assert_eq!(race.first.rank, 0);
        assert_eq!(race.first.op, "local write");
        assert_eq!(race.first.clock, 1);
        assert!(race.first.nearest_sync.is_none());
        assert_eq!(race.second.rank, 1);
        assert_eq!(race.second.op, "put");
        assert_eq!(race.second.clock, 1);
        assert_eq!(race.second.t_ns, 20);
    }

    #[test]
    fn lock_ordering_suppresses_race() {
        let t = trace_of(vec![
            vec![(5, acq(1)), (6, local(0, 8, true, false)), (7, rel(1))],
            vec![(1, acq(2)), (2, put(0, 0, 8)), (3, rel(2))],
        ]);
        let r = check_trace(&t).unwrap();
        assert!(r.is_clean(), "{r}");
        assert!(r.sync_edges >= 1);
        assert_eq!(r.events, 6);
    }

    #[test]
    fn access_after_release_races_with_next_critical_section() {
        // Rank 0 writes *after* releasing the lock; rank 1's critical
        // section is ordered after the release but not after the write.
        let t = trace_of(vec![
            vec![(5, acq(1)), (6, rel(1)), (7, local(0, 8, true, false))],
            vec![(8, acq(2)), (9, put(0, 0, 8)), (10, rel(2))],
        ]);
        let r = check_trace(&t).unwrap();
        assert_eq!(r.races.len(), 1, "{r}");
        assert_eq!(r.races[0].first.rank, 0);
        assert_eq!(
            r.races[0].first.nearest_sync.as_ref().unwrap().1,
            "lock release #1 (target 0, set 0, idx 0)"
        );
    }

    #[test]
    fn barrier_orders_accesses() {
        let t = trace_of(vec![
            vec![(5, local(0, 8, true, false)), (9, barrier(0))],
            vec![(9, barrier(0)), (12, put(0, 0, 8))],
        ]);
        let r = check_trace(&t).unwrap();
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn message_edge_orders_accesses() {
        let t = trace_of(vec![
            vec![
                (5, local(0, 8, true, false)),
                (6, TraceEvent::MsgSend { dst: 1, bytes: 8, seq: 1 }),
            ],
            vec![(7, TraceEvent::MsgRecv { src: 0, seq: 1 }), (8, put(0, 0, 8))],
        ]);
        let r = check_trace(&t).unwrap();
        assert!(r.is_clean(), "{r}");
        // Without the receive, the same accesses race.
        let t = trace_of(vec![
            vec![
                (5, local(0, 8, true, false)),
                (6, TraceEvent::MsgSend { dst: 1, bytes: 8, seq: 1 }),
            ],
            vec![(8, put(0, 0, 8))],
        ]);
        assert_eq!(check_trace(&t).unwrap().races.len(), 1);
    }

    #[test]
    fn td_wave_orders_parent_and_child() {
        let down = |wave| TraceEvent::TdWave { wave, dir: WaveDir::Down, black: false };
        let t = trace_of(vec![
            vec![(5, local(0, 8, true, false)), (6, down(1))],
            vec![(7, down(1)), (8, put(0, 0, 8))],
        ]);
        let r = check_trace(&t).unwrap();
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn both_atomic_accesses_are_exempt() {
        let atomic_put = TraceEvent::RemoteOp {
            kind: RemoteOpKind::Put,
            target: 0,
            seg: 0,
            offset: 0,
            bytes: 8,
            atomic: true,
        };
        let t = trace_of(vec![
            vec![(5, local(0, 8, true, true))],
            vec![(6, atomic_put)],
        ]);
        assert!(check_trace(&t).unwrap().is_clean());
        // Atomic vs plain still races.
        let t = trace_of(vec![
            vec![(5, local(0, 8, true, false))],
            vec![(6, atomic_put)],
        ]);
        assert_eq!(check_trace(&t).unwrap().races.len(), 1);
    }

    #[test]
    fn reads_do_not_race_with_reads() {
        let t = trace_of(vec![
            vec![(5, local(0, 8, false, false))],
            vec![(6, get(0, 0, 8))],
        ]);
        assert!(check_trace(&t).unwrap().is_clean());
        // But a read does race with an unordered write.
        let t = trace_of(vec![
            vec![(5, local(0, 8, false, false))],
            vec![(6, put(0, 0, 8))],
        ]);
        assert_eq!(check_trace(&t).unwrap().races.len(), 1);
    }

    #[test]
    fn word_granularity_separates_disjoint_words() {
        let t = trace_of(vec![
            vec![(5, local(0, 8, true, false))],
            vec![(6, put(0, 8, 8))],
        ]);
        assert!(check_trace(&t).unwrap().is_clean());
        // A 16-byte put overlaps both locally written words. Both hits
        // share the same access-site pair (rank 0 local write vs rank 1
        // put), so they collapse into one report counting both words.
        let t = trace_of(vec![
            vec![(5, local(0, 8, true, false)), (6, local(8, 8, true, false))],
            vec![(7, put(0, 0, 16))],
        ]);
        let r = check_trace(&t).unwrap();
        assert_eq!(r.races.len(), 1, "{r}");
        let race = &r.races[0];
        assert_eq!((race.word, race.word_hi, race.word_count), (0, 1, 2));
        // The attributed pair is the earliest raced one.
        assert_eq!(race.first.op, "local write");
        assert_eq!(race.second.op, "put");
    }

    #[test]
    fn dropped_events_are_an_error() {
        let mut t = trace_of(vec![vec![(5, put(0, 0, 8))]]);
        t.dropped[0] = 3;
        let err = check_trace(&t).unwrap_err();
        assert!(err.contains("dropped 3 event(s)"), "{err}");
    }

    #[test]
    fn missing_message_producer_is_an_error() {
        let t = trace_of(vec![
            vec![],
            vec![(7, TraceEvent::MsgRecv { src: 0, seq: 1 })],
        ]);
        let err = check_trace(&t).unwrap_err();
        assert!(err.contains("no matching MsgSend"), "{err}");
    }

    #[test]
    fn missing_lock_release_deadlocks_with_diagnostic() {
        let t = trace_of(vec![vec![(5, acq(2))]]);
        let err = check_trace(&t).unwrap_err();
        assert!(err.contains("replay deadlocked"), "{err}");
        assert!(err.contains("rank 0"), "{err}");
    }

    #[test]
    fn same_rank_accesses_never_race() {
        let t = trace_of(vec![vec![
            (5, local(0, 8, true, false)),
            (6, local(0, 8, true, false)),
        ]]);
        assert!(check_trace(&t).unwrap().is_clean());
    }

    /// Wall-stamped trace with the same per-rank event lists.
    fn wall_trace_of(ranks: Vec<Vec<(u64, TraceEvent)>>) -> Trace {
        let mut t = trace_of(ranks);
        t.wall_clock = true;
        t
    }

    #[test]
    fn wall_clock_traces_check_identically() {
        // The checker pairs by lock generations / message seqs / barrier
        // epochs, never by timestamp, so a wall-clock (concurrent-mode)
        // trace with large non-reproducible stamps yields the same verdict
        // as its virtual-time twin.
        let clean = |mk: fn(Vec<Vec<(u64, TraceEvent)>>) -> Trace| {
            mk(vec![
                vec![
                    (1_234_567, acq(1)),
                    (1_234_900, local(0, 8, true, false)),
                    (1_235_001, rel(1)),
                ],
                vec![
                    (2_987_654, acq(2)),
                    (2_988_000, put(0, 0, 8)),
                    (2_990_000, rel(2)),
                ],
            ])
        };
        let wall = check_trace(&clean(wall_trace_of)).unwrap();
        let virt = check_trace(&clean(trace_of)).unwrap();
        assert!(wall.is_clean(), "{wall}");
        assert_eq!(wall.races.len(), virt.races.len());
        assert_eq!(wall.sync_edges, virt.sync_edges);
        assert_eq!(wall.events, virt.events);
    }

    #[test]
    fn wall_clock_races_are_still_detected() {
        // Wall stamps that *happen* to order the accesses carry no
        // happens-before: without a sync edge the conflict must still be
        // reported, stamps and all.
        let t = wall_trace_of(vec![
            vec![(100_000, local(0, 8, true, false))],
            vec![(900_000, put(0, 0, 8))],
        ]);
        let r = check_trace(&t).unwrap();
        assert_eq!(r.races.len(), 1, "{r}");
        assert_eq!(r.races[0].second.t_ns, 900_000);
    }

    #[test]
    fn wall_clock_barrier_pairing_survives_skewed_stamps() {
        // Concurrent threads reach the same barrier episode at different
        // wall times; epoch pairing must still create the ordering edge.
        let t = wall_trace_of(vec![
            vec![(5_000, local(0, 8, true, false)), (9_000, barrier(0))],
            vec![(42_000, barrier(0)), (50_000, put(0, 0, 8))],
        ]);
        let r = check_trace(&t).unwrap();
        assert!(r.is_clean(), "{r}");
    }
}
