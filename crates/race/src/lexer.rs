//! A hand-rolled token-level Rust lexer for `scioto-lint`.
//!
//! The v1 lint scanned raw text line by line, which forced every rule to
//! re-solve the same three problems — string literals that *mention*
//! banned paths, comments that contain code, and constructs split across
//! lines. This lexer solves them once, centrally: source is tokenized
//! into identifiers, literals, comments and punctuation with exact line
//! attribution, and the rules walk the token stream. A banned path
//! inside a string literal is invisible to code rules; commented-out
//! code neither triggers nor hides findings; a method chain spread over
//! four lines is one token sequence.
//!
//! The lexer is deliberately *lossy where it does not matter*: it never
//! fails (an unterminated literal swallows the rest of the file as one
//! token), numeric literals are approximate (suffixes and float shapes
//! are not validated), and multi-character punctuation is split except
//! for the two sequences the lint rules match on (`::` and `||`). It is
//! not a compiler front end — it only has to classify code vs. comment
//! vs. literal correctly, which it does for the whole real tree (pinned
//! by `real_tree_is_clean` over every `.rs` file in the workspace).

/// Token classification.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`foo`, `unsafe`, `impl`).
    Ident,
    /// Raw identifier (`r#type`); the `r#` prefix is part of the text.
    RawIdent,
    /// Lifetime (`'a`) or loop label.
    Lifetime,
    /// Any string-ish literal: `"…"`, `r"…"`, `r#"…"#`, `b"…"`, `'c'`,
    /// `b'c'` — the interior is never scanned by lint rules.
    Literal,
    /// Numeric literal.
    Num,
    /// `// …` line comment (includes `///` and `//!` doc comments).
    LineComment,
    /// `/* … */` block comment, nesting handled; may span lines.
    BlockComment,
    /// One punctuation token. Single characters, except `::` and `||`
    /// which are merged (the only multi-character sequences the rules
    /// need).
    Punct,
}

/// One token: kind, byte range in the source, and the 1-based line the
/// token *starts* on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Tok {
    pub kind: TokKind,
    pub start: usize,
    pub end: usize,
    pub line: usize,
}

impl Tok {
    /// The token's text within `src` (the string it was lexed from).
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenize `src`. Whitespace is skipped; everything else (including
/// comments) is returned in source order. Never fails: malformed input
/// degrades to approximate tokens, never to a panic.
pub fn lex(src: &str) -> Vec<Tok> {
    let b = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    let mut line = 1;
    // Count the newlines in src[from..to] into `line`.
    let bump_lines = |from: usize, to: usize, line: &mut usize| {
        *line += b[from..to].iter().filter(|&&c| c == b'\n').count();
    };
    while i < src.len() {
        let start = i;
        let start_line = line;
        let c = src[i..].chars().next().expect("in-bounds char");
        // Whitespace.
        if c.is_whitespace() {
            if c == '\n' {
                line += 1;
            }
            i += c.len_utf8();
            continue;
        }
        // Comments.
        if src[i..].starts_with("//") {
            let end = src[i..].find('\n').map(|n| i + n).unwrap_or(src.len());
            toks.push(Tok { kind: TokKind::LineComment, start, end, line: start_line });
            i = end;
            continue;
        }
        if src[i..].starts_with("/*") {
            let mut depth = 1usize;
            let mut j = i + 2;
            while j < src.len() && depth > 0 {
                if src[j..].starts_with("/*") {
                    depth += 1;
                    j += 2;
                } else if src[j..].starts_with("*/") {
                    depth -= 1;
                    j += 2;
                } else {
                    j += src[j..].chars().next().expect("in-bounds char").len_utf8();
                }
            }
            bump_lines(start, j, &mut line);
            toks.push(Tok { kind: TokKind::BlockComment, start, end: j, line: start_line });
            i = j;
            continue;
        }
        // Raw strings / raw identifiers / byte strings, before plain
        // identifiers so the `r`/`b` prefixes are not lexed as idents.
        if c == 'r' || c == 'b' {
            if let Some((end, kind)) = raw_or_byte(src, i) {
                bump_lines(start, end, &mut line);
                toks.push(Tok { kind, start, end, line: start_line });
                i = end;
                continue;
            }
        }
        // Plain identifier / keyword.
        if is_ident_start(c) {
            let mut j = i + c.len_utf8();
            while let Some(n) = src[j..].chars().next() {
                if is_ident_continue(n) {
                    j += n.len_utf8();
                } else {
                    break;
                }
            }
            toks.push(Tok { kind: TokKind::Ident, start, end: j, line: start_line });
            i = j;
            continue;
        }
        // String literal.
        if c == '"' {
            let end = scan_string(src, i + 1, '"');
            bump_lines(start, end, &mut line);
            toks.push(Tok { kind: TokKind::Literal, start, end, line: start_line });
            i = end;
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            let rest = &src[i + 1..];
            let mut chars = rest.chars();
            match chars.next() {
                Some('\\') => {
                    // Escaped char literal: scan to the closing quote.
                    let end = scan_string(src, i + 1, '\'');
                    toks.push(Tok { kind: TokKind::Literal, start, end, line: start_line });
                    i = end;
                    continue;
                }
                Some(f) if is_ident_start(f) => {
                    // `'x'` is a char literal; `'x` followed by anything
                    // but `'` is a lifetime/label.
                    let mut j = i + 1 + f.len_utf8();
                    while let Some(n) = src[j..].chars().next() {
                        if is_ident_continue(n) {
                            j += n.len_utf8();
                        } else {
                            break;
                        }
                    }
                    if src[j..].starts_with('\'') && j == i + 1 + f.len_utf8() {
                        toks.push(Tok { kind: TokKind::Literal, start, end: j + 1, line: start_line });
                        i = j + 1;
                    } else {
                        toks.push(Tok { kind: TokKind::Lifetime, start, end: j, line: start_line });
                        i = j;
                    }
                    continue;
                }
                Some(other) => {
                    // `'('`-style unescaped char literal.
                    let j = i + 1 + other.len_utf8();
                    let end = if src[j..].starts_with('\'') { j + 1 } else { j };
                    toks.push(Tok { kind: TokKind::Literal, start, end, line: start_line });
                    i = end;
                    continue;
                }
                None => {
                    toks.push(Tok { kind: TokKind::Punct, start, end: i + 1, line: start_line });
                    i += 1;
                    continue;
                }
            }
        }
        // Number.
        if c.is_ascii_digit() {
            let mut j = i + 1;
            while let Some(n) = src[j..].chars().next() {
                if n.is_alphanumeric() || n == '_' {
                    j += n.len_utf8();
                } else if n == '.' {
                    // Consume the dot only for a digit-led fraction, so
                    // `1..3` stays a range and `1.0` stays one number.
                    match src[j + 1..].chars().next() {
                        Some(d) if d.is_ascii_digit() => j += 1,
                        _ => break,
                    }
                } else {
                    break;
                }
            }
            toks.push(Tok { kind: TokKind::Num, start, end: j, line: start_line });
            i = j;
            continue;
        }
        // Punctuation; merge the two sequences the rules match on.
        for merged in ["::", "||"] {
            if src[i..].starts_with(merged) {
                toks.push(Tok { kind: TokKind::Punct, start, end: i + 2, line: start_line });
                i += 2;
                break;
            }
        }
        if i != start {
            continue;
        }
        toks.push(Tok { kind: TokKind::Punct, start, end: i + c.len_utf8(), line: start_line });
        i += c.len_utf8();
    }
    toks
}

/// Scan a quoted literal body starting *after* the opening quote, with
/// backslash escapes, returning the index one past the closing `quote`
/// (or `src.len()` if unterminated).
fn scan_string(src: &str, mut i: usize, quote: char) -> usize {
    while i < src.len() {
        let c = src[i..].chars().next().expect("in-bounds char");
        if c == '\\' {
            i += 1;
            if let Some(e) = src[i..].chars().next() {
                i += e.len_utf8();
            }
            continue;
        }
        i += c.len_utf8();
        if c == quote {
            return i;
        }
    }
    src.len()
}

/// Try to lex a raw string (`r"…"`, `r#"…"#`), raw identifier
/// (`r#ident`), byte string (`b"…"`, `br#"…"#`) or byte char (`b'c'`)
/// at `i`. Returns `(end, kind)` or `None` if this is a plain ident.
fn raw_or_byte(src: &str, i: usize) -> Option<(usize, TokKind)> {
    let rest = &src[i..];
    let (prefix_len, raw) = if rest.starts_with("br") {
        (2, true)
    } else if rest.starts_with('r') {
        (1, true)
    } else if rest.starts_with('b') {
        (1, false)
    } else {
        return None;
    };
    let after = &src[i + prefix_len..];
    if raw {
        // Count hashes.
        let hashes = after.bytes().take_while(|&c| c == b'#').count();
        let body = &src[i + prefix_len + hashes..];
        if body.starts_with('"') {
            // Raw string: ends at `"` followed by `hashes` hashes.
            let close: String = std::iter::once('"').chain(std::iter::repeat_n('#', hashes)).collect();
            let open_at = i + prefix_len + hashes + 1;
            let end = src[open_at..]
                .find(&close)
                .map(|n| open_at + n + close.len())
                .unwrap_or(src.len());
            return Some((end, TokKind::Literal));
        }
        if prefix_len == 1 && hashes == 1 {
            // Maybe a raw identifier `r#ident`.
            let mut chars = body.chars();
            if let Some(f) = chars.next() {
                if is_ident_start(f) {
                    let mut j = i + 2 + f.len_utf8();
                    while let Some(n) = src[j..].chars().next() {
                        if is_ident_continue(n) {
                            j += n.len_utf8();
                        } else {
                            break;
                        }
                    }
                    return Some((j, TokKind::RawIdent));
                }
            }
        }
        return None;
    }
    // `b"…"` / `b'c'` (non-raw byte literals).
    if after.starts_with('"') {
        return Some((scan_string(src, i + prefix_len + 1, '"'), TokKind::Literal));
    }
    if after.starts_with('\'') {
        return Some((scan_string(src, i + prefix_len + 2, '\''), TokKind::Literal));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .into_iter()
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    #[test]
    fn idents_puncts_and_merged_ops() {
        let k = kinds("use std::sync::Mutex; || a|b");
        assert_eq!(
            k,
            vec![
                (TokKind::Ident, "use".into()),
                (TokKind::Ident, "std".into()),
                (TokKind::Punct, "::".into()),
                (TokKind::Ident, "sync".into()),
                (TokKind::Punct, "::".into()),
                (TokKind::Ident, "Mutex".into()),
                (TokKind::Punct, ";".into()),
                (TokKind::Punct, "||".into()),
                (TokKind::Ident, "a".into()),
                (TokKind::Punct, "|".into()),
                (TokKind::Ident, "b".into()),
            ]
        );
    }

    #[test]
    fn strings_hide_their_interior() {
        let src = r#"let s = "std::sync::Mutex"; x"#;
        let k = kinds(src);
        assert!(k.iter().any(|(kind, t)| *kind == TokKind::Literal && t.contains("Mutex")));
        // No Ident token named Mutex escapes the literal.
        assert!(!k.iter().any(|(kind, t)| *kind == TokKind::Ident && t == "Mutex"));
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        let src = r#""a\"b" c"#;
        let k = kinds(src);
        assert_eq!(k[0], (TokKind::Literal, "\"a\\\"b\"".into()));
        assert_eq!(k[1], (TokKind::Ident, "c".into()));
    }

    #[test]
    fn raw_strings_and_hashes() {
        let src = "r#\"interior \" quote\"# after";
        let k = kinds(src);
        assert_eq!(k[0].0, TokKind::Literal);
        assert_eq!(k[1], (TokKind::Ident, "after".into()));
        // Byte strings too.
        let src = "br\"bytes\" x";
        let k = kinds(src);
        assert_eq!(k[0].0, TokKind::Literal);
        assert_eq!(k[1], (TokKind::Ident, "x".into()));
    }

    #[test]
    fn raw_idents() {
        let k = kinds("r#type x");
        assert_eq!(k[0], (TokKind::RawIdent, "r#type".into()));
        assert_eq!(k[1], (TokKind::Ident, "x".into()));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let k = kinds("&'a T 'x' '\\n' 'label: loop");
        assert_eq!(k[1], (TokKind::Lifetime, "'a".into()));
        assert_eq!(k[3], (TokKind::Literal, "'x'".into()));
        assert_eq!(k[4], (TokKind::Literal, "'\\n'".into()));
        assert_eq!(k[5], (TokKind::Lifetime, "'label".into()));
    }

    #[test]
    fn comments_classified_and_nested_blocks_close() {
        let src = "a // line\n/* b /* nested */ still */ c";
        let k = kinds(src);
        assert_eq!(k[0], (TokKind::Ident, "a".into()));
        assert_eq!(k[1].0, TokKind::LineComment);
        assert_eq!(k[2].0, TokKind::BlockComment);
        assert!(k[2].1.contains("nested"));
        assert_eq!(k[3], (TokKind::Ident, "c".into()));
    }

    #[test]
    fn line_attribution_spans_multiline_tokens() {
        let src = "a\n/* two\nlines */\nb\n\"str\nacross\"\nc";
        let toks = lex(src);
        let find = |txt: &str| toks.iter().find(|t| t.text(src) == txt).unwrap().line;
        assert_eq!(find("a"), 1);
        assert_eq!(find("b"), 4);
        assert_eq!(find("c"), 7);
        // The block comment starts on line 2 even though it ends on 3.
        assert_eq!(toks[1].line, 2);
    }

    #[test]
    fn numbers_do_not_eat_ranges() {
        let k = kinds("0..8 1.5 0x1f");
        assert_eq!(k[0], (TokKind::Num, "0".into()));
        assert_eq!(k[1], (TokKind::Punct, ".".into()));
        assert_eq!(k[2], (TokKind::Punct, ".".into()));
        assert_eq!(k[3], (TokKind::Num, "8".into()));
        assert_eq!(k[4], (TokKind::Num, "1.5".into()));
        assert_eq!(k[5], (TokKind::Num, "0x1f".into()));
    }

    #[test]
    fn unterminated_literal_never_panics() {
        let src = "let s = \"unterminated";
        let k = kinds(src);
        assert_eq!(k.last().unwrap().0, TokKind::Literal);
    }
}
