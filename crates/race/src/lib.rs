//! `scioto-race`: offline happens-before race checking and source-level
//! invariant linting for the Scioto reproduction.
//!
//! Two independent tools live here:
//!
//! * [`hb::check_trace`] replays a deterministic virtual-time [`Trace`]
//!   (from [`scioto_sim`]) with vector clocks, pairing every explicit
//!   synchronization edge the runtime emits (lock generations, message
//!   sequence numbers, barrier epochs, termination-detection waves) and
//!   reporting every pair of conflicting, happens-before-unordered
//!   accesses to simulated global memory. It runs on in-memory traces
//!   (`--race-check` on the bench bins) or on exported JSONL traces (the
//!   `race_check` binary, via `scioto_analyze::jsonl::parse`).
//! * [`lint`] is a zero-dependency source scanner enforcing the repo's
//!   hermeticity and determinism invariants (no ambient `std::sync`
//!   primitives outside `crates/det`, no wall-clock or ambient
//!   randomness, trace emission only through the deferred-closure
//!   pattern, no `unwrap()` on lock results). The `scioto-lint` binary
//!   wires it into `scripts/verify.sh` as a hard gate.
//!
//! [`Trace`]: scioto_sim::Trace

pub mod deadlock;
pub mod hb;
pub mod lexer;
pub mod lint;
pub mod predict;
pub mod report;

pub use deadlock::{check_deadlocks, Cycle, DeadlockReport, Resource};
pub use hb::{check_trace, AccessInfo, Race, RaceReport};
pub use lint::{lint_tree, waiver_stats, Finding};
pub use predict::{check_protocols, predict, AtomicityViolation, PredictReport, PredictedRace};
pub use report::render as render_report;
