//! `scioto-lint`: a zero-dependency source scanner for the repo's
//! hermeticity and determinism invariants.
//!
//! Rules (each can be waived per-site with `// scioto-lint: allow(<rule>)`
//! on the offending line or the line immediately above):
//!
//! * `std-sync` — `std::sync::{Mutex, RwLock, Condvar}` are banned
//!   outside `crates/det`; all blocking primitives must come from
//!   `scioto_det::sync` so lock behaviour stays deterministic and
//!   poison-free (`.lock()` returns the guard directly).
//! * `wallclock` — `std::time` and ambient `rand::` are banned
//!   everywhere; virtual time comes from the simulator clock and
//!   randomness from the in-tree deterministic RNG. For `std::time` the
//!   per-line waiver is honored only inside the sanctioned file
//!   allowlist ([`SANCTIONED_TIME_FILES`]): the runtime's one wall-clock
//!   source (`crates/det/src/clock.rs`, wrapping `Instant` behind
//!   `MonoClock`) and the bench timing harness. Anywhere else a waiver
//!   comment does not suppress the finding — route wall time through
//!   `scioto_det::MonoClock` instead of adding a waiver.
//! * `trace-closure` — trace emission sites must pass a deferred
//!   closure (`ctx.trace(|| TraceEvent::...)`), never a pre-built
//!   event, so disabled tracing costs one branch and zero construction.
//! * `lock-unwrap` — `.lock().unwrap()` / `.lock().expect(...)` are
//!   banned; the in-tree mutex cannot poison and returns the guard
//!   directly, so an `unwrap` signals a foreign lock sneaking in.
//! * `atomic-protocol` — every `put_atomic` / `get_atomic` /
//!   `put_i64s_atomic` / `get_i64s_atomic` call site must name the
//!   ordering protocol that makes the unfenced access safe, in a comment
//!   on the same line or within three lines above containing the word
//!   `protocol`. The atomic markers exempt accesses from the race
//!   checker, so an unexplained one is an unexplained suppression.
//!
//! The scanner is intentionally textual (no syn, no proc-macro): it runs
//! in milliseconds over the whole tree and its patterns are chosen so
//! that real violations cannot hide behind formatting (multi-line `use`
//! groups are joined up to the closing `;` before matching, and `/* */`
//! block-comment interiors — including nested and multi-line ones — are
//! blanked out before any rule runs, so commented-out code neither
//! triggers nor hides findings).

use std::fmt;
use std::path::{Path, PathBuf};

/// One lint violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// File the violation is in.
    pub path: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Rule slug, e.g. `std-sync`.
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// The only files where a `wallclock` waiver on a `std::time` line is
/// honored: the runtime's single wall-clock source and the bench timing
/// harness (which times real benchmark iterations by definition).
/// Matched as path suffixes so absolute and relative invocations agree.
pub const SANCTIONED_TIME_FILES: &[&str] = &[
    "crates/det/src/clock.rs",
    "crates/bench/benches/queue_ops.rs",
    "crates/bench/src/benchjson.rs",
    "crates/bench/src/tinybench.rs",
];

/// Is `path` on the `std::time` allowlist?
fn time_sanctioned(path: &Path) -> bool {
    let p = path.to_string_lossy().replace('\\', "/");
    SANCTIONED_TIME_FILES.iter().any(|s| p.ends_with(s))
}

/// True when `lines[idx]` or the line above carries a waiver for `rule`.
fn waived(lines: &[&str], idx: usize, rule: &str) -> bool {
    let marker = format!("scioto-lint: allow({rule})");
    lines[idx].contains(&marker) || (idx > 0 && lines[idx - 1].contains(&marker))
}

/// Character boundary test: `s[..i]` must not end in an identifier or
/// path character for a match at `i` to be a standalone path root.
fn path_root_at(s: &str, i: usize) -> bool {
    match s[..i].chars().next_back() {
        None => true,
        Some(c) => !(c.is_alphanumeric() || c == '_' || c == ':'),
    }
}

/// Identifier boundary test: a match at `i` is a whole token, not a
/// suffix of a longer identifier (path separators are fine here).
fn ident_at(s: &str, i: usize, len: usize) -> bool {
    let pre = s[..i].chars().next_back();
    let post = s[i + len..].chars().next();
    !matches!(pre, Some(c) if c.is_alphanumeric() || c == '_')
        && !matches!(post, Some(c) if c.is_alphanumeric() || c == '_')
}

/// Blank the interiors of `/* ... */` block comments — which nest and
/// span lines in Rust — returning one scrubbed string per input line.
/// Delimiters and interiors become spaces (line lengths and column
/// positions are preserved); `//` line comments are kept verbatim, and a
/// `/*` behind one does not open a block. Purely textual: a `/*` inside
/// a string literal is treated as a real opener, the same trade the rest
/// of the scanner makes.
fn scrub_block_comments(lines: &[&str]) -> Vec<String> {
    let mut depth = 0usize;
    let mut out = Vec::with_capacity(lines.len());
    for line in lines {
        let mut scrubbed = String::with_capacity(line.len());
        let mut i = 0;
        while i < line.len() {
            let rest = &line[i..];
            if depth == 0 && rest.starts_with("//") {
                scrubbed.push_str(rest);
                break;
            }
            if rest.starts_with("/*") {
                depth += 1;
                scrubbed.push_str("  ");
                i += 2;
                continue;
            }
            if depth > 0 && rest.starts_with("*/") {
                depth -= 1;
                scrubbed.push_str("  ");
                i += 2;
                continue;
            }
            let c = rest.chars().next().expect("non-empty rest");
            scrubbed.push(if depth == 0 || c.is_whitespace() { c } else { ' ' });
            i += c.len_utf8();
        }
        out.push(scrubbed);
    }
    out
}

/// Lint one file's contents. `det_exempt` relaxes the `std-sync` rule
/// (crates/det is the one place allowed to wrap the ambient primitives).
pub fn lint_source(path: &Path, src: &str, det_exempt: bool) -> Vec<Finding> {
    let mut out = Vec::new();
    let raw: Vec<&str> = src.lines().collect();
    let scrubbed = scrub_block_comments(&raw);
    let lines: Vec<&str> = scrubbed.iter().map(String::as_str).collect();

    // Patterns are assembled at runtime so this file does not flag itself.
    let std_sync = format!("std::{}::", "sync");
    let std_time = format!("std::{}", "time");
    let rand_root = format!("{}::", "rand");
    let banned_sync = ["Mutex", "RwLock", "Condvar"];
    let lock_unwrap = format!(".lock().{}()", "unwrap");
    let lock_expect = format!(".lock().{}(", "expect");
    let event_path = format!("{}Event::", "Trace");
    let atomic_calls: Vec<String> = ["put", "get"]
        .iter()
        .flat_map(|op| [format!(".{op}_{}(", "atomic"), format!(".{op}_i64s_{}(", "atomic")])
        .collect();

    for (idx, line) in lines.iter().enumerate() {
        let lineno = idx + 1;

        // Pure comment lines are prose, not code — they cannot violate a
        // hermeticity invariant (and rule docs legitimately name the
        // banned paths).
        if line.trim_start().starts_with("//") {
            continue;
        }

        // --- std-sync ---------------------------------------------------
        if !det_exempt {
            if let Some(pos) = line.find(&std_sync) {
                if !waived(&lines, idx, "std-sync") {
                    // Join continuation lines of a multi-line `use` group up
                    // to the terminating `;` so `use std::sync::{\n Mutex,`
                    // cannot slip through.
                    let mut stmt = line[pos..].to_string();
                    let mut j = idx;
                    while !stmt.contains(';') && j + 1 < lines.len() && j - idx < 16 {
                        j += 1;
                        stmt.push_str(lines[j]);
                    }
                    let stmt = stmt.split(';').next().unwrap_or(&stmt);
                    if let Some(p) = banned_sync.iter().find(|p| {
                        stmt.match_indices(*p)
                            .any(|(i, _)| ident_at(stmt, i, p.len()))
                    }) {
                        out.push(Finding {
                            path: path.to_path_buf(),
                            line: lineno,
                            rule: "std-sync",
                            message: format!(
                                "ambient std::{}::{p} is banned outside crates/det; \
                                 use scioto_det::sync::{p}",
                                "sync"
                            ),
                        });
                    }
                }
            }
        }

        // --- wallclock --------------------------------------------------
        // A waiver only counts on the sanctioned-file allowlist; elsewhere
        // even `allow(wallclock)` cannot bless a `std::time` use.
        if line.contains(&std_time)
            && !(time_sanctioned(path) && waived(&lines, idx, "wallclock"))
        {
            out.push(Finding {
                path: path.to_path_buf(),
                line: lineno,
                rule: "wallclock",
                message: format!(
                    "std::{} is banned; use the simulator's virtual clock (Ctx::now_ns) \
                     or, for real wall time, scioto_det::MonoClock — waivers are honored \
                     only in the sanctioned clock/bench-harness files",
                    "time"
                ),
            });
        }
        if line
            .match_indices(&rand_root)
            .any(|(i, _)| path_root_at(line, i))
            && !waived(&lines, idx, "wallclock")
        {
            out.push(Finding {
                path: path.to_path_buf(),
                line: lineno,
                rule: "wallclock",
                message: format!(
                    "ambient {}:: is banned; use the in-tree deterministic RNG \
                     (scioto_det::rng)",
                    "rand"
                ),
            });
        }

        // --- trace-closure ----------------------------------------------
        // Emission must defer construction: `.trace(|| TraceEvent::..)`.
        // Flag call sites that pass a pre-built event, including the
        // event spilling to the next line.
        for call in [".trace(", ".emit("] {
            for (i, _) in line.match_indices(call) {
                let after = &line[i + call.len()..];
                let arg_zone = if let Some(ep) = after.find(&event_path) {
                    Some((&after[..ep], lineno))
                } else if after.trim_end().is_empty() {
                    // Call continues on the next line.
                    match lines.get(idx + 1) {
                        Some(next) if next.contains(&event_path) => {
                            let ep = next.find(&event_path).unwrap_or(0);
                            Some((&next[..ep], lineno + 1))
                        }
                        _ => None,
                    }
                } else {
                    None
                };
                if let Some((before_event, at)) = arg_zone {
                    if !before_event.contains("||") && !waived(&lines, idx, "trace-closure") {
                        out.push(Finding {
                            path: path.to_path_buf(),
                            line: at,
                            rule: "trace-closure",
                            message: format!(
                                "trace emission must defer event construction: \
                                 pass a closure (`|| {}..`), not a built event",
                                event_path
                            ),
                        });
                    }
                }
            }
        }

        // --- lock-unwrap ------------------------------------------------
        if (line.contains(&lock_unwrap) || line.contains(&lock_expect))
            && !waived(&lines, idx, "lock-unwrap")
        {
            out.push(Finding {
                path: path.to_path_buf(),
                line: lineno,
                rule: "lock-unwrap",
                message: "unwrap/expect on a lock result; scioto_det::sync locks \
                          cannot poison and return the guard directly"
                    .to_string(),
            });
        }

        // --- atomic-protocol --------------------------------------------
        // A protocol-atomic access is a race-checker exemption; the call
        // site must say which ordering protocol justifies it. The word is
        // looked for in the *raw* line text (the justification usually
        // lives in a comment).
        for call in &atomic_calls {
            if line.contains(call.as_str()) && !waived(&lines, idx, "atomic-protocol") {
                let documented = (idx.saturating_sub(3)..=idx).any(|j| raw[j].contains("protocol"));
                if !documented {
                    out.push(Finding {
                        path: path.to_path_buf(),
                        line: lineno,
                        rule: "atomic-protocol",
                        message: format!(
                            "`{}...)` call site must name its ordering protocol in a \
                             comment containing \"protocol\" on this line or within \
                             3 lines above",
                            call
                        ),
                    });
                }
            }
        }
    }
    out
}

/// Recursively lint every `.rs` file under `root`, skipping `target/`
/// build directories. Files whose path contains a `crates/det` component
/// are exempt from the `std-sync` rule.
pub fn lint_tree(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    let mut files = Vec::new();
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let p = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if p.is_dir() {
                if name != "target" && !name.starts_with('.') {
                    stack.push(p);
                }
            } else if name.ends_with(".rs") {
                files.push(p);
            }
        }
    }
    files.sort();
    for p in files {
        let src = std::fs::read_to_string(&p)?;
        let det_exempt = p
            .components()
            .collect::<Vec<_>>()
            .windows(2)
            .any(|w| w[0].as_os_str() == "crates" && w[1].as_os_str() == "det");
        findings.extend(lint_source(&p, &src, det_exempt));
    }
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_str(src: &str) -> Vec<Finding> {
        lint_source(Path::new("fixture.rs"), src, false)
    }

    #[test]
    fn flags_planted_std_sync_mutex() {
        let src = format!("use std::{}::Mutex;\nfn f() {{}}\n", "sync");
        let f = lint_str(&src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "std-sync");
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn flags_multiline_use_group() {
        let src = format!(
            "use std::{}::{{\n    Arc,\n    RwLock,\n}};\n",
            "sync"
        );
        let f = lint_str(&src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "std-sync");
    }

    #[test]
    fn arc_and_atomics_are_fine() {
        let src = format!(
            "use std::{}::Arc;\nuse std::{}::atomic::AtomicU64;\n",
            "sync", "sync"
        );
        assert!(lint_str(&src).is_empty());
    }

    #[test]
    fn det_crate_is_exempt_from_std_sync() {
        let src = format!("use std::{}::Mutex;\n", "sync");
        let path = Path::new("crates/det/src/sync.rs");
        assert!(lint_source(path, &src, true).is_empty());
    }

    #[test]
    fn flags_wallclock_and_ambient_rand() {
        let src = format!(
            "use std::{}::Instant;\nlet x = {}::random();\n",
            "time", "rand"
        );
        let f = lint_str(&src);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|f| f.rule == "wallclock"));
    }

    #[test]
    fn in_tree_rng_path_is_not_ambient_rand() {
        let src = "use scioto_det::rand::Pcg32;\nlet r = det::rand::seed(7);\n";
        assert!(lint_str(src).is_empty());
    }

    #[test]
    fn waiver_comment_suppresses_finding() {
        // Ambient-rand waivers work anywhere; std::time waivers are
        // covered by the allowlist tests below.
        let src = format!(
            "// scioto-lint: allow(wallclock)\nlet x = {}::random();\n",
            "rand"
        );
        assert!(lint_str(&src).is_empty());
    }

    #[test]
    fn time_waiver_is_honored_only_in_sanctioned_files() {
        let src = format!(
            "use std::{}::Instant; // scioto-lint: allow(wallclock)\n",
            "time"
        );
        // The sanctioned clock module (and bench harness files) may waive.
        for ok in super::SANCTIONED_TIME_FILES {
            assert!(
                lint_source(Path::new(ok), &src, ok.contains("crates/det")).is_empty(),
                "waiver must be honored in {ok}"
            );
        }
        // Anywhere else the same waiver is dead weight.
        let f = lint_source(Path::new("crates/sim/src/kernel.rs"), &src, false);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "wallclock");
        assert!(f[0].message.contains("MonoClock"), "{}", f[0].message);
    }

    #[test]
    fn sanctioned_files_still_need_per_line_waivers() {
        // The allowlist widens where waivers *work*, not what is allowed
        // bare: an unwaived std::time line is flagged even in clock.rs.
        let src = format!("use std::{}::Instant;\n", "time");
        let f = lint_source(Path::new("crates/det/src/clock.rs"), &src, true);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "wallclock");
    }

    #[test]
    fn flags_eager_trace_event_construction() {
        let eager = format!("ctx.trace({}Event::Block);\n", "Trace");
        let f = lint_str(&eager);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "trace-closure");

        let spilled = format!("ctx.trace(\n    {}Event::Block,\n);\n", "Trace");
        let f = lint_str(&spilled);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn deferred_closure_emission_is_fine() {
        let src = format!(
            "ctx.trace(|| {}Event::Block);\n\
             self.emit(rank, || {}Event::Steal {{ victim }});\n",
            "Trace", "Trace"
        );
        assert!(lint_str(&src).is_empty());
    }

    #[test]
    fn flags_lock_unwrap() {
        let src = format!("let g = m.lock().{}();\n", "unwrap");
        let f = lint_str(&src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "lock-unwrap");
    }

    #[test]
    fn block_comments_hide_banned_code() {
        // Commented-out code must not trigger findings, whether the block
        // is single-line, multi-line, or nested.
        let src = format!(
            "/* use std::{}::Mutex; */\nfn f() {{}}\n/*\nuse std::{}::Instant;\n/* let g = m.lock().{}(); */\nstill commented\n*/\nfn g() {{}}\n",
            "sync", "time", "unwrap"
        );
        assert!(lint_str(&src).is_empty(), "{:?}", lint_str(&src));
    }

    #[test]
    fn code_after_block_comment_close_is_still_linted() {
        let src = format!("/* prose */ use std::{}::Instant;\n", "time");
        let f = lint_str(&src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "wallclock");
    }

    #[test]
    fn block_comment_does_not_hide_following_lines() {
        // The scrubber must close state correctly: a finding *after* a
        // multi-line block comment is still reported at the right line.
        let src = format!("/*\nprose\n*/\nuse std::{}::Mutex;\n", "sync");
        let f = lint_str(&src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 4);
    }

    #[test]
    fn flags_undocumented_atomic_call() {
        let src = format!("armci.{}_{}(ctx, g, rank, off, &buf);\n", "put", "atomic");
        let f = lint_str(&src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "atomic-protocol");
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn protocol_comment_satisfies_atomic_rule() {
        // Same line, 1 above, and exactly 3 above all count; 4 above does
        // not.
        let same = format!(
            "armci.{}_{}(ctx, g, r, o, &mut b); // protocol: single-writer slot\n",
            "get", "atomic"
        );
        assert!(lint_str(&same).is_empty());
        let above = format!(
            "// protocol: owner-only tail word\nlet x = 1;\nlet y = 2;\narmci.{}_i64s_{}(ctx, g, r, o, &[t]);\n",
            "put", "atomic"
        );
        assert!(lint_str(&above).is_empty());
        let too_far = format!(
            "// protocol: owner-only tail word\nlet x = 1;\nlet y = 2;\nlet z = 3;\narmci.{}_i64s_{}(ctx, g, r, o, &[t]);\n",
            "put", "atomic"
        );
        let f = lint_str(&too_far);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "atomic-protocol");
        assert_eq!(f[0].line, 5);
    }

    #[test]
    fn atomic_rule_waiver_works() {
        let src = format!(
            "// scioto-lint: allow(atomic-protocol)\narmci.{}_i64s_{}(ctx, g, r, o, 3);\n",
            "get", "atomic"
        );
        assert!(lint_str(&src).is_empty());
    }

    #[test]
    fn real_tree_is_clean() {
        // The repo root is two levels up from this crate.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("workspace root");
        let findings: Vec<Finding> = ["crates", "src"]
            .iter()
            .map(|d| root.join(d))
            .filter(|p| p.is_dir())
            .flat_map(|p| lint_tree(&p).expect("walk"))
            .collect();
        assert!(
            findings.is_empty(),
            "lint findings in tree:\n{}",
            findings
                .iter()
                .map(|f| f.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
