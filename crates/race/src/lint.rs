//! `scioto-lint`: a zero-dependency source scanner for the repo's
//! hermeticity and determinism invariants, v2 — token-based.
//!
//! v1 scanned raw text line by line; v2 lexes every file with the
//! in-tree Rust lexer ([`crate::lexer`]) and walks the token stream.
//! That solves the scanner's three classic problems once, centrally:
//! string literals that merely *mention* a banned path are invisible to
//! code rules, commented-out code neither triggers nor hides findings,
//! and constructs split across lines (multi-line `use` groups, spilled
//! call arguments) are ordinary token sequences.
//!
//! Rules (each can be waived per-site with a `scioto-lint: allow(<rule>)`
//! comment on the offending line or the line immediately above):
//!
//! * `std-sync` — ambient `Mutex`/`RwLock`/`Condvar` under the std sync
//!   module are banned outside `crates/det`; all blocking primitives
//!   must come from `scioto_det::sync` so lock behaviour stays
//!   deterministic and poison-free (`.lock()` returns the guard
//!   directly).
//! * `wallclock` — the std time module and ambient `rand::` paths are
//!   banned everywhere; virtual time comes from the simulator clock and
//!   randomness from the in-tree deterministic RNG. For std time the
//!   per-line waiver is honored only inside the sanctioned file
//!   allowlist ([`SANCTIONED_TIME_FILES`]): the runtime's one wall-clock
//!   source (`crates/det/src/clock.rs`, wrapping `Instant` behind
//!   `MonoClock`) and the bench timing harness. Anywhere else a waiver
//!   comment does not suppress the finding.
//! * `trace-closure` — trace emission sites must pass a deferred
//!   closure (`ctx.trace(|| TraceEvent::...)`), never a pre-built
//!   event, so disabled tracing costs one branch and zero construction.
//! * `lock-unwrap` — `unwrap`/`expect` chained onto `.lock()` is
//!   banned; the in-tree mutex cannot poison and returns the guard
//!   directly, so an `unwrap` signals a foreign lock sneaking in.
//! * `atomic-protocol` — every protocol-atomic call site
//!   (`put_atomic` / `get_atomic` / `put_i64s_atomic` /
//!   `get_i64s_atomic`) must name the ordering protocol that makes the
//!   unfenced access safe, in a comment on the same line or within
//!   three lines above containing the word `protocol`. The atomic
//!   markers exempt accesses from the race checker, so an unexplained
//!   one is an unexplained suppression. (The *semantic* side of this
//!   rule — whether the trace actually obeys the declared protocol —
//!   is checked by [`crate::predict`].)
//! * `unsafe-audit` — new in v2, impossible to express textually:
//!   every `unsafe` block (`unsafe {`) and `unsafe impl` must carry a
//!   comment containing `SAFETY:` naming the invariant, on the same
//!   line or within three lines above. `unsafe fn` declarations are
//!   exempt (their contract lives in their doc comment; the *callers*
//!   are the audited `unsafe {` sites).
//!
//! Waiver totals are ratcheted: [`waiver_stats`] counts live waiver
//! comments per rule, the `scioto-lint --stats` output is pinned in
//! `results/lint_waivers.txt`, and `verify.sh` fails if any rule's
//! count grows without a `--bless`.

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

use crate::lexer::{lex, Tok, TokKind};

/// One lint violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// File the violation is in.
    pub path: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Rule slug, e.g. `std-sync`.
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// Every rule the scanner knows, sorted; the `--stats` output enumerates
/// exactly this list so the ratchet file's shape is stable.
pub const ALL_RULES: &[&str] = &[
    "atomic-protocol",
    "lock-unwrap",
    "std-sync",
    "trace-closure",
    "unsafe-audit",
    "wallclock",
];

/// The only files where a `wallclock` waiver on a std-time line is
/// honored: the runtime's single wall-clock source and the bench timing
/// harness (which times real benchmark iterations by definition).
/// Matched as path suffixes so absolute and relative invocations agree.
pub const SANCTIONED_TIME_FILES: &[&str] = &[
    "crates/det/src/clock.rs",
    "crates/bench/benches/queue_ops.rs",
    "crates/bench/src/benchjson.rs",
    "crates/bench/src/tinybench.rs",
];

/// Is `path` on the std-time allowlist?
fn time_sanctioned(path: &Path) -> bool {
    let p = path.to_string_lossy().replace('\\', "/");
    SANCTIONED_TIME_FILES.iter().any(|s| p.ends_with(s))
}

/// Per-file lexed view shared by all rules: the code tokens (comments
/// stripped) and the comment text attributed to each source line.
struct FileView<'a> {
    src: &'a str,
    /// Non-comment tokens, in source order.
    code: Vec<Tok>,
    /// line number → concatenated comment text appearing on that line
    /// (multi-line block comments contribute to every line they span).
    comments: BTreeMap<usize, String>,
}

impl<'a> FileView<'a> {
    fn new(src: &'a str) -> Self {
        let toks = lex(src);
        let mut code = Vec::with_capacity(toks.len());
        let mut comments: BTreeMap<usize, String> = BTreeMap::new();
        for t in toks {
            match t.kind {
                TokKind::LineComment | TokKind::BlockComment => {
                    for (k, part) in t.text(src).split('\n').enumerate() {
                        comments.entry(t.line + k).or_default().push_str(part);
                    }
                }
                _ => code.push(t),
            }
        }
        FileView { src, code, comments }
    }

    /// Text of code token `i` (empty past the end).
    fn t(&self, i: usize) -> &str {
        self.code.get(i).map(|t| t.text(self.src)).unwrap_or("")
    }

    /// Is code token `i` an identifier with text `s`?
    fn id(&self, i: usize, s: &str) -> bool {
        matches!(self.code.get(i), Some(t) if t.kind == TokKind::Ident) && self.t(i) == s
    }

    /// Is code token `i` punctuation `s`?
    fn p(&self, i: usize, s: &str) -> bool {
        matches!(self.code.get(i), Some(t) if t.kind == TokKind::Punct) && self.t(i) == s
    }

    /// Does a comment on `line` or the line above carry `allow(rule)`?
    fn waived(&self, line: usize, rule: &str) -> bool {
        let marker = format!("scioto-lint: allow({rule})");
        self.comment_has(line, &marker) || (line > 1 && self.comment_has(line - 1, &marker))
    }

    /// Does the comment text on `line` contain `needle`?
    fn comment_has(&self, line: usize, needle: &str) -> bool {
        self.comments.get(&line).is_some_and(|c| c.contains(needle))
    }

    /// Does any comment in `[line-back, line]` contain `needle`?
    fn comment_within(&self, line: usize, back: usize, needle: &str) -> bool {
        (line.saturating_sub(back)..=line).any(|l| self.comment_has(l, needle))
    }
}

/// Lint one file's contents. `det_exempt` relaxes the `std-sync` rule
/// (crates/det is the one place allowed to wrap the ambient primitives).
pub fn lint_source(path: &Path, src: &str, det_exempt: bool) -> Vec<Finding> {
    let v = FileView::new(src);
    let mut out = Vec::new();
    let mut push = |line: usize, rule: &'static str, message: String| {
        out.push(Finding { path: path.to_path_buf(), line, rule, message });
    };

    let banned_sync = ["Mutex", "RwLock", "Condvar"];
    let atomic_calls = ["put_atomic", "get_atomic", "put_i64s_atomic", "get_i64s_atomic"];

    for i in 0..v.code.len() {
        let line = v.code[i].line;

        // --- std-sync ---------------------------------------------------
        // `std :: sync :: …` — scan the rest of the statement (to the
        // terminating `;`) for a banned primitive, which covers both
        // inline paths and multi-line `use` groups.
        if !det_exempt
            && v.id(i, "std")
            && v.p(i + 1, "::")
            && v.id(i + 2, "sync")
            && v.p(i + 3, "::")
            && !v.waived(line, "std-sync")
        {
            let mut j = i + 4;
            let hit = loop {
                if j >= v.code.len() || j > i + 128 || v.p(j, ";") {
                    break None;
                }
                if let Some(b) = banned_sync.iter().find(|b| v.id(j, b)) {
                    break Some(*b);
                }
                j += 1;
            };
            if let Some(b) = hit {
                push(
                    line,
                    "std-sync",
                    format!(
                        "ambient std sync {b} is banned outside crates/det; \
                         use scioto_det::sync::{b}"
                    ),
                );
            }
        }

        // --- wallclock --------------------------------------------------
        // `std :: time` — waivers count only on the sanctioned allowlist.
        if v.id(i, "std") && v.p(i + 1, "::") && v.id(i + 2, "time")
            && !(time_sanctioned(path) && v.waived(line, "wallclock"))
        {
            push(
                line,
                "wallclock",
                "std time is banned; use the simulator's virtual clock (Ctx::now_ns) \
                 or, for real wall time, scioto_det::MonoClock — waivers are honored \
                 only in the sanctioned clock/bench-harness files"
                    .to_string(),
            );
        }
        // Ambient `rand::` path root: `rand` not preceded by `::` (which
        // would make it `scioto_det::rand` or similar) or `.` (a method).
        if v.id(i, "rand")
            && v.p(i + 1, "::")
            && !(i > 0 && (v.p(i - 1, "::") || v.p(i - 1, ".")))
            && !v.waived(line, "wallclock")
        {
            push(
                line,
                "wallclock",
                "ambient rand:: is banned; use the in-tree deterministic RNG \
                 (scioto_det::rng)"
                    .to_string(),
            );
        }

        // --- trace-closure ----------------------------------------------
        // `.trace(` / `.emit(` whose arguments build a TraceEvent with no
        // closure bars before it. Token depth tracking makes the spilled
        // multi-line case identical to the single-line one.
        if v.p(i, ".") && (v.id(i + 1, "trace") || v.id(i + 1, "emit")) && v.p(i + 2, "(") {
            let mut depth = 1usize;
            let mut saw_bars = false;
            let mut j = i + 3;
            while j < v.code.len() && depth > 0 && j < i + 256 {
                if v.p(j, "(") {
                    depth += 1;
                } else if v.p(j, ")") {
                    depth -= 1;
                } else if v.p(j, "||") {
                    saw_bars = true;
                } else if v.id(j, "TraceEvent") && v.p(j + 1, "::") {
                    if !saw_bars && !v.waived(line, "trace-closure") {
                        push(
                            v.code[j].line,
                            "trace-closure",
                            "trace emission must defer event construction: \
                             pass a closure (`|| TraceEvent::..`), not a built event"
                                .to_string(),
                        );
                    }
                    break;
                }
                j += 1;
            }
        }

        // --- lock-unwrap ------------------------------------------------
        // `. lock ( ) . unwrap (`  /  `. lock ( ) . expect (`.
        if v.p(i, ".")
            && v.id(i + 1, "lock")
            && v.p(i + 2, "(")
            && v.p(i + 3, ")")
            && v.p(i + 4, ".")
            && (v.id(i + 5, "unwrap") || v.id(i + 5, "expect"))
            && v.p(i + 6, "(")
            && !v.waived(line, "lock-unwrap")
        {
            push(
                line,
                "lock-unwrap",
                "unwrap/expect on a lock result; scioto_det::sync locks \
                 cannot poison and return the guard directly"
                    .to_string(),
            );
        }

        // --- atomic-protocol --------------------------------------------
        // A protocol-atomic access is a race-checker exemption; the call
        // site must say which ordering protocol justifies it, in a
        // comment on the same line or within three lines above.
        if v.p(i, ".")
            && atomic_calls.iter().any(|c| v.id(i + 1, c))
            && v.p(i + 2, "(")
            && !v.waived(line, "atomic-protocol")
            && !v.comment_within(line, 3, "protocol")
        {
            push(
                line,
                "atomic-protocol",
                format!(
                    "`.{}(...)` call site must name its ordering protocol in a \
                     comment containing \"protocol\" on this line or within \
                     3 lines above",
                    v.t(i + 1)
                ),
            );
        }

        // --- unsafe-audit -----------------------------------------------
        // `unsafe {` blocks and `unsafe impl` need a SAFETY comment
        // naming the invariant within three lines. `unsafe fn` is exempt
        // (contract in docs; its callers are the audited sites), as are
        // `unsafe trait` / `unsafe extern` declarations.
        if v.id(i, "unsafe")
            && (v.p(i + 1, "{") || v.id(i + 1, "impl"))
            && !v.waived(line, "unsafe-audit")
            && !v.comment_within(line, 3, "SAFETY:")
        {
            let what = if v.p(i + 1, "{") { "unsafe block" } else { "unsafe impl" };
            push(
                line,
                "unsafe-audit",
                format!(
                    "{what} without a SAFETY comment: name the upheld invariant in a \
                     comment containing \"SAFETY:\" on this line or within 3 lines above"
                ),
            );
        }
    }
    out
}

/// Count live waiver comments per rule in one file's contents. Only
/// comment tokens count — a waiver marker inside a string literal (e.g.
/// a lint-test fixture) is not a waiver.
pub fn waiver_stats_source(src: &str) -> BTreeMap<String, usize> {
    let mut stats = BTreeMap::new();
    let marker = "scioto-lint: allow(";
    for t in lex(src) {
        if !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment) {
            continue;
        }
        let text = t.text(src);
        let mut at = 0;
        while let Some(pos) = text[at..].find(marker) {
            let start = at + pos + marker.len();
            if let Some(end) = text[start..].find(')') {
                let rule = &text[start..start + end];
                // Skip placeholder docs like `allow(<rule>)`.
                if rule.chars().all(|c| c.is_ascii_alphanumeric() || c == '-') && !rule.is_empty() {
                    *stats.entry(rule.to_string()).or_insert(0) += 1;
                }
                at = start + end;
            } else {
                break;
            }
        }
    }
    stats
}

/// Walk every `.rs` file under `root` (skipping `target/` and dot
/// directories), sorted for deterministic output.
fn rs_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut stack = vec![root.to_path_buf()];
    let mut files = Vec::new();
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let p = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if p.is_dir() {
                if name != "target" && !name.starts_with('.') {
                    stack.push(p);
                }
            } else if name.ends_with(".rs") {
                files.push(p);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Recursively lint every `.rs` file under `root`, skipping `target/`
/// build directories. Files whose path contains a `crates/det` component
/// are exempt from the `std-sync` rule.
pub fn lint_tree(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    for p in rs_files(root)? {
        let src = std::fs::read_to_string(&p)?;
        let det_exempt = p
            .components()
            .collect::<Vec<_>>()
            .windows(2)
            .any(|w| w[0].as_os_str() == "crates" && w[1].as_os_str() == "det");
        findings.extend(lint_source(&p, &src, det_exempt));
    }
    Ok(findings)
}

/// Waiver counts per rule across `roots`, with every known rule present
/// (zero-filled) so the `--stats` output shape never changes. Unknown
/// rule names found in waiver comments are included too — they count
/// against the ratchet rather than hiding.
pub fn waiver_stats(roots: &[PathBuf]) -> std::io::Result<BTreeMap<String, usize>> {
    let mut stats: BTreeMap<String, usize> =
        ALL_RULES.iter().map(|r| (r.to_string(), 0)).collect();
    for root in roots {
        for p in rs_files(root)? {
            let src = std::fs::read_to_string(&p)?;
            for (rule, n) in waiver_stats_source(&src) {
                *stats.entry(rule).or_insert(0) += n;
            }
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_str(src: &str) -> Vec<Finding> {
        lint_source(Path::new("fixture.rs"), src, false)
    }

    // Fixtures are plain string literals: the token-based scanner never
    // looks inside literals, so this file cannot flag itself.

    #[test]
    fn flags_planted_std_sync_mutex() {
        let f = lint_str("use std::sync::Mutex;\nfn f() {}\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "std-sync");
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn flags_multiline_use_group() {
        let f = lint_str("use std::sync::{\n    Arc,\n    RwLock,\n};\n");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "std-sync");
    }

    #[test]
    fn arc_and_atomics_are_fine() {
        let src = "use std::sync::Arc;\nuse std::sync::atomic::AtomicU64;\n";
        assert!(lint_str(src).is_empty());
    }

    #[test]
    fn det_crate_is_exempt_from_std_sync() {
        let src = "use std::sync::Mutex;\n";
        let path = Path::new("crates/det/src/sync.rs");
        assert!(lint_source(path, src, true).is_empty());
    }

    #[test]
    fn string_literals_are_invisible_to_code_rules() {
        // The v1 textual scanner had to assemble its own patterns with
        // format! to avoid flagging itself; v2 makes literals inert.
        let src = "let s = \"use std::sync::Mutex; std::time rand:: .lock().unwrap()\";\n";
        assert!(lint_str(src).is_empty(), "{:?}", lint_str(src));
    }

    #[test]
    fn flags_wallclock_and_ambient_rand() {
        let f = lint_str("use std::time::Instant;\nlet x = rand::random();\n");
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|f| f.rule == "wallclock"));
    }

    #[test]
    fn in_tree_rng_path_is_not_ambient_rand() {
        let src = "use scioto_det::rand::Pcg32;\nlet r = det::rand::seed(7);\n";
        assert!(lint_str(src).is_empty());
    }

    #[test]
    fn waiver_comment_suppresses_finding() {
        // Marker built with format! so it is not a live waiver comment
        // in *this* file's stats.
        let src = format!("// scioto-lint: {}(wallclock)\nlet x = rand::random();\n", "allow");
        assert!(lint_str(&src).is_empty());
    }

    #[test]
    fn time_waiver_is_honored_only_in_sanctioned_files() {
        let src = format!(
            "use std::time::Instant; // scioto-lint: {}(wallclock)\n",
            "allow"
        );
        for ok in super::SANCTIONED_TIME_FILES {
            assert!(
                lint_source(Path::new(ok), &src, ok.contains("crates/det")).is_empty(),
                "waiver must be honored in {ok}"
            );
        }
        // Anywhere else the same waiver is dead weight.
        let f = lint_source(Path::new("crates/sim/src/kernel.rs"), &src, false);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "wallclock");
        assert!(f[0].message.contains("MonoClock"), "{}", f[0].message);
    }

    #[test]
    fn sanctioned_files_still_need_per_line_waivers() {
        // The allowlist widens where waivers *work*, not what is allowed
        // bare: an unwaived std-time line is flagged even in clock.rs.
        let src = "use std::time::Instant;\n";
        let f = lint_source(Path::new("crates/det/src/clock.rs"), src, true);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "wallclock");
    }

    #[test]
    fn flags_eager_trace_event_construction() {
        let f = lint_str("ctx.trace(TraceEvent::Block);\n");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "trace-closure");

        let f = lint_str("ctx.trace(\n    TraceEvent::Block,\n);\n");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn deferred_closure_emission_is_fine() {
        let src = "ctx.trace(|| TraceEvent::Block);\n\
                   self.emit(rank, || TraceEvent::Steal { victim });\n";
        assert!(lint_str(src).is_empty());
    }

    #[test]
    fn flags_lock_unwrap() {
        let f = lint_str("let g = m.lock().unwrap();\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "lock-unwrap");
        let f = lint_str("let g = m.lock().expect(\"poisoned\");\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "lock-unwrap");
    }

    #[test]
    fn block_comments_hide_banned_code() {
        let src = "/* use std::sync::Mutex; */\nfn f() {}\n/*\nuse std::time::Instant;\n\
                   /* let g = m.lock().unwrap(); */\nstill commented\n*/\nfn g() {}\n";
        assert!(lint_str(src).is_empty(), "{:?}", lint_str(src));
    }

    #[test]
    fn code_after_block_comment_close_is_still_linted() {
        let f = lint_str("/* prose */ use std::time::Instant;\n");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "wallclock");
    }

    #[test]
    fn block_comment_does_not_hide_following_lines() {
        let f = lint_str("/*\nprose\n*/\nuse std::sync::Mutex;\n");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 4);
    }

    #[test]
    fn flags_undocumented_atomic_call() {
        let f = lint_str("armci.put_atomic(ctx, g, rank, off, &buf);\n");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "atomic-protocol");
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn protocol_comment_satisfies_atomic_rule() {
        // Same line, 1 above, and exactly 3 above all count; 4 above
        // does not.
        let same = "armci.get_atomic(ctx, g, r, o, &mut b); // protocol: single-writer slot\n";
        assert!(lint_str(same).is_empty());
        let above = "// protocol: owner-only tail word\nlet x = 1;\nlet y = 2;\n\
                     armci.put_i64s_atomic(ctx, g, r, o, &[t]);\n";
        assert!(lint_str(above).is_empty());
        let too_far = "// protocol: owner-only tail word\nlet x = 1;\nlet y = 2;\nlet z = 3;\n\
                       armci.put_i64s_atomic(ctx, g, r, o, &[t]);\n";
        let f = lint_str(too_far);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "atomic-protocol");
        assert_eq!(f[0].line, 5);
    }

    #[test]
    fn atomic_rule_waiver_works() {
        let src = format!(
            "// scioto-lint: {}(atomic-protocol)\narmci.get_i64s_atomic(ctx, g, r, o, 3);\n",
            "allow"
        );
        assert!(lint_str(&src).is_empty());
    }

    #[test]
    fn protocol_word_in_string_does_not_satisfy_atomic_rule() {
        // v1 looked at raw line text, so a string containing "protocol"
        // could bless an atomic call; v2 requires a comment.
        let src = "let s = \"protocol\"; armci.put_atomic(ctx, g, r, o, &b);\n";
        let f = lint_str(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "atomic-protocol");
    }

    #[test]
    fn flags_unsafe_block_without_safety_comment() {
        let f = lint_str("fn f(p: *mut u8) { unsafe { *p = 0 } }\n");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "unsafe-audit");
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn safety_comment_satisfies_unsafe_audit() {
        // Same line, directly above, and exactly 3 above all count.
        let same = "fn f(p: *mut u8) { unsafe { *p = 0 } } // SAFETY: p is valid\n";
        assert!(lint_str(same).is_empty());
        let above = "// SAFETY: caller guarantees exclusive access to p.\n\
                     fn f(p: *mut u8) {\nlet q = p;\nunsafe { *q = 0 }\n}\n";
        assert!(lint_str(above).is_empty(), "{:?}", lint_str(above));
        let too_far = "// SAFETY: stale comment.\nlet a = 1;\nlet b = 2;\nlet c = 3;\n\
                       fn f(p: *mut u8) { unsafe { *p = 0 } }\n";
        let f = lint_str(too_far);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 5);
    }

    #[test]
    fn unsafe_impl_needs_safety_comment_but_unsafe_fn_does_not() {
        let f = lint_str("unsafe impl Sync for RankCell {}\n");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "unsafe-audit");
        // `unsafe fn` declares a contract, it does not discharge one.
        assert!(lint_str("unsafe fn set_task(t: *mut u8) {}\n").is_empty());
        // With a SAFETY comment the impl is fine.
        let ok = "// SAFETY: RankCell is only touched by its owning fiber.\n\
                  unsafe impl Sync for RankCell {}\n";
        assert!(lint_str(ok).is_empty());
    }

    #[test]
    fn unsafe_in_comment_or_string_is_not_audited() {
        let src = "// an unsafe { example } in prose\nlet s = \"unsafe { }\";\n";
        assert!(lint_str(src).is_empty());
    }

    #[test]
    fn unsafe_audit_waiver_works() {
        let src = format!(
            "// scioto-lint: {}(unsafe-audit)\nfn f(p: *mut u8) {{ unsafe {{ *p = 0 }} }}\n",
            "allow"
        );
        assert!(lint_str(&src).is_empty());
    }

    #[test]
    fn waiver_stats_count_comments_not_strings() {
        let src = format!(
            "// scioto-lint: {a}(wallclock)\n\
             /* scioto-lint: {a}(wallclock) */\n\
             let s = \"scioto-lint: {a}(std-sync)\";\n\
             // scioto-lint: {a}(unsafe-audit)\n",
            a = "allow"
        );
        let stats = waiver_stats_source(&src);
        assert_eq!(stats.get("wallclock"), Some(&2));
        assert_eq!(stats.get("unsafe-audit"), Some(&1));
        assert_eq!(stats.get("std-sync"), None, "string-literal marker must not count");
    }

    #[test]
    fn waiver_stats_skip_doc_placeholders() {
        let src = format!("// waive with scioto-lint: {}(<rule>) on the line\n", "allow");
        assert!(waiver_stats_source(&src).is_empty());
    }

    #[test]
    fn real_tree_is_clean() {
        // The repo root is two levels up from this crate.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("workspace root");
        let findings: Vec<Finding> = ["crates", "src"]
            .iter()
            .map(|d| root.join(d))
            .filter(|p| p.is_dir())
            .flat_map(|p| lint_tree(&p).expect("walk"))
            .collect();
        assert!(
            findings.is_empty(),
            "lint findings in tree:\n{}",
            findings
                .iter()
                .map(|f| f.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
