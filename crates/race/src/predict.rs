//! `scioto-predict`: sync-preserving predictive race detection and
//! protocol-atomicity sanity over deterministic traces.
//!
//! # Why prediction
//!
//! The happens-before engine ([`crate::hb`]) certifies the one schedule
//! that actually ran: every release→acquire edge it consumes is an
//! ordering the OS (or the virtual-time kernel) happened to pick, not
//! one the program demanded. Two critical sections on the same lock are
//! mutually exclusive, but if their bodies touch *disjoint* data the
//! lock imposes no ordering on the surrounding accesses — another
//! schedule could run them in the opposite order, and any access pair
//! that was ordered only through that accidental edge becomes a real
//! race. This module re-replays the trace with a *weak* (WCP-style
//! sync-preserving) relation that drops release→acquire edges between
//! non-conflicting critical sections, and reports every conflicting
//! access pair that is weak-unordered but strong-ordered: a race the
//! observed run masked, attributed to the masking lock and a concrete
//! witness reordering (swap the two non-conflicting sections).
//!
//! Soundness shape: the weak relation keeps program order, all
//! message/barrier/TD edges, and release→acquire edges between
//! critical sections whose footprints conflict (at 8-byte word
//! granularity, write against read-or-write) — exactly the edges any
//! schedule of the same trace must respect. Dropping the rest
//! under-approximates ordering, so predictions are candidate races
//! with a syntactic witness, while an empty prediction on top of a
//! clean HB check certifies every schedule that differs only by
//! commuting non-conflicting critical sections. The full soundness
//! argument lives in DESIGN.md ("Predictive analysis & lint v2").
//!
//! # Protocol atomicity
//!
//! The runtime's `put_atomic`/`get_atomic` markers exempt single-word
//! protocol accesses from race checking; `scioto-lint` forces every
//! call site to *name* its ordering protocol in a comment. This module
//! adds the semantic half ([`check_protocols`]): every word that ever
//! sees an atomic-marked access must match one of the declared
//! protocol shapes across the whole trace —
//!
//! * **single-writer** — all writes to the word come from one rank;
//! * **CAS-chain** — every write is an inherently-atomic `acc`/`rmw`;
//! * **owner-locked** — a common lock is held across every write, and
//!   every plain (non-atomic) read holds it too (atomic reads ride the
//!   protocol and are exempt);
//! * **marked-flag** — every access to the word, read or write from
//!   every rank, carries the atomic mark: the fully-declared
//!   single-word discipline (e.g. the TD dirty flag's idempotent blind
//!   stores, read-and-cleared by the owner).
//!
//! A word matching none of the four is an unexplained suppression:
//! the atomic marker is hiding accesses the race checker should see.

use std::collections::{BTreeSet, HashMap};
use std::fmt;

use scioto_sim::{RemoteOpKind, Trace, TraceEvent, WaveDir};

use crate::hb::{attribute, AccessInfo};

type LockKey = (u32, u32, u32);
type WordKey = (u32, u32, u64);
type WaveKey = (u32, WaveDir, u32);

fn join(into: &mut [u64], from: &[u64]) {
    for (a, b) in into.iter_mut().zip(from) {
        *a = (*a).max(*b);
    }
}

fn td_parent(rank: u32) -> Option<u32> {
    (rank > 0).then(|| (rank - 1) / 2)
}

fn td_children(rank: u32, n: u32) -> impl Iterator<Item = u32> {
    [2 * rank + 1, 2 * rank + 2]
        .into_iter()
        .filter(move |c| *c < n)
}

/// Words overlapped by a byte range (8-byte granularity).
fn word_range(offset: u64, bytes: u32) -> std::ops::RangeInclusive<u64> {
    let last = offset + u64::from(bytes.max(1)) - 1;
    (offset / 8)..=(last / 8)
}

/// One predicted (schedule-masked) race: conflicting accesses that are
/// unordered under the sync-preserving weak relation but were ordered in
/// the observed run only through a release→acquire edge between two
/// non-conflicting critical sections.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PredictedRace {
    /// Rank whose segment slice holds the word(s).
    pub owner: u32,
    /// Segment id.
    pub seg: u32,
    /// Lowest conflicting 8-byte word index.
    pub word: u64,
    /// Highest conflicting 8-byte word index.
    pub word_hi: u64,
    /// Exact number of distinct conflicting words collapsed into this
    /// report.
    pub word_count: u64,
    /// The earlier-replayed access of the unordered pair.
    pub first: AccessInfo,
    /// The later-replayed access of the unordered pair.
    pub second: AccessInfo,
    /// The masking lock `(target, set, idx)` whose accidental ordering
    /// hid the race in the observed schedule.
    pub lock: LockKey,
    /// Acquire generation of the dropped edge on the masking lock: the
    /// observed run ordered critical section `gen - 1` before `gen`.
    pub gen: u64,
    /// Human-readable witness reordering that exposes the race.
    pub witness: String,
}

impl fmt::Display for PredictedRace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "predicted race on rank {} seg {} word{} {} (bytes {}..{}), masked by lock \
             (target {}, set {}, idx {}):",
            self.owner,
            self.seg,
            if self.word_count > 1 { "s" } else { "" },
            if self.word_count > 1 {
                format!("{}..={} ({} words)", self.word, self.word_hi, self.word_count)
            } else {
                format!("{}", self.word)
            },
            self.word * 8,
            self.word_hi * 8 + 8,
            self.lock.0,
            self.lock.1,
            self.lock.2,
        )?;
        for (tag, a) in [("first", &self.first), ("second", &self.second)] {
            write!(
                f,
                "  {tag}: rank {} t={}ns clock={} {} ({}{});",
                a.rank,
                a.t_ns,
                a.clock,
                a.op,
                if a.write { "write" } else { "read" },
                if a.atomic { ", atomic" } else { "" },
            )?;
            match &a.nearest_sync {
                Some((t, s)) => writeln!(f, " last sync: {s} at t={t}ns")?,
                None => writeln!(f, " no prior sync on this rank")?,
            }
        }
        writeln!(f, "  witness: {}", self.witness)
    }
}

/// One word whose atomic-marked access pattern matches no declared
/// ordering protocol.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AtomicityViolation {
    pub owner: u32,
    pub seg: u32,
    pub word: u64,
    /// Distinct ranks that wrote the word.
    pub writers: Vec<u32>,
    /// Why each protocol shape failed, in order
    /// single-writer / CAS-chain / owner-locked / marked-flag.
    pub detail: String,
}

impl fmt::Display for AtomicityViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "atomicity violation on rank {} seg {} word {}: protocol word matches no \
             declared ordering protocol ({})",
            self.owner, self.seg, self.word, self.detail
        )
    }
}

/// Outcome of a predictive check.
#[derive(Debug)]
pub struct PredictReport {
    /// Predicted schedule-masked races, deduped by access-site pair.
    pub predicted: Vec<PredictedRace>,
    /// Protocol words whose access pattern matches no declared protocol.
    pub atomicity: Vec<AtomicityViolation>,
    /// Events replayed.
    pub events: u64,
    /// Total release→acquire lock edges in the trace.
    pub lock_edges: u64,
    /// Lock edges dropped by the weak relation (non-conflicting
    /// adjacent critical sections).
    pub dropped_edges: u64,
    /// Distinct words carrying at least one atomic-marked access.
    pub protocol_words: usize,
}

impl PredictReport {
    /// True when prediction found nothing beyond the observed-schedule
    /// check.
    pub fn is_clean(&self) -> bool {
        self.predicted.is_empty() && self.atomicity.is_empty()
    }
}

impl fmt::Display for PredictReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "predict: {} event(s), {}/{} lock edge(s) dropped as non-conflicting, \
             {} protocol word(s), {} predicted race(s), {} atomicity violation(s)",
            self.events,
            self.dropped_edges,
            self.lock_edges,
            self.protocol_words,
            self.predicted.len(),
            self.atomicity.len()
        )?;
        for r in &self.predicted {
            write!(f, "{r}")?;
        }
        for v in &self.atomicity {
            write!(f, "{v}")?;
        }
        Ok(())
    }
}

/// Per-critical-section footprint: word → wrote?
type Footprint = HashMap<WordKey, bool>;

/// Compute the footprint of every critical section `(lock, generation)`:
/// the words accessed while the section is held, with a write flag.
/// Purely per-rank program order — no cross-rank scheduling needed.
fn footprints(trace: &Trace) -> HashMap<(LockKey, u64), Footprint> {
    let mut fp: HashMap<(LockKey, u64), Footprint> = HashMap::new();
    for (rank, events) in trace.events.iter().enumerate() {
        let mut held: Vec<(LockKey, u64)> = Vec::new();
        for ev in events {
            match &ev.event {
                TraceEvent::LockAcq { target, set, idx, seq } => {
                    held.push(((*target, *set, *idx), *seq));
                }
                TraceEvent::LockRel { target, set, idx, seq } => {
                    held.retain(|(k, s)| *k != (*target, *set, *idx) || *s != *seq);
                }
                TraceEvent::RemoteOp { kind, target, seg, offset, bytes, .. } => {
                    for w in word_range(*offset, *bytes) {
                        for cs in &held {
                            let e = fp.entry(*cs).or_default().entry((*target, *seg, w));
                            *e.or_insert(false) |= kind.is_write();
                        }
                    }
                }
                TraceEvent::LocalAccess { seg, offset, bytes, write, .. } => {
                    for w in word_range(*offset, *bytes) {
                        for cs in &held {
                            let e = fp.entry(*cs).or_default().entry((rank as u32, *seg, w));
                            *e.or_insert(false) |= *write;
                        }
                    }
                }
                _ => {}
            }
        }
    }
    fp
}

/// Do two critical-section footprints conflict (common word, at least
/// one side writing it)?
fn conflicts(a: &Footprint, b: &Footprint) -> bool {
    let (small, big) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    small
        .iter()
        .any(|(w, wr_s)| big.get(w).is_some_and(|wr_b| *wr_s || *wr_b))
}

/// A release→acquire edge the weak relation dropped: critical sections
/// `gen - 1` (on `producer`) and `gen` (on `consumer`) of `lock` do not
/// conflict, so another schedule may run them in the opposite order.
struct SkippedEdge {
    lock: LockKey,
    gen: u64,
    producer: u32,
    consumer: u32,
    /// Consumer's own clock component just after the acquire — anything
    /// with `strong[consumer] >= cons_own` is downstream of the edge.
    cons_own: u64,
}

/// Frontier record of one access (most recent per `(rank, atomic)`
/// class and word, as in the HB engine).
#[derive(Clone, Copy)]
struct Rec {
    rank: u32,
    ev_idx: u32,
    clock: u64,
    write: bool,
    atomic: bool,
}

#[derive(Default)]
struct WordFrontier {
    writes: Vec<Rec>,
    reads: Vec<Rec>,
}

/// Run the sync-preserving predictive analysis: weak-relation replay
/// plus protocol-atomicity sanity. Fails on the same unanalyzable
/// traces as [`crate::hb::check_trace`] (dropped events, missing
/// producers).
pub fn predict(trace: &Trace) -> Result<PredictReport, String> {
    if let Some((rank, &d)) = trace.dropped.iter().enumerate().find(|(_, &d)| d > 0) {
        return Err(format!(
            "rank {rank} dropped {d} event(s); rerun with a larger trace ring \
             (--trace-ring) for an exact replay"
        ));
    }
    let n = trace.nranks();
    let n32 = n as u32;
    let fp = footprints(trace);
    let empty: Footprint = HashMap::new();
    let empty = &empty;

    // Producer totals, as in the HB engine.
    let mut msg_send_total: HashMap<(u32, u64), u32> = HashMap::new();
    let mut wave_total: HashMap<WaveKey, u64> = HashMap::new();
    let mut barrier_expect: HashMap<u64, u32> = HashMap::new();
    for (rank, events) in trace.events.iter().enumerate() {
        for e in events {
            match e.event {
                TraceEvent::MsgSend { dst, seq, .. } => {
                    *msg_send_total.entry((dst, seq)).or_default() += 1;
                }
                TraceEvent::TdWave { wave, dir, .. } => {
                    *wave_total.entry((rank as u32, dir, wave)).or_default() += 1;
                }
                TraceEvent::BarrierWait { epoch, .. } => {
                    *barrier_expect.entry(epoch).or_default() += 1;
                }
                _ => {}
            }
        }
    }

    let mut cursors = vec![0usize; n];
    let init_clocks = || -> Vec<Vec<u64>> {
        (0..n)
            .map(|r| {
                let mut c = vec![0u64; n];
                c[r] = 1;
                c
            })
            .collect()
    };
    // Strong = observed happens-before (identical to the HB engine);
    // weak = sync-preserving. Own components tick in lockstep so a
    // rank's position is directly comparable across the two.
    let mut strong: Vec<Vec<u64>> = init_clocks();
    let mut weak: Vec<Vec<u64>> = init_clocks();

    // Producer snapshots, each kept in both relations.
    let mut lock_rel: HashMap<(LockKey, u64), (Vec<u64>, Vec<u64>, u32)> = HashMap::new();
    let mut msg_send: HashMap<(u32, u64), (Vec<u64>, Vec<u64>)> = HashMap::new();
    let mut waves: HashMap<(WaveKey, u64), (Vec<u64>, Vec<u64>)> = HashMap::new();
    let mut wave_emitted: HashMap<WaveKey, u64> = HashMap::new();
    let mut wave_consumed: HashMap<(u32, WaveKey), u64> = HashMap::new();
    let mut barrier_arrived: HashMap<u64, Vec<usize>> = HashMap::new();
    let mut barrier_join: HashMap<u64, (Vec<u64>, Vec<u64>)> = HashMap::new();

    // Weak conflict state per (lock, word): release snapshot of the last
    // critical section that wrote the word, and the release snapshots of
    // reading sections since (the FastTrack read-set scheme lifted to
    // critical-section granularity). Joining these at acquire time gives
    // the rel→acq edges from every *conflicting* earlier section without
    // an O(generations²) pairwise scan.
    let mut last_writer: HashMap<(LockKey, WordKey), Vec<u64>> = HashMap::new();
    let mut readers_since: HashMap<(LockKey, WordKey), Vec<Vec<u64>>> = HashMap::new();

    let mut skipped: Vec<SkippedEdge> = Vec::new();
    let mut frontier: HashMap<WordKey, WordFrontier> = HashMap::new();
    // Raw predictions with their distinct-word sets, keyed by event pair
    // for exact word counting; site-pair dedup happens at the end.
    let mut raw: Vec<(PredictedRace, BTreeSet<u64>)> = Vec::new();
    let mut pair_idx: HashMap<((u32, u32), (u32, u32)), usize> = HashMap::new();

    let mut events_replayed = 0u64;
    let mut lock_edges = 0u64;
    let mut dropped_edges = 0u64;

    loop {
        let mut progressed = false;
        for r in 0..n {
            'stream: while cursors[r] < trace.events[r].len() {
                let ev = &trace.events[r][cursors[r]];
                // Phase 1: readiness on the strong relation (identical
                // scheduling to the HB engine), collecting the incoming
                // strong/weak joins without mutating consume state.
                let mut incoming: Option<(Vec<u64>, Vec<u64>)> = None;
                let mut wave_consumes: Vec<(u32, WaveKey)> = Vec::new();
                match &ev.event {
                    TraceEvent::LockAcq { target, set, idx, seq } => {
                        if *seq > 1 {
                            let key = (*target, *set, *idx);
                            match lock_rel.get(&(key, seq - 1)) {
                                Some((s_vc, _, _)) => {
                                    // Weak side: join every conflicting
                                    // earlier section via the per-word
                                    // conflict state, using this
                                    // section's own footprint.
                                    let mine = fp.get(&(key, *seq)).unwrap_or(empty);
                                    let mut w_vc = vec![0u64; n];
                                    for (word, wrote) in mine {
                                        if let Some(lw) = last_writer.get(&(key, *word)) {
                                            join(&mut w_vc, lw);
                                        }
                                        if *wrote {
                                            if let Some(rs) = readers_since.get(&(key, *word)) {
                                                for rv in rs {
                                                    join(&mut w_vc, rv);
                                                }
                                            }
                                        }
                                    }
                                    incoming = Some((s_vc.clone(), w_vc));
                                }
                                None => break 'stream,
                            }
                        }
                    }
                    TraceEvent::MsgRecv { seq, .. } => {
                        let key = (r as u32, *seq);
                        match msg_send.get(&key) {
                            Some((s_vc, w_vc)) => {
                                incoming = Some((s_vc.clone(), w_vc.clone()))
                            }
                            None => {
                                if msg_send_total.get(&key).copied().unwrap_or(0) == 0 {
                                    return Err(format!(
                                        "rank {r}: MsgRecv seq {seq} has no matching MsgSend \
                                         in the trace"
                                    ));
                                }
                                break 'stream;
                            }
                        }
                    }
                    TraceEvent::BarrierWait { epoch, .. } => {
                        if let Some((s_j, w_j)) = barrier_join.get(epoch) {
                            incoming = Some((s_j.clone(), w_j.clone()));
                        } else {
                            let arrived = barrier_arrived.entry(*epoch).or_default();
                            if !arrived.contains(&r) {
                                arrived.push(r);
                            }
                            let expect = barrier_expect.get(epoch).copied().unwrap_or(0);
                            if (arrived.len() as u32) < expect {
                                break 'stream;
                            }
                            let mut s_j = vec![0u64; n];
                            let mut w_j = vec![0u64; n];
                            for &p in arrived.iter() {
                                join(&mut s_j, &strong[p]);
                                join(&mut w_j, &weak[p]);
                            }
                            barrier_join.insert(*epoch, (s_j.clone(), w_j.clone()));
                            incoming = Some((s_j, w_j));
                        }
                    }
                    TraceEvent::TdWave { wave, dir, .. } => {
                        let mut s_j = vec![0u64; n];
                        let mut w_j = vec![0u64; n];
                        let mut have_any = false;
                        let mut blocked = false;
                        let producers: Vec<u32> = match dir {
                            WaveDir::Down | WaveDir::Term => {
                                td_parent(r as u32).into_iter().collect()
                            }
                            WaveDir::Up => td_children(r as u32, n32).collect(),
                        };
                        for p in producers {
                            let pkey = (p, *dir, *wave);
                            let total = wave_total.get(&pkey).copied().unwrap_or(0);
                            if total == 0 {
                                continue;
                            }
                            let ckey = (r as u32, pkey);
                            let k = wave_consumed.get(&ckey).copied().unwrap_or(0) + 1;
                            let want = k.min(total);
                            match waves.get(&(pkey, want)) {
                                Some((s_vc, w_vc)) => {
                                    join(&mut s_j, s_vc);
                                    join(&mut w_j, w_vc);
                                    have_any = true;
                                    wave_consumes.push(ckey);
                                }
                                None => {
                                    blocked = true;
                                    break;
                                }
                            }
                        }
                        if blocked {
                            break 'stream;
                        }
                        if have_any {
                            incoming = Some((s_j, w_j));
                        }
                    }
                    _ => {}
                }

                // Phase 2: commit.
                for ckey in wave_consumes {
                    *wave_consumed.entry(ckey).or_default() += 1;
                }
                if let Some((s_vc, w_vc)) = incoming {
                    join(&mut strong[r], &s_vc);
                    join(&mut weak[r], &w_vc);
                }
                match &ev.event {
                    TraceEvent::RemoteOp { kind, target, seg, offset, bytes, atomic } => {
                        record(
                            &mut frontier,
                            &mut raw,
                            &mut pair_idx,
                            trace,
                            &strong[r],
                            &weak[r],
                            &skipped,
                            &lock_rel,
                            Rec {
                                rank: r as u32,
                                ev_idx: cursors[r] as u32,
                                clock: strong[r][r],
                                write: kind.is_write(),
                                atomic: *atomic || kind.is_atomic(),
                            },
                            *target,
                            *seg,
                            *offset,
                            *bytes,
                        );
                    }
                    TraceEvent::LocalAccess { seg, offset, bytes, write, atomic } => {
                        record(
                            &mut frontier,
                            &mut raw,
                            &mut pair_idx,
                            trace,
                            &strong[r],
                            &weak[r],
                            &skipped,
                            &lock_rel,
                            Rec {
                                rank: r as u32,
                                ev_idx: cursors[r] as u32,
                                clock: strong[r][r],
                                write: *write,
                                atomic: *atomic,
                            },
                            r as u32,
                            *seg,
                            *offset,
                            *bytes,
                        );
                    }
                    TraceEvent::LockRel { target, set, idx, seq } => {
                        let key = (*target, *set, *idx);
                        // Publish the weak conflict state for this
                        // section's footprint before the clock tick.
                        if let Some(mine) = fp.get(&(key, *seq)) {
                            for (word, wrote) in mine {
                                if *wrote {
                                    last_writer.insert((key, *word), weak[r].clone());
                                    readers_since.remove(&(key, *word));
                                } else {
                                    readers_since
                                        .entry((key, *word))
                                        .or_default()
                                        .push(weak[r].clone());
                                }
                            }
                        }
                        lock_rel
                            .insert((key, *seq), (strong[r].clone(), weak[r].clone(), r as u32));
                        strong[r][r] += 1;
                        weak[r][r] += 1;
                    }
                    TraceEvent::MsgSend { dst, seq, .. } => {
                        msg_send.insert((*dst, *seq), (strong[r].clone(), weak[r].clone()));
                        strong[r][r] += 1;
                        weak[r][r] += 1;
                    }
                    TraceEvent::TdWave { wave, dir, .. } => {
                        let key = (r as u32, *dir, *wave);
                        let occ = wave_emitted.entry(key).or_default();
                        *occ += 1;
                        waves.insert((key, *occ), (strong[r].clone(), weak[r].clone()));
                        strong[r][r] += 1;
                        weak[r][r] += 1;
                    }
                    TraceEvent::BarrierWait { .. } => {
                        strong[r][r] += 1;
                        weak[r][r] += 1;
                    }
                    TraceEvent::LockAcq { target, set, idx, seq } => {
                        strong[r][r] += 1;
                        weak[r][r] += 1;
                        if *seq > 1 {
                            let key = (*target, *set, *idx);
                            lock_edges += 1;
                            let prev = fp.get(&(key, seq - 1)).unwrap_or(empty);
                            let mine = fp.get(&(key, *seq)).unwrap_or(empty);
                            if !conflicts(prev, mine) {
                                dropped_edges += 1;
                                let producer =
                                    lock_rel.get(&(key, seq - 1)).map(|(_, _, p)| *p).unwrap_or(0);
                                skipped.push(SkippedEdge {
                                    lock: key,
                                    gen: *seq,
                                    producer,
                                    consumer: r as u32,
                                    cons_own: strong[r][r],
                                });
                            }
                        }
                    }
                    _ => {}
                }
                cursors[r] += 1;
                events_replayed += 1;
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }

    if let Some(r) = (0..n).find(|&r| cursors[r] < trace.events[r].len()) {
        let ev = &trace.events[r][cursors[r]];
        return Err(format!(
            "replay deadlocked: rank {r} blocked at event {} ({:?} at t={}ns); \
             a synchronization producer is missing from the trace",
            cursors[r], ev.event, ev.t_ns
        ));
    }

    // Site-pair dedup: collapse reports sharing (owner, seg) and both
    // access shapes (rank/op/write/atomic each side) into one, with an
    // exact distinct-word count and collapsed offset range.
    let mut grouped: Vec<(PredictedRace, BTreeSet<u64>)> = Vec::new();
    let mut site_idx: HashMap<SiteKey, usize> = HashMap::new();
    for (p, word_set) in raw {
        let key = site_key(&p);
        match site_idx.get(&key) {
            Some(&i) => grouped[i].1.extend(word_set),
            None => {
                site_idx.insert(key, grouped.len());
                grouped.push((p, word_set));
            }
        }
    }
    let predicted: Vec<PredictedRace> = grouped
        .into_iter()
        .map(|(mut p, words)| {
            p.word = *words.iter().next().expect("non-empty word set");
            p.word_hi = *words.iter().next_back().expect("non-empty word set");
            p.word_count = words.len() as u64;
            p
        })
        .collect();

    let (atomicity, protocol_words) = check_protocols(trace);

    Ok(PredictReport {
        predicted,
        atomicity,
        events: events_replayed,
        lock_edges,
        dropped_edges,
        protocol_words,
    })
}

/// Access-site pair identity for dedup: where the word lives plus the
/// shape of both accesses (rank, op string, write/atomic class).
type SiteKey = (u32, u32, (u32, String, bool, bool), (u32, String, bool, bool));

fn site_key(p: &PredictedRace) -> SiteKey {
    (
        p.owner,
        p.seg,
        (p.first.rank, p.first.op.clone(), p.first.write, p.first.atomic),
        (p.second.rank, p.second.op.clone(), p.second.write, p.second.atomic),
    )
}

#[allow(clippy::too_many_arguments)]
fn record(
    frontier: &mut HashMap<WordKey, WordFrontier>,
    raw: &mut Vec<(PredictedRace, BTreeSet<u64>)>,
    pair_idx: &mut HashMap<((u32, u32), (u32, u32)), usize>,
    trace: &Trace,
    strong_cur: &[u64],
    weak_cur: &[u64],
    skipped: &[SkippedEdge],
    lock_rel: &HashMap<(LockKey, u64), (Vec<u64>, Vec<u64>, u32)>,
    rec: Rec,
    owner: u32,
    seg: u32,
    offset: u64,
    bytes: u32,
) {
    for w in word_range(offset, bytes) {
        let st = frontier.entry((owner, seg, w)).or_default();
        let mut consider = |prior: &Rec| {
            if prior.rank == rec.rank || (prior.atomic && rec.atomic) {
                return;
            }
            let weak_ordered = prior.clock <= weak_cur[prior.rank as usize];
            let strong_ordered = prior.clock <= strong_cur[prior.rank as usize];
            if weak_ordered || !strong_ordered {
                // Ordered in every schedule we model, or already a plain
                // HB race the observed-schedule checker reports.
                return;
            }
            let pair = ((prior.rank, prior.ev_idx), (rec.rank, rec.ev_idx));
            if let Some(&i) = pair_idx.get(&pair) {
                raw[i].1.insert(w);
                return;
            }
            // Attribute the masking edge: a dropped release→acquire
            // whose release is strong-downstream of `prior` and whose
            // acquire is strong-upstream of the current access. At least
            // one exists on any strong path between the two.
            let edge = skipped.iter().find(|e| {
                strong_cur[e.consumer as usize] >= e.cons_own
                    && lock_rel
                        .get(&(e.lock, e.gen - 1))
                        .is_some_and(|(s_vc, _, _)| s_vc[prior.rank as usize] >= prior.clock)
            });
            let Some(edge) = edge else {
                // No single dropped edge explains the ordering (it came
                // through a chain the footprint state collapsed); skip
                // rather than misattribute.
                return;
            };
            let witness = format!(
                "swap the non-conflicting critical sections on lock (target {}, set {}, \
                 idx {}): run rank {}'s section #{} before rank {}'s section #{}; the \
                 sections touch no common word, so the accesses become unordered",
                edge.lock.0,
                edge.lock.1,
                edge.lock.2,
                edge.consumer,
                edge.gen,
                edge.producer,
                edge.gen - 1,
            );
            pair_idx.insert(pair, raw.len());
            let mut words = BTreeSet::new();
            words.insert(w);
            raw.push((
                PredictedRace {
                    owner,
                    seg,
                    word: w,
                    word_hi: w,
                    word_count: 0,
                    first: attribute(
                        trace,
                        prior.rank,
                        prior.ev_idx,
                        prior.clock,
                        prior.write,
                        prior.atomic,
                    ),
                    second: attribute(trace, rec.rank, rec.ev_idx, rec.clock, rec.write, rec.atomic),
                    lock: edge.lock,
                    gen: edge.gen,
                    witness,
                },
                words,
            ));
        };
        for prior in &st.writes {
            consider(prior);
        }
        if rec.write {
            for prior in &st.reads {
                consider(prior);
            }
        }
        let list = if rec.write { &mut st.writes } else { &mut st.reads };
        match list
            .iter_mut()
            .find(|a| a.rank == rec.rank && a.atomic == rec.atomic)
        {
            Some(slot) => *slot = rec,
            None => list.push(rec),
        }
    }
}

/// One access to a protocol word, with the locks held when it ran.
struct ProtoAccess {
    rank: u32,
    write: bool,
    /// Inherently atomic fetch-and-op (`acc`/`rmw`).
    rmw: bool,
    /// Carried the runtime's atomic marker.
    marked: bool,
    held: Vec<LockKey>,
    ev_idx: u32,
}

/// Verify every atomic-marked protocol word against the declared
/// ordering protocols. Returns the violations and the number of
/// protocol words examined. Linear per-rank scan — no clocks needed,
/// the protocols constrain the access *pattern*, not its order.
pub fn check_protocols(trace: &Trace) -> (Vec<AtomicityViolation>, usize) {
    // Pass 1: which words are protocol words (any atomic-marked access)?
    let mut proto: BTreeSet<WordKey> = BTreeSet::new();
    for (rank, events) in trace.events.iter().enumerate() {
        for ev in events {
            match &ev.event {
                TraceEvent::RemoteOp { kind, target, seg, offset, bytes, atomic } => {
                    if *atomic || kind.is_atomic() {
                        for w in word_range(*offset, *bytes) {
                            proto.insert((*target, *seg, w));
                        }
                    }
                }
                TraceEvent::LocalAccess { seg, offset, bytes, atomic, .. } => {
                    if *atomic {
                        for w in word_range(*offset, *bytes) {
                            proto.insert((rank as u32, *seg, w));
                        }
                    }
                }
                _ => {}
            }
        }
    }
    // Pass 2: collect every access (atomic or plain) to protocol words,
    // with the lock context it ran under.
    let mut accesses: HashMap<WordKey, Vec<ProtoAccess>> = HashMap::new();
    for (rank, events) in trace.events.iter().enumerate() {
        let mut held: Vec<LockKey> = Vec::new();
        for (ev_idx, ev) in events.iter().enumerate() {
            match &ev.event {
                TraceEvent::LockAcq { target, set, idx, .. } => {
                    held.push((*target, *set, *idx));
                }
                TraceEvent::LockRel { target, set, idx, .. } => {
                    if let Some(p) = held.iter().rposition(|k| *k == (*target, *set, *idx)) {
                        held.remove(p);
                    }
                }
                TraceEvent::RemoteOp { kind, target, seg, offset, bytes, atomic } => {
                    for w in word_range(*offset, *bytes) {
                        let key = (*target, *seg, w);
                        if proto.contains(&key) {
                            accesses.entry(key).or_default().push(ProtoAccess {
                                rank: rank as u32,
                                write: kind.is_write(),
                                rmw: matches!(kind, RemoteOpKind::Acc | RemoteOpKind::Rmw),
                                marked: *atomic || kind.is_atomic(),
                                held: held.clone(),
                                ev_idx: ev_idx as u32,
                            });
                        }
                    }
                }
                TraceEvent::LocalAccess { seg, offset, bytes, write, atomic } => {
                    for w in word_range(*offset, *bytes) {
                        let key = (rank as u32, *seg, w);
                        if proto.contains(&key) {
                            accesses.entry(key).or_default().push(ProtoAccess {
                                rank: rank as u32,
                                write: *write,
                                rmw: false,
                                marked: *atomic,
                                held: held.clone(),
                                ev_idx: ev_idx as u32,
                            });
                        }
                    }
                }
                _ => {}
            }
        }
    }
    let mut violations = Vec::new();
    for key in &proto {
        let accs = match accesses.get(key) {
            Some(a) => a,
            None => continue,
        };
        let writes: Vec<&ProtoAccess> = accs.iter().filter(|a| a.write).collect();
        let mut writers: Vec<u32> = writes.iter().map(|a| a.rank).collect();
        writers.sort_unstable();
        writers.dedup();
        // single-writer: all writes from one rank.
        if writers.len() <= 1 {
            continue;
        }
        // CAS-chain: every write is an inherently atomic fetch-and-op.
        if writes.iter().all(|a| a.rmw) {
            continue;
        }
        // owner-locked: a common lock across all writes, with every
        // plain (unmarked) read also holding one of the common locks.
        let mut common: Vec<LockKey> = writes.first().map(|a| a.held.clone()).unwrap_or_default();
        for a in &writes {
            common.retain(|k| a.held.contains(k));
        }
        if !common.is_empty() {
            let plain_reads_locked = accs
                .iter()
                .filter(|a| !a.write && !a.marked)
                .all(|a| common.iter().any(|k| a.held.contains(k)));
            if plain_reads_locked {
                continue;
            }
        }
        // marked-flag: every access to the word — read or write, every
        // rank — carries the atomic mark, i.e. all participants declared
        // the single-word discipline (e.g. the TD dirty flag: idempotent
        // blind stores by thieves, read-and-cleared by the owner).
        if accs.iter().all(|a| a.marked) {
            continue;
        }
        let sample = writes
            .iter()
            .find(|a| !a.rmw)
            .or(writes.first())
            .expect("at least two writers");
        let unmarked = accs.iter().find(|a| !a.marked).expect("not fully marked");
        violations.push(AtomicityViolation {
            owner: key.0,
            seg: key.1,
            word: key.2,
            writers: writers.clone(),
            detail: format!(
                "writers from ranks {:?} (not single-writer); plain write by rank {} at \
                 event #{} (not CAS-chain); {} (not owner-locked); unmarked {} by rank {} \
                 at event #{} (not marked-flag)",
                writers,
                sample.rank,
                sample.ev_idx,
                if common.is_empty() {
                    "no lock held across all writes".to_string()
                } else {
                    "an unlocked plain read bypasses the common lock".to_string()
                },
                if unmarked.write { "write" } else { "read" },
                unmarked.rank,
                unmarked.ev_idx,
            ),
        });
    }
    (violations, proto.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use scioto_sim::StampedEvent;

    fn trace_of(ranks: Vec<Vec<(u64, TraceEvent)>>) -> Trace {
        let n = ranks.len();
        Trace {
            events: ranks
                .into_iter()
                .map(|evs| {
                    evs.into_iter()
                        .map(|(t_ns, event)| StampedEvent { t_ns, event })
                        .collect()
                })
                .collect(),
            dropped: vec![0; n],
            final_clock_ns: Vec::new(),
            wall_clock: false,
            hists: (0..n).map(|_| Default::default()).collect(),
            gauges: (0..n).map(|_| Default::default()).collect(),
        }
    }

    fn put(target: u32, offset: u64, bytes: u32) -> TraceEvent {
        TraceEvent::RemoteOp {
            kind: RemoteOpKind::Put,
            target,
            seg: 0,
            offset,
            bytes,
            atomic: false,
        }
    }

    fn local(offset: u64, bytes: u32, write: bool, atomic: bool) -> TraceEvent {
        TraceEvent::LocalAccess { seg: 0, offset, bytes, write, atomic }
    }

    fn acq(seq: u64) -> TraceEvent {
        TraceEvent::LockAcq { target: 0, set: 0, idx: 0, seq }
    }

    fn rel(seq: u64) -> TraceEvent {
        TraceEvent::LockRel { target: 0, set: 0, idx: 0, seq }
    }

    /// The canonical masked race: rank 0 writes word 0 before its
    /// critical section (touching word 8), rank 1 writes word 0 after
    /// its critical section (touching word 16). The sections share no
    /// data, so the observed rel→acq edge is accidental.
    fn masked_trace() -> Trace {
        trace_of(vec![
            vec![
                (1, local(0, 8, true, false)),
                (2, acq(1)),
                (3, local(64, 8, true, false)),
                (4, rel(1)),
            ],
            vec![
                (5, acq(2)),
                (6, local(128, 8, true, false)),
                (7, rel(2)),
                (8, put(0, 0, 8)),
            ],
        ])
    }

    #[test]
    fn masked_race_is_predicted_with_lock_and_witness() {
        let t = masked_trace();
        // The observed schedule is HB-clean…
        assert!(crate::hb::check_trace(&t).unwrap().is_clean());
        // …but prediction exposes the masked pair.
        let r = predict(&t).unwrap();
        assert_eq!(r.predicted.len(), 1, "{r}");
        let p = &r.predicted[0];
        assert_eq!((p.owner, p.seg, p.word, p.word_count), (0, 0, 0, 1));
        assert_eq!(p.first.rank, 0);
        assert_eq!(p.second.rank, 1);
        assert_eq!(p.lock, (0, 0, 0));
        assert_eq!(p.gen, 2);
        assert!(p.witness.contains("swap"), "{}", p.witness);
        assert_eq!(r.lock_edges, 1);
        assert_eq!(r.dropped_edges, 1);
    }

    #[test]
    fn conflicting_sections_keep_their_edge() {
        // Same shape, but both sections write the same word: the lock
        // ordering is semantic, not accidental — nothing is predicted.
        let t = trace_of(vec![
            vec![
                (1, local(0, 8, true, false)),
                (2, acq(1)),
                (3, local(64, 8, true, false)),
                (4, rel(1)),
            ],
            vec![
                (5, acq(2)),
                (6, put(0, 64, 8)),
                (7, rel(2)),
                (8, put(0, 0, 8)),
            ],
        ]);
        let r = predict(&t).unwrap();
        assert!(r.is_clean(), "{r}");
        assert_eq!(r.lock_edges, 1);
        assert_eq!(r.dropped_edges, 0);
    }

    #[test]
    fn read_read_sections_do_not_conflict() {
        // Both sections only *read* the same shared word — reads
        // commute, so the edge still drops and the outside race is
        // predicted.
        let t = trace_of(vec![
            vec![
                (1, local(0, 8, true, false)),
                (2, acq(1)),
                (3, local(64, 8, false, false)),
                (4, rel(1)),
            ],
            vec![
                (5, acq(2)),
                (6, TraceEvent::RemoteOp {
                    kind: RemoteOpKind::Get,
                    target: 0,
                    seg: 0,
                    offset: 64,
                    bytes: 8,
                    atomic: false,
                }),
                (7, rel(2)),
                (8, put(0, 0, 8)),
            ],
        ]);
        let r = predict(&t).unwrap();
        assert_eq!(r.dropped_edges, 1, "{r}");
        assert_eq!(r.predicted.len(), 1, "{r}");
    }

    #[test]
    fn plain_hb_races_are_not_re_reported() {
        let t = trace_of(vec![
            vec![(1, local(0, 8, true, false))],
            vec![(2, put(0, 0, 8))],
        ]);
        assert_eq!(crate::hb::check_trace(&t).unwrap().races.len(), 1);
        let r = predict(&t).unwrap();
        assert!(r.predicted.is_empty(), "{r}");
    }

    #[test]
    fn barrier_still_orders_across_dropped_lock_edges() {
        // The masked shape, but a barrier between the two outside writes:
        // the weak relation keeps barrier edges, so nothing is predicted.
        let t = trace_of(vec![
            vec![
                (1, local(0, 8, true, false)),
                (2, acq(1)),
                (3, local(64, 8, true, false)),
                (4, rel(1)),
                (5, TraceEvent::BarrierWait { dur_ns: 0, epoch: 0 }),
            ],
            vec![
                (5, TraceEvent::BarrierWait { dur_ns: 0, epoch: 0 }),
                (6, acq(2)),
                (7, local(128, 8, true, false)),
                (8, rel(2)),
                (9, put(0, 0, 8)),
            ],
        ]);
        let r = predict(&t).unwrap();
        assert_eq!(r.dropped_edges, 1, "{r}");
        assert!(r.predicted.is_empty(), "{r}");
    }

    #[test]
    fn transitive_conflict_chain_is_kept() {
        // CS1 (rank 0) writes word 8; CS2 (rank 1) reads word 8 — the
        // sections conflict through the lock-protected data, so the
        // surrounding accesses stay ordered.
        let t = trace_of(vec![
            vec![
                (1, local(0, 8, true, false)),
                (2, acq(1)),
                (3, local(64, 8, true, false)),
                (4, rel(1)),
            ],
            vec![
                (5, acq(2)),
                (6, TraceEvent::RemoteOp {
                    kind: RemoteOpKind::Get,
                    target: 0,
                    seg: 0,
                    offset: 64,
                    bytes: 8,
                    atomic: false,
                }),
                (7, rel(2)),
                (8, put(0, 0, 8)),
            ],
        ]);
        let r = predict(&t).unwrap();
        assert_eq!(r.dropped_edges, 0, "{r}");
        assert!(r.predicted.is_empty(), "{r}");
    }

    #[test]
    fn dropped_events_are_an_error() {
        let mut t = trace_of(vec![vec![(5, put(0, 0, 8))]]);
        t.dropped[0] = 3;
        assert!(predict(&t).unwrap_err().contains("dropped 3 event(s)"));
    }

    fn atomic_local(offset: u64, write: bool) -> TraceEvent {
        TraceEvent::LocalAccess { seg: 0, offset, bytes: 8, write, atomic: true }
    }

    fn atomic_put(target: u32, offset: u64) -> TraceEvent {
        TraceEvent::RemoteOp {
            kind: RemoteOpKind::Put,
            target,
            seg: 0,
            offset,
            bytes: 8,
            atomic: true,
        }
    }

    fn rmw(target: u32, offset: u64) -> TraceEvent {
        TraceEvent::RemoteOp {
            kind: RemoteOpKind::Rmw,
            target,
            seg: 0,
            offset,
            bytes: 8,
            atomic: false,
        }
    }

    #[test]
    fn single_writer_protocol_is_clean() {
        // Owner publishes, thieves read atomically: the HEAD pattern.
        let t = trace_of(vec![
            vec![(1, atomic_local(0, true)), (2, atomic_local(0, true))],
            vec![(3, TraceEvent::RemoteOp {
                kind: RemoteOpKind::Get,
                target: 0,
                seg: 0,
                offset: 0,
                bytes: 8,
                atomic: true,
            })],
        ]);
        let (v, words) = check_protocols(&t);
        assert!(v.is_empty(), "{v:?}");
        assert_eq!(words, 1);
    }

    #[test]
    fn cas_chain_protocol_is_clean() {
        let t = trace_of(vec![
            vec![(1, rmw(0, 0))],
            vec![(2, rmw(0, 0))],
        ]);
        let (v, _) = check_protocols(&t);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn owner_locked_protocol_is_clean() {
        // Two ranks write the word, each under the same lock; a plain
        // read under the lock is fine, and an atomic read outside it is
        // exempt.
        let t = trace_of(vec![
            vec![(1, acq(1)), (2, atomic_local(0, true)), (3, rel(1))],
            vec![
                (4, TraceEvent::LockAcq { target: 0, set: 0, idx: 0, seq: 2 }),
                (5, atomic_put(0, 0)),
                (6, TraceEvent::LockRel { target: 0, set: 0, idx: 0, seq: 2 }),
                (7, TraceEvent::RemoteOp {
                    kind: RemoteOpKind::Get,
                    target: 0,
                    seg: 0,
                    offset: 0,
                    bytes: 8,
                    atomic: true,
                }),
            ],
        ]);
        let (v, _) = check_protocols(&t);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn fully_marked_multi_writer_flag_is_clean() {
        // The TD dirty-flag shape: several ranks blind-store the word,
        // the owner reads it back — every access atomic-marked, no lock.
        let t = trace_of(vec![
            vec![(1, atomic_local(0, true)), (2, atomic_local(0, false))],
            vec![(3, atomic_put(0, 0))],
        ]);
        let (v, words) = check_protocols(&t);
        assert_eq!(words, 1);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn unmarked_write_to_protocol_word_violates() {
        // Mixed marking is the hazard the checker exists for: rank 0
        // writes the word plain while rank 1 writes it atomic-marked.
        let t = trace_of(vec![
            vec![(1, local(0, 8, true, false))],
            vec![(2, atomic_put(0, 0))],
        ]);
        let (v, words) = check_protocols(&t);
        assert_eq!(words, 1);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!((v[0].owner, v[0].seg, v[0].word), (0, 0, 0));
        assert_eq!(v[0].writers, vec![0, 1]);
        assert!(v[0].detail.contains("not single-writer"), "{}", v[0].detail);
        assert!(v[0].detail.contains("no lock held"), "{}", v[0].detail);
        assert!(
            v[0].detail.contains("unmarked write by rank 0"),
            "{}",
            v[0].detail
        );
    }

    #[test]
    fn unlocked_plain_read_breaks_owner_locked() {
        let t = trace_of(vec![
            vec![(1, acq(1)), (2, atomic_local(0, true)), (3, rel(1))],
            vec![
                (4, TraceEvent::LockAcq { target: 0, set: 0, idx: 0, seq: 2 }),
                (5, atomic_put(0, 0)),
                (6, TraceEvent::LockRel { target: 0, set: 0, idx: 0, seq: 2 }),
            ],
            vec![(7, TraceEvent::RemoteOp {
                kind: RemoteOpKind::Get,
                target: 0,
                seg: 0,
                offset: 0,
                bytes: 8,
                atomic: false,
            })],
        ]);
        let (v, _) = check_protocols(&t);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].detail.contains("unlocked plain read"), "{}", v[0].detail);
    }
}
