//! Canonical machine-readable race/deadlock report: `scioto-race-v1`.
//!
//! One JSON object per analyzed trace, hand-rolled (no serde — the repo
//! is dependency-free) with deterministic member order so reports for
//! identical traces are byte-identical. The schema:
//!
//! ```text
//! {
//!   "schema": "scioto-race-v1",
//!   "trace": "<label>",
//!   "ranks": <n>,
//!   "clean": <bool>,                      // no findings anywhere below
//!   "hb": { "events", "sync_edges", "words", "races": [Race...] },
//!   "predict": null | { "events", "lock_edges", "dropped_edges",
//!                       "protocol_words", "predicted": [PredictedRace...],
//!                       "atomicity": [AtomicityViolation...] },
//!   "deadlock": null | { "nodes", "edges", "truncated",
//!                        "cycles": [Cycle...] }
//! }
//! ```
//!
//! `predict`/`deadlock` are `null` when that analysis was not requested,
//! distinguishing "not run" from "ran clean" (empty arrays).

use std::fmt::Write as _;

use crate::deadlock::{DeadlockReport, EdgeWitness, Resource};
use crate::hb::{AccessInfo, RaceReport};
use crate::predict::PredictReport;

/// Schema identifier stamped on every report.
pub const SCHEMA: &str = "scioto-race-v1";

/// Render one trace's combined analysis as a `scioto-race-v1` JSON
/// object (single line, no trailing newline).
pub fn render(
    trace_label: &str,
    ranks: usize,
    hb: &RaceReport,
    predict: Option<&PredictReport>,
    deadlock: Option<&DeadlockReport>,
) -> String {
    let clean = hb.is_clean()
        && predict.is_none_or(|p| p.is_clean())
        && deadlock.is_none_or(|d| d.is_clean());
    let mut o = String::with_capacity(512);
    o.push('{');
    let _ = write!(o, "\"schema\":\"{SCHEMA}\",");
    let _ = write!(o, "\"trace\":\"{}\",", escape(trace_label));
    let _ = write!(o, "\"ranks\":{ranks},");
    let _ = write!(o, "\"clean\":{clean},");

    // Happens-before section.
    let _ = write!(
        o,
        "\"hb\":{{\"events\":{},\"sync_edges\":{},\"words\":{},\"races\":[",
        hb.events, hb.sync_edges, hb.words
    );
    for (i, r) in hb.races.iter().enumerate() {
        if i > 0 {
            o.push(',');
        }
        let _ = write!(
            o,
            "{{\"owner\":{},\"seg\":{},\"word\":{},\"word_hi\":{},\"word_count\":{},",
            r.owner, r.seg, r.word, r.word_hi, r.word_count
        );
        o.push_str("\"first\":");
        access(&mut o, &r.first);
        o.push_str(",\"second\":");
        access(&mut o, &r.second);
        o.push('}');
    }
    o.push_str("]},");

    // Predictive section.
    match predict {
        None => o.push_str("\"predict\":null,"),
        Some(p) => {
            let _ = write!(
                o,
                "\"predict\":{{\"events\":{},\"lock_edges\":{},\"dropped_edges\":{},\
                 \"protocol_words\":{},\"predicted\":[",
                p.events, p.lock_edges, p.dropped_edges, p.protocol_words
            );
            for (i, r) in p.predicted.iter().enumerate() {
                if i > 0 {
                    o.push(',');
                }
                let (lt, ls, li) = r.lock;
                let _ = write!(
                    o,
                    "{{\"owner\":{},\"seg\":{},\"word\":{},\"word_hi\":{},\"word_count\":{},\
                     \"lock\":{{\"target\":{lt},\"set\":{ls},\"idx\":{li}}},\"gen\":{},\
                     \"witness\":\"{}\",",
                    r.owner,
                    r.seg,
                    r.word,
                    r.word_hi,
                    r.word_count,
                    r.gen,
                    escape(&r.witness)
                );
                o.push_str("\"first\":");
                access(&mut o, &r.first);
                o.push_str(",\"second\":");
                access(&mut o, &r.second);
                o.push('}');
            }
            o.push_str("],\"atomicity\":[");
            for (i, v) in p.atomicity.iter().enumerate() {
                if i > 0 {
                    o.push(',');
                }
                let _ = write!(
                    o,
                    "{{\"owner\":{},\"seg\":{},\"word\":{},\"writers\":{:?},\"detail\":\"{}\"}}",
                    v.owner,
                    v.seg,
                    v.word,
                    v.writers,
                    escape(&v.detail)
                );
            }
            o.push_str("]},");
        }
    }

    // Deadlock section.
    match deadlock {
        None => o.push_str("\"deadlock\":null"),
        Some(d) => {
            let _ = write!(
                o,
                "\"deadlock\":{{\"nodes\":{},\"edges\":{},\"truncated\":{},\"cycles\":[",
                d.nodes, d.edges, d.truncated
            );
            for (i, c) in d.cycles.iter().enumerate() {
                if i > 0 {
                    o.push(',');
                }
                let _ = write!(o, "{{\"ranks\":{:?},\"nodes\":[", c.ranks);
                for (j, n) in c.nodes.iter().enumerate() {
                    if j > 0 {
                        o.push(',');
                    }
                    resource(&mut o, n);
                }
                o.push_str("],\"edges\":[");
                for (j, w) in c.witnesses.iter().enumerate() {
                    if j > 0 {
                        o.push(',');
                    }
                    witness(&mut o, w);
                }
                o.push_str("]}");
            }
            o.push_str("]}");
        }
    }
    o.push('}');
    o
}

fn access(o: &mut String, a: &AccessInfo) {
    let _ = write!(
        o,
        "{{\"rank\":{},\"t_ns\":{},\"clock\":{},\"op\":\"{}\",\"write\":{},\"atomic\":{},",
        a.rank,
        a.t_ns,
        a.clock,
        escape(&a.op),
        a.write,
        a.atomic
    );
    match &a.nearest_sync {
        Some((t, s)) => {
            let _ = write!(o, "\"sync\":{{\"t_ns\":{t},\"desc\":\"{}\"}}}}", escape(s));
        }
        None => o.push_str("\"sync\":null}"),
    }
}

fn resource(o: &mut String, r: &Resource) {
    match r {
        Resource::Lock((t, s, i)) => {
            let _ = write!(o, "{{\"kind\":\"lock\",\"target\":{t},\"set\":{s},\"idx\":{i}}}");
        }
        Resource::Barrier(e) => {
            let _ = write!(o, "{{\"kind\":\"barrier\",\"epoch\":{e}}}");
        }
        Resource::TdUp(w, occ) => {
            let _ = write!(o, "{{\"kind\":\"td_up\",\"wave\":{w},\"occurrence\":{occ}}}");
        }
    }
}

fn witness(o: &mut String, w: &EdgeWitness) {
    let _ = write!(
        o,
        "{{\"rank\":{},\"held_ev\":{},\"held_t_ns\":{},\"req_ev\":{},\"req_t_ns\":{},\
         \"holdset\":[",
        w.rank, w.held_ev, w.held_t_ns, w.req_ev, w.req_t_ns
    );
    for (i, (t, s, idx)) in w.holdset.iter().enumerate() {
        if i > 0 {
            o.push(',');
        }
        let _ = write!(o, "{{\"target\":{t},\"set\":{s},\"idx\":{idx}}}");
    }
    o.push_str("]}");
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hb::check_trace;
    use crate::{check_deadlocks, predict};
    use scioto_sim::{StampedEvent, Trace, TraceEvent};

    fn trace_of(ranks: Vec<Vec<(u64, TraceEvent)>>) -> Trace {
        let n = ranks.len();
        Trace {
            events: ranks
                .into_iter()
                .map(|evs| {
                    evs.into_iter()
                        .map(|(t_ns, event)| StampedEvent { t_ns, event })
                        .collect()
                })
                .collect(),
            dropped: vec![0; n],
            final_clock_ns: Vec::new(),
            wall_clock: false,
            hists: (0..n).map(|_| Default::default()).collect(),
            gauges: (0..n).map(|_| Default::default()).collect(),
        }
    }

    #[test]
    fn clean_trace_renders_clean_report() {
        let t = trace_of(vec![vec![(
            1,
            TraceEvent::LocalAccess { seg: 0, offset: 0, bytes: 8, write: true, atomic: false },
        )]]);
        let hb = check_trace(&t).unwrap();
        let p = predict(&t).unwrap();
        let d = check_deadlocks(&t).unwrap();
        let json = render("unit", 1, &hb, Some(&p), Some(&d));
        assert!(json.starts_with("{\"schema\":\"scioto-race-v1\","));
        assert!(json.contains("\"clean\":true"), "{json}");
        assert!(json.contains("\"races\":[]"), "{json}");
        assert!(json.contains("\"predicted\":[]"), "{json}");
        assert!(json.contains("\"cycles\":[]"), "{json}");
        // Balanced braces/brackets — cheap well-formedness check.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn skipped_analyses_render_null_not_empty() {
        let t = trace_of(vec![vec![]]);
        let hb = check_trace(&t).unwrap();
        let json = render("unit", 1, &hb, None, None);
        assert!(json.contains("\"predict\":null"), "{json}");
        assert!(json.contains("\"deadlock\":null"), "{json}");
        assert!(json.contains("\"clean\":true"), "{json}");
    }

    #[test]
    fn findings_flip_clean_and_carry_structure() {
        // Unordered write/write on word 0 → one hb race.
        let t = trace_of(vec![
            vec![(
                1,
                TraceEvent::LocalAccess {
                    seg: 0,
                    offset: 0,
                    bytes: 8,
                    write: true,
                    atomic: false,
                },
            )],
            vec![(
                2,
                TraceEvent::RemoteOp {
                    kind: scioto_sim::RemoteOpKind::Put,
                    target: 0,
                    seg: 0,
                    offset: 0,
                    bytes: 8,
                    atomic: false,
                },
            )],
        ]);
        let hb = check_trace(&t).unwrap();
        assert_eq!(hb.races.len(), 1);
        let json = render("unit", 2, &hb, None, None);
        assert!(json.contains("\"clean\":false"), "{json}");
        assert!(json.contains("\"word_count\":1"), "{json}");
        assert!(json.contains("\"op\":\"local write\""), "{json}");
        assert!(json.contains("\"op\":\"put\""), "{json}");
    }

    #[test]
    fn labels_are_escaped() {
        let t = trace_of(vec![vec![]]);
        let hb = check_trace(&t).unwrap();
        let json = render("we\"ird\npath", 1, &hb, None, None);
        assert!(json.contains("we\\\"ird\\npath"), "{json}");
    }
}
