//! Seeded predictive-analysis fixtures against real machine traces:
//! each one plants a specific hazard that the observed (deterministic)
//! schedule hides, and pins the exact report the analysis produces.
//! A closing regression drives a real UTS work-stealing run through all
//! three analyses and requires them to find nothing.

use scioto_armci::Armci;
use scioto_race::{check_deadlocks, check_trace, predict, Resource};
use scioto_sim::{Machine, MachineConfig, Trace, TraceConfig};

/// The canonical schedule-masked race. Rank 0 writes the shared word
/// *before* its critical section; rank 1 writes it *after* its own.
/// The two critical sections touch disjoint scratch words, so the
/// release→acquire edge the observed schedule happens to create is
/// accidental — swapping the critical sections exposes the write/write
/// race. HB must stay clean; predict must report exactly this pair.
fn masked_race_trace() -> Trace {
    let out = Machine::run(
        MachineConfig::virtual_time(2).with_trace(TraceConfig::enabled()),
        |ctx| {
            let armci = Armci::init(ctx);
            let shared = armci.malloc(ctx, 8); // the raced word, on rank 0
            let scratch = armci.malloc(ctx, 16); // disjoint CS footprints
            let m = armci.create_mutexes(ctx, 1);
            if ctx.rank() == 0 {
                armci.put(ctx, shared, 0, 0, &1i64.to_le_bytes());
                armci.lock(ctx, m, 0, 0);
                armci.put(ctx, scratch, 0, 0, &2i64.to_le_bytes());
                armci.unlock(ctx, m, 0, 0);
            } else {
                // Stagger so rank 0's critical section deterministically
                // runs first — the masking edge points 0 → 1.
                ctx.compute(10_000_000);
                armci.lock(ctx, m, 0, 0);
                armci.put(ctx, scratch, 0, 8, &3i64.to_le_bytes());
                armci.unlock(ctx, m, 0, 0);
                armci.put(ctx, shared, 0, 0, &4i64.to_le_bytes());
            }
            armci.barrier(ctx);
        },
    );
    out.report.trace.expect("tracing enabled")
}

#[test]
fn masked_race_fixture_pins_exact_predicted_report() {
    let trace = masked_race_trace();
    // The observed schedule is happens-before clean...
    let hb = check_trace(&trace).expect("replay succeeds");
    assert!(hb.is_clean(), "the mask must hold in the observed order:\n{hb}");
    // ...but the predictive pass sees through the accidental edge.
    let p = predict(&trace).expect("predict succeeds");
    assert!(p.atomicity.is_empty(), "{p}");
    assert_eq!(p.predicted.len(), 1, "{p}");
    let r = &p.predicted[0];
    assert_eq!(r.owner, 0, "the raced word lives on rank 0");
    assert_eq!((r.word_hi, r.word_count), (r.word, 1));
    assert_eq!((r.first.rank, r.second.rank), (0, 1));
    assert_eq!((r.first.op.as_str(), r.second.op.as_str()), ("put", "put"));
    assert!(r.first.write && r.second.write);
    // The masking lock is the fixture's only mutex (idx 0) and the
    // dropped edge is the one into rank 1's acquire (generation 2).
    assert_eq!(r.lock.2, 0, "mutex idx 0 masks the race");
    assert_eq!(r.gen, 2, "rank 1 holds the second ownership generation");
    assert!(r.witness.contains("swap"), "witness explains the reorder: {}", r.witness);
    assert!(p.dropped_edges >= 1, "the masking edge must be dropped: {p}");
    // No lock-order hazard in this fixture.
    let d = check_deadlocks(&trace).expect("scan succeeds");
    assert!(d.is_clean(), "{d}");
}

/// Two ranks nest the same two VLocks in opposite orders, serialized by
/// a large compute stagger so the observed run never actually blocks.
#[test]
fn two_rank_lock_order_cycle_fixture() {
    let out = Machine::run(
        MachineConfig::virtual_time(2).with_trace(TraceConfig::enabled()),
        |ctx| {
            let armci = Armci::init(ctx);
            let m = armci.create_mutexes(ctx, 2);
            if ctx.rank() == 0 {
                armci.lock(ctx, m, 0, 0);
                armci.lock(ctx, m, 1, 0);
                armci.unlock(ctx, m, 1, 0);
                armci.unlock(ctx, m, 0, 0);
            } else {
                ctx.compute(10_000_000); // serialize: rank 0 is long done
                armci.lock(ctx, m, 1, 0);
                armci.lock(ctx, m, 0, 0);
                armci.unlock(ctx, m, 0, 0);
                armci.unlock(ctx, m, 1, 0);
            }
            armci.barrier(ctx);
        },
    );
    let trace = out.report.trace.expect("tracing enabled");
    // The run completed (we are here) and is HB-clean...
    assert!(check_trace(&trace).expect("replay succeeds").is_clean());
    // ...yet the nesting inversion is a one-schedule-away deadlock.
    let d = check_deadlocks(&trace).expect("scan succeeds");
    assert_eq!(d.cycles.len(), 1, "{d}");
    assert!(!d.truncated);
    let c = &d.cycles[0];
    assert_eq!(c.ranks, vec![0, 1]);
    let idxs: Vec<u32> = c
        .nodes
        .iter()
        .map(|n| match n {
            Resource::Lock((_, _, idx)) => *idx,
            other => panic!("pure lock cycle expected, got {other}"),
        })
        .collect();
    assert_eq!(idxs.len(), 2);
    assert!(idxs.contains(&0) && idxs.contains(&1), "{idxs:?}");
    // Each edge's witness names the two acquisition events and the lock
    // held at the request.
    for w in &c.witnesses {
        assert_eq!(w.holdset.len(), 1, "one lock held at each inner acquire");
        assert!(w.held_ev < w.req_ev, "hold precedes request");
    }
}

/// Three ranks form an A→B→C→A nesting cycle — no two ranks alone are
/// inconsistent, so pairwise analysis would miss it.
#[test]
fn three_rank_lock_order_cycle_fixture() {
    let out = Machine::run(
        MachineConfig::virtual_time(3).with_trace(TraceConfig::enabled()),
        |ctx| {
            let armci = Armci::init(ctx);
            let m = armci.create_mutexes(ctx, 3);
            let r = ctx.rank();
            ctx.compute(10_000_000 * r as u64); // serialize the sections
            let (outer, inner) = (r, (r + 1) % 3);
            armci.lock(ctx, m, outer, 0);
            armci.lock(ctx, m, inner, 0);
            armci.unlock(ctx, m, inner, 0);
            armci.unlock(ctx, m, outer, 0);
            armci.barrier(ctx);
        },
    );
    let trace = out.report.trace.expect("tracing enabled");
    let d = check_deadlocks(&trace).expect("scan succeeds");
    assert_eq!(d.cycles.len(), 1, "{d}");
    let c = &d.cycles[0];
    assert_eq!(c.nodes.len(), 3);
    assert_eq!(c.ranks, vec![0, 1, 2]);
    let mut idxs: Vec<u32> = c
        .nodes
        .iter()
        .map(|n| match n {
            Resource::Lock((_, _, idx)) => *idx,
            other => panic!("pure lock cycle expected, got {other}"),
        })
        .collect();
    idxs.sort_unstable();
    assert_eq!(idxs, vec![0, 1, 2]);
}

/// A protocol word written atomic-marked by one rank and plain by
/// another: the declared single-word discipline is violated even though
/// a barrier orders the writes (no HB race to report).
#[test]
fn protocol_atomicity_violation_fixture() {
    let out = Machine::run(
        MachineConfig::virtual_time(2).with_trace(TraceConfig::enabled()),
        |ctx| {
            let armci = Armci::init(ctx);
            let g = armci.malloc(ctx, 8);
            if ctx.rank() == 0 {
                armci.put(ctx, g, 0, 0, &1i64.to_le_bytes());
            }
            armci.barrier(ctx);
            if ctx.rank() == 1 {
                // The seeded bug under test: a marked store to a word
                // another rank writes plain.
                // protocol: (seeded violation fixture — no real protocol)
                armci.put_atomic(ctx, g, 0, 0, &2i64.to_le_bytes());
            }
            armci.barrier(ctx);
        },
    );
    let trace = out.report.trace.expect("tracing enabled");
    // Barriers order the writes: HB-clean, no predicted race either.
    let hb = check_trace(&trace).expect("replay succeeds");
    assert!(hb.is_clean(), "{hb}");
    let p = predict(&trace).expect("predict succeeds");
    assert!(p.predicted.is_empty(), "{p}");
    assert_eq!(p.atomicity.len(), 1, "{p}");
    let v = &p.atomicity[0];
    assert_eq!((v.owner, v.word), (0, 0));
    assert_eq!(v.writers, vec![0, 1]);
    assert!(v.detail.contains("not single-writer"), "{}", v.detail);
    assert!(v.detail.contains("not CAS-chain"), "{}", v.detail);
    assert!(v.detail.contains("no lock held"), "{}", v.detail);
    assert!(
        v.detail.contains("unmarked write by rank 0"),
        "{}",
        v.detail
    );
}

/// Regression: a real work-stealing workload (UTS over the split-queue
/// task collection, 4 ranks, steals and TD waves included) must come
/// through *all three* analyses clean — the predictive pass finds
/// nothing the HB pass missed, the protocol words all classify, and the
/// lock-order graph is acyclic. This is the in-tree twin of the
/// verify.sh gate that runs the six bench bins with
/// `--predict --deadlock`.
#[test]
fn uts_work_stealing_predicts_nothing_new() {
    let cfg = scioto_uts::scioto_driver::SciotoUtsConfig::new(scioto_uts::presets::tiny());
    let out = Machine::run(
        MachineConfig::virtual_time(4).with_trace(TraceConfig::enabled()),
        move |ctx| scioto_uts::scioto_driver::run_scioto_uts(ctx, &cfg),
    );
    let trace = out.report.trace.expect("tracing enabled");
    let hb = check_trace(&trace).expect("replay succeeds");
    assert!(hb.is_clean(), "{hb}");
    let p = predict(&trace).expect("predict succeeds");
    assert!(p.is_clean(), "{p}");
    assert!(p.protocol_words > 0, "the queue/TD protocols are exercised");
    let d = check_deadlocks(&trace).expect("scan succeeds");
    assert!(d.is_clean(), "{d}");
}
