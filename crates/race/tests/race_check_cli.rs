//! Exit-code contract of the `race_check` binary (relied on by
//! `scripts/verify.sh`): 0 = every trace analyzed and clean, 1 =
//! findings, 2 = unanalyzable input — and malformed JSONL must produce
//! a diagnostic, never a panic.

use std::path::PathBuf;
use std::process::{Command, Output};

use scioto_armci::Armci;
use scioto_sim::{Machine, MachineConfig, TraceConfig};

fn race_check(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_race_check"))
        .args(args)
        .output()
        .expect("spawn race_check")
}

fn tmp(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(&dir).expect("tmpdir");
    dir.join(name)
}

/// A clean 2-rank trace: one locked counter increment per rank.
fn clean_jsonl() -> String {
    let out = Machine::run(
        MachineConfig::virtual_time(2).with_trace(TraceConfig::enabled()),
        |ctx| {
            let armci = Armci::init(ctx);
            let g = armci.malloc(ctx, 8);
            let m = armci.create_mutexes(ctx, 1);
            armci.lock(ctx, m, 0, 0);
            let mut buf = [0u8; 8];
            armci.get(ctx, g, 0, 0, &mut buf);
            let v = i64::from_le_bytes(buf);
            armci.put(ctx, g, 0, 0, &(v + 1).to_le_bytes());
            armci.unlock(ctx, m, 0, 0);
            armci.barrier(ctx);
        },
    );
    out.report.trace.expect("tracing enabled").to_jsonl()
}

/// A racy 2-rank trace: rank 1 skips the lock.
fn racy_jsonl() -> String {
    let out = Machine::run(
        MachineConfig::virtual_time(2).with_trace(TraceConfig::enabled()),
        |ctx| {
            let armci = Armci::init(ctx);
            let g = armci.malloc(ctx, 8);
            let m = armci.create_mutexes(ctx, 1);
            if ctx.rank() == 0 {
                armci.lock(ctx, m, 0, 0);
                armci.put(ctx, g, 0, 0, &1i64.to_le_bytes());
                armci.unlock(ctx, m, 0, 0);
            } else {
                armci.put(ctx, g, 0, 0, &2i64.to_le_bytes());
            }
            armci.barrier(ctx);
        },
    );
    out.report.trace.expect("tracing enabled").to_jsonl()
}

#[test]
fn clean_trace_exits_zero_and_flags_compose() {
    let p = tmp("cli_clean.jsonl");
    std::fs::write(&p, clean_jsonl()).unwrap();
    let path = p.to_str().unwrap();
    for args in [
        vec![path],
        vec!["--predict", path],
        vec!["--deadlock", path],
        vec!["--predict", "--deadlock", path],
    ] {
        let out = race_check(&args);
        assert_eq!(out.status.code(), Some(0), "args {args:?}: {out:?}");
    }
}

#[test]
fn findings_exit_one() {
    let p = tmp("cli_racy.jsonl");
    std::fs::write(&p, racy_jsonl()).unwrap();
    let out = race_check(&["--predict", "--deadlock", p.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("race on rank 0"), "{stdout}");
}

#[test]
fn malformed_jsonl_exits_two_without_panicking() {
    for (name, body) in [
        ("cli_garbage.jsonl", "this is not jsonl at all\n{]\n"),
        ("cli_truncated.jsonl", "{\"type\":\"meta\",\"ranks\":2"),
        ("cli_badevent.jsonl", "{\"rank\":0,\"t\":5,\"type\":\"NoSuchEvent\"}\n"),
        ("cli_empty_obj.jsonl", "{}\n"),
    ] {
        let p = tmp(name);
        std::fs::write(&p, body).unwrap();
        let out = race_check(&[p.to_str().unwrap()]);
        assert_eq!(out.status.code(), Some(2), "{name}: {out:?}");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(!stderr.contains("panicked"), "{name} panicked: {stderr}");
        assert!(stderr.contains("race_check:"), "{name}: {stderr}");
    }
}

#[test]
fn missing_file_unknown_flag_and_no_args_exit_two() {
    let out = race_check(&["/nonexistent/trace.jsonl"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let out = race_check(&["--frobnicate", "x.jsonl"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let out = race_check(&[]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}

#[test]
fn json_out_emits_schema_v1_per_trace() {
    let clean = tmp("cli_json_clean.jsonl");
    std::fs::write(&clean, clean_jsonl()).unwrap();
    let racy = tmp("cli_json_racy.jsonl");
    std::fs::write(&racy, racy_jsonl()).unwrap();
    let report = tmp("cli_report.json");
    let out = race_check(&[
        "--predict",
        "--deadlock",
        "--json-out",
        report.to_str().unwrap(),
        clean.to_str().unwrap(),
        racy.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(1), "racy input: {out:?}");
    let body = std::fs::read_to_string(&report).unwrap();
    let lines: Vec<&str> = body.lines().collect();
    assert_eq!(lines.len(), 2, "one report object per trace:\n{body}");
    for line in &lines {
        assert!(line.starts_with("{\"schema\":\"scioto-race-v1\","), "{line}");
        assert!(line.contains("\"predict\":{"), "{line}");
        assert!(line.contains("\"deadlock\":{"), "{line}");
    }
    assert!(lines[0].contains("\"clean\":true"), "{}", lines[0]);
    assert!(lines[1].contains("\"clean\":false"), "{}", lines[1]);
    // `--json-out -` streams the same objects to stdout.
    let out = race_check(&["--json-out", "-", clean.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("\"schema\":\"scioto-race-v1\""),
        "{stdout}"
    );
    assert!(stdout.contains("\"predict\":null"), "{stdout}");
}
