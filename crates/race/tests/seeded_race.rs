//! End-to-end race checking against real machine traces: the properly
//! locked shared-counter protocol is clean, and a seeded synthetic race
//! (one rank skipping the shared-portion lock) is flagged with exact
//! rank / clock / operation attribution.

use scioto_armci::Armci;
use scioto_race::check_trace;
use scioto_sim::{Machine, MachineConfig, StartupMode, TraceConfig};

#[test]
fn locked_shared_counter_is_clean() {
    let out = Machine::run(
        MachineConfig::virtual_time(2).with_trace(TraceConfig::enabled()),
        |ctx| {
            let armci = Armci::init(ctx);
            let g = armci.malloc(ctx, 8);
            let m = armci.create_mutexes(ctx, 1);
            for _ in 0..3 {
                armci.lock(ctx, m, 0, 0);
                let mut buf = [0u8; 8];
                armci.get(ctx, g, 0, 0, &mut buf);
                let v = i64::from_le_bytes(buf);
                ctx.compute(50);
                armci.put(ctx, g, 0, 0, &(v + 1).to_le_bytes());
                armci.unlock(ctx, m, 0, 0);
            }
            armci.barrier(ctx);
            armci.read_i64(ctx, g, 0, 0)
        },
    );
    assert!(out.results.iter().all(|&v| v == 6));
    let trace = out.report.trace.expect("tracing enabled");
    let report = check_trace(&trace).expect("replay succeeds");
    assert!(report.is_clean(), "locked protocol must be race-free:\n{report}");
    assert!(report.sync_edges > 0);
}

#[test]
fn lock_skipping_rank_is_flagged_with_attribution() {
    // Seeded synthetic race: rank 0 plays by the rules (read-modify-write
    // under the mutex), rank 1 skips the lock entirely. Pinned to the old
    // startup protocol: the attribution assertions below count the setup
    // collectives' barrier episodes, which the coalesced protocol removes
    // (rank 1's nearest pre-access sync would vanish with them).
    let out = Machine::run(
        MachineConfig::virtual_time(2)
            .with_startup(StartupMode::Old)
            .with_trace(TraceConfig::enabled()),
        |ctx| {
            let armci = Armci::init(ctx);
            let g = armci.malloc(ctx, 8);
            let m = armci.create_mutexes(ctx, 1);
            let mut buf = [0u8; 8];
            if ctx.rank() == 0 {
                armci.lock(ctx, m, 0, 0);
                armci.get(ctx, g, 0, 0, &mut buf);
                let v = i64::from_le_bytes(buf);
                armci.put(ctx, g, 0, 0, &(v + 1).to_le_bytes());
                armci.unlock(ctx, m, 0, 0);
            } else {
                // The bug under test: no lock around the shared portion.
                armci.get(ctx, g, 0, 0, &mut buf);
                let v = i64::from_le_bytes(buf);
                armci.put(ctx, g, 0, 0, &(v + 1).to_le_bytes());
            }
            armci.barrier(ctx);
        },
    );
    let trace = out.report.trace.expect("tracing enabled");
    let report = check_trace(&trace).expect("replay succeeds");

    // rank 0's locked get+put vs rank 1's unlocked get+put on the same
    // word: put/get, put/put, and get/put pairs are unordered (read pairs
    // are not conflicts), giving exactly three races.
    assert_eq!(report.races.len(), 3, "{report}");
    for race in &report.races {
        assert_eq!(race.owner, 0, "counter lives on rank 0");
        // Site-pair dedup: each op pair races on exactly the one counter
        // word, so every deduped report has word_count 1.
        assert_eq!((race.word, race.word_hi, race.word_count), (0, 0, 1));
        assert_eq!(race.first.rank, 0);
        assert_eq!(race.second.rank, 1);
        assert!(
            race.first.write || race.second.write,
            "at least one side writes: {race}"
        );
        // Rank 0 synchronized (its lock acquire) before its access; the
        // lock-skipping rank's nearest sync is a collective barrier from
        // setup, never a lock.
        let (_, first_sync) = race.first.nearest_sync.as_ref().expect("rank 0 synced");
        assert!(first_sync.starts_with("lock "), "{first_sync}");
        let (_, second_sync) = race.second.nearest_sync.as_ref().expect("setup barrier");
        assert!(second_sync.starts_with("barrier "), "{second_sync}");
    }
    let ops: Vec<(&str, &str)> = report
        .races
        .iter()
        .map(|r| (r.first.op.as_str(), r.second.op.as_str()))
        .collect();
    assert_eq!(ops, vec![("put", "get"), ("put", "put"), ("get", "put")]);
    // Both ranks race at the clock position of their last pre-access sync
    // edge; the replay is deterministic, so the positions are exact: rank 0
    // has ticked through the setup collectives plus its lock acquire (8),
    // rank 1 only through the setup collectives (7).
    let clocks: Vec<(u64, u64)> = report
        .races
        .iter()
        .map(|r| (r.first.clock, r.second.clock))
        .collect();
    assert_eq!(clocks, vec![(8, 7); 3]);
}
