//! Synthetic molecules and s-type Gaussian basis sets.
//!
//! The paper's SCF runs use NWChem-lineage inputs we do not have; this
//! module builds physically-shaped substitutes: chains/clusters of
//! hydrogen-like atoms, each carrying a few s-type primitives with spread
//! exponents. The exponent spread is what makes Schwarz screening
//! effective and per-block integral cost irregular — the load-imbalance
//! source the paper's evaluation relies on.

/// One atom: nuclear charge and position (atomic units).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Atom {
    /// Nuclear charge.
    pub z: f64,
    /// Position in bohr.
    pub pos: [f64; 3],
}

/// A molecule: a set of atoms.
#[derive(Debug, Clone, PartialEq)]
pub struct Molecule {
    /// The atoms.
    pub atoms: Vec<Atom>,
}

impl Molecule {
    /// A zig-zag hydrogen chain of `n` atoms with 1.4 bohr spacing (the
    /// classic H-chain test system).
    pub fn h_chain(n: usize) -> Molecule {
        let atoms = (0..n)
            .map(|i| Atom {
                z: 1.0,
                pos: [
                    1.4 * i as f64,
                    if i % 2 == 0 { 0.0 } else { 0.7 },
                    0.0,
                ],
            })
            .collect();
        Molecule { atoms }
    }

    /// Total number of electrons (must be even for closed-shell SCF).
    pub fn n_electrons(&self) -> usize {
        self.atoms.iter().map(|a| a.z as usize).sum()
    }

    /// Nuclear repulsion energy Σ Z_a Z_b / |R_a - R_b|.
    pub fn nuclear_repulsion(&self) -> f64 {
        let mut e = 0.0;
        for (i, a) in self.atoms.iter().enumerate() {
            for b in &self.atoms[i + 1..] {
                e += a.z * b.z / dist(a.pos, b.pos);
            }
        }
        e
    }
}

/// Euclidean distance.
pub fn dist(a: [f64; 3], b: [f64; 3]) -> f64 {
    dist2(a, b).sqrt()
}

/// Squared Euclidean distance.
pub fn dist2(a: [f64; 3], b: [f64; 3]) -> f64 {
    (a[0] - b[0]).powi(2) + (a[1] - b[1]).powi(2) + (a[2] - b[2]).powi(2)
}

/// One normalized s-type Gaussian primitive.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SGaussian {
    /// Exponent α.
    pub alpha: f64,
    /// Center in bohr.
    pub center: [f64; 3],
}

/// A basis set: a flat list of s-type primitives (uncontracted).
#[derive(Debug, Clone, PartialEq)]
pub struct BasisSet {
    /// The basis functions.
    pub funcs: Vec<SGaussian>,
    /// The molecule the basis belongs to.
    pub molecule: Molecule,
}

impl BasisSet {
    /// Build an uncontracted even-tempered basis: `per_atom` s-primitives
    /// on each atom with exponents `base · ratio^k`.
    pub fn even_tempered(molecule: Molecule, per_atom: usize, base: f64, ratio: f64) -> BasisSet {
        let mut funcs = Vec::with_capacity(molecule.atoms.len() * per_atom);
        for atom in &molecule.atoms {
            for k in 0..per_atom {
                funcs.push(SGaussian {
                    alpha: base * ratio.powi(k as i32),
                    center: atom.pos,
                });
            }
        }
        BasisSet { funcs, molecule }
    }

    /// Number of basis functions.
    pub fn len(&self) -> usize {
        self.funcs.len()
    }

    /// Whether the basis is empty.
    pub fn is_empty(&self) -> bool {
        self.funcs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn h_chain_geometry() {
        let m = Molecule::h_chain(4);
        assert_eq!(m.atoms.len(), 4);
        assert_eq!(m.n_electrons(), 4);
        assert!((m.atoms[1].pos[0] - 1.4).abs() < 1e-12);
    }

    #[test]
    fn nuclear_repulsion_of_h2() {
        let m = Molecule {
            atoms: vec![
                Atom {
                    z: 1.0,
                    pos: [0.0, 0.0, 0.0],
                },
                Atom {
                    z: 1.0,
                    pos: [1.4, 0.0, 0.0],
                },
            ],
        };
        assert!((m.nuclear_repulsion() - 1.0 / 1.4).abs() < 1e-12);
    }

    #[test]
    fn even_tempered_exponents() {
        let b = BasisSet::even_tempered(Molecule::h_chain(2), 3, 0.5, 3.0);
        assert_eq!(b.len(), 6);
        assert!((b.funcs[0].alpha - 0.5).abs() < 1e-12);
        assert!((b.funcs[1].alpha - 1.5).abs() < 1e-12);
        assert!((b.funcs[2].alpha - 4.5).abs() < 1e-12);
    }
}
