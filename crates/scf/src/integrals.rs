//! Analytic integrals over normalized s-type Gaussian primitives.
//!
//! For s-gaussians every integral has a closed form built from Gaussian
//! product factors and the Boys function
//! `F0(x) = ½ √(π/x) · erf(√x)`; see Szabo & Ostlund, appendix A.

use crate::basis::{dist2, BasisSet, SGaussian};

/// Error function via Abramowitz & Stegun 7.1.26 (|ε| ≤ 1.5e-7) — enough
/// for the 1e-8-hartree energy agreement the tests demand, since F0 is
/// smooth and errors cancel in SCF convergence checks.
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736 + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// Boys function of order zero.
pub fn boys_f0(x: f64) -> f64 {
    if x < 1e-12 {
        // Series: F0(x) = 1 - x/3 + x²/10 - ...
        1.0 - x / 3.0
    } else {
        0.5 * (std::f64::consts::PI / x).sqrt() * erf(x.sqrt())
    }
}

/// Normalization constant of an s-gaussian: (2α/π)^(3/4).
fn norm(alpha: f64) -> f64 {
    (2.0 * alpha / std::f64::consts::PI).powf(0.75)
}

/// Overlap integral ⟨a|b⟩ (normalized primitives).
pub fn overlap(a: &SGaussian, b: &SGaussian) -> f64 {
    let p = a.alpha + b.alpha;
    let mu = a.alpha * b.alpha / p;
    norm(a.alpha)
        * norm(b.alpha)
        * (std::f64::consts::PI / p).powf(1.5)
        * (-mu * dist2(a.center, b.center)).exp()
}

/// Kinetic-energy integral ⟨a|−½∇²|b⟩.
pub fn kinetic(a: &SGaussian, b: &SGaussian) -> f64 {
    let p = a.alpha + b.alpha;
    let mu = a.alpha * b.alpha / p;
    let r2 = dist2(a.center, b.center);
    mu * (3.0 - 2.0 * mu * r2) * overlap(a, b)
}

/// Nuclear-attraction integral ⟨a| −Z/|r−C| |b⟩ for one nucleus.
pub fn nuclear(a: &SGaussian, b: &SGaussian, z: f64, c: [f64; 3]) -> f64 {
    let p = a.alpha + b.alpha;
    let mu = a.alpha * b.alpha / p;
    let r2 = dist2(a.center, b.center);
    let px = [
        (a.alpha * a.center[0] + b.alpha * b.center[0]) / p,
        (a.alpha * a.center[1] + b.alpha * b.center[1]) / p,
        (a.alpha * a.center[2] + b.alpha * b.center[2]) / p,
    ];
    -z * norm(a.alpha)
        * norm(b.alpha)
        * 2.0
        * std::f64::consts::PI
        / p
        * (-mu * r2).exp()
        * boys_f0(p * dist2(px, c))
}

/// Two-electron repulsion integral (ab|cd) in chemists' notation.
pub fn eri(a: &SGaussian, b: &SGaussian, c: &SGaussian, d: &SGaussian) -> f64 {
    let p = a.alpha + b.alpha;
    let q = c.alpha + d.alpha;
    let mu = a.alpha * b.alpha / p;
    let nu = c.alpha * d.alpha / q;
    let pab = [
        (a.alpha * a.center[0] + b.alpha * b.center[0]) / p,
        (a.alpha * a.center[1] + b.alpha * b.center[1]) / p,
        (a.alpha * a.center[2] + b.alpha * b.center[2]) / p,
    ];
    let qcd = [
        (c.alpha * c.center[0] + d.alpha * d.center[0]) / q,
        (c.alpha * c.center[1] + d.alpha * d.center[1]) / q,
        (c.alpha * c.center[2] + d.alpha * d.center[2]) / q,
    ];
    let rho = p * q / (p + q);
    norm(a.alpha)
        * norm(b.alpha)
        * norm(c.alpha)
        * norm(d.alpha)
        * 2.0
        * std::f64::consts::PI.powf(2.5)
        / (p * q * (p + q).sqrt())
        * (-mu * dist2(a.center, b.center)).exp()
        * (-nu * dist2(c.center, d.center)).exp()
        * boys_f0(rho * dist2(pab, qcd))
}

/// Core Hamiltonian: kinetic + nuclear attraction over the whole basis.
pub fn core_hamiltonian(basis: &BasisSet) -> Vec<f64> {
    let n = basis.len();
    let mut h = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..n {
            let mut v = kinetic(&basis.funcs[i], &basis.funcs[j]);
            for atom in &basis.molecule.atoms {
                v += nuclear(&basis.funcs[i], &basis.funcs[j], atom.z, atom.pos);
            }
            h[i * n + j] = v;
        }
    }
    h
}

/// Overlap matrix over the whole basis.
pub fn overlap_matrix(basis: &BasisSet) -> Vec<f64> {
    let n = basis.len();
    let mut s = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..n {
            s[i * n + j] = overlap(&basis.funcs[i], &basis.funcs[j]);
        }
    }
    s
}

/// Cauchy–Schwarz factors `√(ij|ij)` for every pair; the bound
/// `|(ij|kl)| ≤ √(ij|ij)·√(kl|kl)` drives screening.
pub fn schwarz_factors(basis: &BasisSet) -> Vec<f64> {
    let n = basis.len();
    let mut q = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..n {
            q[i * n + j] = eri(
                &basis.funcs[i],
                &basis.funcs[j],
                &basis.funcs[i],
                &basis.funcs[j],
            )
            .max(0.0)
            .sqrt();
        }
    }
    q
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basis::Molecule;

    fn g(alpha: f64, x: f64) -> SGaussian {
        SGaussian {
            alpha,
            center: [x, 0.0, 0.0],
        }
    }

    #[test]
    fn erf_known_values() {
        assert!((erf(0.0)).abs() < 2e-7);
        assert!((erf(1.0) - 0.842_700_79).abs() < 2e-7);
        assert!((erf(2.0) - 0.995_322_27).abs() < 2e-7);
        assert!((erf(-1.0) + 0.842_700_79).abs() < 2e-7);
        assert!((erf(5.0) - 1.0).abs() < 1e-7);
    }

    #[test]
    fn boys_limits() {
        assert!((boys_f0(0.0) - 1.0).abs() < 1e-9);
        // Large-x asymptote: F0(x) → ½√(π/x).
        let x = 50.0;
        let asym = 0.5 * (std::f64::consts::PI / x).sqrt();
        assert!((boys_f0(x) - asym).abs() < 1e-9);
    }

    #[test]
    fn normalized_self_overlap_is_one() {
        for alpha in [0.1, 1.0, 7.5] {
            let a = g(alpha, 0.3);
            assert!((overlap(&a, &a) - 1.0).abs() < 1e-12, "alpha={alpha}");
        }
    }

    #[test]
    fn overlap_decays_with_distance() {
        let a = g(1.0, 0.0);
        let near = overlap(&a, &g(1.0, 0.5));
        let far = overlap(&a, &g(1.0, 3.0));
        assert!(near > far);
        assert!(far > 0.0);
    }

    #[test]
    fn kinetic_self_value() {
        // ⟨a|-½∇²|a⟩ = 3α/2 for a normalized s-gaussian.
        let a = g(0.8, 0.0);
        assert!((kinetic(&a, &a) - 1.5 * 0.8).abs() < 1e-12);
    }

    #[test]
    fn eri_same_center_analytic() {
        // (aa|aa) with all exponents α at one center:
        // = √(2/π) · √α · 2/√π · Γ... known closed form: (aa|aa) = √(2α/π)·2/√π?
        // Use the standard result (ss|ss) = √(2/π)·√α·(2/√π)… rather than
        // rederive, check against an independent numeric identity:
        // (aa|aa) = 2√(α/(2π)) · 2/√π? — instead verify via scaling law:
        // ERI scales as √α when all exponents scale together.
        let e1 = eri(&g(1.0, 0.0), &g(1.0, 0.0), &g(1.0, 0.0), &g(1.0, 0.0));
        let e4 = eri(&g(4.0, 0.0), &g(4.0, 0.0), &g(4.0, 0.0), &g(4.0, 0.0));
        assert!((e4 / e1 - 2.0).abs() < 1e-9, "ERI must scale as sqrt(alpha)");
        // And H2-like positivity/symmetry.
        assert!(e1 > 0.0);
    }

    #[test]
    fn eri_eightfold_symmetry() {
        let (a, b, c, d) = (g(0.5, 0.0), g(1.3, 1.0), g(0.9, 2.0), g(2.1, 0.5));
        let base = eri(&a, &b, &c, &d);
        for perm in [
            eri(&b, &a, &c, &d),
            eri(&a, &b, &d, &c),
            eri(&b, &a, &d, &c),
            eri(&c, &d, &a, &b),
            eri(&d, &c, &a, &b),
            eri(&c, &d, &b, &a),
            eri(&d, &c, &b, &a),
        ] {
            assert!((perm - base).abs() < 1e-12);
        }
    }

    #[test]
    fn schwarz_bound_holds() {
        let basis = crate::basis::BasisSet::even_tempered(Molecule::h_chain(3), 2, 0.4, 4.0);
        let q = schwarz_factors(&basis);
        let n = basis.len();
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    for l in 0..n {
                        let v = eri(
                            &basis.funcs[i],
                            &basis.funcs[j],
                            &basis.funcs[k],
                            &basis.funcs[l],
                        );
                        let bound = q[i * n + j] * q[k * n + l];
                        assert!(
                            v.abs() <= bound + 1e-10,
                            "({i}{j}|{k}{l}) = {v} exceeds bound {bound}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn nuclear_attraction_is_negative_on_center() {
        let a = g(1.0, 0.0);
        let v = nuclear(&a, &a, 1.0, [0.0, 0.0, 0.0]);
        assert!(v < 0.0);
        // ⟨a|-1/r|a⟩ = -2√(α/… ) known: -2·√(2α/π). For α=1: -1.59577.
        assert!((v + 2.0 * (2.0 / std::f64::consts::PI).sqrt()).abs() < 1e-7);
    }
}
