//! # scioto-scf — closed-shell Self-Consistent Field over Global Arrays
//!
//! A compact but real reproduction of the SCF application of §6.2: the
//! closed-shell (restricted) Hartree–Fock method over s-type Gaussian
//! basis functions, with
//!
//! * analytic one- and two-electron integrals (`(ss|ss)` ERIs via the Boys
//!   function, [`integrals`]);
//! * Cauchy–Schwarz screening, which makes per-task cost irregular — the
//!   property that motivates dynamic load balancing;
//! * a Jacobi symmetric eigensolver ([`linalg`]) for the Roothaan step;
//! * Fock and density matrices distributed with Global Arrays, Fock
//!   contributions accumulated with `ga.acc`;
//! * two parallel Fock-build drivers ([`parallel`]): the **original**
//!   scheme — a replicated task list drawn from a `read_inc` global
//!   counter — and the **Scioto** scheme — a task collection seeded at the
//!   owner of each Fock block with locality-aware work stealing
//!   (Figures 5 and 6 of the paper).
//!
//! The sequential reference ([`scf::scf_sequential`]) and both parallel
//! drivers must agree on the converged energy to 1e-8 hartree; the test
//! suites enforce this.

pub mod basis;
pub mod integrals;
pub mod linalg;
pub mod parallel;
pub mod scf;

pub use basis::{BasisSet, Molecule};
pub use parallel::{run_scf_parallel, LoadBalance, ParallelScfConfig, ScfRunReport};
pub use scf::{scf_sequential, ScfConfig, ScfResult};

/// Virtual CPU cost charged per computed primitive ERI (ns). Chosen so a
/// block task lands in the tens of microseconds — the granularity regime
/// of the paper's SCF tasks.
pub const ERI_COST_NS: u64 = 150;
