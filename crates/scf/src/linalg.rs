//! Small dense symmetric linear algebra: the cyclic Jacobi eigensolver and
//! the matrix helpers the Roothaan step needs. Matrices are row-major
//! `Vec<f64>` of dimension `n × n` (basis sizes here are ≤ a few hundred,
//! where Jacobi is perfectly adequate and simple to verify).

/// Row-major dense symmetric matrix operations on `&[f64]` of length n².
pub fn mat_mul(a: &[f64], b: &[f64], n: usize) -> Vec<f64> {
    let mut c = vec![0.0; n * n];
    for i in 0..n {
        for k in 0..n {
            let aik = a[i * n + k];
            if aik == 0.0 {
                continue;
            }
            for j in 0..n {
                c[i * n + j] += aik * b[k * n + j];
            }
        }
    }
    c
}

/// Transpose of an `n × n` matrix.
pub fn transpose(a: &[f64], n: usize) -> Vec<f64> {
    let mut t = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..n {
            t[j * n + i] = a[i * n + j];
        }
    }
    t
}

/// Maximum absolute difference between two matrices.
pub fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

/// Eigendecomposition of a symmetric matrix by the cyclic Jacobi method.
///
/// Returns `(eigenvalues, eigenvectors)` with eigenvalues ascending and
/// eigenvector `k` stored in column `k` of the returned matrix
/// (`vecs[i*n + k]` = component `i` of eigenvector `k`).
pub fn jacobi_eigen(a: &[f64], n: usize) -> (Vec<f64>, Vec<f64>) {
    assert_eq!(a.len(), n * n);
    let mut m = a.to_vec();
    let mut v = vec![0.0; n * n];
    for i in 0..n {
        v[i * n + i] = 1.0;
    }
    let max_sweeps = 100;
    for _sweep in 0..max_sweeps {
        // Off-diagonal Frobenius norm.
        let mut off = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                off += m[i * n + j] * m[i * n + j];
            }
        }
        if off.sqrt() < 1e-12 {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[p * n + q];
                if apq.abs() < 1e-14 {
                    continue;
                }
                let app = m[p * n + p];
                let aqq = m[q * n + q];
                let theta = (aqq - app) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Rotate rows/columns p and q of m.
                for k in 0..n {
                    let mkp = m[k * n + p];
                    let mkq = m[k * n + q];
                    m[k * n + p] = c * mkp - s * mkq;
                    m[k * n + q] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[p * n + k];
                    let mqk = m[q * n + k];
                    m[p * n + k] = c * mpk - s * mqk;
                    m[q * n + k] = s * mpk + c * mqk;
                }
                // Accumulate the rotation into the eigenvector matrix.
                for k in 0..n {
                    let vkp = v[k * n + p];
                    let vkq = v[k * n + q];
                    v[k * n + p] = c * vkp - s * vkq;
                    v[k * n + q] = s * vkp + c * vkq;
                }
            }
        }
    }
    // Sort eigenpairs ascending.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| {
        m[i * n + i]
            .partial_cmp(&m[j * n + j])
            .expect("eigenvalues are finite")
    });
    let vals: Vec<f64> = order.iter().map(|&k| m[k * n + k]).collect();
    let mut vecs = vec![0.0; n * n];
    for (new_k, &old_k) in order.iter().enumerate() {
        for i in 0..n {
            vecs[i * n + new_k] = v[i * n + old_k];
        }
    }
    (vals, vecs)
}

/// Inverse square root of a symmetric positive-definite matrix:
/// `S^(-1/2) = V diag(1/sqrt(λ)) Vᵀ`.
pub fn inv_sqrt_spd(s: &[f64], n: usize) -> Vec<f64> {
    let (vals, vecs) = jacobi_eigen(s, n);
    assert!(
        vals.iter().all(|&l| l > 1e-10),
        "matrix is not positive definite (min eigenvalue {:?})",
        vals.first()
    );
    let mut scaled = vec![0.0; n * n]; // V * diag(1/sqrt(λ))
    for i in 0..n {
        for k in 0..n {
            scaled[i * n + k] = vecs[i * n + k] / vals[k].sqrt();
        }
    }
    mat_mul(&scaled, &transpose(&vecs, n), n)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() < tol
    }

    #[test]
    fn eigen_of_diagonal_matrix() {
        let a = vec![3.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 2.0];
        let (vals, _) = jacobi_eigen(&a, 3);
        assert!(approx(vals[0], 1.0, 1e-12));
        assert!(approx(vals[1], 2.0, 1e-12));
        assert!(approx(vals[2], 3.0, 1e-12));
    }

    #[test]
    fn eigen_of_2x2_known() {
        // [[2,1],[1,2]] has eigenvalues 1 and 3.
        let a = vec![2.0, 1.0, 1.0, 2.0];
        let (vals, vecs) = jacobi_eigen(&a, 2);
        assert!(approx(vals[0], 1.0, 1e-12));
        assert!(approx(vals[1], 3.0, 1e-12));
        // Check A v = λ v for the second eigenvector.
        let v = [vecs[1], vecs[2 + 1]];
        let av = [2.0 * v[0] + v[1], v[0] + 2.0 * v[1]];
        assert!(approx(av[0], 3.0 * v[0], 1e-10));
        assert!(approx(av[1], 3.0 * v[1], 1e-10));
    }

    #[test]
    fn eigenvectors_reconstruct_matrix() {
        // Random-ish symmetric matrix: A = V Λ Vᵀ must reproduce A.
        let n = 6;
        let mut a = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..=i {
                let v = ((i * 7 + j * 13) % 11) as f64 / 3.0 - 1.0;
                a[i * n + j] = v;
                a[j * n + i] = v;
            }
        }
        let (vals, vecs) = jacobi_eigen(&a, n);
        let mut lam = vec![0.0; n * n];
        for k in 0..n {
            lam[k * n + k] = vals[k];
        }
        let recon = mat_mul(&mat_mul(&vecs, &lam, n), &transpose(&vecs, n), n);
        assert!(max_abs_diff(&a, &recon) < 1e-9);
    }

    #[test]
    fn inv_sqrt_squares_to_inverse() {
        let n = 4;
        // SPD matrix: S = I + 0.3 * ones-ish.
        let mut s = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                s[i * n + j] = if i == j { 1.0 } else { 0.3 / (1.0 + (i as f64 - j as f64).abs()) };
            }
        }
        let x = inv_sqrt_spd(&s, n);
        // X S X should be the identity.
        let xsx = mat_mul(&mat_mul(&x, &s, n), &x, n);
        let mut id = vec![0.0; n * n];
        for i in 0..n {
            id[i * n + i] = 1.0;
        }
        assert!(max_abs_diff(&xsx, &id) < 1e-9);
    }

    #[test]
    #[should_panic(expected = "not positive definite")]
    fn inv_sqrt_rejects_indefinite() {
        let s = vec![1.0, 2.0, 2.0, 1.0]; // eigenvalues -1, 3
        inv_sqrt_spd(&s, 2);
    }

    #[test]
    fn matmul_identity() {
        let n = 3;
        let a: Vec<f64> = (0..9).map(|x| x as f64).collect();
        let mut id = vec![0.0; 9];
        for i in 0..n {
            id[i * n + i] = 1.0;
        }
        assert_eq!(mat_mul(&a, &id, n), a);
        assert_eq!(mat_mul(&id, &a, n), a);
    }
}
