//! Distributed Fock builds over Global Arrays, in both of the paper's
//! flavours (§6.2, Figures 5–6):
//!
//! * **Original**: the task list (screened block quartets) is replicated
//!   on every process and the next task index is drawn by atomically
//!   incrementing a shared `read_inc` counter — locality-oblivious, and
//!   the counter serializes under scale.
//! * **Scioto**: the same tasks go into a task collection, each seeded on
//!   the process that owns the destination Fock block (the `get_owner`
//!   idiom of the paper's §4 example) with high affinity; idle processes
//!   steal from the tail.
//!
//! Both compute identical contributions: the G-matrix block task
//! `(bi,bj,bk,bl)` reads density block `(bk,bl)` from the distributed D
//! array, computes `2(ij|kl)·D_kl` into `G[bi,bj]` and `−(ik|jl)·D_kl`
//! into the same block, and accumulates one-sidedly with `ga.acc`.

use std::sync::Arc;

use scioto::{Task, TaskCollection, TcConfig, AFFINITY_HIGH};
use scioto_ga::{Ga, GaHandle, Patch};
use scioto_sim::Ctx;

use crate::basis::BasisSet;
use crate::integrals::{core_hamiltonian, eri, overlap_matrix, schwarz_factors};
use crate::linalg::inv_sqrt_spd;
use crate::scf::{electronic_energy, roothaan_step, ScfConfig};
use crate::ERI_COST_NS;

/// Which load-balancing scheme drives the Fock build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadBalance {
    /// Replicated task list + shared `read_inc` counter (the original
    /// implementation the paper compares against).
    GlobalCounter,
    /// Scioto task collection with locality-aware work stealing.
    Scioto,
}

/// Configuration of a parallel SCF run.
#[derive(Debug, Clone, Copy)]
pub struct ParallelScfConfig {
    /// SCF iteration parameters.
    pub scf: ScfConfig,
    /// Basis-function block size for task decomposition.
    pub block: usize,
    /// Load-balancing scheme.
    pub lb: LoadBalance,
    /// Steal chunk size (Scioto scheme).
    pub chunk: usize,
    /// Steal victim-selection override; `None` keeps the
    /// [`TcConfig`] default.
    pub victim: Option<scioto::VictimPolicy>,
    /// Batched termination-detection override; `None` keeps the
    /// [`TcConfig`] default.
    pub td_batch: Option<bool>,
}

impl Default for ParallelScfConfig {
    fn default() -> Self {
        ParallelScfConfig {
            scf: ScfConfig::default(),
            block: 4,
            lb: LoadBalance::Scioto,
            chunk: 2,
            victim: None,
            td_batch: None,
        }
    }
}

/// Outcome of a parallel SCF run on one rank.
#[derive(Debug, Clone)]
pub struct ScfRunReport {
    /// Converged total energy.
    pub energy: f64,
    /// Roothaan iterations performed.
    pub iterations: usize,
    /// Whether the energy change dropped below tolerance.
    pub converged: bool,
    /// Fock-build tasks executed by this rank (across all iterations).
    pub tasks_executed: u64,
    /// Total tasks enumerated per iteration (after screening), for
    /// reference.
    pub tasks_per_iteration: usize,
}

/// One G-matrix block task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct BlockTask {
    bi: u32,
    bj: u32,
    bk: u32,
    bl: u32,
}

impl BlockTask {
    fn encode(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(16);
        b.extend_from_slice(&self.bi.to_le_bytes());
        b.extend_from_slice(&self.bj.to_le_bytes());
        b.extend_from_slice(&self.bk.to_le_bytes());
        b.extend_from_slice(&self.bl.to_le_bytes());
        b
    }

    fn decode(buf: &[u8]) -> BlockTask {
        BlockTask {
            bi: u32::from_le_bytes(buf[0..4].try_into().expect("4")),
            bj: u32::from_le_bytes(buf[4..8].try_into().expect("4")),
            bk: u32::from_le_bytes(buf[8..12].try_into().expect("4")),
            bl: u32::from_le_bytes(buf[12..16].try_into().expect("4")),
        }
    }
}

/// Shared immutable state of one Fock build.
struct FockContext {
    basis: BasisSet,
    n: usize,
    block: usize,
    nb: usize,
    /// Block-level Schwarz maxima (nb × nb).
    qblock: Vec<f64>,
    d_handle: GaHandle,
    g_handle: GaHandle,
}

impl FockContext {
    fn block_range(&self, b: u32) -> (usize, usize) {
        let lo = (b as usize) * self.block;
        (lo, ((b as usize + 1) * self.block).min(self.n))
    }

    /// Execute one block task: read the density block, compute the
    /// Coulomb and exchange contributions, accumulate into G.
    fn run_task(&self, ctx: &Ctx, ga: &Ga, t: BlockTask) {
        let (ilo, ihi) = self.block_range(t.bi);
        let (jlo, jhi) = self.block_range(t.bj);
        let (klo, khi) = self.block_range(t.bk);
        let (llo, lhi) = self.block_range(t.bl);
        let dpatch = Patch::new(klo, khi, llo, lhi);
        let d = ga.get(ctx, self.d_handle, dpatch);
        let (kw, lw) = (khi - klo, lhi - llo);
        let _ = lw;
        let mut g = vec![0.0; (ihi - ilo) * (jhi - jlo)];
        let mut eris = 0u64;
        for i in ilo..ihi {
            for j in jlo..jhi {
                let mut v = 0.0;
                for k in klo..khi {
                    for l in llo..lhi {
                        let dkl = d[(k - klo) * (lhi - llo) + (l - llo)];
                        v += 2.0
                            * dkl
                            * eri(
                                &self.basis.funcs[i],
                                &self.basis.funcs[j],
                                &self.basis.funcs[k],
                                &self.basis.funcs[l],
                            );
                        v -= dkl
                            * eri(
                                &self.basis.funcs[i],
                                &self.basis.funcs[k],
                                &self.basis.funcs[j],
                                &self.basis.funcs[l],
                            );
                        eris += 2;
                    }
                }
                g[(i - ilo) * (jhi - jlo) + (j - jlo)] = v;
            }
        }
        let _ = kw;
        ctx.compute(eris * ERI_COST_NS);
        ga.acc(ctx, self.g_handle, Patch::new(ilo, ihi, jlo, jhi), 1.0, &g);
    }

    /// Enumerate the screened task list (identical on every rank).
    fn enumerate(&self, dmax: f64, screen_tol: f64) -> Vec<BlockTask> {
        let nb = self.nb as u32;
        let mut out = Vec::new();
        for bi in 0..nb {
            for bj in 0..nb {
                for bk in 0..nb {
                    for bl in 0..nb {
                        let qij = self.qblock[(bi * nb + bj) as usize];
                        let qkl = self.qblock[(bk * nb + bl) as usize];
                        let qik = self.qblock[(bi * nb + bk) as usize];
                        let qjl = self.qblock[(bj * nb + bl) as usize];
                        let coulomb = qij * qkl * dmax;
                        let exchange = qik * qjl * dmax;
                        if coulomb > screen_tol || exchange > screen_tol {
                            out.push(BlockTask { bi, bj, bk, bl });
                        }
                    }
                }
            }
        }
        out
    }
}

/// Run the full parallel SCF to convergence. Collective; every rank
/// returns the same converged energy.
pub fn run_scf_parallel(ctx: &Ctx, basis: &BasisSet, cfg: &ParallelScfConfig) -> ScfRunReport {
    let ga = Ga::init(ctx);
    let n = basis.len();
    let n_elec = basis.molecule.n_electrons();
    assert!(n_elec.is_multiple_of(2), "closed-shell SCF needs an even electron count");
    let n_occ = n_elec / 2;
    let nb = n.div_ceil(cfg.block);

    // Replicated one-electron work (standard practice for small n).
    let s = overlap_matrix(basis);
    let x = inv_sqrt_spd(&s, n);
    let hcore = core_hamiltonian(basis);
    let e_nuc = basis.molecule.nuclear_repulsion();
    let q = schwarz_factors(basis);
    // Charge the replicated O(n^3) setup (eigensolve + matrix products).
    ctx.compute((n as u64).pow(3) * 4);

    let mut qblock = vec![0.0f64; nb * nb];
    for i in 0..n {
        for j in 0..n {
            let (bi, bj) = (i / cfg.block, j / cfg.block);
            let cur = &mut qblock[bi * nb + bj];
            *cur = cur.max(q[i * n + j]);
        }
    }

    let d_handle = ga.create(ctx, "density", n, n);
    let g_handle = ga.create(ctx, "gmatrix", n, n);

    let fctx = Arc::new(FockContext {
        basis: basis.clone(),
        n,
        block: cfg.block,
        nb,
        qblock,
        d_handle,
        g_handle,
    });

    // Scioto machinery (created even for the counter scheme: cheap).
    let armci = ga.armci().clone();
    let mut tc_cfg = TcConfig::new(16, cfg.chunk, 1 << 14);
    if let Some(v) = cfg.victim {
        tc_cfg = tc_cfg.with_victim(v);
    }
    if let Some(b) = cfg.td_batch {
        tc_cfg = tc_cfg.with_td_batch(b);
    }
    let tc = TaskCollection::create(ctx, &armci, tc_cfg);
    let ga_for_cb = ga.clone();
    let fctx_cb = fctx.clone();
    let h = tc.register(
        ctx,
        Arc::new(move |t| {
            let task = BlockTask::decode(t.body());
            fctx_cb.run_task(t.ctx, &ga_for_cb, task);
        }),
    );
    let counter = ga.create_counter(ctx, 0);

    // Initial density from the core guess, computed redundantly.
    let mut density = roothaan_step(&hcore, &x, n, n_occ);
    ctx.compute((n as u64).pow(3) * 4);
    let full = Patch::new(0, n, 0, n);
    if ctx.rank() == 0 {
        ga.put(ctx, d_handle, full, &density);
    }
    ga.sync(ctx);

    let mut energy = f64::INFINITY;
    let mut converged = false;
    let mut iterations = 0;
    let mut my_tasks = 0u64;
    let mut tasks_per_iteration = 0;

    for it in 0..cfg.scf.max_iters {
        iterations = it + 1;
        ga.zero(ctx, g_handle);
        ga.sync(ctx);

        let dmax = density.iter().fold(0.0f64, |m, &v| m.max(v.abs())).max(1.0);
        let tasks = fctx.enumerate(dmax, cfg.scf.screen_tol);
        tasks_per_iteration = tasks.len();

        match cfg.lb {
            LoadBalance::GlobalCounter => {
                // The original scheme: every rank holds the full list and
                // draws indices from the shared counter.
                ga.reset_counter(ctx, counter);
                ga.sync(ctx);
                loop {
                    let idx = ga.read_inc(ctx, counter, 1);
                    if idx as usize >= tasks.len() {
                        break;
                    }
                    fctx.run_task(ctx, &ga, tasks[idx as usize]);
                    my_tasks += 1;
                }
                ga.sync(ctx);
            }
            LoadBalance::Scioto => {
                // Seed each task at the owner of its destination G block.
                let mut task_buf = Task::with_body_size(h, 16);
                for t in &tasks {
                    let (ilo, _) = fctx.block_range(t.bi);
                    let (jlo, _) = fctx.block_range(t.bj);
                    let owner = ga.locate(g_handle, ilo, jlo);
                    if owner == ctx.rank() {
                        task_buf.body_mut().copy_from_slice(&t.encode());
                        tc.add(ctx, owner, AFFINITY_HIGH, &task_buf);
                    }
                }
                let stats = tc.process(ctx);
                my_tasks += stats.tasks_executed;
                tc.reset(ctx);
            }
        }

        // Everybody reads the completed G matrix and closes the iteration
        // redundantly.
        let g = ga.get(ctx, g_handle, full);
        let fock: Vec<f64> = hcore.iter().zip(g.iter()).map(|(a, b)| a + b).collect();
        let e_elec = electronic_energy(&density, &hcore, &fock);
        let e_tot = e_elec + e_nuc;
        if (e_tot - energy).abs() < cfg.scf.tol {
            energy = e_tot;
            converged = true;
            break;
        }
        energy = e_tot;
        let new_d = roothaan_step(&fock, &x, n, n_occ);
        ctx.compute((n as u64).pow(3) * 4);
        for (d, nd) in density.iter_mut().zip(new_d.iter()) {
            *d = cfg.scf.damping * *d + (1.0 - cfg.scf.damping) * nd;
        }
        if ctx.rank() == 0 {
            ga.put(ctx, d_handle, full, &density);
        }
        ga.sync(ctx);
    }

    ScfRunReport {
        energy,
        iterations,
        converged,
        tasks_executed: my_tasks,
        tasks_per_iteration,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basis::Molecule;
    use crate::scf::scf_sequential;
    use scioto_sim::{LatencyModel, Machine, MachineConfig};

    fn test_basis() -> BasisSet {
        BasisSet::even_tempered(Molecule::h_chain(4), 2, 0.4, 3.5)
    }

    #[test]
    fn both_schemes_match_the_sequential_energy() {
        let basis = test_basis();
        let seq = scf_sequential(&basis, &ScfConfig::default());
        assert!(seq.converged);
        for lb in [LoadBalance::Scioto, LoadBalance::GlobalCounter] {
            let b = basis.clone();
            let out = Machine::run(
                MachineConfig::virtual_time(4).with_latency(LatencyModel::cluster()),
                move |ctx| {
                    let cfg = ParallelScfConfig {
                        lb,
                        ..Default::default()
                    };
                    run_scf_parallel(ctx, &b, &cfg)
                },
            );
            for r in &out.results {
                assert!(r.converged, "{lb:?} did not converge");
                assert!(
                    (r.energy - seq.energy).abs() < 1e-8,
                    "{lb:?}: {} vs sequential {}",
                    r.energy,
                    seq.energy
                );
            }
            let total: u64 = out.results.iter().map(|r| r.tasks_executed).sum();
            assert!(total > 0);
        }
    }

    #[test]
    fn work_is_distributed_across_ranks() {
        let basis = test_basis();
        let out = Machine::run(
            MachineConfig::virtual_time(4).with_latency(LatencyModel::cluster()),
            move |ctx| run_scf_parallel(ctx, &basis, &ParallelScfConfig::default()),
        );
        let busy = out.results.iter().filter(|r| r.tasks_executed > 0).count();
        assert!(busy >= 3, "task counts: {:?}", out
            .results
            .iter()
            .map(|r| r.tasks_executed)
            .collect::<Vec<_>>());
    }

    #[test]
    fn single_rank_parallel_matches_sequential() {
        let basis = test_basis();
        let seq = scf_sequential(&basis, &ScfConfig::default());
        let b = basis.clone();
        let out = Machine::run(MachineConfig::virtual_time(1), move |ctx| {
            run_scf_parallel(ctx, &b, &ParallelScfConfig::default())
        });
        assert!((out.results[0].energy - seq.energy).abs() < 1e-8);
    }
}
