//! The sequential closed-shell SCF reference implementation.
//!
//! Restricted Hartree–Fock by Roothaan iteration: orthogonalize with
//! S^(-1/2), diagonalize the transformed Fock matrix, build the density
//! from the lowest `n_occ` orbitals, damp, repeat. The parallel drivers
//! must converge to the same energy.

use crate::basis::BasisSet;
use crate::integrals::{core_hamiltonian, eri, overlap_matrix, schwarz_factors};
use crate::linalg::{jacobi_eigen, mat_mul, transpose};

/// SCF iteration parameters.
#[derive(Debug, Clone, Copy)]
pub struct ScfConfig {
    /// Maximum Roothaan iterations.
    pub max_iters: usize,
    /// Convergence threshold on |ΔE| (hartree).
    pub tol: f64,
    /// Density damping factor (0 = no damping).
    pub damping: f64,
    /// Schwarz screening threshold: integral batches bounded below this
    /// are skipped.
    pub screen_tol: f64,
}

impl Default for ScfConfig {
    fn default() -> Self {
        ScfConfig {
            max_iters: 50,
            tol: 1e-10,
            damping: 0.2,
            screen_tol: 1e-10,
        }
    }
}

/// Result of an SCF calculation.
#[derive(Debug, Clone)]
pub struct ScfResult {
    /// Total energy (electronic + nuclear repulsion), hartree.
    pub energy: f64,
    /// Electronic energy only.
    pub electronic_energy: f64,
    /// Iterations performed.
    pub iterations: usize,
    /// Whether |ΔE| dropped below tolerance.
    pub converged: bool,
    /// Final density matrix.
    pub density: Vec<f64>,
}

/// Build the closed-shell density matrix `D = C_occ C_occᵀ` from the
/// orbital coefficients (columns of `c`), taking the lowest `n_occ`
/// orbitals.
pub fn density_from_orbitals(c: &[f64], n: usize, n_occ: usize) -> Vec<f64> {
    let mut d = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..n {
            let mut v = 0.0;
            for k in 0..n_occ {
                v += c[i * n + k] * c[j * n + k];
            }
            d[i * n + j] = v;
        }
    }
    d
}

/// Build the two-electron part of the Fock matrix from the density:
/// `G_ij = Σ_kl D_kl [2 (ij|kl) − (ik|jl)]`, with Schwarz screening.
pub fn g_matrix(basis: &BasisSet, density: &[f64], screen_tol: f64) -> Vec<f64> {
    let n = basis.len();
    let q = schwarz_factors(basis);
    let dmax = density.iter().fold(0.0f64, |m, &v| m.max(v.abs())).max(1.0);
    let mut g = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..n {
            let mut v = 0.0;
            for k in 0..n {
                for l in 0..n {
                    // Coulomb term 2 (ij|kl) D_kl.
                    if q[i * n + j] * q[k * n + l] * dmax > screen_tol {
                        v += 2.0
                            * density[k * n + l]
                            * eri(&basis.funcs[i], &basis.funcs[j], &basis.funcs[k], &basis.funcs[l]);
                    }
                    // Exchange term −(ik|jl) D_kl.
                    if q[i * n + k] * q[j * n + l] * dmax > screen_tol {
                        v -= density[k * n + l]
                            * eri(&basis.funcs[i], &basis.funcs[k], &basis.funcs[j], &basis.funcs[l]);
                    }
                }
            }
            g[i * n + j] = v;
        }
    }
    g
}

/// Electronic energy `Σ_ij D_ij (H_ij + F_ij)`.
pub fn electronic_energy(density: &[f64], hcore: &[f64], fock: &[f64]) -> f64 {
    density
        .iter()
        .zip(hcore.iter().zip(fock.iter()))
        .map(|(d, (h, f))| d * (h + f))
        .sum()
}

/// One Roothaan step: orthogonalize F, diagonalize, build the new density.
pub fn roothaan_step(fock: &[f64], x: &[f64], n: usize, n_occ: usize) -> Vec<f64> {
    // F' = Xᵀ F X (X = S^(-1/2), symmetric).
    let fp = mat_mul(&mat_mul(&transpose(x, n), fock, n), x, n);
    let (_, cp) = jacobi_eigen(&fp, n);
    // C = X C'.
    let c = mat_mul(x, &cp, n);
    density_from_orbitals(&c, n, n_occ)
}

/// Mulliken population analysis: the electron population assigned to
/// each basis function, `q_i = 2 (D S)_ii` (closed shell). Populations sum
/// to the electron count — a standard sanity check on a converged density.
pub fn mulliken_populations(basis: &BasisSet, density: &[f64]) -> Vec<f64> {
    let n = basis.len();
    let s = overlap_matrix(basis);
    let ds = mat_mul(density, &s, n);
    (0..n).map(|i| 2.0 * ds[i * n + i]).collect()
}

/// Run the sequential SCF to convergence.
pub fn scf_sequential(basis: &BasisSet, cfg: &ScfConfig) -> ScfResult {
    let n = basis.len();
    let n_elec = basis.molecule.n_electrons();
    assert!(n_elec.is_multiple_of(2), "closed-shell SCF needs an even electron count");
    let n_occ = n_elec / 2;
    assert!(n_occ <= n, "basis too small for the electron count");

    let s = overlap_matrix(basis);
    let x = crate::linalg::inv_sqrt_spd(&s, n);
    let hcore = core_hamiltonian(basis);
    let e_nuc = basis.molecule.nuclear_repulsion();

    // Initial guess: core Hamiltonian.
    let mut density = roothaan_step(&hcore, &x, n, n_occ);
    let mut energy = f64::INFINITY;
    let mut converged = false;
    let mut iterations = 0;

    for it in 0..cfg.max_iters {
        iterations = it + 1;
        let g = g_matrix(basis, &density, cfg.screen_tol);
        let fock: Vec<f64> = hcore.iter().zip(g.iter()).map(|(h, gg)| h + gg).collect();
        let e_elec = electronic_energy(&density, &hcore, &fock);
        let e_tot = e_elec + e_nuc;
        if (e_tot - energy).abs() < cfg.tol {
            energy = e_tot;
            converged = true;
            break;
        }
        energy = e_tot;
        let new_d = roothaan_step(&fock, &x, n, n_occ);
        // Damped density update for stability.
        for (d, nd) in density.iter_mut().zip(new_d.iter()) {
            *d = cfg.damping * *d + (1.0 - cfg.damping) * nd;
        }
    }
    let e_elec = energy - e_nuc;
    ScfResult {
        energy,
        electronic_energy: e_elec,
        iterations,
        converged,
        density,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basis::{BasisSet, Molecule};

    fn h2_basis() -> BasisSet {
        // H2 at 1.4 bohr with a 2-primitive even-tempered s basis.
        let m = Molecule {
            atoms: vec![
                crate::basis::Atom {
                    z: 1.0,
                    pos: [0.0, 0.0, 0.0],
                },
                crate::basis::Atom {
                    z: 1.0,
                    pos: [1.4, 0.0, 0.0],
                },
            ],
        };
        BasisSet::even_tempered(m, 2, 0.35, 4.0)
    }

    #[test]
    fn h2_energy_is_physical() {
        let r = scf_sequential(&h2_basis(), &ScfConfig::default());
        assert!(r.converged, "SCF did not converge: {r:?}");
        // RHF/H2 with a small s basis lands near -1.1 hartree (exact
        // RHF/STO-3G is -1.117); our 2-primitive even-tempered basis must
        // be bound and in the right region.
        assert!(
            r.energy < -0.8 && r.energy > -1.3,
            "H2 energy {} out of physical range",
            r.energy
        );
    }

    #[test]
    fn energy_is_variational_in_basis_size() {
        // A bigger basis must give a lower (better) energy.
        let m = Molecule::h_chain(2);
        let small = BasisSet::even_tempered(m.clone(), 1, 1.0, 3.0);
        let large = BasisSet::even_tempered(m, 3, 0.3, 3.5);
        let e_small = scf_sequential(&small, &ScfConfig::default()).energy;
        let e_large = scf_sequential(&large, &ScfConfig::default()).energy;
        assert!(
            e_large < e_small,
            "variational principle violated: {e_large} vs {e_small}"
        );
    }

    #[test]
    fn density_trace_counts_electron_pairs() {
        let basis = h2_basis();
        let r = scf_sequential(&basis, &ScfConfig::default());
        // Tr(D S) = number of occupied orbitals (electron pairs).
        let s = crate::integrals::overlap_matrix(&basis);
        let n = basis.len();
        let ds = crate::linalg::mat_mul(&r.density, &s, n);
        let trace: f64 = (0..n).map(|i| ds[i * n + i]).sum();
        assert!((trace - 1.0).abs() < 1e-8, "Tr(DS) = {trace}");
    }

    #[test]
    fn mulliken_populations_sum_to_electron_count() {
        let basis = h2_basis();
        let r = scf_sequential(&basis, &ScfConfig::default());
        let pops = mulliken_populations(&basis, &r.density);
        let total: f64 = pops.iter().sum();
        assert!(
            (total - 2.0).abs() < 1e-8,
            "H2 populations must sum to 2 electrons, got {total}"
        );
        // Symmetric molecule, symmetric basis: the two atoms carry equal
        // charge (functions 0,1 on atom A; 2,3 on atom B).
        let qa = pops[0] + pops[1];
        let qb = pops[2] + pops[3];
        assert!((qa - qb).abs() < 1e-8, "asymmetric populations: {pops:?}");
    }

    #[test]
    fn screening_does_not_change_energy() {
        let basis = h2_basis();
        let loose = scf_sequential(
            &basis,
            &ScfConfig {
                screen_tol: 1e-9,
                ..Default::default()
            },
        );
        let none = scf_sequential(
            &basis,
            &ScfConfig {
                screen_tol: 0.0,
                ..Default::default()
            },
        );
        assert!((loose.energy - none.energy).abs() < 1e-8);
    }
}
