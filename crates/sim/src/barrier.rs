//! A virtual-time-aware barrier.

use scioto_det::sync::Mutex;

use crate::kernel::Kernel;
use crate::trace::TraceEvent;

struct BState {
    generation: u64,
    arrived: usize,
    max_arrival: u64,
    waiters: Vec<usize>,
}

/// A reusable machine-wide barrier.
///
/// In virtual-time mode the collective release time is
/// `max(arrival clocks) + cost`, so a barrier correctly charges every rank
/// for waiting on the slowest participant. One instance services all
/// episodes of a machine; SPMD discipline (every rank calls collectives in
/// the same order) is the caller's responsibility, as on a real machine.
pub struct SimBarrier {
    state: Mutex<BState>,
}

impl SimBarrier {
    pub(crate) fn new() -> Self {
        SimBarrier {
            state: Mutex::new(BState {
                generation: 0,
                arrived: 0,
                max_arrival: 0,
                waiters: Vec::new(),
            }),
        }
    }

    pub(crate) fn wait(&self, kernel: &Kernel, rank: usize, cost: u64) {
        kernel.yield_point(rank);
        // Arrival on the virtual clock; the BarrierWait event emitted at
        // release spans [arrival, release]. Emitted even when the span is
        // empty so that the k-th BarrierWait on every rank belongs to the
        // same episode (the analyzer matches episodes by index).
        let arrival = kernel.clock(rank);
        let n = kernel.nranks();
        let mut st = self.state.lock();
        let my_generation = st.generation;
        st.max_arrival = st.max_arrival.max(kernel.now(rank));
        st.arrived += 1;
        if st.arrived == n {
            let release = st.max_arrival + cost;
            st.generation = st.generation.wrapping_add(1);
            st.arrived = 0;
            st.max_arrival = 0;
            let waiters = std::mem::take(&mut st.waiters);
            drop(st);
            for w in waiters {
                kernel.unblock(w, release);
            }
            kernel.advance_to(rank, release);
            kernel.emit(rank, || TraceEvent::BarrierWait {
                dur_ns: kernel.clock(rank).saturating_sub(arrival),
                epoch: my_generation,
            });
            return;
        }
        st.waiters.push(rank);
        loop {
            drop(st);
            kernel.block(rank);
            st = self.state.lock();
            if st.generation != my_generation {
                drop(st);
                kernel.emit(rank, || TraceEvent::BarrierWait {
                    dur_ns: kernel.clock(rank).saturating_sub(arrival),
                    epoch: my_generation,
                });
                return;
            }
            // Spurious wake (a token meant for another primitive): the rank
            // must remain registered as a waiter for this generation.
            if !st.waiters.contains(&rank) {
                st.waiters.push(rank);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{Machine, MachineConfig};

    #[test]
    fn barrier_release_time_is_max_arrival_plus_cost() {
        let out = Machine::run(MachineConfig::virtual_time(4), |ctx| {
            // Rank r computes (r+1) * 100 ns before the barrier.
            ctx.compute((ctx.rank() as u64 + 1) * 100);
            ctx.barrier_with_cost(50);
            ctx.now()
        });
        // Slowest arrival is 400 ns; everyone leaves at 450 ns.
        for t in out.results {
            assert_eq!(t, 450);
        }
    }

    #[test]
    fn barrier_is_reusable() {
        let out = Machine::run(MachineConfig::virtual_time(3), |ctx| {
            for _ in 0..10 {
                ctx.compute(10);
                ctx.barrier_with_cost(0);
            }
            ctx.now()
        });
        for t in out.results {
            assert_eq!(t, 100);
        }
    }

    #[test]
    fn single_rank_barrier_is_trivial() {
        let out = Machine::run(MachineConfig::virtual_time(1), |ctx| {
            ctx.barrier_with_cost(7);
            ctx.now()
        });
        assert_eq!(out.results, vec![7]);
    }
}
