//! A virtual-time-aware barrier.

use scioto_det::sync::Mutex;

use crate::config::{ceil_log2, BarrierKind};
use crate::kernel::Kernel;
use crate::trace::TraceEvent;

struct BState {
    generation: u64,
    arrived: usize,
    max_arrival: u64,
    /// Per-rank arrival clocks for the current episode (consulted by the
    /// dissemination schedule; sized lazily on first wait).
    arrivals: Vec<u64>,
    waiters: Vec<usize>,
}

/// A reusable machine-wide barrier.
///
/// Two release models, selected by [`BarrierKind`]:
///
/// * **Flat** — the collective release time is `max(arrival clocks) +
///   cost`, so a barrier charges every rank for waiting on the slowest
///   participant plus the full synchronous cost. The historical model.
/// * **Tree** — a dissemination barrier: `K = ceil(log2 n)` rounds, in
///   round `k` rank `r` signals rank `(r + 2^k) mod n` and waits on the
///   signal from `(r - 2^k) mod n`, each delivery costing one hop
///   (`cost / 2K`). A rank's release is its arrival pushed through that
///   schedule, so release times are per-rank: stragglers' lateness reaches
///   distant ranks only attenuated by hop delays, and with equal arrivals
///   every rank pays `K` hops — half the flat model's up-and-down `2K`.
///
/// One instance services all episodes of a machine; SPMD discipline (every
/// rank calls collectives in the same order) is the caller's
/// responsibility, as on a real machine.
pub struct SimBarrier {
    kind: BarrierKind,
    state: Mutex<BState>,
}

/// Per-rank release clocks for one barrier episode under `kind`.
///
/// `arrivals` holds each rank's arrival clock; `cost` is the full modelled
/// barrier cost (`2K * hop` when produced by
/// [`crate::LatencyModel::barrier_cost`]).
fn release_times(kind: BarrierKind, arrivals: &[u64], cost: u64) -> Vec<u64> {
    let n = arrivals.len();
    let max_arrival = arrivals.iter().copied().max().unwrap_or(0);
    match kind {
        BarrierKind::Flat => vec![max_arrival + cost; n],
        BarrierKind::Tree => {
            if n <= 1 {
                return arrivals.iter().map(|a| a + cost).collect();
            }
            let k = ceil_log2(n);
            // Integer division truncates (by at most 2K-1 ns total across
            // the schedule; the standard `barrier_cost` inputs are exact
            // multiples of 2K, and the pinned baselines pin the truncated
            // values for the rest). A nonzero cost below 2K would truncate
            // to hop 0 — a pure max-arrival synchronization that charges
            // *nothing* — so in that degenerate case the final round
            // carries the full cost instead.
            let hop = cost / (2 * k);
            let last_hop = if hop == 0 { cost } else { hop };
            let mut t = arrivals.to_vec();
            let mut step = 1usize;
            for round in 0..k {
                let h = if round == k - 1 { last_hop } else { hop };
                let prev = t.clone();
                for (r, tr) in t.iter_mut().enumerate() {
                    let peer = (r + n - step) % n;
                    *tr = (*tr).max(prev[peer] + h);
                }
                step <<= 1;
            }
            t
        }
    }
}

impl SimBarrier {
    pub(crate) fn new(kind: BarrierKind) -> Self {
        SimBarrier {
            kind,
            state: Mutex::new(BState {
                generation: 0,
                arrived: 0,
                max_arrival: 0,
                arrivals: Vec::new(),
                waiters: Vec::new(),
            }),
        }
    }

    pub(crate) fn wait(&self, kernel: &Kernel, rank: usize, cost: u64) {
        kernel.yield_point(rank);
        // Arrival on the rank's clock (virtual, or wall in concurrent
        // mode); the BarrierWait event emitted at release spans
        // [arrival, release]. Emitted even when the span is empty so that
        // the k-th BarrierWait on every rank belongs to the same episode
        // (the analyzer matches episodes by index).
        let arrival = kernel.now(rank);
        let n = kernel.nranks();
        let mut st = self.state.lock();
        let my_generation = st.generation;
        if st.arrivals.len() != n {
            st.arrivals.resize(n, 0);
        }
        st.arrivals[rank] = kernel.now(rank);
        st.max_arrival = st.max_arrival.max(kernel.now(rank));
        st.arrived += 1;
        if st.arrived == n {
            let releases = release_times(self.kind, &st.arrivals, cost);
            let my_release = releases[rank];
            st.generation = st.generation.wrapping_add(1);
            st.arrived = 0;
            st.max_arrival = 0;
            st.arrivals.fill(0);
            let waiters = std::mem::take(&mut st.waiters);
            drop(st);
            for w in waiters {
                kernel.unblock(w, releases[w]);
            }
            kernel.advance_to(rank, my_release);
            kernel.emit(rank, || TraceEvent::BarrierWait {
                dur_ns: kernel.now(rank).saturating_sub(arrival),
                epoch: my_generation,
            });
            return;
        }
        st.waiters.push(rank);
        loop {
            drop(st);
            kernel.block(rank, "barrier.wait");
            st = self.state.lock();
            if st.generation != my_generation {
                drop(st);
                kernel.emit(rank, || TraceEvent::BarrierWait {
                    dur_ns: kernel.now(rank).saturating_sub(arrival),
                    epoch: my_generation,
                });
                return;
            }
            // Spurious wake (a token meant for another primitive): the rank
            // must remain registered as a waiter for this generation.
            if !st.waiters.contains(&rank) {
                st.waiters.push(rank);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Machine, MachineConfig};

    #[test]
    fn barrier_release_time_is_max_arrival_plus_cost() {
        let out = Machine::run(MachineConfig::virtual_time(4), |ctx| {
            // Rank r computes (r+1) * 100 ns before the barrier.
            ctx.compute((ctx.rank() as u64 + 1) * 100);
            ctx.barrier_with_cost(50);
            ctx.now()
        });
        // Slowest arrival is 400 ns; everyone leaves at 450 ns.
        for t in out.results {
            assert_eq!(t, 450);
        }
    }

    #[test]
    fn barrier_is_reusable() {
        let out = Machine::run(MachineConfig::virtual_time(3), |ctx| {
            for _ in 0..10 {
                ctx.compute(10);
                ctx.barrier_with_cost(0);
            }
            ctx.now()
        });
        for t in out.results {
            assert_eq!(t, 100);
        }
    }

    #[test]
    fn single_rank_barrier_is_trivial() {
        let out = Machine::run(MachineConfig::virtual_time(1), |ctx| {
            ctx.barrier_with_cost(7);
            ctx.now()
        });
        assert_eq!(out.results, vec![7]);
    }

    #[test]
    fn tree_release_schedule_is_per_rank() {
        // Hand-computed dissemination schedule, n = 4, K = 2, hop = 10:
        // arrivals [100, 200, 300, 400];
        // round 1 (step 1): [410, 200, 300, 400]
        // round 2 (step 2): [410, 410, 420, 400]
        let t = release_times(BarrierKind::Tree, &[100, 200, 300, 400], 40);
        assert_eq!(t, vec![410, 410, 420, 400]);
        // Flat charges everyone max + full cost.
        let f = release_times(BarrierKind::Flat, &[100, 200, 300, 400], 40);
        assert_eq!(f, vec![440; 4]);
    }

    #[test]
    fn tree_equal_arrivals_pay_half_the_flat_cost() {
        // All arrive together: K hops = cost/2 instead of flat's full cost.
        let t = release_times(BarrierKind::Tree, &[0; 8], 60);
        assert_eq!(t, vec![30; 8]);
        let f = release_times(BarrierKind::Flat, &[0; 8], 60);
        assert_eq!(f, vec![60; 8]);
    }

    #[test]
    fn tree_sub_2k_cost_is_carried_by_the_final_round() {
        // n = 5, K = 3, cost 3 < 2K: the per-round hop truncates to zero,
        // so the full cost rides the final round instead of being silently
        // dropped. Hand-computed: rounds 1-2 (hop 0) propagate arrival
        // maxima — after round 2, t = [40, 90, 90, 90, 90]; round 3
        // (step 4, hop 3) gives rank 4 max(90, t[0] + 3 = 43) = 90 while
        // every other rank waits on a 90-predecessor and pays the hop.
        let t = release_times(BarrierKind::Tree, &[5, 90, 20, 40, 7], 3);
        assert_eq!(t, vec![93, 93, 93, 93, 90]);
        // Equal arrivals: the schedule charges exactly the full cost once.
        let t = release_times(BarrierKind::Tree, &[0; 5], 3);
        assert_eq!(t, vec![3; 5]);
        // Zero cost stays a pure synchronization.
        let t = release_times(BarrierKind::Tree, &[5, 90, 20, 40, 7], 0);
        assert_eq!(t, vec![90; 5]);
    }

    #[test]
    fn tree_nondivisible_cost_truncation_is_pinned() {
        // n = 5, K = 3, cost 20: hop = 20 / 6 = 3 (truncated). Equal
        // arrivals pay K * hop = 9 of the nominal half-cost 10 — the
        // documented under-charge of at most 2K - 1 ns, pinned here so a
        // change to the rounding rule cannot slip past the baselines.
        let t = release_times(BarrierKind::Tree, &[0; 5], 20);
        assert_eq!(t, vec![9; 5]);
    }

    #[test]
    fn tree_single_rank_charges_full_cost() {
        assert_eq!(release_times(BarrierKind::Tree, &[12], 7), vec![19]);
    }

    #[test]
    fn tree_machine_barrier_end_to_end() {
        let out = Machine::run(
            MachineConfig::virtual_time(4).with_barrier(BarrierKind::Tree),
            |ctx| {
                ctx.compute((ctx.rank() as u64 + 1) * 100);
                ctx.barrier_with_cost(40);
                ctx.now()
            },
        );
        assert_eq!(out.results, vec![410, 410, 420, 400]);
    }

    #[test]
    fn tree_machine_barrier_is_reusable() {
        let out = Machine::run(
            MachineConfig::virtual_time(3).with_barrier(BarrierKind::Tree),
            |ctx| {
                for _ in 0..5 {
                    ctx.compute(10);
                    ctx.barrier_with_cost(0);
                }
                ctx.now()
            },
        );
        // Zero cost, equal arrivals: pure synchronization, 5 * 10 ns.
        for t in out.results {
            assert_eq!(t, 50);
        }
    }
}
