//! Machine configuration: execution mode, latency model, CPU speed model,
//! tracing.

use crate::trace::TraceConfig;

/// How the simulated machine executes rank programs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecMode {
    /// Conservative discrete-event execution: exactly one rank runs at a
    /// time, chosen as the runnable rank with the smallest virtual clock
    /// (ties broken by rank id). Deterministic; all performance figures are
    /// produced in this mode.
    VirtualTime,
    /// Free-running OS threads with real locks and wall-clock time. Used to
    /// stress the same runtime code under genuine preemption; timing is not
    /// modelled and runs are not deterministic.
    Concurrent,
}

/// Communication and queue-operation costs, in nanoseconds.
///
/// The presets are calibrated so that the Table 1 microbenchmarks of the
/// paper land in the reported regime (local ops well under 1 µs, remote
/// insert ~18/27 µs, steal ~29/32 µs on cluster/XT4 respectively, with a
/// 1 KiB task body and chunk size 10).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LatencyModel {
    /// Software overhead of a lock-free local queue insert.
    pub local_insert: u64,
    /// Software overhead of a lock-free local queue get.
    pub local_get: u64,
    /// Base latency of a one-sided remote operation (put/get/acc/rmw).
    pub remote_op: u64,
    /// Additional cost per byte transferred by a remote operation.
    pub per_byte: f64,
    /// Cost of acquiring *or* releasing a remote lock (one one-sided RMW).
    pub lock: u64,
    /// Target-side service time of an atomic read-modify-write: the host
    /// adapter processes RMWs on one word serially, so a hot location
    /// (e.g. a shared `read_inc` counter) saturates at `1/rmw_service`
    /// operations per second — the bottleneck behind the original
    /// SCF/TCE load balancers in Figures 5 and 6.
    pub rmw_service: u64,
    /// Base latency of a two-sided message (send to matching receive).
    pub msg: u64,
    /// Per-hop cost of a tree barrier (a barrier costs
    /// `2 * ceil(log2 n) * barrier_hop`).
    pub barrier_hop: u64,
}

impl LatencyModel {
    /// All costs zero. Useful for unit tests that only check functional
    /// behaviour.
    pub fn zero() -> Self {
        LatencyModel {
            local_insert: 0,
            local_get: 0,
            remote_op: 0,
            per_byte: 0.0,
            lock: 0,
            rmw_service: 0,
            msg: 0,
            barrier_hop: 0,
        }
    }

    /// The paper's heterogeneous InfiniBand cluster (Mellanox 10 Gb/s NICs).
    pub fn cluster() -> Self {
        LatencyModel {
            local_insert: 495,
            local_get: 361,
            remote_op: 3_300,
            per_byte: 1.05,
            lock: 3_500,
            rmw_service: 3_000,
            msg: 4_000,
            barrier_hop: 4_500,
        }
    }

    /// The paper's Cray XT4 (SeaStar interconnect; slower per-op software
    /// path, comparable network).
    pub fn xt4() -> Self {
        LatencyModel {
            local_insert: 933,
            local_get: 691,
            remote_op: 5_600,
            per_byte: 0.55,
            lock: 5_200,
            rmw_service: 2_000,
            msg: 5_000,
            barrier_hop: 5_000,
        }
    }

    /// Cost of moving `bytes` with one one-sided operation.
    pub fn xfer(&self, bytes: usize) -> u64 {
        self.remote_op + (self.per_byte * bytes as f64) as u64
    }

    /// Modelled cost of an `n`-rank tree barrier (up-wave plus down-wave).
    pub fn barrier_cost(&self, n: usize) -> u64 {
        2 * ceil_log2(n) * self.barrier_hop
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel::cluster()
    }
}

/// `ceil(log2(n))` for `n >= 1`.
pub fn ceil_log2(n: usize) -> u64 {
    debug_assert!(n >= 1);
    (usize::BITS - n.saturating_sub(1).leading_zeros()) as u64
}

/// Per-rank CPU cost multipliers applied to [`crate::Ctx::compute`] charges.
///
/// A factor of 1.0 is the reference CPU; larger factors are *slower* CPUs.
/// The paper measures UTS node-processing costs of 0.3158 µs (Opteron),
/// 0.4753 µs (Xeon) and 0.5681 µs (XT4 Opteron 285); [`SpeedModel::hetero_cluster`]
/// reproduces the cluster's 50% Opteron/Xeon split.
#[derive(Clone, Debug, PartialEq)]
pub struct SpeedModel {
    factors: Vec<f64>,
}

impl SpeedModel {
    /// All ranks run at the reference speed.
    pub fn uniform(n: usize) -> Self {
        SpeedModel {
            factors: vec![1.0; n],
        }
    }

    /// Explicit per-rank factors.
    pub fn from_factors(factors: Vec<f64>) -> Self {
        assert!(
            factors.iter().all(|f| *f > 0.0),
            "speed factors must be positive"
        );
        SpeedModel { factors }
    }

    /// The paper's heterogeneous cluster: even ranks are Opterons (factor
    /// 1.0), odd ranks are Xeons (factor 0.4753/0.3158 ≈ 1.505 — ~50% slower
    /// on the UTS SHA-1 kernel). Interleaving even/odd reflects the paper's
    /// "half Opteron and half Xeon" runs at every machine size.
    pub fn hetero_cluster(n: usize) -> Self {
        let xeon = 0.4753 / 0.3158;
        SpeedModel {
            factors: (0..n).map(|r| if r % 2 == 0 { 1.0 } else { xeon }).collect(),
        }
    }

    /// Cost multiplier for `rank`.
    pub fn factor(&self, rank: usize) -> f64 {
        self.factors[rank]
    }

    /// Number of ranks this model covers.
    pub fn len(&self) -> usize {
        self.factors.len()
    }

    /// True when the model covers zero ranks.
    pub fn is_empty(&self) -> bool {
        self.factors.is_empty()
    }
}

/// How the machine-wide barrier charges its participants.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BarrierKind {
    /// Flat release: every rank leaves at `max(arrival) + cost` — the full
    /// synchronous cost is charged on top of the slowest arrival. The
    /// historical model and the ablation baseline.
    Flat,
    /// Dissemination barrier: `ceil(log2 n)` rounds, each costing one hop
    /// (`cost / (2 * ceil(log2 n))`, i.e. `barrier_hop` when `cost` is a
    /// [`LatencyModel::barrier_cost`]). A rank's release time is its own
    /// arrival pushed through the round schedule, so ranks far from the
    /// stragglers leave earlier and equal arrivals pay only half the flat
    /// cost (K hops instead of the up-and-down 2K).
    Tree,
}

/// Full configuration for [`crate::Machine::run`].
#[derive(Clone, Debug)]
pub struct MachineConfig {
    /// Number of simulated processes.
    pub ranks: usize,
    /// Execution mode (virtual time vs. real threads).
    pub mode: ExecMode,
    /// Communication cost model (consulted by the comm layers).
    pub latency: LatencyModel,
    /// Per-rank CPU speed factors.
    pub speed: SpeedModel,
    /// Seed for the per-rank deterministic RNGs ([`crate::Ctx::rng`]).
    pub seed: u64,
    /// Stack size for rank threads. 512-rank simulations need modest stacks.
    pub stack_size: usize,
    /// Event tracing and metrics collection (off by default).
    pub trace: TraceConfig,
    /// Barrier release model ([`BarrierKind::Flat`] by default, so existing
    /// pinned virtual-time results are unchanged unless a config opts in).
    pub barrier: BarrierKind,
}

impl MachineConfig {
    /// Deterministic virtual-time machine with `ranks` processes, zero-cost
    /// latency model and uniform CPUs — the baseline for functional tests.
    pub fn virtual_time(ranks: usize) -> Self {
        MachineConfig {
            ranks,
            mode: ExecMode::VirtualTime,
            latency: LatencyModel::zero(),
            speed: SpeedModel::uniform(ranks),
            seed: 0x005C_1070,
            stack_size: 1 << 20,
            trace: TraceConfig::disabled(),
            barrier: BarrierKind::Flat,
        }
    }

    /// Free-running threaded machine with `ranks` processes.
    pub fn concurrent(ranks: usize) -> Self {
        MachineConfig {
            mode: ExecMode::Concurrent,
            ..MachineConfig::virtual_time(ranks)
        }
    }

    /// Replace the latency model.
    pub fn with_latency(mut self, latency: LatencyModel) -> Self {
        self.latency = latency;
        self
    }

    /// Replace the speed model (must cover `ranks` ranks).
    pub fn with_speed(mut self, speed: SpeedModel) -> Self {
        assert_eq!(speed.len(), self.ranks, "speed model must cover all ranks");
        self.speed = speed;
        self
    }

    /// Replace the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replace the tracing configuration. Enabling tracing attaches a
    /// [`crate::Trace`] to the run's [`crate::Report`].
    pub fn with_trace(mut self, trace: TraceConfig) -> Self {
        self.trace = trace;
        self
    }

    /// Replace the barrier release model.
    pub fn with_barrier(mut self, barrier: BarrierKind) -> Self {
        self.barrier = barrier;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(64), 6);
        assert_eq!(ceil_log2(65), 7);
        assert_eq!(ceil_log2(512), 9);
    }

    #[test]
    fn xfer_includes_per_byte_cost() {
        let m = LatencyModel {
            remote_op: 100,
            per_byte: 2.0,
            ..LatencyModel::zero()
        };
        assert_eq!(m.xfer(0), 100);
        assert_eq!(m.xfer(10), 120);
    }

    #[test]
    fn hetero_cluster_alternates() {
        let s = SpeedModel::hetero_cluster(4);
        assert_eq!(s.factor(0), 1.0);
        assert!(s.factor(1) > 1.4 && s.factor(1) < 1.6);
        assert_eq!(s.factor(2), 1.0);
    }

    #[test]
    fn barrier_cost_scales_logarithmically() {
        let m = LatencyModel {
            barrier_hop: 10,
            ..LatencyModel::zero()
        };
        assert_eq!(m.barrier_cost(1), 0);
        assert_eq!(m.barrier_cost(2), 20);
        assert_eq!(m.barrier_cost(64), 120);
    }

    #[test]
    #[should_panic(expected = "speed factors must be positive")]
    fn rejects_nonpositive_speed() {
        SpeedModel::from_factors(vec![1.0, 0.0]);
    }
}
