//! Machine configuration: execution mode, latency model, CPU speed model,
//! tracing.

use crate::trace::TraceConfig;

/// How the simulated machine executes rank programs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecMode {
    /// Conservative discrete-event execution: exactly one rank runs at a
    /// time, chosen as the runnable rank with the smallest virtual clock
    /// (ties broken by rank id). Deterministic; all performance figures are
    /// produced in this mode.
    VirtualTime,
    /// Free-running OS threads with real locks and wall-clock time. Used to
    /// stress the same runtime code under genuine preemption; timing is not
    /// modelled and runs are not deterministic.
    Concurrent,
}

/// Which execution substrate drives [`ExecMode::VirtualTime`] scheduling.
///
/// Both engines implement the same conservative discrete-event semantics —
/// same-seed runs produce byte-identical [`crate::Report`]s and traces —
/// so the choice is purely about capacity: parked OS threads top out
/// around 64 ranks on a small host, while the event engine's fibers reach
/// 1024+ ranks. [`ExecMode::Concurrent`] always uses free-running threads
/// regardless of this setting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Engine {
    /// Event-driven fibers where the platform supports them (x86_64 and
    /// aarch64 unix), parked OS threads elsewhere. The default.
    Auto,
    /// One parked OS thread per rank — the historical engine, available
    /// everywhere.
    Threads,
    /// Resumable fibers on one OS thread, dispatched from a min-clock
    /// event queue. Panics at machine start on unsupported targets.
    Events,
}

impl Engine {
    /// True when [`Engine::Events`] is available on this target.
    pub fn events_supported() -> bool {
        crate::fiber::SUPPORTED
    }
}

/// Near/far latency tiers over ring distance.
///
/// Models the PGAS-over-fabric hierarchy of DART-MPI-style runtimes: a
/// one-sided op to a rank on the same node (ring distance within
/// `near_radius`) moves over shared memory or the local NIC loopback,
/// while a cross-switch op pays the full fabric traversal. Attached to a
/// [`LatencyModel`] via [`LatencyModel::with_tiers`]; untiered models
/// (all pre-existing presets) are distance-blind and byte-identical to
/// their historical behaviour.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LatencyTiers {
    /// Ranks within this ring distance are "near" (same node/switch).
    pub near_radius: usize,
    /// Multiplier on base + per-byte remote costs for near targets.
    pub near_scale: f64,
    /// Multiplier for far targets.
    pub far_scale: f64,
}

impl LatencyTiers {
    /// The bench bins' `--latency nearfar` preset. `near_radius` 2 matches
    /// the analyzer's near-steal radius (`scioto-analyze` derives its
    /// constant from here); 0.35 tracks the intra-node vs inter-node RMA
    /// ratio DART-MPI reports, and 1.25 charges cross-switch ops the extra
    /// hop a two-level fat tree adds.
    pub const fn nearfar() -> Self {
        LatencyTiers {
            near_radius: 2,
            near_scale: 0.35,
            far_scale: 1.25,
        }
    }

    /// Cost multiplier for an op from `from` to `to` on an `n`-rank ring.
    pub fn scale(&self, from: usize, to: usize, n: usize) -> f64 {
        if ring_distance(from, to, n) <= self.near_radius {
            self.near_scale
        } else {
            self.far_scale
        }
    }
}

/// Shortest ring distance between ranks `a` and `b` on an `n`-rank ring.
pub fn ring_distance(a: usize, b: usize, n: usize) -> usize {
    let d = a.abs_diff(b);
    d.min(n - d)
}

/// Communication and queue-operation costs, in nanoseconds.
///
/// The presets are calibrated so that the Table 1 microbenchmarks of the
/// paper land in the reported regime (local ops well under 1 µs, remote
/// insert ~18/27 µs, steal ~29/32 µs on cluster/XT4 respectively, with a
/// 1 KiB task body and chunk size 10).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LatencyModel {
    /// Software overhead of a lock-free local queue insert.
    pub local_insert: u64,
    /// Software overhead of a lock-free local queue get.
    pub local_get: u64,
    /// Base latency of a one-sided remote operation (put/get/acc/rmw).
    pub remote_op: u64,
    /// Additional cost per byte transferred by a remote operation.
    pub per_byte: f64,
    /// Cost of acquiring *or* releasing a remote lock (one one-sided RMW).
    pub lock: u64,
    /// Target-side service time of an atomic read-modify-write: the host
    /// adapter processes RMWs on one word serially, so a hot location
    /// (e.g. a shared `read_inc` counter) saturates at `1/rmw_service`
    /// operations per second — the bottleneck behind the original
    /// SCF/TCE load balancers in Figures 5 and 6.
    pub rmw_service: u64,
    /// Base latency of a two-sided message (send to matching receive).
    pub msg: u64,
    /// Per-hop cost of a tree barrier (a barrier costs
    /// `2 * ceil(log2 n) * barrier_hop`).
    pub barrier_hop: u64,
    /// Optional near/far distance tiers. `None` (every pre-existing
    /// preset) keeps all remote costs distance-blind.
    pub tiers: Option<LatencyTiers>,
}

impl LatencyModel {
    /// All costs zero. Useful for unit tests that only check functional
    /// behaviour.
    pub fn zero() -> Self {
        LatencyModel {
            local_insert: 0,
            local_get: 0,
            remote_op: 0,
            per_byte: 0.0,
            lock: 0,
            rmw_service: 0,
            msg: 0,
            barrier_hop: 0,
            tiers: None,
        }
    }

    /// The paper's heterogeneous InfiniBand cluster (Mellanox 10 Gb/s NICs).
    pub fn cluster() -> Self {
        LatencyModel {
            local_insert: 495,
            local_get: 361,
            remote_op: 3_300,
            per_byte: 1.05,
            lock: 3_500,
            rmw_service: 3_000,
            msg: 4_000,
            barrier_hop: 4_500,
            tiers: None,
        }
    }

    /// The paper's Cray XT4 (SeaStar interconnect; slower per-op software
    /// path, comparable network).
    pub fn xt4() -> Self {
        LatencyModel {
            local_insert: 933,
            local_get: 691,
            remote_op: 5_600,
            per_byte: 0.55,
            lock: 5_200,
            rmw_service: 2_000,
            msg: 5_000,
            barrier_hop: 5_000,
            tiers: None,
        }
    }

    /// The cluster preset with [`LatencyTiers::nearfar`] attached — the
    /// bench bins' `--latency nearfar` model.
    pub fn cluster_nearfar() -> Self {
        LatencyModel::cluster().with_tiers(LatencyTiers::nearfar())
    }

    /// The XT4 preset with [`LatencyTiers::nearfar`] attached.
    pub fn xt4_nearfar() -> Self {
        LatencyModel::xt4().with_tiers(LatencyTiers::nearfar())
    }

    /// Attach near/far distance tiers.
    pub fn with_tiers(mut self, tiers: LatencyTiers) -> Self {
        self.tiers = Some(tiers);
        self
    }

    /// Cost of moving `bytes` with one one-sided operation.
    pub fn xfer(&self, bytes: usize) -> u64 {
        self.remote_op + (self.per_byte * bytes as f64) as u64
    }

    /// Tier multiplier for `from -> to` on an `n`-rank machine, or `None`
    /// when this model is distance-blind.
    fn tier_scale(&self, from: usize, to: usize, n: usize) -> Option<f64> {
        self.tiers.map(|t| t.scale(from, to, n))
    }

    /// Distance-aware [`LatencyModel::xfer`]: cost of moving `bytes` from
    /// rank `from` to rank `to` on an `n`-rank machine. Untiered models
    /// delegate to `xfer` exactly, so existing results are unchanged.
    pub fn xfer_to(&self, from: usize, to: usize, n: usize, bytes: usize) -> u64 {
        match self.tier_scale(from, to, n) {
            None => self.xfer(bytes),
            Some(s) => scale_ns(self.remote_op, s) + ((self.per_byte * s) * bytes as f64) as u64,
        }
    }

    /// Distance-aware base latency of a one-sided op from `from` to `to`.
    pub fn remote_op_to(&self, from: usize, to: usize, n: usize) -> u64 {
        match self.tier_scale(from, to, n) {
            None => self.remote_op,
            Some(s) => scale_ns(self.remote_op, s),
        }
    }

    /// Distance-aware cost of one remote lock acquire/release half.
    pub fn lock_to(&self, from: usize, to: usize, n: usize) -> u64 {
        match self.tier_scale(from, to, n) {
            None => self.lock,
            Some(s) => scale_ns(self.lock, s),
        }
    }

    /// Distance-aware two-sided message cost for `bytes` from `from` to
    /// `to`. The untiered arm is the exact historical send formula.
    pub fn msg_to(&self, from: usize, to: usize, n: usize, bytes: usize) -> u64 {
        match self.tier_scale(from, to, n) {
            None => self.msg + (self.per_byte * bytes as f64) as u64,
            Some(s) => scale_ns(self.msg, s) + ((self.per_byte * s) * bytes as f64) as u64,
        }
    }

    /// Modelled cost of an `n`-rank tree barrier (up-wave plus down-wave).
    pub fn barrier_cost(&self, n: usize) -> u64 {
        2 * ceil_log2(n) * self.barrier_hop
    }
}

/// Scale a nanosecond cost by a tier multiplier, rounding to nearest.
fn scale_ns(ns: u64, s: f64) -> u64 {
    (ns as f64 * s).round() as u64
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel::cluster()
    }
}

/// `ceil(log2(n))` for `n >= 1`.
pub fn ceil_log2(n: usize) -> u64 {
    debug_assert!(n >= 1);
    (usize::BITS - n.saturating_sub(1).leading_zeros()) as u64
}

/// Per-rank CPU cost multipliers applied to [`crate::Ctx::compute`] charges.
///
/// A factor of 1.0 is the reference CPU; larger factors are *slower* CPUs.
/// The paper measures UTS node-processing costs of 0.3158 µs (Opteron),
/// 0.4753 µs (Xeon) and 0.5681 µs (XT4 Opteron 285); [`SpeedModel::hetero_cluster`]
/// reproduces the cluster's 50% Opteron/Xeon split.
#[derive(Clone, Debug, PartialEq)]
pub struct SpeedModel {
    factors: Vec<f64>,
}

impl SpeedModel {
    /// All ranks run at the reference speed.
    pub fn uniform(n: usize) -> Self {
        SpeedModel {
            factors: vec![1.0; n],
        }
    }

    /// Explicit per-rank factors.
    pub fn from_factors(factors: Vec<f64>) -> Self {
        assert!(
            factors.iter().all(|f| *f > 0.0),
            "speed factors must be positive"
        );
        SpeedModel { factors }
    }

    /// The paper's heterogeneous cluster: even ranks are Opterons (factor
    /// 1.0), odd ranks are Xeons (factor 0.4753/0.3158 ≈ 1.505 — ~50% slower
    /// on the UTS SHA-1 kernel). Interleaving even/odd reflects the paper's
    /// "half Opteron and half Xeon" runs at every machine size.
    pub fn hetero_cluster(n: usize) -> Self {
        let xeon = 0.4753 / 0.3158;
        SpeedModel {
            factors: (0..n).map(|r| if r % 2 == 0 { 1.0 } else { xeon }).collect(),
        }
    }

    /// Cost multiplier for `rank`.
    pub fn factor(&self, rank: usize) -> f64 {
        self.factors[rank]
    }

    /// Number of ranks this model covers.
    pub fn len(&self) -> usize {
        self.factors.len()
    }

    /// True when the model covers zero ranks.
    pub fn is_empty(&self) -> bool {
        self.factors.is_empty()
    }
}

/// How [`crate::Ctx::collective`] synchronizes object distribution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StartupMode {
    /// Barrier-free collectives: rank 0 publishes each object into an
    /// append-only log and wakes any rank parked on that ordinal; an
    /// enclosing [`crate::Ctx::collective_epoch`] commits N registered
    /// objects with a single barrier. The default — a standard
    /// create→process startup runs 2 barrier episodes instead of ~14.
    Coalesced,
    /// The historical protocol: every collective runs a publish barrier
    /// plus a read-fence barrier around one reusable slot (2 episodes
    /// per collective). Selected by `--old-startup` in the bench bins;
    /// byte-identical to all pre-coalescing pinned baselines.
    Old,
}

/// How the machine-wide barrier charges its participants.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BarrierKind {
    /// Flat release: every rank leaves at `max(arrival) + cost` — the full
    /// synchronous cost is charged on top of the slowest arrival. The
    /// historical model and the ablation baseline.
    Flat,
    /// Dissemination barrier: `ceil(log2 n)` rounds, each costing one hop
    /// (`cost / (2 * ceil(log2 n))`, i.e. `barrier_hop` when `cost` is a
    /// [`LatencyModel::barrier_cost`]). A rank's release time is its own
    /// arrival pushed through the round schedule, so ranks far from the
    /// stragglers leave earlier and equal arrivals pay only half the flat
    /// cost (K hops instead of the up-and-down 2K). Hop cost is
    /// `cost / 2K`, truncated (under-charging at most `2K - 1` ns); a
    /// nonzero cost below `2K` rides the final round whole instead of
    /// truncating to a free barrier.
    Tree,
}

/// Full configuration for [`crate::Machine::run`].
#[derive(Clone, Debug)]
pub struct MachineConfig {
    /// Number of simulated processes.
    pub ranks: usize,
    /// Execution mode (virtual time vs. real threads).
    pub mode: ExecMode,
    /// Communication cost model (consulted by the comm layers).
    pub latency: LatencyModel,
    /// Per-rank CPU speed factors.
    pub speed: SpeedModel,
    /// Seed for the per-rank deterministic RNGs ([`crate::Ctx::rng`]).
    pub seed: u64,
    /// Stack size for rank threads. 512-rank simulations need modest stacks.
    pub stack_size: usize,
    /// Event tracing and metrics collection (off by default).
    pub trace: TraceConfig,
    /// Barrier release model ([`BarrierKind::Flat`] by default, so existing
    /// pinned virtual-time results are unchanged unless a config opts in).
    pub barrier: BarrierKind,
    /// Execution substrate for [`ExecMode::VirtualTime`]
    /// ([`Engine::Auto`] by default). Never changes results, only capacity.
    pub engine: Engine,
    /// Collective synchronization protocol ([`StartupMode::Coalesced`] by
    /// default; [`StartupMode::Old`] reproduces the pre-coalescing
    /// two-barriers-per-collective startup byte for byte).
    pub startup: StartupMode,
}

impl MachineConfig {
    /// Deterministic virtual-time machine with `ranks` processes, zero-cost
    /// latency model and uniform CPUs — the baseline for functional tests.
    pub fn virtual_time(ranks: usize) -> Self {
        MachineConfig {
            ranks,
            mode: ExecMode::VirtualTime,
            latency: LatencyModel::zero(),
            speed: SpeedModel::uniform(ranks),
            seed: 0x005C_1070,
            stack_size: 1 << 20,
            trace: TraceConfig::disabled(),
            barrier: BarrierKind::Flat,
            engine: Engine::Auto,
            startup: StartupMode::Coalesced,
        }
    }

    /// Free-running threaded machine with `ranks` processes.
    pub fn concurrent(ranks: usize) -> Self {
        MachineConfig {
            mode: ExecMode::Concurrent,
            ..MachineConfig::virtual_time(ranks)
        }
    }

    /// Replace the latency model.
    pub fn with_latency(mut self, latency: LatencyModel) -> Self {
        self.latency = latency;
        self
    }

    /// Replace the speed model (must cover `ranks` ranks).
    pub fn with_speed(mut self, speed: SpeedModel) -> Self {
        assert_eq!(speed.len(), self.ranks, "speed model must cover all ranks");
        self.speed = speed;
        self
    }

    /// Replace the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replace the tracing configuration. Enabling tracing attaches a
    /// [`crate::Trace`] to the run's [`crate::Report`].
    pub fn with_trace(mut self, trace: TraceConfig) -> Self {
        self.trace = trace;
        self
    }

    /// Replace the barrier release model.
    pub fn with_barrier(mut self, barrier: BarrierKind) -> Self {
        self.barrier = barrier;
        self
    }

    /// Replace the virtual-time execution engine.
    pub fn with_engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Replace the collective startup protocol.
    pub fn with_startup(mut self, startup: StartupMode) -> Self {
        self.startup = startup;
        self
    }

    /// Replace the per-rank stack size (bytes). 1024-rank machines on the
    /// event engine allocate one fiber stack per rank up front, so large
    /// sweeps want this well below the 1 MiB default.
    pub fn with_stack_size(mut self, bytes: usize) -> Self {
        self.stack_size = bytes;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(64), 6);
        assert_eq!(ceil_log2(65), 7);
        assert_eq!(ceil_log2(512), 9);
    }

    #[test]
    fn xfer_includes_per_byte_cost() {
        let m = LatencyModel {
            remote_op: 100,
            per_byte: 2.0,
            ..LatencyModel::zero()
        };
        assert_eq!(m.xfer(0), 100);
        assert_eq!(m.xfer(10), 120);
    }

    #[test]
    fn hetero_cluster_alternates() {
        let s = SpeedModel::hetero_cluster(4);
        assert_eq!(s.factor(0), 1.0);
        assert!(s.factor(1) > 1.4 && s.factor(1) < 1.6);
        assert_eq!(s.factor(2), 1.0);
    }

    #[test]
    fn barrier_cost_scales_logarithmically() {
        let m = LatencyModel {
            barrier_hop: 10,
            ..LatencyModel::zero()
        };
        assert_eq!(m.barrier_cost(1), 0);
        assert_eq!(m.barrier_cost(2), 20);
        assert_eq!(m.barrier_cost(64), 120);
    }

    #[test]
    #[should_panic(expected = "speed factors must be positive")]
    fn rejects_nonpositive_speed() {
        SpeedModel::from_factors(vec![1.0, 0.0]);
    }

    #[test]
    fn ring_distance_wraps() {
        assert_eq!(ring_distance(0, 0, 8), 0);
        assert_eq!(ring_distance(0, 3, 8), 3);
        assert_eq!(ring_distance(0, 7, 8), 1);
        assert_eq!(ring_distance(1, 1022, 1024), 3);
        assert_eq!(ring_distance(0, 512, 1024), 512);
    }

    #[test]
    fn untiered_distance_methods_match_flat_costs() {
        // The distance-aware methods must be drop-in for every historical
        // call site when no tiers are attached: same integer truncation,
        // same formulas, at any distance.
        let m = LatencyModel::cluster();
        for (from, to) in [(0, 1), (0, 31), (5, 60)] {
            assert_eq!(m.xfer_to(from, to, 64, 1024), m.xfer(1024));
            assert_eq!(m.remote_op_to(from, to, 64), m.remote_op);
            assert_eq!(m.lock_to(from, to, 64), m.lock);
            assert_eq!(
                m.msg_to(from, to, 64, 100),
                m.msg + (m.per_byte * 100.0) as u64
            );
        }
    }

    #[test]
    fn nearfar_tiers_scale_by_ring_distance() {
        let m = LatencyModel::cluster_nearfar();
        let t = LatencyTiers::nearfar();
        // Distance 1 (and the wrap-around distance 1) is near.
        assert_eq!(
            m.remote_op_to(0, 1, 64),
            (m.remote_op as f64 * t.near_scale).round() as u64
        );
        assert_eq!(m.remote_op_to(0, 63, 64), m.remote_op_to(0, 1, 64));
        // Distance 32 is far, and costs more than the flat model.
        let far = m.remote_op_to(0, 32, 64);
        assert_eq!(far, (m.remote_op as f64 * t.far_scale).round() as u64);
        assert!(far > m.remote_op);
        assert!(m.remote_op_to(0, 1, 64) < m.remote_op);
        // Per-byte costs scale with the same tier multiplier.
        let near_xfer = m.xfer_to(0, 2, 64, 1000);
        let far_xfer = m.xfer_to(0, 32, 64, 1000);
        assert!(near_xfer < far_xfer);
        assert_eq!(
            far_xfer,
            (m.remote_op as f64 * t.far_scale).round() as u64
                + ((m.per_byte * t.far_scale) * 1000.0) as u64
        );
    }
}
