//! `Ctx` — the per-rank handle passed to every SPMD rank program.

use std::any::Any;
use std::cell::{Cell, RefCell};
use std::sync::Arc;

use scioto_det::Rng;

use crate::config::{ExecMode, LatencyModel, StartupMode};
use crate::kernel::Kernel;
use crate::machine::Shared;
use crate::trace::TraceEvent;

/// The per-rank execution context.
///
/// A `Ctx` is created by [`crate::Machine::run`] for each simulated process
/// and passed by reference to the rank program. It provides rank identity,
/// virtual-time accounting, scheduling points, collectives and a
/// deterministic per-rank RNG. Communication layers (`scioto-armci`,
/// `scioto-mpi`, ...) are built on top of these primitives.
pub struct Ctx {
    rank: usize,
    nranks: usize,
    kernel: Arc<Kernel>,
    shared: Arc<Shared>,
    rng: RefCell<Rng>,
    /// Ordinal of this rank's next collective call (divergence diagnostics
    /// in both startup modes; the coalesced log index).
    coll_ordinal: Cell<usize>,
    /// Nesting depth of [`Ctx::collective_epoch`]; the commit barrier runs
    /// when the outermost epoch closes.
    epoch_depth: Cell<u32>,
}

impl Ctx {
    pub(crate) fn new(rank: usize, kernel: Arc<Kernel>, shared: Arc<Shared>, seed: u64) -> Self {
        let nranks = kernel.nranks();
        Ctx {
            rank,
            nranks,
            kernel,
            shared,
            // Per-rank stream derived by hashing (seed, rank) through
            // SplitMix64. The earlier `seed ^ rank * CONST` XOR-mix was
            // linear: e.g. (seed = CONST, rank = 0) and (seed = 0,
            // rank = 1) produced identical streams.
            rng: RefCell::new(Rng::stream(seed, rank as u64)),
            coll_ordinal: Cell::new(0),
            epoch_depth: Cell::new(0),
        }
    }

    /// This process's rank, `0 <= rank < nranks`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of processes in the machine.
    pub fn nranks(&self) -> usize {
        self.nranks
    }

    /// Execution mode of the machine.
    pub fn mode(&self) -> ExecMode {
        self.kernel.mode()
    }

    /// Latency model of the machine, consulted by communication layers.
    pub fn latency(&self) -> &LatencyModel {
        &self.shared.latency
    }

    /// Current time in nanoseconds: the rank's virtual clock in
    /// [`ExecMode::VirtualTime`], wall time since machine start otherwise.
    pub fn now(&self) -> u64 {
        self.kernel.now(self.rank)
    }

    /// Charge `ns` nanoseconds of local CPU work, scaled by this rank's
    /// speed factor. Rank-private: no scheduling point.
    pub fn compute(&self, ns: u64) {
        self.kernel.charge_cpu(self.rank, ns);
    }

    /// Charge `ns` nanoseconds of CPU work (alias of [`Ctx::compute`]).
    pub fn charge_cpu(&self, ns: u64) {
        self.kernel.charge_cpu(self.rank, ns);
    }

    /// Charge `ns` nanoseconds of network time (not scaled by CPU speed).
    pub fn charge_net(&self, ns: u64) {
        self.kernel.charge_net(self.rank, ns);
    }

    /// Advance this rank's clock to at least `t` nanoseconds.
    pub fn advance_to(&self, t: u64) {
        self.kernel.advance_to(self.rank, t);
    }

    /// A scheduling point: in virtual-time mode, suspends until this rank is
    /// the minimum-clock runnable rank. Must precede every operation that
    /// reads or writes state shared with other ranks.
    pub fn yield_point(&self) {
        self.kernel.yield_point(self.rank);
    }

    /// Park until some other rank wakes this one (used by blocking
    /// primitives in this crate; exposed for building new ones). Always use
    /// inside a re-check loop: wakeups may be spurious.
    pub fn block(&self) {
        self.kernel.block(self.rank, "ctx.block");
    }

    /// Like [`Ctx::block`], tagging the park with `site` — the name the
    /// sim-deadlock diagnostic prints for a rank stuck waiting here.
    pub fn block_at(&self, site: &'static str) {
        self.kernel.block(self.rank, site);
    }

    /// Wake `target`, resuming it (in virtual time) no earlier than
    /// `resume_at`.
    pub fn unblock(&self, target: usize, resume_at: u64) {
        self.trace(|| TraceEvent::Unblock {
            target: target as u32,
        });
        self.kernel.unblock(target, resume_at);
    }

    /// Deterministic per-rank random number generator.
    pub fn rng(&self) -> std::cell::RefMut<'_, Rng> {
        self.rng.borrow_mut()
    }

    /// Machine-wide barrier with the latency model's default cost
    /// (`2·log2(n)` tree hops).
    pub fn barrier(&self) {
        let cost = self.shared.latency.barrier_cost(self.nranks);
        self.barrier_with_cost(cost);
    }

    /// Machine-wide barrier charging `cost` ns between the last arrival and
    /// the collective release. All ranks of one episode must pass the same
    /// cost.
    pub fn barrier_with_cost(&self, cost: u64) {
        self.shared.barrier.wait(&self.kernel, self.rank, cost);
    }

    /// The collective startup protocol this machine runs
    /// ([`StartupMode::Coalesced`] unless configured otherwise).
    pub fn startup(&self) -> StartupMode {
        self.shared.startup
    }

    /// Collectively create one shared object: rank 0 runs `make`, every rank
    /// receives an `Arc` to the same instance. All ranks must call
    /// `collective` in the same order with the same `T`.
    ///
    /// Under [`StartupMode::Coalesced`] (the default) this is barrier-free:
    /// rank 0 appends the object to a shared publication log and wakes any
    /// rank parked on that ordinal. Callers that batch several collectives
    /// plus rank-local initialization should wrap the group in
    /// [`Ctx::collective_epoch`], whose single commit barrier replaces the
    /// per-object barrier pairs of [`StartupMode::Old`].
    pub fn collective<T: Send + Sync + 'static>(&self, make: impl FnOnce() -> T) -> Arc<T> {
        match self.shared.startup {
            StartupMode::Coalesced => self.collective_coalesced(make),
            StartupMode::Old => self.collective_old(make),
        }
    }

    /// The historical two-barrier slot protocol, byte-identical to every
    /// pre-coalescing recording.
    fn collective_old<T: Send + Sync + 'static>(&self, make: impl FnOnce() -> T) -> Arc<T> {
        let ord = self.coll_ordinal.get();
        self.coll_ordinal.set(ord + 1);
        if self.rank == 0 {
            let obj: Arc<dyn Any + Send + Sync> = Arc::new(make());
            *self.shared.slot.lock() = Some((obj, std::any::type_name::<T>()));
        }
        self.barrier_with_cost(self.shared.latency.barrier_cost(self.nranks));
        let (arc, stored) = self
            .shared
            .slot
            .lock()
            .as_ref()
            .unwrap_or_else(|| {
                panic!(
                    "collective divergence: rank {} reached collective #{ord} expecting a \
                     {}, but rank 0 published nothing (ranks disagree on the collective \
                     call sequence)",
                    self.rank,
                    std::any::type_name::<T>()
                )
            })
            .clone();
        let typed = arc.downcast::<T>().unwrap_or_else(|_| {
            panic!(
                "collective divergence: rank {} reached collective #{ord} expecting a {}, \
                 but rank 0 published a {stored} (ranks disagree on the collective call \
                 sequence)",
                self.rank,
                std::any::type_name::<T>()
            )
        });
        // Second barrier: rank 0 must not start the next collective (and
        // overwrite the slot) before everyone has read this one.
        self.barrier_with_cost(0);
        typed
    }

    /// Barrier-free publication through the append-only collective log.
    ///
    /// Every rank's resulting clock is `max(own arrival, rank 0's publish
    /// time)` — a rank that arrives after publication pays nothing, one
    /// that arrives early parks at `collective.wait` and resumes at the
    /// publish stamp — so the outcome is schedule-independent and the
    /// virtual-time determinism guarantee holds without any barrier.
    fn collective_coalesced<T: Send + Sync + 'static>(&self, make: impl FnOnce() -> T) -> Arc<T> {
        let ord = self.coll_ordinal.get();
        self.coll_ordinal.set(ord + 1);
        if self.rank == 0 {
            let obj: Arc<dyn Any + Send + Sync> = Arc::new(make());
            let now = self.now();
            let woken = {
                let mut log = self.shared.coll.lock();
                debug_assert_eq!(log.entries.len(), ord, "rank 0 collective log out of step");
                log.entries.push((Arc::clone(&obj), std::any::type_name::<T>(), now));
                let published = log.entries.len();
                let mut woken = Vec::new();
                log.waiters.retain(|&(o, r)| {
                    if o < published {
                        woken.push(r);
                        false
                    } else {
                        true
                    }
                });
                woken
            };
            for r in woken {
                self.unblock(r, now);
            }
            return obj
                .downcast::<T>()
                .expect("unreachable: rank 0 published this object itself");
        }
        loop {
            {
                let mut log = self.shared.coll.lock();
                if let Some((obj, stored, published_at)) = log.entries.get(ord) {
                    let (obj, stored, published_at) = (Arc::clone(obj), *stored, *published_at);
                    drop(log);
                    // Causality: the reader's clock lands at
                    // max(own arrival, publish stamp) regardless of the
                    // order the scheduler ran the ranks in.
                    self.kernel.advance_to(self.rank, published_at);
                    return obj.downcast::<T>().unwrap_or_else(|_| {
                        panic!(
                            "collective divergence: rank {} reached collective #{ord} \
                             expecting a {}, but rank 0 published a {stored} (ranks \
                             disagree on the collective call sequence)",
                            self.rank,
                            std::any::type_name::<T>()
                        )
                    });
                }
                // Not yet published: register (once) and park. Wakeups can
                // be spurious, so the loop re-checks from the top.
                if !log.waiters.contains(&(ord, self.rank)) {
                    log.waiters.push((ord, self.rank));
                }
            }
            self.block_at("collective.wait");
        }
    }

    /// Group a batch of [`Ctx::collective`] calls (plus any rank-local
    /// initialization that the old protocol's trailing barrier used to
    /// protect) into one startup epoch.
    ///
    /// Under [`StartupMode::Coalesced`], closing the outermost epoch runs a
    /// single commit barrier — all ranks have registered every object and
    /// finished their local fills before anyone proceeds. Under
    /// [`StartupMode::Old`] this is a transparent wrapper: each collective
    /// inside carries its own two barriers and the caller keeps its
    /// historical trailing barrier, so recordings stay byte-identical.
    /// Epochs nest; only the outermost close commits.
    pub fn collective_epoch<R>(&self, f: impl FnOnce() -> R) -> R {
        if self.shared.startup == StartupMode::Old {
            return f();
        }
        self.epoch_depth.set(self.epoch_depth.get() + 1);
        let r = f();
        self.epoch_depth.set(self.epoch_depth.get() - 1);
        if self.epoch_depth.get() == 0 {
            self.barrier();
        }
        r
    }

    /// Is event tracing enabled for this machine? Use to skip measurement
    /// work (e.g. reading the clock twice) on untraced runs.
    #[inline]
    pub fn trace_enabled(&self) -> bool {
        self.kernel.trace_on()
    }

    /// Record a trace event, stamped with this rank's virtual clock.
    /// `make` only runs when tracing is enabled, so emission sites cost
    /// one branch on untraced runs.
    #[inline]
    pub fn trace(&self, make: impl FnOnce() -> TraceEvent) {
        self.kernel.emit(self.rank, make);
    }

    /// Record a trace event stamped at `t_ns`, a clock value the caller
    /// already read ([`Ctx::now`]). Lets span sites that emit several
    /// events at one completion point reuse a single clock read — in
    /// concurrent mode each [`Ctx::trace`] costs a monotonic clock read.
    #[inline]
    pub fn trace_at(&self, t_ns: u64, make: impl FnOnce() -> TraceEvent) {
        self.kernel.emit_at(self.rank, t_ns, make);
    }

    /// Record an *order-only* instant event: one whose stamp is never
    /// turned into a duration, only into a position in this rank's
    /// timeline (access records for the race checker, say). Identical to
    /// [`Ctx::trace`] in virtual time; in concurrent mode the stamp is
    /// this rank's most recent clock read rather than a fresh query, so
    /// hot per-word instrumentation stays off the monotonic clock.
    #[inline]
    pub fn trace_instant(&self, make: impl FnOnce() -> TraceEvent) {
        self.kernel.emit_instant(self.rank, make);
    }

    /// Record a virtual-time histogram sample under `name`.
    #[inline]
    pub fn trace_hist(&self, name: &'static str, v: u64) {
        self.kernel.trace_hist(self.rank, name, v);
    }

    /// Record a gauge sample under `name`.
    #[inline]
    pub fn trace_gauge(&self, name: &'static str, v: u64) {
        self.kernel.trace_gauge(self.rank, name, v);
    }

    pub(crate) fn kernel(&self) -> &Arc<Kernel> {
        &self.kernel
    }
}

impl std::fmt::Debug for Ctx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ctx")
            .field("rank", &self.rank)
            .field("nranks", &self.nranks)
            .field("mode", &self.kernel.mode())
            .finish()
    }
}
