//! `Ctx` — the per-rank handle passed to every SPMD rank program.

use std::any::Any;
use std::cell::RefCell;
use std::sync::Arc;

use scioto_det::Rng;

use crate::config::{ExecMode, LatencyModel};
use crate::kernel::Kernel;
use crate::machine::Shared;
use crate::trace::TraceEvent;

/// The per-rank execution context.
///
/// A `Ctx` is created by [`crate::Machine::run`] for each simulated process
/// and passed by reference to the rank program. It provides rank identity,
/// virtual-time accounting, scheduling points, collectives and a
/// deterministic per-rank RNG. Communication layers (`scioto-armci`,
/// `scioto-mpi`, ...) are built on top of these primitives.
pub struct Ctx {
    rank: usize,
    nranks: usize,
    kernel: Arc<Kernel>,
    shared: Arc<Shared>,
    rng: RefCell<Rng>,
}

impl Ctx {
    pub(crate) fn new(rank: usize, kernel: Arc<Kernel>, shared: Arc<Shared>, seed: u64) -> Self {
        let nranks = kernel.nranks();
        Ctx {
            rank,
            nranks,
            kernel,
            shared,
            // Per-rank stream derived by hashing (seed, rank) through
            // SplitMix64. The earlier `seed ^ rank * CONST` XOR-mix was
            // linear: e.g. (seed = CONST, rank = 0) and (seed = 0,
            // rank = 1) produced identical streams.
            rng: RefCell::new(Rng::stream(seed, rank as u64)),
        }
    }

    /// This process's rank, `0 <= rank < nranks`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of processes in the machine.
    pub fn nranks(&self) -> usize {
        self.nranks
    }

    /// Execution mode of the machine.
    pub fn mode(&self) -> ExecMode {
        self.kernel.mode()
    }

    /// Latency model of the machine, consulted by communication layers.
    pub fn latency(&self) -> &LatencyModel {
        &self.shared.latency
    }

    /// Current time in nanoseconds: the rank's virtual clock in
    /// [`ExecMode::VirtualTime`], wall time since machine start otherwise.
    pub fn now(&self) -> u64 {
        self.kernel.now(self.rank)
    }

    /// Charge `ns` nanoseconds of local CPU work, scaled by this rank's
    /// speed factor. Rank-private: no scheduling point.
    pub fn compute(&self, ns: u64) {
        self.kernel.charge_cpu(self.rank, ns);
    }

    /// Charge `ns` nanoseconds of CPU work (alias of [`Ctx::compute`]).
    pub fn charge_cpu(&self, ns: u64) {
        self.kernel.charge_cpu(self.rank, ns);
    }

    /// Charge `ns` nanoseconds of network time (not scaled by CPU speed).
    pub fn charge_net(&self, ns: u64) {
        self.kernel.charge_net(self.rank, ns);
    }

    /// Advance this rank's clock to at least `t` nanoseconds.
    pub fn advance_to(&self, t: u64) {
        self.kernel.advance_to(self.rank, t);
    }

    /// A scheduling point: in virtual-time mode, suspends until this rank is
    /// the minimum-clock runnable rank. Must precede every operation that
    /// reads or writes state shared with other ranks.
    pub fn yield_point(&self) {
        self.kernel.yield_point(self.rank);
    }

    /// Park until some other rank wakes this one (used by blocking
    /// primitives in this crate; exposed for building new ones). Always use
    /// inside a re-check loop: wakeups may be spurious.
    pub fn block(&self) {
        self.kernel.block(self.rank, "ctx.block");
    }

    /// Like [`Ctx::block`], tagging the park with `site` — the name the
    /// sim-deadlock diagnostic prints for a rank stuck waiting here.
    pub fn block_at(&self, site: &'static str) {
        self.kernel.block(self.rank, site);
    }

    /// Wake `target`, resuming it (in virtual time) no earlier than
    /// `resume_at`.
    pub fn unblock(&self, target: usize, resume_at: u64) {
        self.trace(|| TraceEvent::Unblock {
            target: target as u32,
        });
        self.kernel.unblock(target, resume_at);
    }

    /// Deterministic per-rank random number generator.
    pub fn rng(&self) -> std::cell::RefMut<'_, Rng> {
        self.rng.borrow_mut()
    }

    /// Machine-wide barrier with the latency model's default cost
    /// (`2·log2(n)` tree hops).
    pub fn barrier(&self) {
        let cost = self.shared.latency.barrier_cost(self.nranks);
        self.barrier_with_cost(cost);
    }

    /// Machine-wide barrier charging `cost` ns between the last arrival and
    /// the collective release. All ranks of one episode must pass the same
    /// cost.
    pub fn barrier_with_cost(&self, cost: u64) {
        self.shared.barrier.wait(&self.kernel, self.rank, cost);
    }

    /// Collectively create one shared object: rank 0 runs `make`, every rank
    /// receives an `Arc` to the same instance. All ranks must call
    /// `collective` in the same order with the same `T`.
    pub fn collective<T: Send + Sync + 'static>(&self, make: impl FnOnce() -> T) -> Arc<T> {
        if self.rank == 0 {
            let obj: Arc<dyn Any + Send + Sync> = Arc::new(make());
            *self.shared.slot.lock() = Some(obj);
        }
        self.barrier_with_cost(self.shared.latency.barrier_cost(self.nranks));
        let arc = self
            .shared
            .slot
            .lock()
            .as_ref()
            .expect("collective slot empty: collectives called in divergent order")
            .clone();
        let typed = arc
            .downcast::<T>()
            .expect("collective type mismatch: collectives called in divergent order");
        // Second barrier: rank 0 must not start the next collective (and
        // overwrite the slot) before everyone has read this one.
        self.barrier_with_cost(0);
        typed
    }

    /// Is event tracing enabled for this machine? Use to skip measurement
    /// work (e.g. reading the clock twice) on untraced runs.
    #[inline]
    pub fn trace_enabled(&self) -> bool {
        self.kernel.trace_on()
    }

    /// Record a trace event, stamped with this rank's virtual clock.
    /// `make` only runs when tracing is enabled, so emission sites cost
    /// one branch on untraced runs.
    #[inline]
    pub fn trace(&self, make: impl FnOnce() -> TraceEvent) {
        self.kernel.emit(self.rank, make);
    }

    /// Record a virtual-time histogram sample under `name`.
    #[inline]
    pub fn trace_hist(&self, name: &'static str, v: u64) {
        self.kernel.trace_hist(self.rank, name, v);
    }

    /// Record a gauge sample under `name`.
    #[inline]
    pub fn trace_gauge(&self, name: &'static str, v: u64) {
        self.kernel.trace_gauge(self.rank, name, v);
    }

    pub(crate) fn kernel(&self) -> &Arc<Kernel> {
        &self.kernel
    }
}

impl std::fmt::Debug for Ctx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ctx")
            .field("rank", &self.rank)
            .field("nranks", &self.nranks)
            .field("mode", &self.kernel.mode())
            .finish()
    }
}
