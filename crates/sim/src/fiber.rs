//! Stackful fibers: the execution substrate of the event-driven engine.
//!
//! The event engine runs every simulated rank as a *fiber* — a resumable
//! call stack on the heap — inside one OS thread. A context switch is six
//! callee-saved register pushes, two stack-pointer moves and six pops
//! (~20 ns), versus the microseconds a parked-thread handoff costs in
//! futex traffic; that three-orders-of-magnitude gap is what makes
//! 1024-rank machines practical on a single core.
//!
//! Protocol (enforced by `Machine::run_events` + `Kernel`):
//!
//! * Exactly one context is live at a time: the machine's *main* context
//!   or one fiber. Switches happen only at kernel scheduling points
//!   (`yield_point`, `block`, `finish`, initial dispatch), mirroring the
//!   thread engine's park/handoff points exactly.
//! * A fiber's task closure runs to completion and *returns* — unwinding
//!   or returning through every frame it created, dropping everything it
//!   owns — before the fiber is marked completed and the exit hook runs.
//!   Frames abandoned on a completed fiber's stack therefore own nothing.
//! * A completed fiber is never re-dispatched. Never-started fibers never
//!   run; their task boxes drop normally with the [`FiberSet`].
//!
//! No std::sync, no wall clock, no allocation after construction: switching
//! is pure register shuffling, so determinism is trivially preserved.

use std::cell::{Cell, RefCell};

/// True when this target has a fiber context-switch implementation.
/// [`crate::Engine::Auto`] falls back to the thread engine elsewhere.
pub(crate) const SUPPORTED: bool =
    cfg!(all(unix, any(target_arch = "x86_64", target_arch = "aarch64")));

// x86_64 SysV: callee-saved integer registers are rbp, rbx, r12-r15 (xmm
// registers are caller-saved, so a cooperative switch may skip them). The
// saved frame is [r15][r14][r13][r12][rbx][rbp][return address] from the
// stack pointer up.
#[cfg(all(unix, target_arch = "x86_64"))]
core::arch::global_asm!(
    ".text",
    ".hidden scioto_fiber_switch",
    ".globl scioto_fiber_switch",
    ".type scioto_fiber_switch, @function",
    "scioto_fiber_switch:",
    "push rbp",
    "push rbx",
    "push r12",
    "push r13",
    "push r14",
    "push r15",
    "mov [rdi], rsp",
    "mov rsp, rsi",
    "pop r15",
    "pop r14",
    "pop r13",
    "pop r12",
    "pop rbx",
    "pop rbp",
    "ret",
    ".size scioto_fiber_switch, . - scioto_fiber_switch",
);

// AArch64 AAPCS: callee-saved are x19-x28, the frame/link pair x29/x30 and
// the low halves of v8-v15 (d8-d15). `ret` branches to the restored x30.
#[cfg(all(unix, target_arch = "aarch64"))]
core::arch::global_asm!(
    ".text",
    ".hidden scioto_fiber_switch",
    ".globl scioto_fiber_switch",
    "scioto_fiber_switch:",
    "sub sp, sp, #176",
    "stp x19, x20, [sp, #0]",
    "stp x21, x22, [sp, #16]",
    "stp x23, x24, [sp, #32]",
    "stp x25, x26, [sp, #48]",
    "stp x27, x28, [sp, #64]",
    "stp x29, x30, [sp, #80]",
    "stp d8, d9, [sp, #96]",
    "stp d10, d11, [sp, #112]",
    "stp d12, d13, [sp, #128]",
    "stp d14, d15, [sp, #144]",
    "mov x9, sp",
    "str x9, [x0]",
    "mov sp, x1",
    "ldp x19, x20, [sp, #0]",
    "ldp x21, x22, [sp, #16]",
    "ldp x23, x24, [sp, #32]",
    "ldp x25, x26, [sp, #48]",
    "ldp x27, x28, [sp, #64]",
    "ldp x29, x30, [sp, #80]",
    "ldp d8, d9, [sp, #96]",
    "ldp d10, d11, [sp, #112]",
    "ldp d12, d13, [sp, #128]",
    "ldp d14, d15, [sp, #144]",
    "add sp, sp, #176",
    "ret",
);

#[cfg(all(unix, any(target_arch = "x86_64", target_arch = "aarch64")))]
extern "C" {
    /// Save the current callee-saved frame, store the resulting stack
    /// pointer through `save`, switch to `restore` and pop its frame.
    /// Returns (on the *new* stack) when some later switch restores `save`.
    fn scioto_fiber_switch(save: *mut usize, restore: usize);
}

#[cfg(not(all(unix, any(target_arch = "x86_64", target_arch = "aarch64"))))]
unsafe fn scioto_fiber_switch(_save: *mut usize, _restore: usize) {
    unreachable!("fiber engine selected on an unsupported target");
}

/// Number of `usize` slots in a bootstrap frame (saved registers + entry
/// address + one zeroed slot that both terminates backtraces and, on
/// x86_64, gives `fiber_entry` the SysV `rsp % 16 == 8` alignment a
/// function entry expects).
#[cfg(target_arch = "x86_64")]
const BOOT_SLOTS: usize = 8;
#[cfg(not(target_arch = "x86_64"))]
const BOOT_SLOTS: usize = 176 / 8;

/// Offset (in `usize` slots, from the frame base) of the slot the switch
/// transfers control through: the `ret` target on x86_64, the restored
/// link register x30 on aarch64.
#[cfg(target_arch = "x86_64")]
const ENTRY_SLOT: usize = 6;
#[cfg(not(target_arch = "x86_64"))]
const ENTRY_SLOT: usize = 88 / 8;

struct Fiber {
    /// Saved stack pointer while suspended; points into `stack`.
    sp: Cell<usize>,
    /// The heap stack. Boxed so it never moves; `sp` and every frame on it
    /// stay valid for the life of the fiber.
    #[allow(dead_code)]
    stack: Box<[u8]>,
    /// The rank program, consumed on first dispatch.
    task: RefCell<Option<Box<dyn FnOnce()>>>,
    started: Cell<bool>,
    completed: Cell<bool>,
}

/// One machine run's worth of fibers plus the main (dispatcher) context.
///
/// Not `Send`/`Sync` (interior `Cell`s, raw stack pointers): the whole set
/// lives and dies on the machine's main thread. The `Kernel` never stores
/// one; fibers are reached through the thread-local installed by
/// [`enter`], which is what keeps `Kernel: Sync` intact.
pub(crate) struct FiberSet {
    fibers: Vec<Fiber>,
    /// Saved stack pointer of the main context while a fiber runs.
    main_sp: Cell<usize>,
    /// Index of the currently running fiber, `None` in the main context.
    current: Cell<Option<usize>>,
    /// Called on the fiber after its task returns (the event engine hangs
    /// `kernel.finish(rank)` here). Stored as a raw-pointer-callable box so
    /// the suspended exit frame owns nothing (see module protocol).
    exit: RefCell<Option<Box<dyn Fn(usize)>>>,
}

impl FiberSet {
    /// Build `n` fibers, each with a `stack_size`-byte stack primed to run
    /// [`fiber_entry`] on first switch.
    pub(crate) fn new(n: usize, stack_size: usize) -> FiberSet {
        assert!(SUPPORTED, "fiber engine unavailable on this target");
        // Room for the bootstrap frame, a panic payload and libstd's
        // unwinding machinery even if the caller asks for something tiny.
        let stack_size = stack_size.max(32 * 1024);
        let fibers = (0..n)
            .map(|_| {
                let mut stack = vec![0u8; stack_size].into_boxed_slice();
                let base = stack.as_mut_ptr() as usize;
                // 16-align the top, then lay the bootstrap frame under it.
                let top = (base + stack.len()) & !15;
                let frame = top - BOOT_SLOTS * 8;
                // SAFETY: `frame..top` lies inside the freshly boxed
                // stack and is 8-aligned, so the BOOT_SLOTS usize writes
                // stay in bounds of memory this Fiber uniquely owns.
                unsafe {
                    let slots = frame as *mut usize;
                    for i in 0..BOOT_SLOTS {
                        *slots.add(i) = 0;
                    }
                    *slots.add(ENTRY_SLOT) = fiber_entry as *const () as usize;
                }
                Fiber {
                    sp: Cell::new(frame),
                    stack,
                    task: RefCell::new(None),
                    started: Cell::new(false),
                    completed: Cell::new(false),
                }
            })
            .collect();
        FiberSet {
            fibers,
            main_sp: Cell::new(0),
            current: Cell::new(None),
            exit: RefCell::new(None),
        }
    }

    /// Install fiber `idx`'s task.
    ///
    /// # Safety
    /// The closure is lifetime-erased: the caller must guarantee every
    /// started fiber runs to completion (normally or by unwinding) before
    /// anything the closure borrows — or this `FiberSet` — is dropped.
    pub(crate) unsafe fn set_task<'a>(&mut self, idx: usize, task: Box<dyn FnOnce() + 'a>) {
        // SAFETY: pure lifetime erasure on the box's trait-object type;
        // the caller upholds the outlives contract documented above.
        let erased: Box<dyn FnOnce() + 'static> = unsafe { std::mem::transmute(task) };
        *self.fibers[idx].task.borrow_mut() = Some(erased);
    }

    /// Install the exit hook run after each fiber's task returns.
    ///
    /// # Safety
    /// Same lifetime-erasure contract as [`FiberSet::set_task`].
    pub(crate) unsafe fn set_exit<'a>(&mut self, exit: Box<dyn Fn(usize) + 'a>) {
        // SAFETY: pure lifetime erasure, same contract as `set_task`.
        let erased: Box<dyn Fn(usize) + 'static> = unsafe { std::mem::transmute(exit) };
        *self.exit.borrow_mut() = Some(erased);
    }

    /// Suspend the current context and resume fiber `idx`.
    ///
    /// Callable from the main context or from another fiber. Returns when
    /// something switches back here.
    pub(crate) fn switch_to_fiber(&self, idx: usize) {
        let prev = self.current.replace(Some(idx));
        debug_assert_ne!(prev, Some(idx), "fiber switched to itself");
        debug_assert!(!self.fibers[idx].completed.get(), "resumed a completed fiber");
        self.fibers[idx].started.set(true);
        let save = match prev {
            Some(p) => self.fibers[p].sp.as_ptr(),
            None => self.main_sp.as_ptr(),
        };
        // SAFETY: `save` points at a live sp cell owned by this set, and
        // the target sp is either fiber `idx`'s primed bootstrap frame or
        // the frame a previous switch parked; the shim only swaps stacks.
        unsafe { scioto_fiber_switch(save, self.fibers[idx].sp.get()) };
        // Back on `prev`'s stack: restore the current marker the resumer
        // overwrote with its own index.
        self.current.set(prev);
    }

    /// Suspend the current fiber and resume the main context.
    pub(crate) fn switch_to_main(&self) {
        let prev = self
            .current
            .replace(None)
            .expect("switch_to_main from the main context");
        // SAFETY: the current fiber's sp cell is live, and `main_sp` holds
        // the frame the main context parked in `enter`'s initial switch.
        unsafe { scioto_fiber_switch(self.fibers[prev].sp.as_ptr(), self.main_sp.get()) };
        self.current.set(Some(prev));
    }

    /// Lowest-index fiber that has started but not completed, if any —
    /// the poison-cleanup loop resumes these so they unwind.
    pub(crate) fn first_suspended(&self) -> Option<usize> {
        (0..self.fibers.len())
            .find(|&i| self.fibers[i].started.get() && !self.fibers[i].completed.get())
    }
}

thread_local! {
    /// The `FiberSet` of the machine currently running on this thread.
    /// Installed by [`enter`]; read by the kernel's event-engine paths via
    /// [`with_active`]. A raw pointer so `Kernel` itself stays `Sync`.
    static ACTIVE: Cell<*const FiberSet> = const { Cell::new(std::ptr::null()) };
}

/// Install `fs` as this thread's active fiber set for the duration of `f`
/// (restoring the previous value on exit, so machines may nest).
pub(crate) fn enter<R>(fs: &FiberSet, f: impl FnOnce() -> R) -> R {
    struct Restore(*const FiberSet);
    impl Drop for Restore {
        fn drop(&mut self) {
            ACTIVE.with(|a| a.set(self.0));
        }
    }
    let prev = ACTIVE.with(|a| a.replace(fs as *const FiberSet));
    let _restore = Restore(prev);
    f()
}

/// Run `f` against the active fiber set. Panics outside [`enter`].
pub(crate) fn with_active<R>(f: impl FnOnce(&FiberSet) -> R) -> R {
    let p = ACTIVE.with(|a| a.get());
    assert!(
        !p.is_null(),
        "event-engine scheduling point outside a fiber machine"
    );
    // SAFETY: `p` was installed by `enter`, whose borrow of the FiberSet
    // is live for the whole dynamic extent of its closure — which is the
    // only place fibers (and thus this function) can run.
    f(unsafe { &*p })
}

/// First frame of every fiber: runs the task to completion, marks the
/// fiber done, then hands off via the exit hook. Reached by `ret`/`ret
/// x30` from the bootstrap frame, so it must never return or unwind.
extern "C" fn fiber_entry() -> ! {
    let outcome = std::panic::catch_unwind(|| {
        with_active(|fs| {
            let idx = fs.current.get().expect("fiber entry with no current fiber");
            let task = fs.fibers[idx]
                .task
                .borrow_mut()
                .take()
                .expect("fiber dispatched twice");
            // The task (and everything it owns) drops inside this call —
            // nothing may remain owned by this stack once it returns.
            task();
            fs.fibers[idx].completed.set(true);
            // Call the exit hook through a raw pointer: a cloned owner
            // held by this (about-to-be-abandoned) frame would leak.
            let exit: Option<*const dyn Fn(usize)> =
                fs.exit.borrow().as_deref().map(|e| e as *const _);
            if let Some(e) = exit {
                // SAFETY: the hook box lives in the FiberSet, which
                // outlives every fiber switch (see `enter`).
                unsafe { (*e)(idx) };
            }
        });
    });
    if outcome.is_err() {
        // The engine's tasks wrap rank programs in their own catch_unwind;
        // a panic reaching this frame means the engine itself is broken,
        // and there is nothing below us to unwind into but raw asm.
        eprintln!("scioto-sim fiber: panic escaped the engine boundary; aborting");
        std::process::abort();
    }
    // The exit hook declined to switch away (e.g. a test with no hook):
    // park on the main context forever. Re-dispatching a completed fiber
    // is a scheduler bug and asserts in switch_to_fiber.
    loop {
        with_active(|fs| fs.switch_to_main());
    }
}

#[cfg(all(test, unix, any(target_arch = "x86_64", target_arch = "aarch64")))]
mod tests {
    use super::*;
    use std::rc::Rc;

    #[test]
    fn fibers_interleave_and_complete() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut fs = FiberSet::new(2, 64 * 1024);
        for i in 0..2 {
            let log = Rc::clone(&log);
            let task = Box::new(move || {
                log.borrow_mut().push((i, 0));
                with_active(|fs| fs.switch_to_main());
                log.borrow_mut().push((i, 1));
            });
            // SAFETY: both fibers run to completion inside `enter` below.
            unsafe { fs.set_task(i, task) };
        }
        enter(&fs, || {
            fs.switch_to_fiber(0); // runs (0,0), suspends
            fs.switch_to_fiber(1); // runs (1,0), suspends
            fs.switch_to_fiber(0); // runs (0,1), completes, parks
            fs.switch_to_fiber(1); // runs (1,1), completes, parks
        });
        assert_eq!(*log.borrow(), vec![(0, 0), (1, 0), (0, 1), (1, 1)]);
        assert!(fs.fibers.iter().all(|f| f.completed.get()));
        assert_eq!(fs.first_suspended(), None);
    }

    #[test]
    fn exit_hook_runs_after_task_returns() {
        let order = Rc::new(RefCell::new(Vec::new()));
        let mut fs = FiberSet::new(1, 64 * 1024);
        {
            let order = Rc::clone(&order);
            // SAFETY: the fiber runs to completion inside `enter` below.
            unsafe { fs.set_task(0, Box::new(move || order.borrow_mut().push("task"))) };
        }
        {
            let order = Rc::clone(&order);
            // SAFETY: the exit hook's borrows outlive the `enter` below.
            unsafe {
                fs.set_exit(Box::new(move |idx| {
                    order.borrow_mut().push("exit");
                    assert_eq!(idx, 0);
                    // Hand control back like the engine's finish does.
                    with_active(|fs| fs.switch_to_main());
                }))
            };
        }
        enter(&fs, || fs.switch_to_fiber(0));
        assert_eq!(*order.borrow(), vec!["task", "exit"]);
        assert!(fs.fibers[0].completed.get());
    }

    #[test]
    fn fiber_to_fiber_switch_restores_current() {
        let mut fs = FiberSet::new(2, 64 * 1024);
        let seen = Rc::new(Cell::new(0usize));
        {
            let seen = Rc::clone(&seen);
            let task = Box::new(move || {
                // Direct fiber->fiber handoff, like a block dispatching
                // the next runnable rank.
                with_active(|fs| {
                    assert_eq!(fs.current.get(), Some(0));
                    fs.switch_to_fiber(1);
                });
                seen.set(seen.get() + 1);
            });
            // SAFETY: fiber 0 runs to completion inside `enter` below.
            unsafe { fs.set_task(0, task) };
        }
        {
            let seen = Rc::clone(&seen);
            let task = Box::new(move || {
                with_active(|fs| {
                    assert_eq!(fs.current.get(), Some(1));
                    fs.switch_to_main();
                });
                seen.set(seen.get() + 10);
            });
            // SAFETY: fiber 1 runs to completion inside `enter` below.
            unsafe { fs.set_task(1, task) };
        }
        enter(&fs, || {
            fs.switch_to_fiber(0); // 0 hands to 1, 1 parks to main
            fs.switch_to_fiber(1); // 1 finishes (+10), parks to main
            // Fiber 0 is still suspended inside its switch_to_fiber(1)
            // call; resume it the way the poison-cleanup loop would.
            while let Some(i) = fs.first_suspended() {
                fs.switch_to_fiber(i); // 0 finishes (+1)
            }
        });
        assert_eq!(seen.get(), 11);
        assert_eq!(fs.first_suspended(), None);
    }
}
