//! The scheduling kernel: conservative min-clock dispatch in virtual-time
//! mode, token-based blocking in concurrent mode, poison propagation on
//! rank panics, and deadlock detection.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant; // scioto-lint: allow(wallclock)

use scioto_det::sync::{Condvar, Mutex};

use crate::config::{ExecMode, SpeedModel};
use crate::report::EventCounters;
use crate::trace::{TraceEvent, TraceSink};

/// Scheduling state of one rank.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Status {
    /// Currently executing (in virtual-time mode at most one rank is
    /// `Running` at any instant).
    Running,
    /// Eligible to be dispatched.
    Runnable,
    /// Parked on some shared-state condition; resumed by `unblock`.
    Blocked,
    /// Rank program returned (or panicked).
    Done,
}

struct Sched {
    status: Vec<Status>,
    /// Wake hints: an `unblock` that raced ahead of the corresponding
    /// `block` (possible in concurrent mode, and when a rank is notified
    /// while runnable) is stored here and consumed by the next `block`.
    wake_token: Vec<bool>,
    /// Earliest virtual time at which a pending wake may resume the rank.
    pending_resume: Vec<u64>,
    done: usize,
}

/// The shared scheduling kernel of one simulated machine.
pub(crate) struct Kernel {
    n: usize,
    mode: ExecMode,
    sched: Mutex<Sched>,
    cvs: Vec<Condvar>,
    clocks: Vec<AtomicU64>,
    speed: Vec<f64>,
    start: Instant,
    poisoned: AtomicBool,
    pub(crate) events: EventCounters,
    pub(crate) trace: TraceSink,
}

impl Kernel {
    pub(crate) fn new(n: usize, mode: ExecMode, speed: &SpeedModel, trace: TraceSink) -> Self {
        assert!(n >= 1, "a machine needs at least one rank");
        assert_eq!(speed.len(), n, "speed model must cover all ranks");
        let mut status = vec![Status::Runnable; n];
        if mode == ExecMode::VirtualTime {
            // Rank 0 holds the baton initially; in concurrent mode every
            // rank free-runs from the start.
            status[0] = Status::Running;
        } else {
            status.iter_mut().for_each(|s| *s = Status::Running);
        }
        Kernel {
            n,
            mode,
            sched: Mutex::new(Sched {
                status,
                wake_token: vec![false; n],
                pending_resume: vec![0; n],
                done: 0,
            }),
            cvs: (0..n).map(|_| Condvar::new()).collect(),
            clocks: (0..n).map(|_| AtomicU64::new(0)).collect(),
            speed: (0..n).map(|r| speed.factor(r)).collect(),
            start: Instant::now(),
            poisoned: AtomicBool::new(false),
            events: EventCounters::default(),
            trace,
        }
    }

    /// Is event tracing enabled for this machine?
    #[inline]
    pub(crate) fn trace_on(&self) -> bool {
        self.trace.is_enabled()
    }

    /// Record a trace event for `rank`, stamped with its virtual clock.
    /// `make` only runs when tracing is enabled.
    #[inline]
    pub(crate) fn emit(&self, rank: usize, make: impl FnOnce() -> TraceEvent) {
        if self.trace.is_enabled() {
            let t = self.clocks[rank].load(Ordering::Relaxed);
            self.trace.emit(rank, t, make);
        }
    }

    /// Record a histogram sample for `rank` under `name`.
    #[inline]
    pub(crate) fn trace_hist(&self, rank: usize, name: &'static str, v: u64) {
        self.trace.hist(rank, name, v);
    }

    /// Record a gauge sample for `rank` under `name`.
    #[inline]
    pub(crate) fn trace_gauge(&self, rank: usize, name: &'static str, v: u64) {
        self.trace.gauge(rank, name, v);
    }

    pub(crate) fn nranks(&self) -> usize {
        self.n
    }

    pub(crate) fn mode(&self) -> ExecMode {
        self.mode
    }

    /// Current time of `rank` in nanoseconds: virtual clock in
    /// `VirtualTime` mode, wall time since machine start otherwise.
    pub(crate) fn now(&self, rank: usize) -> u64 {
        match self.mode {
            ExecMode::VirtualTime => self.clocks[rank].load(Ordering::Relaxed),
            ExecMode::Concurrent => self.start.elapsed().as_nanos() as u64,
        }
    }

    /// Final (or current) virtual clock of `rank`, regardless of mode.
    pub(crate) fn clock(&self, rank: usize) -> u64 {
        self.clocks[rank].load(Ordering::Relaxed)
    }

    /// Advance `rank`'s clock by `ns` of *CPU* time, scaled by its speed
    /// factor. No scheduling point: CPU work is rank-private.
    pub(crate) fn charge_cpu(&self, rank: usize, ns: u64) {
        if self.mode == ExecMode::VirtualTime && ns > 0 {
            let scaled = (ns as f64 * self.speed[rank]).round() as u64;
            self.clocks[rank].fetch_add(scaled, Ordering::Relaxed);
        }
    }

    /// Advance `rank`'s clock by `ns` of *network* time (unscaled).
    pub(crate) fn charge_net(&self, rank: usize, ns: u64) {
        if self.mode == ExecMode::VirtualTime && ns > 0 {
            self.clocks[rank].fetch_add(ns, Ordering::Relaxed);
        }
    }

    /// Wait at thread start until the scheduler hands this rank the baton.
    pub(crate) fn wait_for_start(&self, rank: usize) {
        if self.mode == ExecMode::Concurrent {
            return;
        }
        let mut s = self.sched.lock();
        while s.status[rank] != Status::Running {
            self.check_poison();
            self.cvs[rank].wait(&mut s);
        }
    }

    /// A scheduling point before a shared-state operation. In virtual-time
    /// mode the caller is suspended until it is the minimum-clock runnable
    /// rank; on return it holds the baton and may manipulate shared state.
    pub(crate) fn yield_point(&self, rank: usize) {
        if self.mode == ExecMode::Concurrent {
            // On oversubscribed hosts, give other rank threads a chance to
            // make progress between shared-state operations.
            std::thread::yield_now();
            return;
        }
        self.events.yields.fetch_add(1, Ordering::Relaxed);
        let mut s = self.sched.lock();
        debug_assert_eq!(s.status[rank], Status::Running);
        s.status[rank] = Status::Runnable;
        let next = self.pick_next(&s);
        match next {
            Some(next) if next == rank => {
                s.status[rank] = Status::Running;
            }
            Some(next) => {
                s.status[next] = Status::Running;
                self.cvs[next].notify_one();
                self.wait_until_running(rank, &mut s);
            }
            None => {
                // Everybody else is blocked or done; we are the only
                // runnable rank.
                s.status[rank] = Status::Running;
            }
        }
    }

    /// Park until another rank calls [`Kernel::unblock`] for us (or a wake
    /// token is already pending). Callers use this inside a
    /// check-condition/block loop, so spurious wakeups are harmless.
    pub(crate) fn block(&self, rank: usize) {
        self.events.blocks.fetch_add(1, Ordering::Relaxed);
        self.emit(rank, || TraceEvent::Block);
        let mut s = self.sched.lock();
        if s.wake_token[rank] {
            s.wake_token[rank] = false;
            let resume = std::mem::take(&mut s.pending_resume[rank]);
            drop(s);
            self.advance_to(rank, resume);
            return;
        }
        match self.mode {
            ExecMode::VirtualTime => {
                debug_assert_eq!(s.status[rank], Status::Running);
                s.status[rank] = Status::Blocked;
                self.dispatch_or_deadlock(&mut s, rank);
                self.wait_until_running(rank, &mut s);
            }
            ExecMode::Concurrent => {
                s.status[rank] = Status::Blocked;
                while !s.wake_token[rank] {
                    self.check_poison();
                    self.cvs[rank].wait(&mut s);
                }
                s.wake_token[rank] = false;
                s.status[rank] = Status::Running;
            }
        }
    }

    /// Make `target` eligible to run again, no earlier (in virtual time)
    /// than `resume_at`. Safe to call for a rank that is not currently
    /// blocked: the wake is remembered as a token.
    pub(crate) fn unblock(&self, target: usize, resume_at: u64) {
        self.events.unblocks.fetch_add(1, Ordering::Relaxed);
        let mut s = self.sched.lock();
        match s.status[target] {
            Status::Blocked => {
                if self.mode == ExecMode::VirtualTime {
                    let c = self.clocks[target].load(Ordering::Relaxed);
                    if resume_at > c {
                        self.clocks[target].store(resume_at, Ordering::Relaxed);
                    }
                    s.status[target] = Status::Runnable;
                    // The current runner keeps the baton; the wakee will be
                    // dispatched at the next scheduling point.
                } else {
                    s.wake_token[target] = true;
                    self.cvs[target].notify_one();
                }
            }
            Status::Done => {}
            _ => {
                s.wake_token[target] = true;
                s.pending_resume[target] = s.pending_resume[target].max(resume_at);
                if self.mode == ExecMode::Concurrent {
                    self.cvs[target].notify_one();
                }
            }
        }
    }

    /// Called when a rank's program returns. Hands the baton onward.
    pub(crate) fn finish(&self, rank: usize) {
        let mut s = self.sched.lock();
        s.status[rank] = Status::Done;
        s.done += 1;
        if self.is_poisoned() {
            // Unwinding ranks must not trip the deadlock detector.
            for cv in &self.cvs {
                cv.notify_all();
            }
            return;
        }
        if self.mode == ExecMode::VirtualTime && s.done < self.n {
            self.dispatch_or_deadlock(&mut s, rank);
        }
    }

    /// Wall-clock nanoseconds since the machine was constructed.
    pub(crate) fn wall_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }

    /// Mark the machine poisoned (a rank panicked) and wake everyone so
    /// they can observe the poison and unwind.
    pub(crate) fn poison(&self) {
        self.poisoned.store(true, Ordering::SeqCst);
        let _s = self.sched.lock();
        for cv in &self.cvs {
            cv.notify_all();
        }
    }

    pub(crate) fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::SeqCst)
    }

    fn check_poison(&self) {
        if self.is_poisoned() {
            panic!("sim machine poisoned: another rank panicked or deadlocked");
        }
    }

    /// Move `rank`'s clock forward to at least `t`.
    pub(crate) fn advance_to(&self, rank: usize, t: u64) {
        if self.mode == ExecMode::VirtualTime {
            let c = self.clocks[rank].load(Ordering::Relaxed);
            if t > c {
                self.clocks[rank].store(t, Ordering::Relaxed);
            }
        }
    }

    /// Minimum-clock runnable rank, ties broken by rank id.
    fn pick_next(&self, s: &Sched) -> Option<usize> {
        let mut best: Option<(u64, usize)> = None;
        for (r, st) in s.status.iter().enumerate() {
            if *st == Status::Runnable {
                let c = self.clocks[r].load(Ordering::Relaxed);
                if best.is_none_or(|(bc, _)| c < bc) {
                    best = Some((c, r));
                }
            }
        }
        best.map(|(_, r)| r)
    }

    fn dispatch_or_deadlock(&self, s: &mut Sched, from: usize) {
        if let Some(next) = self.pick_next(s) {
            s.status[next] = Status::Running;
            self.cvs[next].notify_one();
        } else if s.done < self.n {
            let diag = self.deadlock_diagnostics(s);
            self.poisoned.store(true, Ordering::SeqCst);
            for cv in &self.cvs {
                cv.notify_all();
            }
            panic!(
                "sim deadlock: no runnable rank (detected by rank {from}); \
                 per-rank state:\n{diag}"
            );
        }
    }

    fn deadlock_diagnostics(&self, s: &Sched) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for r in 0..self.n {
            let _ = writeln!(
                out,
                "  rank {:4}: {:?} @ {} ns",
                r,
                s.status[r],
                self.clocks[r].load(Ordering::Relaxed)
            );
        }
        out
    }

    fn wait_until_running(&self, rank: usize, s: &mut scioto_det::sync::MutexGuard<'_, Sched>) {
        while s.status[rank] != Status::Running {
            self.check_poison();
            self.cvs[rank].wait(s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn vt_kernel(n: usize) -> Arc<Kernel> {
        Arc::new(Kernel::new(
            n,
            ExecMode::VirtualTime,
            &SpeedModel::uniform(n),
            TraceSink::Disabled,
        ))
    }

    #[test]
    fn cpu_charge_is_scaled_by_speed_factor() {
        let k = Kernel::new(
            2,
            ExecMode::VirtualTime,
            &SpeedModel::from_factors(vec![1.0, 2.0]),
            TraceSink::Disabled,
        );
        k.charge_cpu(0, 100);
        k.charge_cpu(1, 100);
        assert_eq!(k.clock(0), 100);
        assert_eq!(k.clock(1), 200);
    }

    #[test]
    fn net_charge_is_unscaled() {
        let k = Kernel::new(
            1,
            ExecMode::VirtualTime,
            &SpeedModel::from_factors(vec![3.0]),
            TraceSink::Disabled,
        );
        k.charge_net(0, 100);
        assert_eq!(k.clock(0), 100);
    }

    #[test]
    fn wake_token_survives_early_unblock() {
        // A single-rank machine: unblock before block must not deadlock.
        let k = vt_kernel(1);
        k.unblock(0, 42);
        k.block(0); // consumes the token instead of parking
        assert_eq!(k.clock(0), 42);
    }

    #[test]
    fn advance_to_is_monotonic() {
        let k = vt_kernel(1);
        k.advance_to(0, 100);
        k.advance_to(0, 50);
        assert_eq!(k.clock(0), 100);
    }

    #[test]
    fn two_ranks_alternate_by_clock() {
        // Exercise baton passing: rank 0 runs work in slices, yielding each
        // time; rank 1 does the same with bigger slices. After both finish,
        // both clocks hold their total work.
        let k = vt_kernel(2);
        let k0 = k.clone();
        let k1 = k.clone();
        let t1 = std::thread::spawn(move || {
            k0.wait_for_start(0);
            for _ in 0..10 {
                k0.charge_cpu(0, 10);
                k0.yield_point(0);
            }
            k0.finish(0);
        });
        let t2 = std::thread::spawn(move || {
            k1.wait_for_start(1);
            for _ in 0..5 {
                k1.charge_cpu(1, 30);
                k1.yield_point(1);
            }
            k1.finish(1);
        });
        t1.join().unwrap();
        t2.join().unwrap();
        assert_eq!(k.clock(0), 100);
        assert_eq!(k.clock(1), 150);
    }
}
