//! The scheduling kernel: conservative min-clock dispatch in virtual-time
//! mode, token-based blocking in concurrent mode, poison propagation on
//! rank panics, and deadlock detection.
//!
//! Virtual-time dispatch is a single min-clock priority queue shared by
//! both engines (parked threads and event-driven fibers): a rank becomes
//! an event `(clock, rank)` when it turns runnable and is popped in
//! lexicographic order, which reproduces the historical "lowest rank among
//! minimum clocks" scan exactly. Heap keys are never stale — a rank's
//! clock only moves while it is `Running` (self-charges) or on the
//! `Blocked -> Runnable` transition, which pushes the fresh key.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use scioto_det::clock::MonoClock;
use scioto_det::sync::{Condvar, Mutex};

use crate::config::{ExecMode, SpeedModel};
use crate::fiber;
use crate::report::EventCounters;
use crate::trace::{TraceEvent, TraceSink};

/// Scheduling state of one rank.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Status {
    /// Currently executing (in virtual-time mode at most one rank is
    /// `Running` at any instant).
    Running,
    /// Eligible to be dispatched (present in the dispatch heap).
    Runnable,
    /// Parked on some shared-state condition; resumed by `unblock`.
    Blocked,
    /// Rank program returned (or panicked).
    Done,
}

/// Which execution substrate carries the virtual-time baton between
/// scheduling points. Resolved from [`crate::Engine`] by `Machine::run`;
/// [`ExecMode::Concurrent`] machines always use `Threads`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum EngineKind {
    /// One parked OS thread per rank; handoff = condvar notify + park.
    Threads,
    /// One fiber per rank on the machine's thread; handoff = a stack
    /// switch through the active [`fiber::FiberSet`].
    Events,
}

struct Sched {
    status: Vec<Status>,
    /// Wake hints: an `unblock` that raced ahead of the corresponding
    /// `block` (possible in concurrent mode, and when a rank is notified
    /// while runnable) is stored here and consumed by the next `block`.
    wake_token: Vec<bool>,
    /// Earliest virtual time at which a pending wake may resume the rank.
    pending_resume: Vec<u64>,
    /// Min-heap of `(clock, rank)` dispatch events. Invariant (virtual
    /// time only): contains exactly the `Runnable` ranks, keyed by their
    /// frozen clocks. Unused in concurrent mode.
    heap: BinaryHeap<Reverse<(u64, usize)>>,
    /// Static tag of each rank's most recent park site — what a `Blocked`
    /// rank is waiting on, for the deadlock diagnostic.
    last_block_site: Vec<Option<&'static str>>,
    done: usize,
}

/// One cache line per slot: the per-rank stamp caches are written on
/// every concurrent-mode clock read, and unpadded neighbours would
/// false-share under free-running threads.
#[repr(align(64))]
struct PaddedU64(AtomicU64);

/// The shared scheduling kernel of one simulated machine.
pub(crate) struct Kernel {
    n: usize,
    mode: ExecMode,
    engine: EngineKind,
    sched: Mutex<Sched>,
    cvs: Vec<Condvar>,
    clocks: Vec<AtomicU64>,
    /// Wall-clock finish stamp of each rank (concurrent mode only):
    /// written once by the rank's own thread when its program returns,
    /// read by `Machine::run` after all threads have joined. This is the
    /// rank's measured thread span, the concurrent analogue of its final
    /// virtual clock.
    final_ns: Vec<AtomicU64>,
    /// Concurrent mode only: each rank's most recent wall stamp read
    /// through [`Kernel::now`], the cheap stamp source for order-only
    /// instant events ([`Kernel::emit_instant`]). Written and read only
    /// by the owning rank's thread; padded so neighbouring ranks never
    /// share a cache line. Stays zero in virtual-time mode.
    stamp_cache: Vec<PaddedU64>,
    speed: Vec<f64>,
    start: MonoClock,
    poisoned: AtomicBool,
    pub(crate) events: EventCounters,
    pub(crate) trace: TraceSink,
}

impl Kernel {
    pub(crate) fn new(
        n: usize,
        mode: ExecMode,
        engine: EngineKind,
        speed: &SpeedModel,
        trace: TraceSink,
    ) -> Self {
        assert!(n >= 1, "a machine needs at least one rank");
        assert_eq!(speed.len(), n, "speed model must cover all ranks");
        let mut status = vec![Status::Runnable; n];
        let mut heap = BinaryHeap::with_capacity(n);
        if mode == ExecMode::VirtualTime {
            // Rank 0 holds the baton initially; every other rank starts as
            // a time-zero dispatch event. In concurrent mode every rank
            // free-runs from the start and the heap stays empty.
            status[0] = Status::Running;
            for r in 1..n {
                heap.push(Reverse((0, r)));
            }
        } else {
            status.iter_mut().for_each(|s| *s = Status::Running);
        }
        Kernel {
            n,
            mode,
            engine,
            sched: Mutex::new(Sched {
                status,
                wake_token: vec![false; n],
                pending_resume: vec![0; n],
                heap,
                last_block_site: vec![None; n],
                done: 0,
            }),
            cvs: (0..n).map(|_| Condvar::new()).collect(),
            clocks: (0..n).map(|_| AtomicU64::new(0)).collect(),
            final_ns: (0..n).map(|_| AtomicU64::new(0)).collect(),
            stamp_cache: (0..n).map(|_| PaddedU64(AtomicU64::new(0))).collect(),
            speed: (0..n).map(|r| speed.factor(r)).collect(),
            start: MonoClock::new(),
            poisoned: AtomicBool::new(false),
            events: EventCounters::default(),
            trace,
        }
    }

    /// Is event tracing enabled for this machine?
    #[inline]
    pub(crate) fn trace_on(&self) -> bool {
        self.trace.is_enabled()
    }

    /// Record a trace event for `rank`, stamped with its current time:
    /// the virtual clock in `VirtualTime` mode, real wall nanoseconds
    /// since machine start in `Concurrent` mode. `make` only runs when
    /// tracing is enabled.
    #[inline]
    pub(crate) fn emit(&self, rank: usize, make: impl FnOnce() -> TraceEvent) {
        if self.trace.is_enabled() {
            self.trace.emit(rank, self.now(rank), make);
        }
    }

    /// Record a trace event for `rank` at an explicit stamp `t_ns` the
    /// caller already holds. Span-measuring sites use this to stamp an
    /// event with the clock value they just read instead of paying a
    /// second clock read inside [`Kernel::emit`] — on the concurrent
    /// (wall-clock) path each avoided read is a real monotonic-clock
    /// query.
    #[inline]
    pub(crate) fn emit_at(&self, rank: usize, t_ns: u64, make: impl FnOnce() -> TraceEvent) {
        if self.trace.is_enabled() {
            self.trace.emit(rank, t_ns, make);
        }
    }

    /// Record an *order-only* instant event for `rank`: one whose stamp
    /// never feeds a duration or blame span, only the event's position in
    /// the rank's timeline. In virtual-time mode the stamp is the virtual
    /// clock, identical to [`Kernel::emit`]. In concurrent mode the stamp
    /// is the rank's most recent cached wall read — hot instant sites
    /// (per-word queue-protocol accesses) skip the monotonic-clock query
    /// that dominates their traced cost. Stamps stay non-decreasing per
    /// rank: the cache only moves forward, refreshed by every real read.
    #[inline]
    pub(crate) fn emit_instant(&self, rank: usize, make: impl FnOnce() -> TraceEvent) {
        if self.trace.is_enabled() {
            let t = match self.mode {
                ExecMode::VirtualTime => self.clocks[rank].load(Ordering::Relaxed),
                ExecMode::Concurrent => {
                    let c = self.stamp_cache[rank].0.load(Ordering::Relaxed);
                    if c == 0 {
                        // No read yet on this rank: pay one real query.
                        self.now(rank)
                    } else {
                        c
                    }
                }
            };
            self.trace.emit(rank, t, make);
        }
    }

    /// Record a histogram sample for `rank` under `name`.
    #[inline]
    pub(crate) fn trace_hist(&self, rank: usize, name: &'static str, v: u64) {
        self.trace.hist(rank, name, v);
    }

    /// Record a gauge sample for `rank` under `name`.
    #[inline]
    pub(crate) fn trace_gauge(&self, rank: usize, name: &'static str, v: u64) {
        self.trace.gauge(rank, name, v);
    }

    pub(crate) fn nranks(&self) -> usize {
        self.n
    }

    pub(crate) fn mode(&self) -> ExecMode {
        self.mode
    }

    /// Current time of `rank` in nanoseconds: virtual clock in
    /// `VirtualTime` mode, wall time since machine start otherwise.
    pub(crate) fn now(&self, rank: usize) -> u64 {
        match self.mode {
            ExecMode::VirtualTime => self.clocks[rank].load(Ordering::Relaxed),
            ExecMode::Concurrent => {
                let t = self.start.now_ns();
                // Refresh the rank's instant-event stamp cache: every real
                // read keeps subsequent `emit_instant` stamps current.
                self.stamp_cache[rank].0.store(t, Ordering::Relaxed);
                t
            }
        }
    }

    /// Final (or current) virtual clock of `rank`, regardless of mode.
    #[cfg(test)]
    pub(crate) fn clock(&self, rank: usize) -> u64 {
        self.clocks[rank].load(Ordering::Relaxed)
    }

    /// Each rank's measured elapsed time: its final virtual clock in
    /// `VirtualTime` mode, its thread's wall-clock span (machine start →
    /// program return, stamped by [`Kernel::finish`]) in `Concurrent`
    /// mode. Meaningful once the rank is `Done`.
    pub(crate) fn rank_elapsed_ns(&self, rank: usize) -> u64 {
        match self.mode {
            ExecMode::VirtualTime => self.clocks[rank].load(Ordering::Relaxed),
            ExecMode::Concurrent => self.final_ns[rank].load(Ordering::Relaxed),
        }
    }

    /// Advance `rank`'s clock by `ns` of *CPU* time, scaled by its speed
    /// factor. No scheduling point: CPU work is rank-private.
    pub(crate) fn charge_cpu(&self, rank: usize, ns: u64) {
        if self.mode == ExecMode::VirtualTime && ns > 0 {
            let scaled = (ns as f64 * self.speed[rank]).round() as u64;
            self.clocks[rank].fetch_add(scaled, Ordering::Relaxed);
        }
    }

    /// Advance `rank`'s clock by `ns` of *network* time (unscaled).
    pub(crate) fn charge_net(&self, rank: usize, ns: u64) {
        if self.mode == ExecMode::VirtualTime && ns > 0 {
            self.clocks[rank].fetch_add(ns, Ordering::Relaxed);
        }
    }

    /// Wait at rank start until the scheduler hands this rank the baton.
    pub(crate) fn wait_for_start(&self, rank: usize) {
        if self.mode == ExecMode::Concurrent {
            return;
        }
        match self.engine {
            EngineKind::Threads => {
                let mut s = self.sched.lock();
                while s.status[rank] != Status::Running {
                    self.check_poison();
                    self.cvs[rank].wait(&mut s);
                }
            }
            EngineKind::Events => {
                // A fiber is only ever switched into after the dispatcher
                // marked it Running, so there is nothing to wait for.
                self.check_poison();
                debug_assert_eq!(self.sched.lock().status[rank], Status::Running);
            }
        }
    }

    /// A scheduling point before a shared-state operation. In virtual-time
    /// mode the caller is suspended until it is the minimum-clock runnable
    /// rank; on return it holds the baton and may manipulate shared state.
    pub(crate) fn yield_point(&self, rank: usize) {
        if self.mode == ExecMode::Concurrent {
            // On oversubscribed hosts, give other rank threads a chance to
            // make progress between shared-state operations.
            std::thread::yield_now();
            return;
        }
        self.events.yields.fetch_add(1, Ordering::Relaxed);
        let mut s = self.sched.lock();
        debug_assert_eq!(s.status[rank], Status::Running);
        s.status[rank] = Status::Runnable;
        let clock = self.clocks[rank].load(Ordering::Relaxed);
        s.heap.push(Reverse((clock, rank)));
        let next = self
            .pop_next(&mut s)
            .expect("dispatch heap lost the yielding rank");
        if next == rank {
            s.status[rank] = Status::Running;
            return;
        }
        s.status[next] = Status::Running;
        match self.engine {
            EngineKind::Threads => {
                self.cvs[next].notify_one();
                self.wait_until_running(rank, &mut s);
            }
            EngineKind::Events => {
                drop(s);
                self.switch_and_check(next);
            }
        }
    }

    /// Park until another rank calls [`Kernel::unblock`] for us (or a wake
    /// token is already pending). Callers use this inside a
    /// check-condition/block loop, so spurious wakeups are harmless.
    /// `site` is a static tag naming the waiting primitive (for the
    /// deadlock diagnostic).
    pub(crate) fn block(&self, rank: usize, site: &'static str) {
        // Publication boundary for the batched trace ring: staged events
        // land in the rank's ring before it parks.
        self.trace.flush(rank);
        let mut s = self.sched.lock();
        if s.wake_token[rank] {
            // Wake-token fast path: the wake raced ahead of this block, so
            // the rank never parks — neither the park counter nor the
            // trace records an event that did not happen.
            s.wake_token[rank] = false;
            let resume = std::mem::take(&mut s.pending_resume[rank]);
            drop(s);
            self.advance_to(rank, resume);
            return;
        }
        self.events.blocks.fetch_add(1, Ordering::Relaxed);
        self.emit(rank, || TraceEvent::Block);
        s.last_block_site[rank] = Some(site);
        match self.mode {
            ExecMode::VirtualTime => {
                debug_assert_eq!(s.status[rank], Status::Running);
                s.status[rank] = Status::Blocked;
                match self.engine {
                    EngineKind::Threads => {
                        self.dispatch_or_deadlock(&mut s, rank);
                        self.wait_until_running(rank, &mut s);
                    }
                    EngineKind::Events => match self.pop_next(&mut s) {
                        Some(next) => {
                            s.status[next] = Status::Running;
                            drop(s);
                            self.switch_and_check(next);
                        }
                        None => self.declare_deadlock(&mut s, rank),
                    },
                }
            }
            ExecMode::Concurrent => {
                s.status[rank] = Status::Blocked;
                while !s.wake_token[rank] {
                    self.check_poison();
                    self.cvs[rank].wait(&mut s);
                }
                s.wake_token[rank] = false;
                s.status[rank] = Status::Running;
            }
        }
    }

    /// Make `target` eligible to run again, no earlier (in virtual time)
    /// than `resume_at`. Safe to call for a rank that is not currently
    /// blocked: the wake is remembered as a token. A wake for a `Done`
    /// rank is dropped undelivered (and not counted).
    pub(crate) fn unblock(&self, target: usize, resume_at: u64) {
        let mut s = self.sched.lock();
        match s.status[target] {
            Status::Blocked => {
                self.events.unblocks.fetch_add(1, Ordering::Relaxed);
                if self.mode == ExecMode::VirtualTime {
                    let c = self.clocks[target].load(Ordering::Relaxed);
                    if resume_at > c {
                        self.clocks[target].store(resume_at, Ordering::Relaxed);
                    }
                    s.status[target] = Status::Runnable;
                    let clock = self.clocks[target].load(Ordering::Relaxed);
                    s.heap.push(Reverse((clock, target)));
                    // The current runner keeps the baton; the wakee will be
                    // dispatched at the next scheduling point.
                } else {
                    s.wake_token[target] = true;
                    self.cvs[target].notify_one();
                }
            }
            Status::Done => {}
            _ => {
                self.events.unblocks.fetch_add(1, Ordering::Relaxed);
                s.wake_token[target] = true;
                s.pending_resume[target] = s.pending_resume[target].max(resume_at);
                if self.mode == ExecMode::Concurrent {
                    self.cvs[target].notify_one();
                }
            }
        }
    }

    /// Called when a rank's program returns. Hands the baton onward; on
    /// the event engine this never returns once the machine completes or
    /// another fiber is dispatched (the caller's stack is abandoned).
    pub(crate) fn finish(&self, rank: usize) {
        if self.mode == ExecMode::Concurrent {
            // The rank's own thread stamps its span end before anything
            // else; every event it emitted carries a stamp ≤ this one, so
            // blame decomposition against the span stays exact.
            self.final_ns[rank].store(self.start.now_ns(), Ordering::Relaxed);
        }
        // Publication boundary: the rank's staged trace events (already
        // stamped ≤ the span end) drain into its ring before it goes Done.
        self.trace.flush(rank);
        let mut s = self.sched.lock();
        s.status[rank] = Status::Done;
        s.done += 1;
        if self.is_poisoned() {
            // Unwinding ranks must not trip the deadlock detector.
            for cv in &self.cvs {
                cv.notify_all();
            }
            if self.mode == ExecMode::VirtualTime && self.engine == EngineKind::Events {
                drop(s);
                fiber::with_active(|fs| fs.switch_to_main());
            }
            return;
        }
        if self.mode != ExecMode::VirtualTime {
            return;
        }
        if s.done < self.n {
            match self.engine {
                EngineKind::Threads => self.dispatch_or_deadlock(&mut s, rank),
                EngineKind::Events => match self.pop_next(&mut s) {
                    Some(next) => {
                        s.status[next] = Status::Running;
                        drop(s);
                        fiber::with_active(|fs| fs.switch_to_fiber(next));
                    }
                    None => self.declare_deadlock(&mut s, rank),
                },
            }
        } else if self.engine == EngineKind::Events {
            // Last rank done: hand control back to the machine's main
            // context, which collects results.
            drop(s);
            fiber::with_active(|fs| fs.switch_to_main());
        }
    }

    /// Wall-clock nanoseconds since the machine was constructed.
    pub(crate) fn wall_ns(&self) -> u64 {
        self.start.now_ns()
    }

    /// Mark the machine poisoned (a rank panicked) and wake everyone so
    /// they can observe the poison and unwind.
    pub(crate) fn poison(&self) {
        self.poisoned.store(true, Ordering::SeqCst);
        let _s = self.sched.lock();
        for cv in &self.cvs {
            cv.notify_all();
        }
    }

    pub(crate) fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::SeqCst)
    }

    fn check_poison(&self) {
        if self.is_poisoned() {
            panic!("sim machine poisoned: another rank panicked or deadlocked");
        }
    }

    /// Event-engine handoff: switch to `next`'s fiber and, once this rank
    /// is switched back in, observe any poison before touching shared
    /// state (the thread engine's `wait_until_running` does the same).
    fn switch_and_check(&self, next: usize) {
        fiber::with_active(|fs| fs.switch_to_fiber(next));
        self.check_poison();
    }

    /// Move `rank`'s clock forward to at least `t`.
    pub(crate) fn advance_to(&self, rank: usize, t: u64) {
        if self.mode == ExecMode::VirtualTime {
            let c = self.clocks[rank].load(Ordering::Relaxed);
            if t > c {
                self.clocks[rank].store(t, Ordering::Relaxed);
            }
        }
    }

    /// Pop the minimum-clock runnable rank, ties broken by rank id — the
    /// same order the historical linear scan produced.
    fn pop_next(&self, s: &mut Sched) -> Option<usize> {
        match s.heap.pop() {
            Some(Reverse((clock, r))) => {
                debug_assert_eq!(s.status[r], Status::Runnable);
                debug_assert_eq!(clock, self.clocks[r].load(Ordering::Relaxed));
                Some(r)
            }
            None => None,
        }
    }

    fn dispatch_or_deadlock(&self, s: &mut Sched, from: usize) {
        if let Some(next) = self.pop_next(s) {
            s.status[next] = Status::Running;
            self.cvs[next].notify_one();
        } else if s.done < self.n {
            self.declare_deadlock(s, from);
        }
    }

    /// No runnable rank and not everyone is done: poison the machine and
    /// panic with per-rank state.
    fn declare_deadlock(&self, s: &mut Sched, from: usize) -> ! {
        let diag = self.deadlock_diagnostics(s);
        self.poisoned.store(true, Ordering::SeqCst);
        for cv in &self.cvs {
            cv.notify_all();
        }
        panic!(
            "sim deadlock: no runnable rank (detected by rank {from}); \
             per-rank state:\n{diag}"
        );
    }

    fn deadlock_diagnostics(&self, s: &Sched) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for r in 0..self.n {
            let site = match (s.status[r], s.last_block_site[r]) {
                (Status::Blocked, Some(site)) => format!(" waiting at {site}"),
                _ => String::new(),
            };
            let _ = writeln!(
                out,
                "  rank {:4}: {:?} @ {} ns{}",
                r,
                s.status[r],
                self.clocks[r].load(Ordering::Relaxed),
                site
            );
        }
        out
    }

    fn wait_until_running(&self, rank: usize, s: &mut scioto_det::sync::MutexGuard<'_, Sched>) {
        while s.status[rank] != Status::Running {
            self.check_poison();
            self.cvs[rank].wait(s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn vt_kernel(n: usize) -> Arc<Kernel> {
        Arc::new(Kernel::new(
            n,
            ExecMode::VirtualTime,
            EngineKind::Threads,
            &SpeedModel::uniform(n),
            TraceSink::Disabled,
        ))
    }

    #[test]
    fn cpu_charge_is_scaled_by_speed_factor() {
        let k = Kernel::new(
            2,
            ExecMode::VirtualTime,
            EngineKind::Threads,
            &SpeedModel::from_factors(vec![1.0, 2.0]),
            TraceSink::Disabled,
        );
        k.charge_cpu(0, 100);
        k.charge_cpu(1, 100);
        assert_eq!(k.clock(0), 100);
        assert_eq!(k.clock(1), 200);
    }

    #[test]
    fn net_charge_is_unscaled() {
        let k = Kernel::new(
            1,
            ExecMode::VirtualTime,
            EngineKind::Threads,
            &SpeedModel::from_factors(vec![3.0]),
            TraceSink::Disabled,
        );
        k.charge_net(0, 100);
        assert_eq!(k.clock(0), 100);
    }

    #[test]
    fn wake_token_survives_early_unblock() {
        // A single-rank machine: unblock before block must not deadlock.
        let k = vt_kernel(1);
        k.unblock(0, 42);
        k.block(0, "test"); // consumes the token instead of parking
        assert_eq!(k.clock(0), 42);
    }

    #[test]
    fn wake_token_fast_path_is_not_a_park() {
        // The token fast path never parks the rank, so it must count as
        // one delivered unblock and zero blocks (regression: both used to
        // be over-counted).
        let k = vt_kernel(1);
        k.unblock(0, 42);
        k.block(0, "test");
        let snap = k.events.snapshot();
        assert_eq!(snap.blocks, 0, "token fast path must not count a park");
        assert_eq!(snap.unblocks, 1);
    }

    #[test]
    fn unblock_of_done_rank_is_dropped_and_uncounted() {
        let k = vt_kernel(2);
        k.wait_for_start(0);
        k.finish(0); // hands the baton to rank 1
        k.unblock(0, 100); // no recipient: dropped, not a delivered wake
        assert_eq!(k.events.snapshot().unblocks, 0);
        let s = k.sched.lock();
        assert!(!s.wake_token[0]);
        assert_eq!(s.status[0], Status::Done);
        // Rank 1 was dispatched by finish and is unaffected.
        assert_eq!(s.status[1], Status::Running);
        drop(s);
    }

    #[test]
    fn advance_to_is_monotonic() {
        let k = vt_kernel(1);
        k.advance_to(0, 100);
        k.advance_to(0, 50);
        assert_eq!(k.clock(0), 100);
    }

    #[test]
    fn two_ranks_alternate_by_clock() {
        // Exercise baton passing: rank 0 runs work in slices, yielding each
        // time; rank 1 does the same with bigger slices. After both finish,
        // both clocks hold their total work.
        let k = vt_kernel(2);
        let k0 = k.clone();
        let k1 = k.clone();
        let t1 = std::thread::spawn(move || {
            k0.wait_for_start(0);
            for _ in 0..10 {
                k0.charge_cpu(0, 10);
                k0.yield_point(0);
            }
            k0.finish(0);
        });
        let t2 = std::thread::spawn(move || {
            k1.wait_for_start(1);
            for _ in 0..5 {
                k1.charge_cpu(1, 30);
                k1.yield_point(1);
            }
            k1.finish(1);
        });
        t1.join().unwrap();
        t2.join().unwrap();
        assert_eq!(k.clock(0), 100);
        assert_eq!(k.clock(1), 150);
    }

    #[test]
    fn deadlock_diagnostics_name_block_sites() {
        let k = vt_kernel(3);
        {
            let mut s = k.sched.lock();
            s.status[1] = Status::Blocked;
            s.last_block_site[1] = Some("mailbox.recv");
            s.status[2] = Status::Blocked;
            s.last_block_site[2] = Some("vlock.acquire");
            let diag = k.deadlock_diagnostics(&s);
            assert!(diag.contains("rank    1: Blocked @ 0 ns waiting at mailbox.recv"));
            assert!(diag.contains("rank    2: Blocked @ 0 ns waiting at vlock.acquire"));
            // Non-blocked ranks carry no site annotation.
            assert!(diag.contains("rank    0: Running @ 0 ns\n"));
        }
    }
}
