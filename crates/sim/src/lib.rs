//! # scioto-sim — a deterministic virtual-time distributed-machine simulator
//!
//! The Scioto paper (Dinan et al., ICPP 2008) evaluates its runtime on a
//! 64-node heterogeneous InfiniBand cluster and a Cray XT4. This crate is the
//! substitute substrate: it executes SPMD rank programs under a
//! **conservative discrete-event scheduler** that always resumes the
//! runnable rank with the smallest virtual clock. Two interchangeable
//! engines carry the ranks ([`Engine`]): resumable fibers on a virtual-time
//! event loop (the default where supported — this is what makes 1024-rank
//! machines practical on one core) and one parked OS thread per rank (the
//! historical engine and the portable fallback). Same-seed runs produce
//! byte-identical [`Report`]s and traces on either engine.
//!
//! Rules of the model:
//!
//! * Purely **rank-private** work advances the local virtual clock via
//!   [`Ctx::compute`] / [`Ctx::charge_cpu`] without a scheduling point.
//! * Any operation that touches **shared state** (locks, mailboxes,
//!   barriers, remotely accessible memory) passes through a *yield point*
//!   ([`Ctx::yield_point`]), so shared operations execute in global
//!   virtual-time order and runs are bit-for-bit deterministic.
//! * Communication costs come from a [`LatencyModel`]; per-rank CPU speed
//!   differences (the paper's Opteron/Xeon mix) come from a [`SpeedModel`].
//!
//! The same API also runs in [`ExecMode::Concurrent`] — free-running threads,
//! real locks, wall-clock time — which the test suites use to stress the
//! identical runtime code under genuine preemption.
//!
//! ```
//! use scioto_sim::{Machine, MachineConfig};
//!
//! let cfg = MachineConfig::virtual_time(4);
//! let out = Machine::run(cfg, |ctx| {
//!     ctx.compute(1_000); // 1 µs of local work
//!     ctx.barrier();
//!     ctx.rank()
//! });
//! assert_eq!(out.results, vec![0, 1, 2, 3]);
//! assert!(out.report.makespan_ns >= 1_000);
//! ```

mod barrier;
mod config;
mod ctx;
mod fiber;
mod kernel;
mod machine;
mod mailbox;
mod replay;
mod report;
mod trace;
mod vlock;

pub use barrier::SimBarrier;
pub use config::{
    ring_distance, BarrierKind, Engine, ExecMode, LatencyModel, LatencyTiers, MachineConfig,
    SpeedModel, StartupMode,
};
pub use ctx::Ctx;
pub use machine::{Machine, RunOutput};
pub use mailbox::{MailboxRouter, Msg, MsgFilter};
pub use replay::{event_dur, run_replay, run_replay_on, ReplayOp, ReplayProgram, ReplaySync};
pub use report::{EventCounters, Report};
pub use trace::{
    validate_json, Gauge, RemoteOpKind, StampedEvent, Trace, TraceConfig, TraceEvent, TraceSink,
    VtHistogram, WaveDir, DEFAULT_TRACE_BATCH, HIST_BUCKETS,
};
pub use vlock::VLock;
