//! Machine construction and the SPMD run loop.

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;

use scioto_det::sync::Mutex;

use crate::barrier::SimBarrier;
use crate::config::{Engine, ExecMode, LatencyModel, MachineConfig, StartupMode};
use crate::ctx::Ctx;
use crate::fiber;
use crate::kernel::{EngineKind, Kernel};
use crate::report::Report;
use crate::trace::TraceSink;

/// State shared by all ranks of one machine (beyond the kernel).
pub(crate) struct Shared {
    pub(crate) latency: LatencyModel,
    /// The historical ([`StartupMode::Old`]) collective slot: one reusable
    /// cell guarded by two barriers per collective. The stored type name
    /// feeds the divergence diagnostics.
    pub(crate) slot: Mutex<Option<(Arc<dyn Any + Send + Sync>, &'static str)>>,
    pub(crate) barrier: SimBarrier,
    pub(crate) startup: StartupMode,
    /// The coalesced-mode collective log (barrier-free publication).
    pub(crate) coll: Mutex<CollectiveLog>,
}

/// Append-only publication log for [`StartupMode::Coalesced`] collectives:
/// rank 0 pushes each `(object, type name, publish clock)` entry at its
/// ordinal; ranks that arrive before publication park under `waiters` and
/// are woken by the publish. The stored clock is the causal stamp every
/// reader's virtual clock is advanced to — a rank cannot observe the
/// object before it existed, whatever order the scheduler dispatched the
/// ranks in. Entries are never reused, so no read-fence barrier is
/// needed — the one-way wake (or the mutex, in concurrent mode) is the
/// sync edge.
#[derive(Default)]
pub(crate) struct CollectiveLog {
    pub(crate) entries: Vec<(Arc<dyn Any + Send + Sync>, &'static str, u64)>,
    /// `(ordinal, rank)` pairs parked until that ordinal publishes.
    pub(crate) waiters: Vec<(usize, usize)>,
}

/// Result of a completed SPMD run.
#[derive(Debug)]
pub struct RunOutput<R> {
    /// Per-rank return values, indexed by rank.
    pub results: Vec<R>,
    /// Timing and event summary.
    pub report: Report,
}

/// The simulated machine. Stateless: [`Machine::run`] builds everything,
/// executes the rank program on every rank, and tears it down.
pub struct Machine;

impl Machine {
    /// Run `f` as an SPMD program on `cfg.ranks` simulated processes and
    /// collect each rank's return value.
    ///
    /// If any rank panics, the machine is poisoned (all other ranks unwind)
    /// and the first panic is propagated to the caller.
    pub fn run<R, F>(cfg: MachineConfig, f: F) -> RunOutput<R>
    where
        R: Send,
        F: Fn(&Ctx) -> R + Send + Sync,
    {
        let n = cfg.ranks;
        assert!(n >= 1, "a machine needs at least one rank");
        let engine = resolve_engine(&cfg);
        let kernel = Arc::new(Kernel::new(
            n,
            cfg.mode,
            engine,
            &cfg.speed,
            TraceSink::new(&cfg.trace, n),
        ));
        let shared = Arc::new(Shared {
            latency: cfg.latency,
            slot: Mutex::new(None),
            barrier: SimBarrier::new(cfg.barrier),
            startup: cfg.startup,
            coll: Mutex::new(CollectiveLog::default()),
        });
        let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let panic_payload: Mutex<Option<Box<dyn Any + Send>>> = Mutex::new(None);

        match engine {
            EngineKind::Threads => {
                run_threads(&cfg, &kernel, &shared, &f, &results, &panic_payload)
            }
            EngineKind::Events => run_events(&cfg, &kernel, &shared, &f, &results, &panic_payload),
        }

        if let Some(p) = panic_payload.lock().take() {
            resume_unwind(p);
        }

        // Per-rank elapsed time: the final virtual clock in virtual-time
        // mode, each thread's measured wall-clock span (stamped by the
        // rank's own thread at program return) in concurrent mode.
        let rank_clock_ns: Vec<u64> = (0..n).map(|r| kernel.rank_elapsed_ns(r)).collect();
        let makespan_ns = match cfg.mode {
            ExecMode::VirtualTime => rank_clock_ns.iter().copied().max().unwrap_or(0),
            ExecMode::Concurrent => kernel.wall_ns(),
        };
        let trace = kernel.trace.finish().map(|mut t| {
            // Stamp per-rank elapsed time into the trace so analysis (and
            // re-analysis from an exported JSONL file) can decompose each
            // rank's full clock, including any trailing idle time after its
            // last event.
            t.final_clock_ns = rank_clock_ns.clone();
            t.wall_clock = cfg.mode == ExecMode::Concurrent;
            t
        });
        let report = Report {
            mode: cfg.mode,
            makespan_ns,
            rank_clock_ns,
            events: kernel.events.snapshot(),
            trace,
        };
        let results = results
            .into_iter()
            .map(|m| m.into_inner().expect("rank produced no result"))
            .collect();
        RunOutput { results, report }
    }
}

/// Resolve the configured [`Engine`] to a concrete substrate for this
/// machine. Concurrent machines are free-running threads by definition.
fn resolve_engine(cfg: &MachineConfig) -> EngineKind {
    if cfg.mode == ExecMode::Concurrent {
        return EngineKind::Threads;
    }
    match cfg.engine {
        Engine::Threads => EngineKind::Threads,
        Engine::Events => {
            assert!(
                Engine::events_supported(),
                "Engine::Events requires a supported fiber target (x86_64/aarch64 unix); \
                 use Engine::Auto or Engine::Threads"
            );
            EngineKind::Events
        }
        Engine::Auto => {
            if Engine::events_supported() {
                EngineKind::Events
            } else {
                EngineKind::Threads
            }
        }
    }
}

/// The thread engine: one parked OS thread per rank, handoff by condvar.
fn run_threads<R, F>(
    cfg: &MachineConfig,
    kernel: &Arc<Kernel>,
    shared: &Arc<Shared>,
    f: &F,
    results: &[Mutex<Option<R>>],
    panic_payload: &Mutex<Option<Box<dyn Any + Send>>>,
) where
    R: Send,
    F: Fn(&Ctx) -> R + Send + Sync,
{
    std::thread::scope(|scope| {
        for rank in 0..cfg.ranks {
            let kernel = Arc::clone(kernel);
            let shared = Arc::clone(shared);
            let seed = cfg.seed;
            std::thread::Builder::new()
                .name(format!("rank{rank}"))
                .stack_size(cfg.stack_size)
                .spawn_scoped(scope, move || {
                    let ctx = Ctx::new(rank, Arc::clone(&kernel), shared, seed);
                    match catch_unwind(AssertUnwindSafe(|| {
                        kernel.wait_for_start(rank);
                        f(&ctx)
                    })) {
                        Ok(v) => {
                            *results[rank].lock() = Some(v);
                            kernel.finish(rank);
                        }
                        Err(payload) => {
                            store_payload(panic_payload, payload);
                            kernel.poison();
                            kernel.finish(rank);
                        }
                    }
                })
                .expect("failed to spawn rank thread");
        }
    });
}

/// The event engine: one fiber per rank on this thread, dispatched from
/// the kernel's min-clock heap. Scheduling-point semantics are identical
/// to the thread engine (same transitions, same dispatch order), so
/// same-seed runs produce byte-identical reports and traces.
fn run_events<R, F>(
    cfg: &MachineConfig,
    kernel: &Arc<Kernel>,
    shared: &Arc<Shared>,
    f: &F,
    results: &[Mutex<Option<R>>],
    panic_payload: &Mutex<Option<Box<dyn Any + Send>>>,
) where
    R: Send,
    F: Fn(&Ctx) -> R + Send + Sync,
{
    let n = cfg.ranks;
    let mut fs = fiber::FiberSet::new(n, cfg.stack_size);
    for rank in 0..n {
        let kernel = Arc::clone(kernel);
        let shared = Arc::clone(shared);
        let seed = cfg.seed;
        let task = Box::new(move || {
            let ctx = Ctx::new(rank, Arc::clone(&kernel), shared, seed);
            match catch_unwind(AssertUnwindSafe(|| {
                kernel.wait_for_start(rank);
                f(&ctx)
            })) {
                Ok(v) => *results[rank].lock() = Some(v),
                Err(payload) => {
                    store_payload(panic_payload, payload);
                    kernel.poison();
                }
            }
            // `ctx` (with its kernel/shared Arcs) drops on return, before
            // the exit hook abandons this stack for good.
        });
        // SAFETY: every started fiber runs to completion inside `enter`
        // below (the cleanup loop resumes stragglers until they unwind),
        // so the erased borrows of `f`/`results`/`panic_payload` die here.
        unsafe { fs.set_task(rank, task) };
    }
    {
        let kernel = Arc::clone(kernel);
        let exit = Box::new(move |rank: usize| {
            // `finish` hands the baton onward and normally never returns.
            // Its deadlock detector can panic, though, and that unwind
            // must stop here rather than reach the fiber's assembly frame.
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| kernel.finish(rank))) {
                store_payload(panic_payload, payload);
            }
        });
        // SAFETY: same contract as set_task above.
        unsafe { fs.set_exit(exit) };
    }
    fiber::enter(&fs, || {
        // Rank 0 holds the baton at construction — the same initial
        // dispatch the thread engine performs.
        fs.switch_to_fiber(0);
        // Back in the main context: every rank finished, or the machine
        // was poisoned mid-run. Resume any suspended fibers so they
        // observe the poison, unwind, and release everything they own.
        while let Some(r) = fs.first_suspended() {
            fs.switch_to_fiber(r);
        }
    });
}

/// Keep the most informative panic: a first "real" panic wins over the
/// poison-propagation panics it triggers in other ranks.
fn store_payload(slot: &Mutex<Option<Box<dyn Any + Send>>>, payload: Box<dyn Any + Send>) {
    let mut guard = slot.lock();
    let is_propagation = payload_text(&payload)
        .map(|t| t.contains("sim machine poisoned"))
        .unwrap_or(false);
    match &*guard {
        None => *guard = Some(payload),
        Some(existing) => {
            let existing_propagation = payload_text(existing)
                .map(|t| t.contains("sim machine poisoned"))
                .unwrap_or(false);
            if existing_propagation && !is_propagation {
                *guard = Some(payload);
            }
        }
    }
}

fn payload_text(payload: &Box<dyn Any + Send>) -> Option<&str> {
    payload
        .downcast_ref::<&'static str>()
        .copied()
        .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SpeedModel;

    #[test]
    fn ranks_see_their_identity() {
        let out = Machine::run(MachineConfig::virtual_time(8), |ctx| {
            (ctx.rank(), ctx.nranks())
        });
        for (r, (rank, n)) in out.results.iter().enumerate() {
            assert_eq!(*rank, r);
            assert_eq!(*n, 8);
        }
    }

    #[test]
    fn virtual_makespan_is_max_rank_clock() {
        let out = Machine::run(MachineConfig::virtual_time(4), |ctx| {
            ctx.compute(100 * (ctx.rank() as u64 + 1));
        });
        assert_eq!(out.report.makespan_ns, 400);
        assert_eq!(out.report.rank_clock_ns, vec![100, 200, 300, 400]);
    }

    #[test]
    fn speed_factors_slow_down_compute() {
        let cfg = MachineConfig::virtual_time(2)
            .with_speed(SpeedModel::from_factors(vec![1.0, 2.0]));
        let out = Machine::run(cfg, |ctx| {
            ctx.compute(1_000);
            ctx.now()
        });
        assert_eq!(out.results, vec![1_000, 2_000]);
    }

    #[test]
    fn collective_shares_one_instance() {
        let out = Machine::run(MachineConfig::virtual_time(4), |ctx| {
            let v = ctx.collective(|| vec![1, 2, 3]);
            Arc::as_ptr(&v) as usize
        });
        assert!(out.results.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn sequential_collectives_do_not_collide() {
        let out = Machine::run(MachineConfig::virtual_time(3), |ctx| {
            let a = ctx.collective(|| 1u32);
            let b = ctx.collective(|| 2u64);
            (*a, *b)
        });
        assert!(out.results.iter().all(|&(a, b)| a == 1 && b == 2));
    }

    #[test]
    fn rank_panic_propagates() {
        let r = std::panic::catch_unwind(|| {
            Machine::run(MachineConfig::virtual_time(3), |ctx| {
                if ctx.rank() == 1 {
                    panic!("boom from rank 1");
                }
                // Other ranks wait at a barrier the panicking rank never
                // reaches; poison must wake them.
                ctx.barrier_with_cost(0);
            });
        });
        let err = r.expect_err("machine must propagate the panic");
        let text = err
            .downcast_ref::<&str>()
            .copied()
            .map(String::from)
            .or_else(|| err.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(text.contains("boom from rank 1"), "got: {text}");
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            Machine::run(MachineConfig::virtual_time(6), |ctx| {
                let mut acc = 0u64;
                for _ in 0..100 {
                    let x: u64 = ctx.rng().gen_range(0..1_000u64);
                    ctx.compute(x);
                    ctx.yield_point();
                    acc = acc.wrapping_mul(31).wrapping_add(ctx.now());
                }
                acc
            })
        };
        let a = run();
        let b = run();
        assert_eq!(a.results, b.results);
        assert_eq!(a.report.makespan_ns, b.report.makespan_ns);
    }

    #[test]
    fn concurrent_mode_runs_all_ranks() {
        let out = Machine::run(MachineConfig::concurrent(8), |ctx| {
            ctx.barrier_with_cost(0);
            ctx.rank()
        });
        assert_eq!(out.results, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn concurrent_report_fills_wall_clocks() {
        // Regression: rank_clock_ns used to stay all-zero in concurrent
        // mode (the virtual clocks never advance there). Each entry must
        // now be the rank thread's measured wall span, bounded by the
        // machine's makespan.
        let out = Machine::run(MachineConfig::concurrent(4), |ctx| {
            ctx.barrier_with_cost(0);
            ctx.rank()
        });
        assert_eq!(out.report.rank_clock_ns.len(), 4);
        for (r, &ns) in out.report.rank_clock_ns.iter().enumerate() {
            assert!(ns > 0, "rank {r} elapsed must be a real wall span, got 0");
            assert!(
                ns <= out.report.makespan_ns,
                "rank {r} span {ns} exceeds makespan {}",
                out.report.makespan_ns
            );
        }
        assert!(out.report.imbalance() >= 1.0);
    }

    #[test]
    fn concurrent_traced_run_stamps_wall_clocks() {
        use crate::trace::{TraceConfig, TraceEvent};
        let cfg = MachineConfig::concurrent(2).with_trace(TraceConfig::enabled());
        let out = Machine::run(cfg, |ctx| {
            ctx.trace(|| TraceEvent::QueueDepth {
                local: ctx.rank() as u32,
                shared: 0,
            });
            ctx.barrier_with_cost(0);
            ctx.trace(|| TraceEvent::QueueDepth {
                local: ctx.rank() as u32,
                shared: 1,
            });
        });
        let trace = out.report.trace.expect("traced run must attach a trace");
        assert!(trace.wall_clock, "concurrent traces must carry the wall marker");
        assert_eq!(trace.final_clock_ns, out.report.rank_clock_ns);
        for r in 0..2 {
            let evs = trace.events_for(r);
            // Stamps are real time: monotone non-decreasing per rank, and
            // never past the rank's recorded span end.
            assert!(evs.windows(2).all(|w| w[0].t_ns <= w[1].t_ns));
            assert!(evs.iter().all(|e| e.t_ns <= trace.final_clock_ns[r]));
            // The post-barrier event must carry a nonzero stamp — the old
            // bug stamped every concurrent event at t=0.
            assert!(
                evs.iter()
                    .any(|e| e.t_ns > 0
                        && e.event == TraceEvent::QueueDepth { local: r as u32, shared: 1 }),
                "rank {r} events all stamped zero"
            );
        }
    }

    #[test]
    fn untraced_runs_carry_no_trace() {
        let out = Machine::run(MachineConfig::virtual_time(2), |ctx| ctx.rank());
        assert!(out.report.trace.is_none());
    }

    #[test]
    fn traced_run_stamps_events_with_virtual_clocks() {
        use crate::trace::{TraceConfig, TraceEvent};
        let cfg = MachineConfig::virtual_time(2).with_trace(TraceConfig::enabled());
        let out = Machine::run(cfg, |ctx| {
            ctx.compute(100);
            ctx.trace(|| TraceEvent::QueueDepth {
                local: ctx.rank() as u32,
                shared: 0,
            });
            // Rank 1 genuinely parks; rank 0 wakes it (Block + Unblock
            // events). Rank 0 yields first so rank 1 reaches its block
            // before the unblock — a wake arriving early would take the
            // token fast path, which never parks and emits nothing.
            if ctx.rank() == 1 {
                ctx.block();
            } else {
                ctx.yield_point();
                ctx.compute(500);
                ctx.unblock(1, 0);
            }
        });
        let trace = out.report.trace.expect("traced run must attach a trace");
        assert_eq!(trace.nranks(), 2);
        assert!(trace
            .events_for(0)
            .iter()
            .any(|e| e.event == TraceEvent::QueueDepth { local: 0, shared: 0 } && e.t_ns == 100));
        assert!(trace
            .events_for(1)
            .iter()
            .any(|e| e.event == TraceEvent::Block));
        assert!(trace
            .events_for(0)
            .iter()
            .any(|e| e.event == TraceEvent::Unblock { target: 1 }));
        assert_eq!(trace.dropped, vec![0, 0]);
        assert_eq!(trace.final_clock_ns, out.report.rank_clock_ns);
    }

    #[test]
    fn rng_differs_across_ranks_but_is_seed_stable() {
        let draw = |seed| {
            Machine::run(MachineConfig::virtual_time(4).with_seed(seed), |ctx| {
                ctx.rng().next_u64()
            })
            .results
        };
        let a = draw(1);
        let b = draw(1);
        let c = draw(2);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.windows(2).all(|w| w[0] != w[1]));
    }
}
