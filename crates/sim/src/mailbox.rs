//! Tagged point-to-point mailboxes with virtual arrival times.
//!
//! This is the substrate for the two-sided (`scioto-mpi`) layer. A message
//! sent at virtual time `t` becomes *visible* to the destination at
//! `t + net_cost` — so a polling receiver (the MPI work-stealing baseline of
//! the paper, §6.2) genuinely cannot observe a steal request before it has
//! "crossed the network".

use std::collections::VecDeque;
use std::sync::atomic::Ordering;

use scioto_det::sync::Mutex;

use crate::ctx::Ctx;

/// A delivered message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Msg {
    /// Sending rank.
    pub src: usize,
    /// User tag.
    pub tag: u64,
    /// Payload bytes.
    pub data: Vec<u8>,
    /// Virtual time at which the message became visible at the destination.
    pub arrival: u64,
    /// Per-destination delivery sequence number (assigned at send time);
    /// pairs the trace's `MsgSend` and `MsgRecv` events exactly.
    pub seq: u64,
}

/// Source/tag matching for receives, mirroring MPI's
/// `MPI_ANY_SOURCE`/`MPI_ANY_TAG`.
#[derive(Debug, Clone, Copy, Default)]
pub struct MsgFilter {
    /// Match only messages from this rank (any source if `None`).
    pub src: Option<usize>,
    /// Match only messages with this tag (any tag if `None`).
    pub tag: Option<u64>,
}

impl MsgFilter {
    /// Match any message.
    pub fn any() -> Self {
        MsgFilter::default()
    }

    /// Match messages with `tag` from any source.
    pub fn tag(tag: u64) -> Self {
        MsgFilter {
            src: None,
            tag: Some(tag),
        }
    }

    /// Match messages from `src` with `tag`.
    pub fn src_tag(src: usize, tag: u64) -> Self {
        MsgFilter {
            src: Some(src),
            tag: Some(tag),
        }
    }

    fn matches(&self, m: &Msg) -> bool {
        self.src.is_none_or(|s| s == m.src) && self.tag.is_none_or(|t| t == m.tag)
    }
}

/// One destination rank's mailbox: the queued messages plus the
/// sequence counter stamped onto each delivery.
#[derive(Default)]
struct MailboxState {
    queue: VecDeque<Msg>,
    next_seq: u64,
}

/// One mailbox per destination rank. Created collectively (one router per
/// communicator). Delivery sequence numbers are per destination and per
/// router, so `MsgSend`/`MsgRecv` trace pairing assumes one router per
/// machine (which `Comm::world` guarantees).
pub struct MailboxRouter {
    boxes: Vec<Mutex<MailboxState>>,
}

impl MailboxRouter {
    /// Create a router for `n` ranks.
    pub fn new(n: usize) -> Self {
        MailboxRouter {
            boxes: (0..n).map(|_| Mutex::new(MailboxState::default())).collect(),
        }
    }

    /// Send `data` to `dst` with `tag`. The message becomes visible at the
    /// destination `net_cost` ns after the sender's current time; the sender
    /// is charged `send_overhead` ns of CPU (injection) time.
    pub fn send(
        &self,
        ctx: &Ctx,
        dst: usize,
        tag: u64,
        data: Vec<u8>,
        send_overhead: u64,
        net_cost: u64,
    ) {
        ctx.yield_point();
        ctx.charge_cpu(send_overhead);
        let arrival = ctx.now() + net_cost;
        ctx.kernel()
            .events
            .messages
            .fetch_add(1, Ordering::Relaxed);
        let bytes = data.len() as u32;
        let seq = {
            let mut b = self.boxes[dst].lock();
            let seq = b.next_seq;
            b.next_seq += 1;
            b.queue.push_back(Msg {
                src: ctx.rank(),
                tag,
                data,
                arrival,
                seq,
            });
            seq
        };
        ctx.trace(|| crate::trace::TraceEvent::MsgSend {
            dst: dst as u32,
            bytes,
            seq,
        });
        ctx.unblock(dst, arrival);
    }

    /// Non-blocking probe: is a matching message *visible* (arrival time has
    /// passed) at this rank right now?
    pub fn iprobe(&self, ctx: &Ctx, filter: MsgFilter) -> bool {
        ctx.yield_point();
        let now = ctx.now();
        self.boxes[ctx.rank()]
            .lock()
            .queue
            .iter()
            .any(|m| filter.matches(m) && m.arrival <= now)
    }

    /// Non-blocking receive of a visible matching message.
    pub fn try_recv(&self, ctx: &Ctx, filter: MsgFilter) -> Option<Msg> {
        ctx.yield_point();
        let now = ctx.now();
        let mut b = self.boxes[ctx.rank()].lock();
        let idx = b
            .queue
            .iter()
            .position(|m| filter.matches(m) && m.arrival <= now)?;
        let m = b.queue.remove(idx)?;
        drop(b);
        ctx.trace(|| crate::trace::TraceEvent::MsgRecv {
            src: m.src as u32,
            seq: m.seq,
        });
        Some(m)
    }

    /// Blocking receive: waits for a matching message (visible or still in
    /// flight) and advances the receiver's clock to its arrival time.
    pub fn recv(&self, ctx: &Ctx, filter: MsgFilter) -> Msg {
        ctx.yield_point();
        let rank = ctx.rank();
        loop {
            {
                let mut b = self.boxes[rank].lock();
                // Earliest-arrival matching message, FIFO within ties.
                let best = b
                    .queue
                    .iter()
                    .enumerate()
                    .filter(|(_, m)| filter.matches(m))
                    .min_by_key(|(i, m)| (m.arrival, *i))
                    .map(|(i, _)| i);
                if let Some(i) = best {
                    let m = b.queue.remove(i).expect("index valid");
                    drop(b);
                    ctx.advance_to(m.arrival);
                    ctx.trace(|| crate::trace::TraceEvent::MsgRecv {
                        src: m.src as u32,
                        seq: m.seq,
                    });
                    return m;
                }
            }
            ctx.block_at("mailbox.recv");
        }
    }

    /// Number of queued (visible or in-flight) messages for `rank`.
    pub fn pending(&self, rank: usize) -> usize {
        self.boxes[rank].lock().queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Machine, MachineConfig};

    #[test]
    fn message_latency_advances_receiver_clock() {
        let out = Machine::run(MachineConfig::virtual_time(2), |ctx| {
            let router = ctx.collective(|| MailboxRouter::new(ctx.nranks()));
            if ctx.rank() == 0 {
                ctx.compute(100);
                router.send(ctx, 1, 7, vec![1, 2, 3], 10, 1_000);
                ctx.now()
            } else {
                let m = router.recv(ctx, MsgFilter::tag(7));
                assert_eq!(m.data, vec![1, 2, 3]);
                assert_eq!(m.src, 0);
                ctx.now()
            }
        });
        // Sender: 100 compute + 10 injection = 110. Receiver: arrival 1110.
        assert_eq!(out.results, vec![110, 1_110]);
    }

    #[test]
    fn iprobe_does_not_see_in_flight_messages() {
        let out = Machine::run(MachineConfig::virtual_time(2), |ctx| {
            let router = ctx.collective(|| MailboxRouter::new(ctx.nranks()));
            if ctx.rank() == 0 {
                router.send(ctx, 1, 1, vec![], 0, 1_000);
                ctx.barrier_with_cost(0);
                true
            } else {
                ctx.barrier_with_cost(0);
                // At the barrier release the receiver's clock is still 0;
                // the message arrives at t=1000 and must be invisible.
                let early = router.iprobe(ctx, MsgFilter::any());
                ctx.compute(2_000);
                let late = router.iprobe(ctx, MsgFilter::any());
                !early && late
            }
        });
        assert!(out.results.iter().all(|&b| b));
    }

    #[test]
    fn filters_select_src_and_tag() {
        let out = Machine::run(MachineConfig::virtual_time(3), |ctx| {
            let router = ctx.collective(|| MailboxRouter::new(ctx.nranks()));
            match ctx.rank() {
                0 => {
                    router.send(ctx, 2, 10, vec![0], 0, 0);
                    0
                }
                1 => {
                    router.send(ctx, 2, 20, vec![1], 0, 0);
                    0
                }
                _ => {
                    // Receive tag 20 first even if tag 10 arrived earlier.
                    let m20 = router.recv(ctx, MsgFilter::tag(20));
                    let m10 = router.recv(ctx, MsgFilter::src_tag(0, 10));
                    assert_eq!(m20.data, vec![1]);
                    assert_eq!(m10.data, vec![0]);
                    (m20.src + 10 * m10.src) as i32
                }
            }
        });
        assert_eq!(out.results[2], 1);
    }

    #[test]
    fn try_recv_returns_none_without_message() {
        let out = Machine::run(MachineConfig::virtual_time(1), |ctx| {
            let router = MailboxRouter::new(1);
            router.try_recv(ctx, MsgFilter::any()).is_none()
        });
        assert!(out.results[0]);
    }

    #[test]
    fn many_messages_fifo_per_source() {
        let out = Machine::run(MachineConfig::virtual_time(2), |ctx| {
            let router = ctx.collective(|| MailboxRouter::new(ctx.nranks()));
            if ctx.rank() == 0 {
                for i in 0..50u8 {
                    router.send(ctx, 1, 0, vec![i], 1, 100);
                }
                Vec::new()
            } else {
                (0..50)
                    .map(|_| router.recv(ctx, MsgFilter::any()).data[0])
                    .collect::<Vec<u8>>()
            }
        });
        let expect: Vec<u8> = (0..50).collect();
        assert_eq!(out.results[1], expect);
    }
}
